"""Benchmark: Fig. 6 — cache hit rates and occupancy, ordered vs random."""

from repro.experiments import fig06_microarch
from repro.experiments.harness import format_table


def test_fig06(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig06_microarch.run(n=20_000, scale=max(scale, 0.75)), rounds=1, iterations=1
    )
    print("\nFig. 6 — microarchitectural behavior (paper: L1 82/38, L2 80/28, occ 80/35)")
    print(format_table(rows))
    by = {r["mapping"]: r for r in rows}
    assert by["ordered"]["l1_hit_rate"] > by["random"]["l1_hit_rate"]
    assert by["ordered"]["l2_hit_rate"] > by["random"]["l2_hit_rate"]
    assert by["ordered"]["sm_occupancy"] > by["random"]["sm_occupancy"]
