"""Benchmark: §8 — approximate-search extensions."""

from repro.experiments import approx_ablation
from repro.experiments.harness import format_table


def test_elide_sphere_test(benchmark, scale):
    out = benchmark.pedantic(
        lambda: approx_ablation.run_elide_sphere_test(scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\n§8a — sphere test elided (range search)")
    print(format_table([out]))
    # The sqrt(3)r error bound holds and the approximation is faster.
    assert out["bound_holds"]
    assert out["speedup"] > 1.0
    assert out["max_dist_over_r"] <= 3.0**0.5 + 1e-9


def test_shrunk_aabb(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: approx_ablation.run_shrunk_aabb(scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\n§8b — shrunk-AABB approximate KNN (recall vs speed)")
    print(format_table(rows))
    recalls = [r["recall"] for r in rows]
    # Recall degrades monotonically with shrink while speed improves.
    assert all(a >= b - 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert rows[0]["recall"] > 0.9
    assert rows[-1]["modeled_ms"] < rows[0]["modeled_ms"] * 1.05
