"""Benchmark: §3.1 / App. A — per-op cost ratios and short-ray design."""

from repro.experiments import micro_step_costs
from repro.experiments.harness import format_table


def test_cost_ratios(benchmark):
    ratios = benchmark.pedantic(micro_step_costs.cost_ratios, rounds=1, iterations=1)
    print("\nApp. A cost constants of the simulated device:")
    for k, v in ratios.items():
        print(f"  {k}: {v:.3g}")
    # skipping the sphere test is a large per-call saving (paper: 20:1 vs 2:1)
    assert ratios["k1_over_k3_fast"] / ratios["k1_over_k3_test"] >= 4.0
    # KNN IS within the paper's 3-6x band of the range-test IS (we use 2x-6x)
    assert 1.5 <= ratios["knn_over_range_test"] <= 6.0
    # Step 2 >> Step 1
    assert ratios["is_over_traversal"] >= 10.0


def test_short_ray_suppression(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: micro_step_costs.run_tmax_sweep(scale=max(scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    print("\nShort-ray false-positive suppression (t_max sweep)")
    print(format_table(rows))
    # Longer rays -> more IS calls (Condition-1 false positives) but the
    # same search results; short rays are strictly cheaper.
    assert rows[-1]["is_calls"] > rows[0]["is_calls"]
    assert rows[-1]["search_ms"] > rows[0]["search_ms"]
    assert all(r["results_match_short_ray"] for r in rows)
