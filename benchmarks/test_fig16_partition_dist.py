"""Benchmark: Fig. 16 — query count vs AABB size across partitions."""

from repro.experiments import fig16_partition_dist
from repro.experiments.harness import format_table


def test_fig16(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig16_partition_dist.run(dataset="KITTI-12M", scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 16 — partition query counts vs AABB size")
    print(format_table(rows))
    rho = fig16_partition_dist.correlation(rows)
    print(f"Spearman correlation: {rho:.3f} (paper: strongly negative)")
    assert len(rows) >= 4  # real partition diversity
    assert rho < -0.3
