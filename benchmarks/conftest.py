"""Benchmark configuration.

Each benchmark regenerates one figure of the paper on the simulated
device and asserts its qualitative shape. Dataset scale defaults to a
fraction of the registered sizes so the whole suite runs in minutes;
set ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=1.0``) for full-scale runs.

Benchmarked wall-clock time measures the *simulator* (regression
tracking for this repository); the scientific outputs are the modeled
GPU times printed in each benchmark's table.
"""

import os

import pytest

#: default dataset scale for benchmark runs
DEFAULT_SCALE = 0.15


@pytest.fixture(scope="session")
def scale():
    try:
        return float(os.environ.get("REPRO_SCALE", DEFAULT_SCALE))
    except ValueError:
        return DEFAULT_SCALE
