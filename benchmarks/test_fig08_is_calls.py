"""Benchmark: Fig. 8 — IS-call count grows super-linearly with AABB width."""

from repro.experiments import fig08_is_calls
from repro.experiments.harness import format_table

WIDTHS = (0.3, 1.0, 3.0, 10.0)


def test_fig08(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig08_is_calls.run(widths=WIDTHS, n=10_000, scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 8 — IS calls vs AABB width")
    print(format_table(rows))
    exp = fig08_is_calls.growth_exponent(
        [r["aabb_width"] for r in rows], [r["is_calls"] for r in rows]
    )
    print(f"log-log growth exponent: {exp:.2f} (cubic = 3, saturates at scene size)")
    # Super-linear growth in the pre-saturation regime.
    assert exp > 1.5
    calls = [r["is_calls"] for r in rows]
    assert all(b > a for a, b in zip(calls, calls[1:]))
