"""Benchmark: Fig. 5 — ordered vs random query-to-ray mapping."""

from repro.experiments import fig05_coherence
from repro.experiments.harness import format_table


def test_fig05(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig05_coherence.run(sizes=(3_000, 9_000, 27_000), scale=max(scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 5 — search time, ordered vs random mapping")
    print(format_table(rows))
    # Paper shape: random is consistently slower, across all sizes.
    for r in rows:
        assert r["slowdown_random"] > 1.0
    # and substantially slower at the largest size (paper: ~5x)
    assert rows[-1]["slowdown_random"] > 2.0
