"""Benchmark: Fig. 11 — RTNN vs all four baselines on all eight inputs.

The headline table. Paper geomeans on the RTX 2080: range search 2.2x
over PCL-Octree and 44x over cuNSearch; KNN 3.5x over FRNN and 65x over
FastRNN. On the simulated substrate the *ordering* of baselines and the
growth of speedups with input size must reproduce; magnitudes are
compressed because the simulator runs ~1000x smaller inputs (see
EXPERIMENTS.md).
"""

import pytest

from repro.experiments import fig11_speedup
from repro.experiments.harness import format_table
from repro.gpu.device import RTX_2080, RTX_2080TI


@pytest.mark.parametrize("device", [RTX_2080, RTX_2080TI], ids=lambda d: d.name)
def test_fig11(benchmark, scale, device):
    rows = benchmark.pedantic(
        lambda: fig11_speedup.run(device=device, scale=scale),
        rounds=1,
        iterations=1,
    )
    print(f"\nFig. 11 — speedups on {device.name}")
    print(format_table(rows))
    summary = fig11_speedup.summarize(rows)
    print("geomeans:", {k: f"{v:.2f}x" for k, v in summary.items()})

    # Paper shapes:
    # 1. RTNN beats cuNSearch clearly and FastRNN massively.
    assert summary["cunsearch_x"] > 1.5
    assert summary["fastrnn_x"] > 5.0
    # 2. FastRNN (naive RT) is the slowest KNN baseline.
    assert summary["fastrnn_x"] > summary["frnn_x"]
    # 3. PCL-Octree is the closest range baseline (cuNSearch is worse).
    assert summary["cunsearch_x"] > summary["pcloctree_x"]
    # 4. Speedups grow with input size within a family (KITTI, KNN).
    kitti_knn = [
        fig11_speedup.speedup_values([r], "fastrnn_x")[0]
        for r in rows
        if r["dataset"].startswith("KITTI") and r["type"] == "knn"
    ]
    assert kitti_knn == sorted(kitti_knn) or kitti_knn[-1] > kitti_knn[0]
