"""Benchmark: Fig. 13 — teasing apart the optimizations."""

from repro.experiments import fig13_ablation
from repro.experiments.harness import format_table


def test_fig13(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig13_ablation.run(scale=scale), rounds=1, iterations=1
    )
    print("\nFig. 13 — ablation (modeled ms per variant)")
    print(format_table(rows))

    def get(name, kind):
        return next(r for r in rows if r["dataset"] == name and r["type"] == kind)

    for r in rows:
        # Scheduling always helps (paper: 1.8x - 5.9x).
        assert r["sched_speedup"] > 1.2
        # The shipping configuration is never far from oracle.
        assert r["sched+part+bundle"] <= 2.0 * r["oracle"]

    # Partitioning is dramatically effective for KNN on KITTI (paper: 154x).
    assert get("KITTI-12M", "knn")["part_speedup"] > 3.0
    # Partitioning helps KNN far more than range search (paper §6.3).
    assert (
        get("KITTI-12M", "knn")["part_speedup"]
        > get("KITTI-12M", "range")["part_speedup"]
    )
    # On the clustered N-body input partitioning is marginal for range
    # search (paper: it degrades; oracle disables it).
    assert get("NBody-9M", "range")["part_speedup"] < 1.5
