"""Benchmark: Fig. 7 — search time vs AABB width."""

from repro.experiments import fig07_aabb_time
from repro.experiments.harness import format_table

WIDTHS = (0.3, 1.0, 3.0, 10.0, 20.0, 30.0)


def test_fig07(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig07_aabb_time.run(widths=WIDTHS, n=10_000, scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 7 — search time vs AABB width (monotone increase)")
    print(format_table(rows))
    times = [r["search_ms"] for r in rows]
    # Monotone overall growth: each doubling-scale step not slower than
    # half the previous; strictly larger at the extremes.
    assert times[-1] > 3 * times[0]
    assert all(b > 0.8 * a for a, b in zip(times, times[1:]))
