"""Benchmark: Fig. 14 — sensitivity to r and K on Buddha."""

from repro.experiments import fig14_sensitivity
from repro.experiments.harness import format_table


def test_fig14a_radius(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig14_sensitivity.run_radius_sweep(
            radii=(0.05, 0.1, 0.2, 0.4), scale=scale
        ),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 14a — range speedup vs r (Buddha)")
    print(format_table(rows))
    # cuNSearch speedup rises with r initially (more work to accelerate).
    cu = [
        float(r["cunsearch_x"][:-1])
        for r in rows
        if r["cunsearch_x"] not in ("DNF",)
    ]
    assert cu[1] > cu[0]


def test_fig14b_k(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig14_sensitivity.run_k_sweep(ks=(1, 4, 16, 64), scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 14b — KNN speedup vs K (Buddha)")
    print(format_table(rows))
    # RTNN beats the naive RT mapping at every K (the optimizations
    # matter across the whole sweep). NOTE: the paper reports the
    # speedup *increasing* with K; our mechanistic model yields the
    # largest margins at small K because FastRNN's IS-call count is
    # K-independent while RTNN's partitioned work grows with K — the
    # divergence is recorded in EXPERIMENTS.md.
    fa = [float(r["fastrnn_x"][:-1]) for r in rows if r["fastrnn_x"] != "DNF"]
    assert all(v > 1.0 for v in fa)
    # PCL joins only at K = 1 (its published limitation).
    assert "pcloctree_x" in rows[0]
    assert all("pcloctree_x" not in r for r in rows[1:])
