"""Benchmark: ablations of this implementation's design choices."""

from repro.experiments import design_ablations
from repro.experiments.harness import format_table


def test_leaf_size(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: design_ablations.run_leaf_size(scale=scale), rounds=1, iterations=1
    )
    print("\nleaf_size ablation (KNN, KITTI-12M)")
    print(format_table(rows))
    # IS calls are invariant to leaf width (per-prim AABB gating)...
    calls = {r["is_calls"] for r in rows}
    assert len(calls) == 1
    # ...while node pops strictly decrease with wider leaves.
    steps = [r["traversal_steps"] for r in rows]
    assert all(b < a for a, b in zip(steps, steps[1:]))


def test_cell_div(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: design_ablations.run_cell_div(scale=scale), rounds=1, iterations=1
    )
    print("\ncell_div ablation (KNN, KITTI-12M)")
    print(format_table(rows))
    # Finer grids -> more partition diversity and fewer IS calls.
    assert rows[-1]["n_partitions"] >= rows[0]["n_partitions"]
    assert rows[-1]["is_calls"] <= rows[0]["is_calls"]


def test_knn_aabb_mode(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: design_ablations.run_knn_aabb_mode(scale=scale),
        rounds=1,
        iterations=1,
    )
    print("\nknn_aabb sizing (NBody-9M)")
    print(format_table(rows))
    by = {r["mode"]: r for r in rows}
    # Conservative sizing is exact; the heuristic trades (at most a
    # little) recall for fewer IS calls.
    assert by["conservative"]["recall"] == 1.0
    assert by["equiv_volume"]["recall"] >= 0.95
    assert by["equiv_volume"]["is_calls"] <= by["conservative"]["is_calls"]
