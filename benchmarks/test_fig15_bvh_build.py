"""Benchmark: Fig. 15 — BVH construction time is linear in AABB count."""

from repro.experiments import fig15_bvh_build
from repro.experiments.harness import format_table


def test_fig15(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig15_bvh_build.run(scale=max(scale, 0.5)),
        rounds=1,
        iterations=1,
    )
    print("\nFig. 15 — BVH build time vs AABB count")
    print(format_table(rows))
    f = fig15_bvh_build.fit(rows)
    print(f"wall-clock linear fit R^2 = {f.r_squared:.4f} (paper: 0.996)")
    assert f.r_squared > 0.95
    assert f.slope > 0
    # The modeled time is exactly linear by construction.
    fm = fig15_bvh_build.fit(rows, column="modeled_ms")
    assert fm.r_squared > 0.999999
