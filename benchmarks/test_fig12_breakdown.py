"""Benchmark: Fig. 12 — RTNN time distribution (Data/Opt/BVH/FS/Search)."""

from repro.experiments import fig12_breakdown
from repro.experiments.harness import format_table


def test_fig12(benchmark, scale):
    rows = benchmark.pedantic(
        lambda: fig12_breakdown.run(scale=scale), rounds=1, iterations=1
    )
    print("\nFig. 12 — time distribution (paper: KNN search-dominated, "
          "small inputs overhead-dominated)")
    print(format_table(rows))

    def get(name, kind):
        return next(r for r in rows if r["dataset"] == name and r["type"] == kind)

    # KNN spends a larger search fraction than range search (§6.2).
    for name in ("KITTI-12M", "Buddha-4.6M"):
        assert get(name, "knn")["search_frac"] > get(name, "range")["search_frac"]
    # The smallest input has a larger non-search share than the largest
    # KITTI (the paper's "diminishing gains on small inputs").
    assert (
        get("Bunny-360K", "knn")["search_frac"]
        < get("KITTI-25M", "knn")["search_frac"]
    )
    # Every run decomposes fully.
    for r in rows:
        total = sum(r[f"{c}_frac"] for c in ("data", "opt", "bvh", "fs", "search"))
        assert abs(total - 1.0) < 1e-9
