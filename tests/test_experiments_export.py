"""Experiment-row export tests."""

import csv

from repro.experiments.export import read_rows, write_csv, write_json


ROWS = [
    {"dataset": "A", "speedup": 2.5},
    {"dataset": "B", "speedup": 1.0, "note": "OOM"},
]


def test_csv_roundtrip(tmp_path):
    p = tmp_path / "rows.csv"
    write_csv(p, ROWS)
    with open(p) as fh:
        back = list(csv.DictReader(fh))
    assert back[0]["dataset"] == "A"
    assert float(back[0]["speedup"]) == 2.5
    assert back[0]["note"] == ""  # union of columns, missing -> empty
    assert back[1]["note"] == "OOM"


def test_json_roundtrip(tmp_path):
    p = tmp_path / "rows.json"
    write_json(p, ROWS)
    assert read_rows(p) == ROWS


def test_export_real_experiment(tmp_path):
    from repro.experiments import fig16_partition_dist

    rows = fig16_partition_dist.run(dataset="Bunny-360K", scale=0.1)
    write_csv(tmp_path / "fig16.csv", rows)
    write_json(tmp_path / "fig16.json", rows)
    assert len(read_rows(tmp_path / "fig16.json")) == len(rows)
