"""KNN queue / range accumulator tests, incl. hypothesis properties."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.queues import KnnQueueBatch, RangeAccumulator


def test_knn_keeps_smallest():
    q = KnnQueueBatch(1, k=3, radius=10.0)
    for d in [5.0, 1.0, 4.0, 2.0, 3.0]:
        q.insert(np.array([0]), np.array([int(d * 10)]), np.array([d]))
    idx, counts, d2 = q.finalize()
    assert counts[0] == 3
    assert np.allclose(d2[0], [1.0, 2.0, 3.0])
    assert idx[0].tolist() == [10, 20, 30]


def test_knn_radius_bound():
    q = KnnQueueBatch(1, k=4, radius=1.0)
    q.insert(np.array([0]), np.array([7]), np.array([1.0]))      # boundary in
    q.insert(np.array([0]), np.array([8]), np.array([1.0001]))   # out
    idx, counts, _ = q.finalize()
    assert counts[0] == 1 and idx[0, 0] == 7


def test_knn_multiple_queries_independent():
    q = KnnQueueBatch(3, k=2, radius=10.0)
    q.insert(np.array([0, 2]), np.array([1, 2]), np.array([0.5, 0.25]))
    q.insert(np.array([0, 1]), np.array([3, 4]), np.array([0.1, 0.9]))
    idx, counts, d2 = q.finalize()
    assert counts.tolist() == [2, 1, 1]
    assert idx[0].tolist() == [3, 1]


def test_knn_worst_tracking_after_full():
    q = KnnQueueBatch(1, k=2, radius=10.0)
    q.insert(np.array([0]), np.array([1]), np.array([4.0]))
    q.insert(np.array([0]), np.array([2]), np.array([9.0]))
    # now full; a better candidate displaces the 9.0
    q.insert(np.array([0]), np.array([3]), np.array([1.0]))
    idx, counts, d2 = q.finalize()
    assert idx[0].tolist() == [3, 1]
    # a worse one is rejected
    q.insert(np.array([0]), np.array([4]), np.array([8.0]))
    idx, _, _ = q.finalize()
    assert 4 not in idx[0].tolist()


def test_range_terminates_at_k():
    acc = RangeAccumulator(2, k=2)
    full = acc.insert(np.array([0]), np.array([5]), np.array([0.1]))
    assert len(full) == 0
    full = acc.insert(np.array([0]), np.array([6]), np.array([0.2]))
    assert full.tolist() == [0]
    # further inserts on a full query are ignored
    acc.insert(np.array([0]), np.array([7]), np.array([0.05]))
    assert acc.count[0] == 2 and 7 not in acc.idx[0].tolist()


def test_range_empty_insert():
    acc = RangeAccumulator(1, k=2)
    out = acc.insert(np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                     np.array([]))
    assert len(out) == 0


@settings(max_examples=60)
@given(
    k=st.integers(1, 8),
    dists=st.lists(st.floats(0.0, 2.0, allow_nan=False), min_size=1, max_size=40),
    radius=st.floats(0.1, 2.0),
)
def test_property_knn_queue_equals_sorted_topk(k, dists, radius):
    """The queue result equals sorting all offered distances and taking
    the k smallest within the radius — regardless of arrival order."""
    q = KnnQueueBatch(1, k=k, radius=radius)
    for pid, d in enumerate(dists):
        q.insert(np.array([0]), np.array([pid]), np.array([d * d]))
    _, counts, d2 = q.finalize()
    expect = sorted(d * d for d in dists if d * d <= radius * radius)[:k]
    assert counts[0] == len(expect)
    assert np.allclose(d2[0, : len(expect)], expect)


def test_validation():
    import pytest

    with pytest.raises(ValueError):
        KnnQueueBatch(1, k=0, radius=1.0)
    with pytest.raises(ValueError):
        RangeAccumulator(1, k=0)
