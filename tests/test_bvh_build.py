"""BVH builder tests: structural invariants on both builders."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.bvh import build_lbvh, build_median_split, tree_stats, validate_bvh
from repro.geometry.aabb import aabbs_from_points


def _boxes(n, seed=0, hw=0.05):
    pts = np.random.default_rng(seed).random((n, 3))
    return aabbs_from_points(pts, hw)


@pytest.mark.parametrize("builder", [build_lbvh, build_median_split])
@pytest.mark.parametrize("n", [1, 2, 3, 7, 64, 500])
@pytest.mark.parametrize("leaf_size", [1, 4])
def test_structural_invariants(builder, n, leaf_size):
    lo, hi = _boxes(n)
    bvh = builder(lo, hi, leaf_size=leaf_size)
    validate_bvh(bvh)


@pytest.mark.parametrize("builder", [build_lbvh, build_median_split])
def test_single_primitive(builder):
    lo, hi = _boxes(1)
    bvh = builder(lo, hi)
    assert bvh.n_nodes == 1
    assert bvh.is_leaf.all()
    assert bvh.depth == 0


def test_lbvh_balanced_depth():
    lo, hi = _boxes(1024)
    bvh = build_lbvh(lo, hi, leaf_size=1)
    assert bvh.depth == 10  # midpoint splits over 1024 sorted prims


def test_duplicate_points_build():
    pts = np.zeros((50, 3))
    lo, hi = aabbs_from_points(pts, 0.1)
    bvh = build_lbvh(lo, hi)
    validate_bvh(bvh)
    assert bvh.n_prims == 50


def test_leaf_of_prim_covers_all():
    lo, hi = _boxes(100)
    bvh = build_lbvh(lo, hi, leaf_size=4)
    owner = bvh.leaf_of_prim()
    assert (owner >= 0).all()
    assert bvh.is_leaf[owner].all()


def test_custom_order_roundtrip():
    lo, hi = _boxes(32)
    order = np.random.default_rng(3).permutation(32)
    bvh = build_lbvh(lo, hi, order=order)
    validate_bvh(bvh)
    assert (bvh.prim_order == order).all()


def test_bad_inputs_rejected():
    lo, hi = _boxes(10)
    with pytest.raises(ValueError):
        build_lbvh(np.zeros((0, 3)), np.zeros((0, 3)))
    with pytest.raises(ValueError):
        build_lbvh(hi, lo)  # inverted
    with pytest.raises(ValueError):
        build_lbvh(lo, hi, leaf_size=0)
    with pytest.raises(ValueError):
        build_lbvh(lo, hi, order=np.zeros(10, dtype=np.int64))  # not a perm


def test_tree_stats_sane():
    lo, hi = _boxes(256)
    s = tree_stats(build_lbvh(lo, hi, leaf_size=2))
    assert s.n_prims == 256
    assert s.n_leaves >= 128
    assert 1.0 <= s.mean_leaf_size <= 2.0
    assert s.sah_cost > 0


def test_memory_bytes_scales():
    lo, hi = _boxes(100)
    bvh = build_lbvh(lo, hi)
    assert bvh.memory_bytes() == bvh.n_nodes * 32 + 100 * 32


@settings(max_examples=25, deadline=None)
@given(
    pts=hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 80), st.just(3)),
        elements=st.floats(-10, 10, allow_nan=False),
    ),
    leaf_size=st.integers(1, 5),
)
def test_property_lbvh_valid_on_arbitrary_points(pts, leaf_size):
    lo, hi = aabbs_from_points(pts, 0.1)
    validate_bvh(build_lbvh(lo, hi, leaf_size=leaf_size))
