"""Bundling optimizer tests."""

import numpy as np
import pytest

from repro.core.bundling import Bundle, bundle_partitions
from repro.core.partition import Partition
from repro.gpu.costmodel import CostModel


def _part(n, s, c=None, capped=False, k=8):
    c = c if c is not None else s
    return Partition(
        query_ids=np.arange(n, dtype=np.int64),
        aabb_width=s,
        megacell_width=c,
        capped=capped,
        sphere_test=capped,
        density=k / c**3,
    )


def test_disabled_keeps_all_partitions():
    parts = [_part(10, 0.1), _part(5, 0.2), _part(2, 0.4)]
    dec = bundle_partitions(parts, 1000, 8, "range", CostModel(), enable=False)
    assert len(dec.bundles) == 3
    assert dec.chosen_m == 3


def test_single_partition_noop():
    dec = bundle_partitions([_part(10, 0.1)], 1000, 8, "knn", CostModel())
    assert len(dec.bundles) == 1


def test_empty_raises():
    with pytest.raises(ValueError):
        bundle_partitions([], 1000, 8, "knn", CostModel())


def test_tiny_partitions_merge():
    """Many tiny partitions: builds dominate, so bundling collapses them."""
    parts = [_part(2, 0.1 * (i + 1)) for i in range(10)]
    dec = bundle_partitions(parts, 5_000_000, 8, "knn", CostModel())
    assert len(dec.bundles) < 10


def test_merged_bundle_properties():
    parts = [_part(100, 0.1), _part(2, 0.2), _part(1, 0.4, capped=True)]
    dec = bundle_partitions(parts, 10_000_000, 8, "range", CostModel())
    widest = max(dec.bundles, key=lambda b: b.aabb_width)
    if len(widest.members) > 1:
        # merged bundle inherits the max width and any sphere test
        assert widest.aabb_width == pytest.approx(0.4)
        assert widest.sphere_test


def test_bundles_partition_queries():
    parts = [
        Partition(
            query_ids=np.arange(i * 10, (i + 1) * 10, dtype=np.int64),
            aabb_width=0.1 * (i + 1),
            megacell_width=0.1 * (i + 1),
            capped=False,
            sphere_test=False,
            density=8.0,
        )
        for i in range(5)
    ]
    dec = bundle_partitions(parts, 100_000, 8, "range", CostModel())
    ids = np.concatenate([b.query_ids for b in dec.bundles])
    assert sorted(ids.tolist()) == list(range(50))


def test_predicted_costs_cover_all_strategies():
    parts = [_part(10 * (i + 1), 0.1 * (i + 1)) for i in range(6)]
    dec = bundle_partitions(parts, 100_000, 8, "knn", CostModel())
    assert len(dec.predicted_costs) == 6
    assert 1 <= dec.chosen_m <= 6
    chosen_cost = dec.predicted_costs[dec.chosen_m - 1]
    assert chosen_cost == min(dec.predicted_costs)


def test_bundle_dataclass():
    b = Bundle(
        query_ids=np.arange(5), aabb_width=0.5, sphere_test=False, capped=False
    )
    assert b.n_queries == 5


def test_theorem_vs_exhaustive_optimum():
    """App. C's strategy family (singles + ONE merged bundle) versus the
    true optimum over *all* groupings of the cost model.

    Empirically (and provably for the width-independent range model)
    the linear scan is exact for range search. For KNN the true optimum
    may split the merge into several bundles — a structure outside the
    theorem's family — but stays within ~1.5x; the paper's own
    within-3%-of-oracle claim similarly relies on its workloads'
    inverse width/count correlation.
    """
    from repro.core.bundling import exhaustive_bundle

    rng = np.random.default_rng(7)
    for kind in ("knn", "range"):
        for trial in range(6):
            m = int(rng.integers(2, 7))
            widths = np.sort(rng.uniform(0.05, 0.8, m))
            counts = np.sort(rng.integers(1, 500, m))[::-1]  # inverse corr.
            parts = [
                _part(int(n), float(s), c=float(s) / 1.5)
                for n, s in zip(counts, widths)
            ]
            n_points = int(rng.integers(1_000, 200_000))
            dec = bundle_partitions(parts, n_points, 8, kind, CostModel())
            _, best = exhaustive_bundle(parts, n_points, 8, kind, CostModel())
            chosen = dec.predicted_costs[dec.chosen_m - 1]
            bound = 1.001 if kind == "range" else 1.5
            assert chosen <= best * bound + 1e-15, (kind, trial, chosen, best)


def test_exhaustive_bundle_limits():
    from repro.core.bundling import exhaustive_bundle

    with pytest.raises(ValueError):
        exhaustive_bundle([], 100, 8, "knn", CostModel())
    with pytest.raises(ValueError):
        exhaustive_bundle([_part(1, 0.1)] * 11, 100, 8, "knn", CostModel())
