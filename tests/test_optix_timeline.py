"""Fig. 1b-style timeline recorder tests."""

import numpy as np

from repro.geometry.ray import short_rays_from_queries
from repro.optix import CountingShader, Pipeline, build_gas
from repro.optix.timeline import record_timelines, render_timelines


def _world():
    rng = np.random.default_rng(6)
    pts = rng.random((300, 3))
    q = rng.random((40, 3))
    pipe = Pipeline(cache_sim=False)
    gas = build_gas(pts, 0.08, pipe.cost_model, leaf_size=1)
    return pts, q, gas


def test_timeline_counts_match_trace():
    pts, q, gas = _world()
    rays = short_rays_from_queries(q)
    shader = CountingShader(len(q))
    tls = record_timelines(gas, rays, shader, watch=range(len(q)))
    # TL events per ray == node pops; IS events == shader calls
    cheb = np.abs(q[:, None] - pts[None]).max(axis=2)
    expect_is = (cheb <= 0.08).sum(axis=1)
    for tl in tls:
        assert sum(1 for e in tl.events if e == "IS") == expect_is[tl.ray_id]
        assert shader.calls[tl.ray_id] == expect_is[tl.ray_id]


def test_timeline_render():
    pts, q, gas = _world()
    rays = short_rays_from_queries(q)
    tls = record_timelines(gas, rays, CountingShader(len(q)), watch=(0, 3))
    text = render_timelines(tls)
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("ray    0 | RG")
    assert "steps" in lines[0]
    # run-length compression: long traversal bursts collapse
    assert "TLx" in text


def test_timeline_watch_subset_only():
    pts, q, gas = _world()
    rays = short_rays_from_queries(q)
    tls = record_timelines(gas, rays, CountingShader(len(q)), watch=(5,))
    assert len(tls) == 1 and tls[0].ray_id == 5
