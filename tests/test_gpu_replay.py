"""Replay-based cache simulation vs the online LRU oracle.

The vectorized reuse-distance replay (:mod:`repro.gpu.replay`) claims
*bit-identical* hit/miss counts to the retained per-access simulation
(:class:`repro.gpu.cache._SetAssociativeLRU`).  These tests hold it to
that: randomized property tests on raw streams, adversarial edge
shapes, the tracer pair on a real traversal, and end-to-end counter
equality on every committed bench scenario.
"""

import json
from pathlib import Path

import numpy as np
import pytest

import repro.optix.pipeline
from repro.gpu.cache import (
    CacheHierarchy,
    OnlineSampledCacheTracer,
    SampledCacheTracer,
    _SetAssociativeLRU,
)
from repro.gpu.replay import lru_hit_mask, replay_hierarchy
from repro.utils.rng import default_rng


def _oracle_mask(lines, n_sets, n_ways):
    lru = _SetAssociativeLRU(n_sets=n_sets, n_ways=n_ways)
    return np.array([lru.access(int(line)) for line in lines], dtype=bool)


# ----------------------------------------------------------------------
# lru_hit_mask vs the per-access LRU
# ----------------------------------------------------------------------
def test_property_random_streams_match_oracle():
    rng = default_rng(11)
    for _ in range(120):
        n = int(rng.integers(0, 400))
        lines = rng.integers(0, int(rng.integers(1, 50)), size=n)
        if rng.random() < 0.5 and n:
            # run-heavy streams exercise both collapse stages
            lines = np.repeat(lines, rng.integers(1, 5, size=n))
        n_sets = int(rng.integers(1, 9))
        n_ways = int(rng.integers(1, 6))
        got = lru_hit_mask(lines, n_sets, n_ways)
        assert np.array_equal(got, _oracle_mask(lines, n_sets, n_ways))


@pytest.mark.parametrize(
    "lines, n_sets, n_ways",
    [
        (np.empty(0, dtype=np.int64), 4, 2),           # empty stream
        (np.zeros(50, dtype=np.int64), 1, 1),          # all-same line
        (np.arange(100, dtype=np.int64), 1, 1),        # all-distinct, 1x1
        (np.arange(100, dtype=np.int64) % 7, 1, 4),    # fully-associative
        (np.repeat(np.arange(20), 6), 4, 2),           # long runs
        (np.tile(np.arange(12), 10), 3, 3),            # cyclic thrash
        (np.tile([0, 4, 8, 0], 30), 4, 2),             # one hot set
    ],
)
def test_edge_streams_match_oracle(lines, n_sets, n_ways):
    got = lru_hit_mask(lines, n_sets, n_ways)
    assert np.array_equal(got, _oracle_mask(lines, n_sets, n_ways))


def test_replay_validates_geometry():
    with pytest.raises(ValueError):
        lru_hit_mask(np.arange(4), 0, 1)
    with pytest.raises(ValueError):
        lru_hit_mask(np.arange(4), 1, 0)


def test_hierarchy_replay_matches_online_hierarchy():
    rng = default_rng(23)
    for _ in range(40):
        n = int(rng.integers(0, 600))
        lines = rng.integers(0, int(rng.integers(1, 80)), size=n)
        geo = tuple(int(rng.integers(1, 9)) for _ in range(4))
        l1 = _SetAssociativeLRU(n_sets=geo[0], n_ways=geo[1])
        l2 = _SetAssociativeLRU(n_sets=geo[2], n_ways=geo[3])
        for line in lines:
            if not l1.access(int(line)):
                l2.access(int(line))
        (l1h, l1m), (l2h, l2m) = replay_hierarchy(lines, *geo)
        assert (l1h, l1m) == (l1.stats.hits, l1.stats.misses)
        assert (l2h, l2m) == (l2.stats.hits, l2.stats.misses)


# ----------------------------------------------------------------------
# the tracer pair
# ----------------------------------------------------------------------
def _feed(tracer, rng):
    for it in range(30):
        ray_ids = np.arange(0, 640, dtype=np.int64)
        nodes = rng.integers(0, 300, size=len(ray_ids))
        tracer.on_node_access(it, ray_ids, nodes)
        hits = rng.random(len(ray_ids)) < 0.4
        tracer.on_prim_access(it, ray_ids[hits], rng.integers(0, 900, size=hits.sum()))
    tracer.finalize()


def test_sampled_tracer_matches_online_tracer():
    rng1, rng2 = default_rng(5), default_rng(5)
    replayed = SampledCacheTracer(n_rays=640, max_warps=4, l1_kb=2, l2_kb=64)
    online = OnlineSampledCacheTracer(n_rays=640, max_warps=4, l1_kb=2, l2_kb=64)
    _feed(replayed, rng1)
    _feed(online, rng2)
    assert replayed.counters() == online.counters()
    assert replayed.l1_hit_rate == online.l1_hit_rate
    assert replayed.l2_hit_rate == online.l2_hit_rate
    assert replayed.sampled_accesses == online.sampled_accesses
    assert replayed.scaled_l1_misses() == online.scaled_l1_misses()


def test_tracer_refinalizes_after_more_recording():
    tracer = SampledCacheTracer(n_rays=64, max_warps=2, l1_kb=1, l2_kb=8)
    ray_ids = np.arange(64, dtype=np.int64)
    tracer.on_node_access(0, ray_ids, np.arange(64, dtype=np.int64))
    first = tracer.counters()
    tracer.on_node_access(1, ray_ids, np.arange(64, dtype=np.int64))
    second = tracer.counters()
    assert second["l1_hits"] + second["l1_misses"] > first["l1_hits"] + first["l1_misses"]
    hier = CacheHierarchy(l1_kb=1, l2_kb=8)
    for chunk in tracer._chunks:
        for line in chunk.tolist():
            hier.access(line)
    assert second == {
        "l1_hits": hier.l1_stats.hits,
        "l1_misses": hier.l1_stats.misses,
        "l2_hits": hier.l2_stats.hits,
        "l2_misses": hier.l2_stats.misses,
    }


# ----------------------------------------------------------------------
# end-to-end: every committed bench scenario, replay vs online
# ----------------------------------------------------------------------
def test_bench_scenarios_counters_match_online(monkeypatch):
    from repro.obs.bench import find_baseline, full_suite, run_scenario

    baseline_path = find_baseline(Path(__file__).resolve().parents[1])
    committed = set(json.loads(baseline_path.read_text())["scenarios"])
    scenarios = [sc for sc in full_suite() if sc.name in committed]
    assert len(scenarios) == len(committed), "committed scenario vanished from suite"

    for sc in scenarios:
        replayed = run_scenario(sc)
        monkeypatch.setattr(
            repro.optix.pipeline, "SampledCacheTracer", OnlineSampledCacheTracer
        )
        online = run_scenario(sc)
        monkeypatch.undo()
        assert replayed["counters"] == online["counters"], sc.name
        assert replayed["checksum"] == online["checksum"], sc.name
        assert replayed["modeled_s"] == online["modeled_s"], sc.name
