"""Device-spec tests."""

import pytest

from repro.gpu.device import DeviceSpec, KNOWN_DEVICES, RTX_2080, RTX_2080TI


def test_paper_specs():
    """Section 6.1's published board specs."""
    assert RTX_2080.n_rt_cores == 46
    assert RTX_2080.n_cuda_cores == 2944
    assert RTX_2080.mem_bytes == 8 * 1024**3
    assert RTX_2080TI.n_rt_cores == 68
    assert RTX_2080TI.n_cuda_cores == 4352
    assert RTX_2080TI.mem_bytes == 11 * 1024**3


def test_turing_ratios():
    for d in (RTX_2080, RTX_2080TI):
        assert d.n_cuda_cores == 64 * d.n_sms   # 64 CUDA cores per SM
        assert d.n_rt_cores == d.n_sms          # 1 RT core per SM


def test_cycle():
    assert RTX_2080.cycle == pytest.approx(1.0 / 1.71e9)


def test_registry():
    assert KNOWN_DEVICES["RTX 2080"] is RTX_2080
    assert len(KNOWN_DEVICES) == 2


def test_frozen():
    with pytest.raises(Exception):
        RTX_2080.n_sms = 1  # frozen dataclass


def test_custom_device():
    d = DeviceSpec(
        name="Toy", n_sms=2, n_rt_cores=2, n_cuda_cores=128,
        clock_hz=1e9, mem_bytes=1 << 30, dram_bw=1e11, l2_bw=1e12,
        l1_kb=64, l2_kb=512,
    )
    assert d.warp_size == 32
