"""The downstream workload pipelines (repro.workloads) and their contracts.

Covers the three pipelines (DBSCAN, directed Hausdorff, SPH stepper)
against their brute-force oracles — exact equality, not tolerances —
their cross-path bit-identity (solo session vs fused service vs sharded
service), the aggregate-only ``count_in_radius`` fast path, the
``with_config`` unknown-field guard, sustained ``update_points``
traffic, and the session-only engine-access discipline of the
workloads package itself.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.api import SearchSession
from repro.core.engine import VARIANTS
from repro.core.queues import CountAccumulator
from repro.obs.tracer import RecordingTracer
from repro.utils.rng import default_rng
from repro.workloads import (
    DBSCANConfig,
    HausdorffConfig,
    SessionClient,
    SPHConfig,
    brute_dbscan,
    brute_hausdorff,
    brute_sph,
    canonical_rows,
    run_dbscan,
    run_hausdorff,
    run_sph,
)
from repro.workloads.check import clustered_cloud, workloads_smoke

coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
clouds = hnp.arrays(
    np.float64, st.tuples(st.integers(4, 40), st.just(3)), elements=coords
)


def _client(points) -> SessionClient:
    return SessionClient(SearchSession(points))


# ----------------------------------------------------------------------
# count_in_radius: the aggregate-only fast path
# ----------------------------------------------------------------------
def test_count_accumulator_protocol():
    acc = CountAccumulator(4)
    assert acc.k == 0
    assert acc.idx.shape == (4, 0)
    assert acc.d2.shape == (4, 0)
    full = acc.insert(
        np.array([0, 0, 2, 0]), np.array([5, 6, 7, 8]), np.zeros(4)
    )
    # Counting never retires rays: no query must ever report "full".
    assert len(full) == 0
    assert acc.count.tolist() == [3, 0, 1, 0]
    assert len(acc.insert(np.empty(0, np.int64), np.empty(0, np.int64),
                          np.empty(0))) == 0


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_count_in_radius_exact_across_variants(variant):
    pts = clustered_cloud(200, 3)
    r = 0.06
    diff = pts[:, None, :] - pts[None, :, :]
    d2 = np.einsum("qnd,qnd->qn", diff, diff)
    exact = (d2 <= r * r).sum(axis=1)
    session = SearchSession(pts, config=VARIANTS[variant])
    res = session.count_in_radius(pts, r)
    assert np.array_equal(res.counts, exact)
    # Aggregate-only: no neighbor rows are materialized.
    assert res.indices.shape == (len(pts), 0)
    assert res.sq_distances.shape == (len(pts), 0)


def test_count_in_radius_matches_uncapped_range():
    pts = clustered_cloud(150, 5)
    r = 0.07
    session = SearchSession(pts)
    counts = session.count_in_radius(pts, r).counts
    rng_res = session.range_search(pts, radius=r, k=int(counts.max()))
    assert np.array_equal(counts, rng_res.counts)


def test_partitioned_range_returns_every_neighbor_at_exact_k():
    # Regression: the uncapped range partitions' AABBs used to span only
    # the megacell width, so a query sitting off-center in its grid cell
    # could miss a counted (in-radius) megacell point and return fewer
    # than k neighbors while k existed within r.
    pts = clustered_cloud(240, 7)
    r = 0.05
    session = SearchSession(pts, config=VARIANTS["sched+part"])
    counts = session.count_in_radius(pts, r).counts
    res = session.range_search(pts, radius=r, k=int(counts.max()))
    assert np.array_equal(res.counts, counts)
    diff = pts[:, None, :] - pts[None, :, :]
    d2 = np.einsum("qnd,qnd->qn", diff, diff)
    for i in range(len(pts)):
        got = set(res.indices[i][res.indices[i] >= 0].tolist())
        assert got == set(np.flatnonzero(d2[i] <= r * r).tolist())


# ----------------------------------------------------------------------
# with_config: unknown fields fail loudly (the CLI's exit-2 contract)
# ----------------------------------------------------------------------
def test_with_config_unknown_field_raises_with_hint():
    session = SearchSession(clustered_cloud(20, 0))
    with pytest.raises(ValueError, match=r"did you mean 'leaf_size'"):
        session.with_config(leaf_sized=32)
    with pytest.raises(ValueError, match="unknown config field"):
        session.with_config(totally_bogus=1, partition=False)
    # Valid fields keep working, and the error lists them.
    assert session.with_config(partition=False).config.partition is False
    with pytest.raises(ValueError, match="valid fields:.*partition"):
        session.with_config(nope=0)


# ----------------------------------------------------------------------
# sustained refit traffic (update_points loop)
# ----------------------------------------------------------------------
def test_sustained_refit_traffic_bounds_cache_and_reseeds():
    pts = clustered_cloud(120, 11)
    capacity = 4
    session = SearchSession(pts, cache_capacity=capacity)
    engine = session.engine
    r0_before = engine.seed_radius(4)
    rng = default_rng(0)
    current = pts
    for step in range(8):
        # A fresh radius per step forces a new GAS entry each time.
        session.range_search(current[:16], radius=0.03 + 0.003 * step, k=8)
        assert len(engine.gas_cache) <= capacity
        current = np.clip(
            current + rng.normal(0.0, 1e-3, current.shape), 0.0, 1.0
        )
        session.update_points(current)
        # Motion invalidates the density-seeded radius cache.
        assert engine._seed_cache == {}
    stats = session.cache_stats
    assert stats["evictions"] > 0
    # A genuine density change re-resolves to a different seed radius.
    session.update_points(current * 0.25)
    assert engine.seed_radius(4) != r0_before


# ----------------------------------------------------------------------
# DBSCAN
# ----------------------------------------------------------------------
def test_dbscan_matches_oracle_exactly():
    pts = clustered_cloud(260, 9)
    cfg = DBSCANConfig(eps=0.04, min_pts=5, batch_size=32)
    out = run_dbscan(_client(pts), cfg)
    labels, core, counts, n_clusters = brute_dbscan(pts, cfg)
    assert np.array_equal(out.labels, labels)
    assert np.array_equal(out.core, core)
    assert np.array_equal(out.counts, counts)
    assert out.n_clusters == n_clusters
    # Sanity on the label structure itself.
    assert ((out.labels >= -1) & (out.labels < n_clusters)).all()
    assert out.stats["core_points"] + out.stats["border_points"] + \
        out.stats["noise_points"] == len(pts)


def test_dbscan_on_tied_grid_points():
    # Duplicated coordinates and exact distance ties everywhere.
    g = np.linspace(0.0, 1.0, 4)
    grid = np.array([[x, y, z] for x in g for y in g for z in g])
    pts = np.vstack([grid, grid[:10]])  # exact duplicates on top
    cfg = DBSCANConfig(eps=float(g[1] - g[0]), min_pts=6)
    out = run_dbscan(_client(pts), cfg)
    labels, _, counts, n_clusters = brute_dbscan(pts, cfg)
    assert np.array_equal(out.labels, labels)
    assert np.array_equal(out.counts, counts)
    assert out.n_clusters == n_clusters


@settings(max_examples=10, deadline=None)
@given(pts=clouds, eps=st.floats(0.02, 0.3), min_pts=st.integers(2, 6))
def test_property_dbscan_exact_labels(pts, eps, min_pts):
    cfg = DBSCANConfig(eps=eps, min_pts=min_pts, batch_size=16)
    out = run_dbscan(_client(pts), cfg)
    labels, _, counts, n_clusters = brute_dbscan(pts, cfg)
    # Exact equality subsumes equivalence-up-to-renaming, but assert
    # the weaker contract explicitly too: same partition of the points.
    assert np.array_equal(out.counts, counts)
    assert out.n_clusters == n_clusters
    for cluster in range(n_clusters):
        members = np.flatnonzero(labels == cluster)
        assert len(np.unique(out.labels[members])) == 1
    assert np.array_equal(out.labels == -1, labels == -1)
    assert np.array_equal(out.labels, labels)


def test_dbscan_spans_and_counters():
    pts = clustered_cloud(150, 4)
    tracer = RecordingTracer()
    session = SearchSession(pts, tracer=tracer)
    out = run_dbscan(SessionClient(session), DBSCANConfig(eps=0.05, min_pts=5),
                     tracer=tracer)
    names = [s.name for s in tracer.spans]
    assert "workload.dbscan.count" in names
    rounds = [n for n in names if n.startswith("workload.dbscan.round[")]
    assert len(rounds) == out.rounds > 0
    totals = tracer.total_counters()
    assert totals["dbscan_rounds"] == out.rounds
    assert totals["dbscan_edges"] == out.stats["edges"]
    assert totals["relaunched_queries"] >= out.stats["relaunched"]


# ----------------------------------------------------------------------
# Hausdorff
# ----------------------------------------------------------------------
def test_hausdorff_matches_oracle_exactly():
    b = clustered_cloud(220, 13)
    a = clustered_cloud(90, 14)
    cfg = HausdorffConfig(chunk_size=32)
    out = run_hausdorff(_client(b), a, cfg)
    hd2, ia, ib = brute_hausdorff(a, b)
    assert out.sq_distance == hd2
    assert (out.index_a, out.index_b) == (ia, ib)
    assert out.distance == float(np.sqrt(hd2))


@settings(max_examples=10, deadline=None)
@given(a=clouds, b=clouds, chunk=st.integers(3, 17))
def test_property_hausdorff_exact(a, b, chunk):
    out = run_hausdorff(_client(b), a, HausdorffConfig(chunk_size=chunk))
    hd2, ia, ib = brute_hausdorff(a, b)
    assert out.sq_distance == hd2
    assert (out.index_a, out.index_b) == (ia, ib)


def test_hausdorff_of_subset_is_zero():
    b = clustered_cloud(80, 2)
    out = run_hausdorff(_client(b), b[:20], HausdorffConfig(chunk_size=7))
    assert out.sq_distance == 0.0
    assert out.index_a == 0
    assert out.index_b == 0


# ----------------------------------------------------------------------
# SPH stepper
# ----------------------------------------------------------------------
def test_sph_trajectory_bit_identical_to_brute():
    pts = clustered_cloud(140, 17)
    cfg = SPHConfig(radius=0.06, dt=1e-3, n_steps=4)
    out = run_sph(_client(pts), cfg)
    x, v = brute_sph(pts, cfg)
    assert np.array_equal(out.positions, x)
    assert np.array_equal(out.velocities, v)
    assert out.stats["steps"] == 4
    assert len(out.stats["k_per_step"]) == 4
    assert out.stats["neighbor_pairs"] > 0


def test_sph_honors_initial_velocities_and_validates_shape():
    pts = clustered_cloud(60, 19)
    v0 = default_rng(1).normal(0.0, 1e-2, pts.shape)
    cfg = SPHConfig(radius=0.08, n_steps=2)
    out = run_sph(_client(pts), cfg, velocities=v0)
    x, v = brute_sph(pts, cfg, velocities=v0)
    assert np.array_equal(out.positions, x)
    assert np.array_equal(out.velocities, v)
    with pytest.raises(ValueError, match="shape"):
        run_sph(_client(pts), cfg, velocities=v0[:-1])


def test_sph_spans_record_steps():
    pts = clustered_cloud(80, 23)
    tracer = RecordingTracer()
    session = SearchSession(pts, tracer=tracer)
    out = run_sph(SessionClient(session), SPHConfig(radius=0.07, n_steps=3),
                  tracer=tracer)
    names = [s.name for s in tracer.spans]
    for step in range(3):
        assert f"workload.sph.step[{step}]" in names
    totals = tracer.total_counters()
    assert totals["sph_steps"] == 3
    assert totals["neighbor_pairs"] == out.stats["neighbor_pairs"]


# ----------------------------------------------------------------------
# cross-path bit-identity (solo vs fused vs sharded serving)
# ----------------------------------------------------------------------
def test_workloads_bit_identical_across_serving_paths():
    summary = workloads_smoke(
        n_points=120, n_queries=60, shards=2, seed=3, sph_steps=3
    )
    assert summary["paths"] == ["solo", "fused", "sh2"]
    assert summary["dbscan"]["clusters"] >= 1
    assert summary["sph"]["steps"] == 3


# ----------------------------------------------------------------------
# canonical rows
# ----------------------------------------------------------------------
def test_canonical_rows_sorts_and_pads():
    pts = clustered_cloud(90, 29)
    session = SearchSession(pts)
    counts = session.count_in_radius(pts, 0.06).counts
    k = int(counts.max())
    res = session.range_search(pts, radius=0.06, k=k)
    idx, d2 = canonical_rows(res, k, len(pts))
    assert idx.shape == d2.shape == (len(pts), k)
    for i in range(len(pts)):
        c = counts[i]
        row = idx[i]
        assert (row[:c] >= 0).all() and (row[c:] == -1).all()
        assert (np.diff(row[:c]) > 0).all()  # strictly index-sorted
        assert np.isinf(d2[i, c:]).all()


# ----------------------------------------------------------------------
# engine-access discipline: the workloads package never bypasses the
# session/service surface
# ----------------------------------------------------------------------
def test_workloads_only_touch_the_session_and_service_surface():
    pkg = Path(__file__).resolve().parent.parent / "src" / "repro" / "workloads"
    forbidden = re.compile(
        r"repro\.core\.engine|repro\.serve\.shard"
        r"|RTNNEngine|ShardedEngine|repro\.optix|repro\.bvh"
    )
    offenders = []
    for path in sorted(pkg.glob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if forbidden.search(line):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert not offenders, (
        "workloads must drive the engine exclusively through "
        "SearchSession/SearchService:\n" + "\n".join(offenders)
    )
