"""Unit tests for AABB kernels and the two ray-AABB conditions."""

import numpy as np
import pytest
from hypothesis import given, strategies as st
import hypothesis.extra.numpy as hnp

from repro.geometry.aabb import (
    aabb_contains,
    aabb_surface_area,
    aabb_union,
    aabb_volume,
    aabbs_from_points,
    ray_aabb_intersect,
    scene_bounds,
)

finite = st.floats(-100, 100, allow_nan=False, allow_infinity=False)


def test_aabbs_from_points_width():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 2.0, 3.0]])
    lo, hi = aabbs_from_points(pts, 0.5)
    assert np.allclose(hi - lo, 1.0)
    assert np.allclose((lo + hi) / 2, pts)


def test_aabbs_from_points_rejects_bad_width():
    with pytest.raises(ValueError):
        aabbs_from_points(np.zeros((2, 3)), 0.0)
    with pytest.raises(ValueError):
        aabbs_from_points(np.zeros((2, 3)), -1.0)


def test_union_encloses_all():
    rng = np.random.default_rng(0)
    lo = rng.random((20, 3))
    hi = lo + rng.random((20, 3))
    ulo, uhi = aabb_union(lo, hi)
    assert (ulo <= lo).all() and (uhi >= hi).all()


def test_contains_boundary_closed():
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    on_face = np.array([[1.0, 0.5, 0.5]])
    assert aabb_contains(lo, hi, on_face).all()
    outside = np.array([[1.0 + 1e-12, 0.5, 0.5]])
    assert not aabb_contains(lo, hi, outside).any()


def test_volume_and_area():
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 2.0, 3.0]])
    assert np.isclose(aabb_volume(lo, hi), 6.0)
    assert np.isclose(aabb_surface_area(lo, hi), 22.0)


def test_volume_degenerate_is_zero():
    lo = np.array([[1.0, 1.0, 1.0]])
    hi = np.array([[0.0, 0.0, 0.0]])
    assert aabb_volume(lo, hi) == 0.0


def test_scene_bounds_pad():
    pts = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
    lo, hi = scene_bounds(pts, pad=0.5)
    assert np.allclose(lo, -0.5) and np.allclose(hi, 1.5)


def test_scene_bounds_empty_raises():
    with pytest.raises(ValueError):
        scene_bounds(np.zeros((0, 3)))


# ---------------------------------------------------------------------
# ray-AABB: condition 1 (slab hit within segment)
# ---------------------------------------------------------------------
def test_condition1_hit_within_segment():
    o = np.array([[-1.0, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    assert ray_aabb_intersect(o, d, 0.0, 10.0, lo, hi).all()
    # segment too short to reach the box
    assert not ray_aabb_intersect(o, d, 0.0, 0.5, lo, hi).any()


def test_condition1_behind_ray_misses():
    o = np.array([[2.0, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])  # box is behind
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    assert not ray_aabb_intersect(o, d, 0.0, 10.0, lo, hi).any()


# ---------------------------------------------------------------------
# ray-AABB: condition 2 (origin inside, even with tiny t_max)
# ---------------------------------------------------------------------
def test_condition2_origin_inside_short_ray():
    o = np.array([[0.5, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    assert ray_aabb_intersect(o, d, 0.0, 1e-16, lo, hi).all()


def test_short_ray_outside_misses():
    o = np.array([[1.5, 0.5, 0.5]])
    d = np.array([[1.0, 0.0, 0.0]])
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    assert not ray_aabb_intersect(o, d, 0.0, 1e-16, lo, hi).any()


def test_zero_direction_component_on_slab():
    # Origin exactly on a slab plane with zero direction there: the nan
    # guard must treat that axis as non-constraining.
    o = np.array([[0.0, 0.5, 0.5]])
    d = np.array([[0.0, 1.0, 0.0]])
    lo = np.array([[0.0, 0.0, 0.0]])
    hi = np.array([[1.0, 1.0, 1.0]])
    assert ray_aabb_intersect(o, d, 0.0, 10.0, lo, hi).all()


@given(
    origin=hnp.arrays(np.float64, (3,), elements=finite),
    half=st.floats(0.01, 10.0),
    center=hnp.arrays(np.float64, (3,), elements=finite),
)
def test_property_condition2_matches_containment(origin, half, center):
    """With short rays, intersection <=> origin-in-box, for any box."""
    lo = (center - half)[None, :]
    hi = (center + half)[None, :]
    o = origin[None, :]
    d = np.array([[1.0, 0.0, 0.0]])
    hit = ray_aabb_intersect(o, d, 0.0, 1e-16, lo, hi)[0]
    inside = bool(np.logical_and(o >= lo, o <= hi).all())
    if inside:
        assert hit  # Condition 2 is unconditional
    elif hit:
        # A Condition-1 hit with a 1e-16 segment needs the box entry
        # within 1e-16 of the origin — only possible on the boundary.
        gap = np.maximum(np.maximum(lo - o, o - hi), 0.0).max()
        assert gap <= 1e-12
