"""Serving-tier building blocks: fused-launch bit-identity, the
request queue's admission/coalescing rules, and deterministic faults.

The headline guarantee is the first test class: a request served
through :meth:`RTNNEngine.search_fused` inside a multi-request batch
returns *bit-identical* rows to a solo engine call — indices, counts,
and squared distances — for both search kinds and with optimizations
on or off. Everything the service promises rests on that.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.serve.batcher import MicroBatch, execute_batch
from repro.serve.faults import Fault, FaultInjector, TransientFault
from repro.serve.queue import AdmissionError, RequestQueue, SearchRequest
from repro.utils.rng import default_rng


def _world(seed=11, n=700):
    rng = default_rng(seed)
    return rng.random((n, 3))


def _groups(points, sizes=(24, 1, 40), seed=5):
    rng = default_rng(seed)
    out = []
    for s in sizes:
        ids = rng.integers(0, len(points), s)
        out.append(points[ids] + rng.normal(0, 0.02, (s, 3)))
    return out


# ----------------------------------------------------------------------
# search_fused: the bit-identity contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["knn", "range"])
@pytest.mark.parametrize("variant", ["full", "noopt"])
def test_fused_groups_bit_identical_to_solo_calls(kind, variant):
    points = _world()
    groups = _groups(points)
    cfg = (
        RTNNConfig()
        if variant == "full"
        else RTNNConfig(schedule=False, partition=False, bundle=False)
    )
    engine = RTNNEngine(points, config=cfg)
    fused = engine.search_fused(kind, groups, radius=0.15, k=6)
    assert len(fused) == len(groups)
    for g, res in zip(groups, fused):
        solo = RTNNEngine(points, config=cfg)
        if kind == "knn":
            direct = solo.knn_search(g, k=6, radius=0.15)
        else:
            direct = solo.range_search(g, radius=0.15, k=6)
        assert np.array_equal(res.indices, direct.indices)
        assert np.array_equal(res.counts, direct.counts)
        assert np.array_equal(res.sq_distances, direct.sq_distances)


def test_fused_handles_empty_group():
    points = _world(n=300)
    groups = [_groups(points, sizes=(12,))[0], np.empty((0, 3)), points[:5]]
    engine = RTNNEngine(points)
    fused = engine.search_fused("knn", groups, radius=0.2, k=4)
    assert [r.n_queries for r in fused] == [12, 0, 5]
    assert fused[1].indices.shape == (0, 4)


def test_fused_single_group_matches_plain_search():
    points = _world(n=400)
    (g,) = _groups(points, sizes=(30,))
    fused = RTNNEngine(points).search_fused("knn", [g], radius=0.15, k=5)
    direct = RTNNEngine(points).knn_search(g, k=5, radius=0.15)
    assert np.array_equal(fused[0].indices, direct.indices)
    assert np.array_equal(fused[0].sq_distances, direct.sq_distances)


def test_fused_report_records_group_structure():
    points = _world(n=300)
    groups = _groups(points, sizes=(10, 20))
    fused = RTNNEngine(points).search_fused("range", groups, radius=0.2, k=50)
    info = fused[0].report.extras["fused"]
    assert info["n_groups"] == 2
    assert list(info["group_sizes"]) == [10, 20]
    # both results share the single fused report
    assert fused[1].report is fused[0].report


def test_fused_rejects_unknown_kind():
    points = _world(n=50)
    with pytest.raises(ValueError, match="kind"):
        RTNNEngine(points).search_fused("ball", [points[:3]], radius=0.1, k=2)


# ----------------------------------------------------------------------
# MicroBatch
# ----------------------------------------------------------------------
def _req(rid, kind="knn", k=4, radius=0.1, n=3, fp="fp", **kw):
    return SearchRequest(
        rid=rid,
        kind=kind,
        queries=np.zeros((n, 3)),
        k=k,
        radius=radius,
        submitted_at=0.0,
        points_fp=fp,
        **kw,
    )


def test_microbatch_requires_compatible_requests():
    with pytest.raises(ValueError, match="at least one"):
        MicroBatch([])
    with pytest.raises(ValueError, match="incompatible"):
        MicroBatch([_req(0, k=4), _req(1, k=8)])
    with pytest.raises(ValueError, match="incompatible"):
        MicroBatch([_req(0, kind="knn"), _req(1, kind="range")])


def test_microbatch_shape_properties():
    batch = MicroBatch([_req(0, n=3), _req(1, n=7), _req(2, n=1)])
    assert batch.occupancy == 3
    assert batch.n_queries == 11
    assert batch.kind == "knn" and batch.k == 4 and batch.radius == 0.1
    assert [len(g) for g in batch.query_groups()] == [3, 7, 1]


def test_execute_batch_is_one_fused_engine_pass():
    class _Engine:
        def search_fused(self, kind, groups, radius, k, budget=None):
            return [(kind, len(g), radius, k) for g in groups]

    batch = MicroBatch([_req(0, n=2), _req(1, n=5)])
    out = execute_batch(_Engine(), batch)
    assert out == [("knn", 2, 0.1, 4), ("knn", 5, 0.1, 4)]


# ----------------------------------------------------------------------
# RequestQueue
# ----------------------------------------------------------------------
def test_queue_rejects_past_depth_with_retry_hint():
    q = RequestQueue(max_depth=2, retry_after_s=0.03)
    q.offer(_req(0))
    q.offer(_req(1))
    with pytest.raises(AdmissionError) as ei:
        q.offer(_req(2))
    assert ei.value.depth == 2
    assert ei.value.retry_after_s == pytest.approx(0.03)
    assert q.rejected == 1
    assert q.depth == 2


def test_pop_batch_coalesces_compatible_keeps_rest_in_place():
    q = RequestQueue(max_depth=16)
    q.offer(_req(0, k=4))
    q.offer(_req(1, k=8))     # incompatible with the seed
    q.offer(_req(2, k=4))
    batch, expired = q.pop_batch(now=0.0, max_requests=8, max_queries=100)
    assert [r.rid for r in batch] == [0, 2]
    assert expired == []
    # the incompatible request kept its place and seeds the next batch
    batch2, _ = q.pop_batch(now=0.0, max_requests=8, max_queries=100)
    assert [r.rid for r in batch2] == [1]
    assert q.depth == 0


def test_pop_batch_culls_cancelled_and_reports_expired():
    q = RequestQueue(max_depth=16)
    q.offer(_req(0, cancelled=True))
    q.offer(_req(1, deadline_at=1.0))
    q.offer(_req(2))
    batch, expired = q.pop_batch(now=2.0, max_requests=8, max_queries=100)
    assert [r.rid for r in batch] == [2]
    assert [r.rid for r in expired] == [1]


def test_pop_batch_bounds_total_queries_but_always_seeds():
    q = RequestQueue(max_depth=16)
    q.offer(_req(0, n=30))
    q.offer(_req(1, n=30))
    q.offer(_req(2, n=30))
    batch, _ = q.pop_batch(now=0.0, max_requests=8, max_queries=50)
    assert [r.rid for r in batch] == [0]       # seed taken even past bound
    batch2, _ = q.pop_batch(now=0.0, max_requests=8, max_queries=60)
    assert [r.rid for r in batch2] == [1, 2]


def test_drain_returns_live_requests_only():
    q = RequestQueue(max_depth=16)
    q.offer(_req(0))
    q.offer(_req(1, cancelled=True))
    drained = q.drain()
    assert [r.rid for r in drained] == [0]
    assert q.depth == 0


# ----------------------------------------------------------------------
# FaultInjector
# ----------------------------------------------------------------------
def test_scripted_faults_fire_in_order():
    inj = FaultInjector(script=[Fault.fail(), Fault.slow(0.5), Fault.ok()])
    with pytest.raises(TransientFault, match="launch 0"):
        inj.on_launch()
    assert inj.on_launch() == pytest.approx(0.5)
    assert inj.on_launch() == 0.0
    assert inj.on_launch() == 0.0            # past the script: clean
    assert inj.launches == 4
    assert inj.injected_errors == 1
    assert inj.injected_latency_s == pytest.approx(0.5)


def _fault_trace(seed, n=40):
    inj = FaultInjector(error_rate=0.5, seed=seed)
    trace = []
    for _ in range(n):
        try:
            inj.on_launch()
            trace.append(False)
        except TransientFault:
            trace.append(True)
    return trace


def test_rate_faults_deterministic_under_fixed_seed():
    a, b = _fault_trace(123), _fault_trace(123)
    assert a == b
    assert True in a and False in a          # the rate actually bites
    assert _fault_trace(124) != a            # and the seed matters


def test_dequeue_stall_is_fixed():
    inj = FaultInjector(stall_s=0.02)
    assert inj.on_dequeue() == pytest.approx(0.02)
    assert FaultInjector().on_dequeue() == 0.0
