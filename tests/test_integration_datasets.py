"""Cross-searcher integration on the paper's dataset families.

Every searcher must agree with the oracle on every dataset family — the
distributions (ground-plane, surface, fractal) stress different code
paths (capping, partition diversity, bundling).
"""

import numpy as np
import pytest

from repro.baselines import CuNSearch, FRNN, PCLOctree, brute_force_knn, brute_force_range
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import load

CASES = [("KITTI-12M", 0.03), ("Buddha-4.6M", 0.03), ("NBody-9M", 0.03)]


@pytest.fixture(scope="module", params=CASES, ids=[c[0] for c in CASES])
def dataset(request):
    name, scale = request.param
    pts, spec = load(name, scale=scale)
    q = pts[:: max(len(pts) // 150, 1)]
    return pts, q, spec.radius


def test_rtnn_knn_on_dataset(dataset):
    pts, q, r = dataset
    k = 8
    res = RTNNEngine(pts).knn_search(q, k=k, radius=r)
    ref = brute_force_knn(pts, q, k=k, radius=r)
    assert (res.counts == ref.counts).all()
    # atol covers the oracle's expanded-form |a|^2 - 2ab + |b|^2
    # cancellation noise at large coordinate scales (NBody box = 500)
    np.testing.assert_allclose(
        np.sort(res.sq_distances, axis=1),
        np.sort(ref.sq_distances, axis=1),
        rtol=1e-7,
        atol=1e-6,
    )


def test_rtnn_range_counts_on_dataset(dataset):
    pts, q, r = dataset
    res = RTNNEngine(pts).range_search(q, radius=r, k=10_000)
    ref = brute_force_range(pts, q, radius=r, k=10_000)
    assert (res.counts == ref.counts).all()


def test_equiv_volume_heuristic_on_dataset(dataset):
    """§5.1: the heuristic is 'sufficient for correctness' on the
    paper-family datasets — verify recall stays essentially exact."""
    pts, q, r = dataset
    k = 8
    res = RTNNEngine(
        pts, config=RTNNConfig(knn_aabb="equiv_volume")
    ).knn_search(q, k=k, radius=r)
    ref = brute_force_knn(pts, q, k=k, radius=r)
    recovered = sum(
        len(
            set(res.indices[i][: res.counts[i]].tolist())
            & set(ref.indices[i][: ref.counts[i]].tolist())
        )
        for i in range(len(q))
    )
    assert recovered / max(ref.counts.sum(), 1) >= 0.97


def test_baselines_agree_on_dataset(dataset):
    pts, q, r = dataset
    ref_r = brute_force_range(pts, q, radius=r, k=10_000)
    cu = CuNSearch(pts).range_search(q, r, k=10_000)
    pcl = PCLOctree(pts).range_search(q, r, k=10_000)
    assert (cu.counts == ref_r.counts).all()
    assert (pcl.counts == ref_r.counts).all()
    ref_k = brute_force_knn(pts, q, k=4, radius=r)
    fr = FRNN(pts).knn_search(q, 4, r)
    assert (fr.counts == ref_k.counts).all()
