"""Shader-unit and results-container tests."""

import numpy as np
import pytest

from repro.core.queues import KnnQueueBatch, RangeAccumulator
from repro.core.results import RunReport, SearchResults, empty_results
from repro.core.shaders import FirstHitShader, KnnShader, RangeShader
from repro.metrics.breakdown import Breakdown


@pytest.fixture()
def world():
    points = np.array(
        [[0.0, 0.0, 0.0], [0.1, 0.0, 0.0], [5.0, 5.0, 5.0]], dtype=np.float64
    )
    origins = np.array([[0.05, 0.0, 0.0], [4.9, 5.0, 5.0]], dtype=np.float64)
    query_ids = np.array([0, 1], dtype=np.int64)
    return points, origins, query_ids


def test_range_shader_sphere_test_filters(world):
    points, origins, qids = world
    acc = RangeAccumulator(2, k=4)
    shader = RangeShader(points, origins, qids, acc, radius=0.06, sphere_test=True)
    # query 0 offered point 1 at distance 0.05 (in) and point 2 (out)
    out = shader(np.array([0, 1]), np.array([1, 2]))
    assert out is None or len(out) == 0
    assert acc.count[0] == 1 and acc.count[1] == 0


def test_range_shader_no_test_accepts_everything(world):
    points, origins, qids = world
    acc = RangeAccumulator(2, k=4)
    shader = RangeShader(points, origins, qids, acc, radius=1e-9, sphere_test=False)
    shader(np.array([0]), np.array([1]))
    assert acc.count[0] == 1  # would have failed the sphere test


def test_range_shader_terminates_full_rays(world):
    points, origins, qids = world
    acc = RangeAccumulator(2, k=1)
    shader = RangeShader(points, origins, qids, acc, radius=10.0)
    term = shader(np.array([0]), np.array([0]))
    assert term.tolist() == [0]


def test_knn_shader_updates_queue(world):
    points, origins, qids = world
    queue = KnnQueueBatch(2, k=2, radius=10.0)
    shader = KnnShader(points, origins, qids, queue)
    assert shader(np.array([0, 1]), np.array([0, 2])) is None
    idx, counts, _ = queue.finalize()
    assert counts.tolist() == [1, 1]
    assert idx[0, 0] == 0 and idx[1, 0] == 2


def test_first_hit_shader_records_and_terminates():
    shader = FirstHitShader(n_queries=3, query_ids=np.array([2, 0, 1]))
    term = shader(np.array([0, 2]), np.array([7, 9]))
    assert term.tolist() == [0, 2]
    assert shader.first_hit.tolist() == [-1, 9, 7]


def test_search_results_helpers():
    idx, counts, d2 = empty_results(2, 3)
    idx[0, :2] = [5, 3]
    d2[0, :2] = [0.4, 0.1]
    counts[0] = 2
    res = SearchResults(idx, counts, d2)
    assert res.n_queries == 2 and res.k == 3
    assert res.neighbor_sets() == [{5, 3}, set()]
    s = res.sorted_by_distance()
    assert s.indices[0, :2].tolist() == [3, 5]
    assert s.sq_distances[0, 0] == 0.1


def test_run_report_modeled_time():
    rep = RunReport(breakdown=Breakdown(search=2.0, data=1.0))
    assert rep.modeled_time == 3.0


def test_pair_distance_scratch_is_bit_identical():
    from repro.core.shaders import _PairDistance, _pair_sq_dist

    rng = np.random.default_rng(9)
    a = rng.random((500, 3))
    b = rng.random((300, 3))
    dist = _PairDistance()
    # shrinking then growing batches exercise buffer reuse and regrowth
    for n in (200, 7, 450, 1):
        a_ids = rng.integers(0, len(a), n)
        b_ids = rng.integers(0, len(b), n)
        got = dist(a, a_ids, b, b_ids)
        ref = _pair_sq_dist(a[a_ids], b[b_ids])
        assert got.shape == ref.shape
        assert (got == ref).all()  # bit-identical, not approximately


def test_pair_distance_falls_back_off_float64():
    from repro.core.shaders import _PairDistance, _pair_sq_dist

    a = np.arange(12, dtype=np.float32).reshape(4, 3)
    b = np.arange(12, dtype=np.float64).reshape(4, 3)[::-1].copy()
    ids = np.array([0, 3, 1])
    dist = _PairDistance()
    got = dist(a, ids, b, ids)
    assert (got == _pair_sq_dist(a[ids], b[ids])).all()
