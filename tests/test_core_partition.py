"""Megacell and partition tests."""

import numpy as np
import pytest

from repro.core.partition import (
    EQUIV_VOLUME_COEFF,
    compute_megacells,
    default_cell_size,
    knn_aabb_width,
    make_partitions,
    make_spatial_shards,
)
from repro.geometry.morton import morton_order


def test_default_cell_size():
    assert default_cell_size(1.0, 8) == pytest.approx(1.0 / (np.sqrt(3) * 8))
    with pytest.raises(ValueError):
        default_cell_size(0.0)


def test_megacell_stops_at_k(rng=np.random.default_rng(0)):
    pts = rng.random((2000, 3))
    q = rng.random((100, 3))
    mc = compute_megacells(pts, q, radius=0.3, k=8)
    found = ~mc.capped
    # every uncapped megacell really holds >= k points
    assert (mc.count[found] >= 8).all()
    # and the next-smaller megacell would not (minimality): level 0 cells
    # may already satisfy it, so only check grown queries
    grown = found & (mc.level > 0)
    if grown.any():
        centers = mc.grid.cell_coords(q[grown])
        smaller = mc.grid.count_in_boxes(
            centers - (mc.level[grown] - 1)[:, None],
            centers + (mc.level[grown] - 1)[:, None],
        )
        assert (smaller < 8).all()


def test_megacell_sphere_bound():
    """All points of an uncapped megacell are within r of the query."""
    rng = np.random.default_rng(1)
    pts = rng.random((3000, 3))
    q = rng.random((50, 3))
    r = 0.25
    mc = compute_megacells(pts, q, radius=r, k=4)
    for i in np.flatnonzero(~mc.capped):
        c = mc.grid.cell_coords(q[i : i + 1])[0]
        g = mc.level[i]
        lo = mc.grid.lo + (c - g) * mc.grid.cell_size
        hi = mc.grid.lo + (c + g + 1) * mc.grid.cell_size
        inside = np.logical_and(pts >= lo, pts <= hi).all(axis=1)
        d = np.linalg.norm(pts[inside] - q[i], axis=1)
        if len(d):
            assert d.max() <= r + 1e-9


def test_all_capped_when_radius_tiny():
    pts = np.random.default_rng(0).random((100, 3))
    mc = compute_megacells(pts, pts[:10], radius=1e-6, k=4, cell_size=0.1)
    assert mc.capped.all()
    assert mc.max_level < 0


def test_empty_queries():
    pts = np.random.default_rng(0).random((100, 3))
    mc = compute_megacells(pts, np.zeros((0, 3)), radius=0.1, k=4)
    assert len(mc.level) == 0


def test_total_growth_steps_counted():
    pts = np.random.default_rng(0).random((500, 3))
    q = pts[:50]
    mc = compute_megacells(pts, q, radius=0.3, k=16)
    assert mc.total_growth_steps >= len(q)


def test_knn_aabb_width_modes():
    assert knn_aabb_width(1.0, "equiv_volume", 0, 1.0) == pytest.approx(
        EQUIV_VOLUME_COEFF
    )
    assert knn_aabb_width(1.0, "conservative", 0, 1.0) == pytest.approx(
        2 * np.sqrt(3)
    )
    with pytest.raises(ValueError):
        knn_aabb_width(1.0, "bogus", 0, 1.0)


def test_make_partitions_covers_all_queries():
    rng = np.random.default_rng(2)
    pts = rng.random((2000, 3))
    q = rng.random((300, 3))
    mc = compute_megacells(pts, q, radius=0.2, k=8)
    for kind in ("range", "knn"):
        parts = make_partitions(mc, kind, 0.2, 8)
        all_ids = np.concatenate([p.query_ids for p in parts])
        assert sorted(all_ids.tolist()) == list(range(300))
        widths = [p.aabb_width for p in parts]
        assert widths == sorted(widths)


def test_range_partitions_skip_sphere_test_only_uncapped():
    rng = np.random.default_rng(2)
    pts = rng.random((2000, 3))
    q = rng.random((300, 3))
    mc = compute_megacells(pts, q, radius=0.2, k=8)
    parts = make_partitions(mc, "range", 0.2, 8)
    for p in parts:
        assert p.sphere_test == p.capped


def test_capped_partition_uses_full_width():
    rng = np.random.default_rng(3)
    pts = rng.random((200, 3))
    q = rng.random((100, 3))
    mc = compute_megacells(pts, q, radius=0.05, k=50)  # K unreachable
    parts = make_partitions(mc, "range", 0.05, 50)
    capped = [p for p in parts if p.capped]
    assert capped and capped[0].aabb_width == pytest.approx(0.1)


def test_spatial_shards_partition_morton_runs():
    rng = np.random.default_rng(11)
    pts = rng.random((257, 3))
    shards = make_spatial_shards(pts, 4)
    assert [s.shard_id for s in shards] == [0, 1, 2, 3]
    # every point appears exactly once, and sizes are near-equal
    all_ids = np.concatenate([s.point_ids for s in shards])
    assert np.array_equal(np.sort(all_ids), np.arange(len(pts)))
    sizes = [s.n_points for s in shards]
    assert max(sizes) - min(sizes) <= 1
    # shards are contiguous runs along the Z-curve, ids sorted ascending
    order = morton_order(pts)
    offset = 0
    for s in shards:
        run = order[offset:offset + s.n_points]
        assert np.array_equal(s.point_ids, np.sort(run))
        offset += s.n_points
        # tight AABB: member extrema, not padded
        member = pts[s.point_ids]
        assert np.array_equal(s.lo, member.min(axis=0))
        assert np.array_equal(s.hi, member.max(axis=0))


def test_spatial_shards_edge_cases():
    pts = np.random.default_rng(12).random((5, 3))
    # one shard is the identity split
    [only] = make_spatial_shards(pts, 1)
    assert np.array_equal(only.point_ids, np.arange(5))
    # shard count clamps to the population
    assert len(make_spatial_shards(pts, 50)) == 5
    with pytest.raises(ValueError):
        make_spatial_shards(pts, 0)
    with pytest.raises(ValueError):
        make_spatial_shards(np.empty((0, 3)), 2)


def test_shrink_validation_and_effect():
    rng = np.random.default_rng(4)
    pts = rng.random((2000, 3))
    mc = compute_megacells(pts, pts[:100], radius=0.3, k=8)
    full = make_partitions(mc, "knn", 0.3, 8, shrink=1.0)
    small = make_partitions(mc, "knn", 0.3, 8, shrink=0.5)
    for a, b in zip(full, small):
        if not a.capped:
            assert b.aabb_width == pytest.approx(0.5 * a.aabb_width)
    with pytest.raises(ValueError):
        make_partitions(mc, "knn", 0.3, 8, shrink=0.0)
    with pytest.raises(ValueError):
        make_partitions(mc, "bogus", 0.3, 8)
