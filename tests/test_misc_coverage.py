"""Odds and ends: env plumbing, CLI experiment dispatch, helpers."""

import numpy as np
import pytest

from repro.experiments.harness import env_scale
from repro.experiments.fig05_coherence import grid_queries


def test_env_scale_default(monkeypatch):
    monkeypatch.delenv("REPRO_SCALE", raising=False)
    assert env_scale(0.5) == 0.5


def test_env_scale_parses(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "0.33")
    assert env_scale() == pytest.approx(0.33)


def test_env_scale_invalid_falls_back(monkeypatch):
    monkeypatch.setenv("REPRO_SCALE", "lots")
    assert env_scale(2.0) == 2.0


def test_grid_queries_raster_coherence(rng):
    pts = rng.random((2000, 3))
    q = grid_queries(pts, 1000, seed=1)
    assert q.shape == (1000, 3)
    # raster ordering: adjacent queries are much closer than random pairs
    adj = np.linalg.norm(np.diff(q, axis=0), axis=1).mean()
    shuffled = q[rng.permutation(len(q))]
    rand = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
    assert adj < rand


def test_cli_experiments_only_section(capsys):
    import os

    from repro.cli import main

    main(["experiments", "--only", "fig15", "--scale", "0.5"])
    out = capsys.readouterr().out
    assert "BVH construction time" in out
    assert os.environ.get("REPRO_SCALE") == "0.5"
    os.environ.pop("REPRO_SCALE", None)


def test_variants_registry():
    from repro import VARIANTS

    assert set(VARIANTS) == {"noopt", "sched", "sched+part", "sched+part+bundle"}
    assert not VARIANTS["noopt"].schedule
    assert VARIANTS["sched+part"].partition and not VARIANTS["sched+part"].bundle


def test_package_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
    assert repro.__version__ == "1.0.0"
