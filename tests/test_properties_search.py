"""Property-based end-to-end search tests (hypothesis).

The central invariant of the whole system: for *any* point cloud and
query set, RTNN (all optimizations on, conservative sizing) returns
exactly the brute-force neighbors — for both search types.
"""

import numpy as np
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.baselines import brute_force_knn, brute_force_range
from repro.core.engine import RTNNConfig, RTNNEngine

coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
clouds = hnp.arrays(np.float64, st.tuples(st.integers(2, 60), st.just(3)), elements=coords)


@settings(max_examples=25, deadline=None)
@given(pts=clouds, r=st.floats(0.05, 0.6), k=st.integers(1, 6), seed=st.integers(0, 10))
def test_property_knn_exact(pts, r, k, seed):
    q = np.random.default_rng(seed).random((10, 3))
    engine = RTNNEngine(pts, config=RTNNConfig(cache_sim=False))
    res = engine.knn_search(q, k=k, radius=r)
    ref = brute_force_knn(pts, q, k=k, radius=r)
    assert (res.counts == ref.counts).all()
    for i in range(len(q)):
        np.testing.assert_allclose(
            res.sq_distances[i][: res.counts[i]],
            ref.sq_distances[i][: ref.counts[i]],
            rtol=1e-9,
            atol=1e-12,
        )


@settings(max_examples=25, deadline=None)
@given(pts=clouds, r=st.floats(0.05, 0.6), seed=st.integers(0, 10))
def test_property_range_exact(pts, r, seed):
    q = np.random.default_rng(seed).random((10, 3))
    engine = RTNNEngine(pts, config=RTNNConfig(cache_sim=False))
    res = engine.range_search(q, radius=r, k=100)
    ref = brute_force_range(pts, q, radius=r, k=100)
    for i in range(len(q)):
        got = set(res.indices[i][: res.counts[i]].tolist())
        want = set(ref.indices[i][: ref.counts[i]].tolist())
        assert got == want


@settings(max_examples=15, deadline=None)
@given(
    pts=clouds,
    r=st.floats(0.05, 0.5),
    k=st.integers(1, 4),
    schedule=st.booleans(),
    partition=st.booleans(),
)
def test_property_variants_agree(pts, r, k, schedule, partition):
    """Optimizations must never change the KNN answer."""
    q = pts[: min(len(pts), 8)]
    base = RTNNEngine(pts, config=RTNNConfig(cache_sim=False))
    other = RTNNEngine(
        pts,
        config=RTNNConfig(
            schedule=schedule, partition=partition, bundle=partition,
            cache_sim=False,
        ),
    )
    a = base.knn_search(q, k=k, radius=r)
    b = other.knn_search(q, k=k, radius=r)
    assert (a.counts == b.counts).all()
    np.testing.assert_allclose(a.sq_distances, b.sq_distances, rtol=1e-9, atol=1e-12)
