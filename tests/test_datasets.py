"""Dataset generator tests: shapes, determinism, distribution facts."""

import numpy as np
import pytest

from repro.datasets import (
    DATASETS,
    kitti_like,
    load,
    nbody_like,
    paper_inputs,
    scan_like,
)


def test_kitti_shape_and_determinism():
    a = kitti_like(5000, seed=3)
    b = kitti_like(5000, seed=3)
    assert a.shape == (5000, 3)
    assert (a == b).all()
    assert not (a == kitti_like(5000, seed=4)).all()


def test_kitti_ground_plane_structure():
    """Mass near the ground, confined z-range (the paper's description)."""
    pts = kitti_like(20000, seed=0)
    z = pts[:, 2]
    xy_extent = pts[:, :2].max() - pts[:, :2].min()
    z_extent = z.max() - z.min()
    assert z_extent < 0.15 * xy_extent
    assert (np.abs(z) < 0.5).mean() > 0.5  # most points near the ground


@pytest.mark.parametrize("model", ["bunny", "dragon", "buddha"])
def test_scan_unit_cube_and_surface(model):
    pts = scan_like(8000, model=model, seed=0)
    assert pts.min() >= 0.0 and pts.max() <= 1.0 + 1e-12
    # surface sampling: points are far from filling the volume — the
    # fraction of occupied coarse voxels is low
    vox = np.unique((pts * 10).astype(int), axis=0)
    assert len(vox) < 700  # of 1000 possible


def test_scan_models_differ():
    a = scan_like(4000, model="bunny", seed=0)
    b = scan_like(4000, model="dragon", seed=0)
    assert not np.allclose(a, b)


def test_scan_rejects_unknown_model():
    with pytest.raises(ValueError):
        scan_like(100, model="teapot")


def test_nbody_clustered():
    """Soneira-Peebles output must be far more clustered than uniform:
    compare occupied-voxel counts at equal N."""
    pts = nbody_like(20000, seed=0)
    rng = np.random.default_rng(0)
    uni = rng.uniform(0, 500, (20000, 3))
    vox_n = len(np.unique((pts / 25).astype(int), axis=0))
    vox_u = len(np.unique((uni / 25).astype(int), axis=0))
    assert vox_n < 0.5 * vox_u


def test_nbody_validation():
    with pytest.raises(ValueError):
        nbody_like(0)
    with pytest.raises(ValueError):
        nbody_like(100, eta=1)
    with pytest.raises(ValueError):
        nbody_like(100, lam=0.5)


def test_registry_loads_all():
    for name in paper_inputs():
        pts, spec = load(name, scale=0.02)
        assert pts.shape[1] == 3
        assert len(pts) >= 16
        assert spec.radius > 0
        assert spec.paper_n_points > spec.n_points


def test_registry_scale():
    a, spec = load("Bunny-360K", scale=0.1)
    assert len(a) == int(spec.n_points * 0.1)


def test_registry_unknown():
    with pytest.raises(ValueError):
        load("KITTI-99M")


def test_registry_order_matches_paper():
    assert paper_inputs()[0] == "KITTI-1M"
    assert len(paper_inputs()) == 8
    assert set(DATASETS) == set(paper_inputs())


def test_generators_reject_bad_sizes():
    with pytest.raises(ValueError):
        kitti_like(0)
    with pytest.raises(ValueError):
        scan_like(0)
