"""CLI tests (in-process main() invocation)."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import write_ply


def test_datasets_list(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "KITTI-12M" in out and "Buddha-4.6M" in out


def test_datasets_generate(tmp_path, capsys):
    out = tmp_path / "bunny.ply"
    assert main(["datasets", "--generate", "Bunny-360K", "--scale", "0.02",
                 "--out", str(out)]) == 0
    from repro.datasets import read_ply

    pts = read_ply(out)
    assert len(pts) >= 16


def test_datasets_generate_requires_out():
    with pytest.raises(SystemExit):
        main(["datasets", "--generate", "Bunny-360K"])


def test_search_registry(capsys):
    assert main(["search", "--dataset", "Bunny-360K", "--scale", "0.05",
                 "--mode", "range", "-k", "8"]) == 0
    out = capsys.readouterr().out
    assert "modeled GPU time" in out
    assert "range search" in out


def test_search_from_file_with_output(tmp_path, capsys):
    pts = np.random.default_rng(0).random((300, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    res = tmp_path / "res.npz"
    assert main(["search", "--points", str(f), "--mode", "knn", "-k", "3",
                 "-r", "0.2", "--out", str(res), "--device", "RTX 2080 Ti",
                 "--no-partition"]) == 0
    data = np.load(res)
    assert data["indices"].shape == (300, 3)
    assert "RTX 2080 Ti" in capsys.readouterr().out


def test_search_repeat_reports_cache(capsys):
    assert main(["search", "--dataset", "Bunny-360K", "--scale", "0.05",
                 "--mode", "knn", "-k", "4", "--repeat", "3"]) == 0
    out = capsys.readouterr().out
    assert "batches: 3" in out
    assert "gas cache:" in out
    assert "misses" in out


def test_search_rejects_unknown_extension(tmp_path):
    f = tmp_path / "c.csv"
    f.write_text("1,2,3\n")
    with pytest.raises(SystemExit):
        main(["search", "--points", str(f)])


def test_experiments_unknown_section():
    with pytest.raises(SystemExit):
        main(["experiments", "--only", "fig99"])
