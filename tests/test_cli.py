"""CLI tests (in-process main() invocation)."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets import write_ply


def test_datasets_list(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "KITTI-12M" in out and "Buddha-4.6M" in out


def test_datasets_generate(tmp_path, capsys):
    out = tmp_path / "bunny.ply"
    assert main(["datasets", "--generate", "Bunny-360K", "--scale", "0.02",
                 "--out", str(out)]) == 0
    from repro.datasets import read_ply

    pts = read_ply(out)
    assert len(pts) >= 16


def test_datasets_generate_requires_out():
    with pytest.raises(SystemExit):
        main(["datasets", "--generate", "Bunny-360K"])


def test_search_registry(capsys):
    assert main(["search", "--dataset", "Bunny-360K", "--scale", "0.05",
                 "--mode", "range", "-k", "8"]) == 0
    out = capsys.readouterr().out
    assert "modeled GPU time" in out
    assert "range search" in out


def test_search_from_file_with_output(tmp_path, capsys):
    pts = np.random.default_rng(0).random((300, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    res = tmp_path / "res.npz"
    assert main(["search", "--points", str(f), "--mode", "knn", "-k", "3",
                 "-r", "0.2", "--out", str(res), "--device", "RTX 2080 Ti",
                 "--no-partition"]) == 0
    data = np.load(res)
    assert data["indices"].shape == (300, 3)
    assert "RTX 2080 Ti" in capsys.readouterr().out


def test_search_repeat_reports_cache(capsys):
    assert main(["search", "--dataset", "Bunny-360K", "--scale", "0.05",
                 "--mode", "knn", "-k", "4", "--repeat", "3"]) == 0
    out = capsys.readouterr().out
    assert "batches: 3" in out
    assert "gas cache:" in out
    assert "misses" in out


def test_search_rejects_unknown_extension(tmp_path):
    f = tmp_path / "c.csv"
    f.write_text("1,2,3\n")
    with pytest.raises(SystemExit):
        main(["search", "--points", str(f)])


def test_experiments_unknown_section():
    with pytest.raises(SystemExit):
        main(["experiments", "--only", "fig99"])


def test_search_missing_points_file_exits_2(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["search", "--points", "/nonexistent/cloud.ply"])
    assert ei.value.code == 2
    err = capsys.readouterr().err
    assert err.startswith("repro: error:")
    assert "--points" in err and "/nonexistent/cloud.ply" in err
    assert err.count("\n") == 1  # exactly one line


def test_search_missing_queries_file_exits_2(tmp_path, capsys):
    pts = np.random.default_rng(0).random((50, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    with pytest.raises(SystemExit) as ei:
        main(["search", "--points", str(f), "--queries", str(tmp_path / "q.ply")])
    assert ei.value.code == 2
    assert "--queries" in capsys.readouterr().err


def test_search_invalid_scalars_exit_2(tmp_path, capsys):
    pts = np.random.default_rng(0).random((50, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    for argv, needle in [
        (["search", "--points", str(f), "-k", "0"], "-k"),
        (["search", "--points", str(f), "-r", "-0.5"], "--radius"),
        (["search", "--points", str(f), "--repeat", "0"], "--repeat"),
    ]:
        with pytest.raises(SystemExit) as ei:
            main(argv)
        assert ei.value.code == 2
        assert needle in capsys.readouterr().err


def test_search_and_serve_share_one_validation_contract(tmp_path, capsys):
    # Satellite of the true-knn PR: k=0, radius=0.0 and negative radius
    # must exit 2 with one line on stderr naming the flag, identically
    # for `repro search` and `repro serve` (repro.api and the engine
    # raise the matching ValueError — see test_true_knn.py).
    pts = np.random.default_rng(0).random((50, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    cases = [
        (["-k", "0"], "-k"),
        (["-r", "0.0"], "--radius"),
        (["-r", "-0.5"], "--radius"),
    ]
    for command in ("search", "serve"):
        for extra, needle in cases:
            with pytest.raises(SystemExit) as ei:
                main([command, "--points", str(f), *extra])
            assert ei.value.code == 2, (command, extra)
            err = capsys.readouterr().err
            assert err.startswith("repro: error:"), (command, extra)
            assert needle in err, (command, extra)
            assert err.count("\n") == 1, (command, extra)


def test_search_true_knn_mode(tmp_path, capsys):
    pts = np.random.default_rng(3).random((250, 3))
    f = tmp_path / "c.ply"
    write_ply(f, pts)
    out_npz = tmp_path / "res.npz"
    assert main(["search", "--points", str(f), "--mode", "true-knn",
                 "-k", "5", "--out", str(out_npz)]) == 0
    out = capsys.readouterr().out
    assert "true-knn search" in out
    assert "r0=" in out and "(seeded)" in out
    assert "expansion:" in out and "converged" in out
    data = np.load(out_npz)
    # Unbounded exact kNN over n > k points: every row is full.
    assert (np.sort(data["counts"]) == 5).all()
    assert (data["indices"] >= 0).all()


def test_serve_true_knn_smoke_requires_shards(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["serve", "--dataset", "Bunny-360K", "--scale", "0.03",
              "--true-knn-smoke"])
    assert ei.value.code == 2
    assert "--shards" in capsys.readouterr().err


def test_serve_true_knn_smoke_gate(capsys):
    assert main(["serve", "--dataset", "Bunny-360K", "--scale", "0.05",
                 "--mode", "true-knn", "-k", "6", "--seed", "0",
                 "--shards", "4", "--true-knn-smoke",
                 "--max-rounds", "12"]) == 0
    out = capsys.readouterr().out
    assert "true-knn-smoke ok" in out
    assert "brute oracle" in out


def test_serve_rejects_nonpositive_load(capsys):
    with pytest.raises(SystemExit) as ei:
        main(["serve", "--dataset", "Bunny-360K", "--scale", "0.03",
              "--rps", "0"])
    assert ei.value.code == 2
    assert "rps" in capsys.readouterr().err


def test_serve_smoke_under_synthetic_load(capsys):
    assert main(["serve", "--dataset", "Bunny-360K", "--scale", "0.03",
                 "--mode", "knn", "-k", "4", "--rps", "250", "--clients", "3",
                 "--duration", "0.6", "--window-ms", "20", "--seed", "1",
                 "--check"]) == 0
    out = capsys.readouterr().out
    assert "serve check ok" in out
    assert "occupancy" in out
    assert "latency: p50" in out
