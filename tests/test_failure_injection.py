"""Failure injection: corrupted structures must be caught, not searched."""

import numpy as np
import pytest

from repro.bvh import build_lbvh, trace_batch, validate_bvh
from repro.geometry.aabb import aabbs_from_points
from repro.optix.shaders import CountingShader


@pytest.fixture()
def bvh():
    pts = np.random.default_rng(0).random((100, 3))
    lo, hi = aabbs_from_points(pts, 0.05)
    return build_lbvh(lo, hi, leaf_size=2)


def test_validate_catches_shrunk_node_bounds(bvh):
    bvh.node_lo[0] += 0.5  # root no longer encloses its primitives
    with pytest.raises(AssertionError):
        validate_bvh(bvh)


def test_validate_catches_broken_child_ranges(bvh):
    internal = np.flatnonzero(~bvh.is_leaf)[0]
    bvh.node_start[bvh.node_left[internal]] += 1
    with pytest.raises(AssertionError):
        validate_bvh(bvh)


def test_validate_catches_duplicate_prim(bvh):
    bvh.prim_order[0] = bvh.prim_order[1]
    with pytest.raises(AssertionError):
        validate_bvh(bvh)


def test_traversal_cycle_guard(bvh):
    """A topology cycle must raise, not hang."""
    internal = np.flatnonzero(~bvh.is_leaf)[0]
    bvh.node_left[internal] = 0  # child points back at the root
    rays = np.random.default_rng(1).random((8, 3))
    dirs = np.broadcast_to(np.array([1.0, 0.0, 0.0]), rays.shape).copy()
    with pytest.raises(RuntimeError, match="cycle"):
        trace_batch(bvh, rays, dirs, 0.0, 1e-16, CountingShader(8),
                    max_iterations=500)


def test_shader_exception_propagates(bvh):
    def broken(ray_ids, prim_ids):
        raise ZeroDivisionError("shader bug")

    # Rays at the primitive centers are guaranteed to hit.
    rays = 0.5 * (bvh.prim_lo[:8] + bvh.prim_hi[:8])
    dirs = np.broadcast_to(np.array([1.0, 0.0, 0.0]), rays.shape).copy()
    with pytest.raises(ZeroDivisionError):
        trace_batch(bvh, rays, dirs, 0.0, 1e-16, broken)
