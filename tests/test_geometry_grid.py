"""Uniform-grid binning tests."""

import numpy as np
import pytest

from repro.geometry.grid import UniformGrid


@pytest.fixture(scope="module")
def grid(request):
    rng = np.random.default_rng(7)
    pts = rng.random((500, 3))
    return UniformGrid(pts, cell_size=0.1), pts


def test_all_points_binned(grid):
    g, pts = grid
    assert g.cell_count.sum() == len(pts)
    assert sorted(g.point_order.tolist()) == list(range(len(pts)))


def test_cells_contain_their_points(grid):
    g, pts = grid
    for flat in np.flatnonzero(g.cell_count > 0)[:50]:
        ids = g.points_in_cell(flat)
        coords = g.cell_coords(pts[ids])
        assert (g.flatten(coords) == flat).all()


def test_cell_coords_clamped(grid):
    g, _ = grid
    far = np.array([[10.0, -5.0, 0.5]])
    c = g.cell_coords(far)
    assert (c >= 0).all() and (c < g.res).all()


def test_count_in_boxes_matches_bincount(grid):
    g, pts = grid
    rng = np.random.default_rng(1)
    lo = rng.integers(0, g.res, (30, 3))
    hi = np.minimum(lo + rng.integers(0, 4, (30, 3)), g.res - 1)
    got = g.count_in_boxes(lo, hi)
    for i in range(30):
        coords = g.cell_coords(pts)
        inside = np.logical_and(coords >= lo[i], coords <= hi[i]).all(axis=1)
        assert got[i] == inside.sum()


def test_full_box_counts_everything(grid):
    g, pts = grid
    full = g.count_in_boxes(np.zeros((1, 3), dtype=np.int64), (g.res - 1)[None, :])
    assert full[0] == len(pts)


def test_neighbor_cells_dropped_at_boundary(grid):
    g, _ = grid
    ids = g.neighbor_cell_ids(np.array([0, 0, 0]), reach=1)
    assert len(ids) == 8  # corner keeps only the in-grid octant


def test_memory_cap_coarsens():
    pts = np.random.default_rng(0).random((100, 3))
    g = UniformGrid(pts, cell_size=1e-4, max_cells=1000)
    assert g.n_cells <= 1000
    assert g.cell_size > 1e-4


def test_gather_cells(grid):
    g, pts = grid
    nonempty = np.flatnonzero(g.cell_count > 0)[:5]
    gathered = g.gather_cells(nonempty)
    assert len(gathered) == g.cell_count[nonempty].sum()


def test_rejects_bad_inputs():
    with pytest.raises(ValueError):
        UniformGrid(np.zeros((0, 3)), 0.1)
    with pytest.raises(ValueError):
        UniformGrid(np.zeros((5, 3)), -1.0)
    with pytest.raises(ValueError):
        UniformGrid(np.zeros((5, 2)), 0.1)
