"""The persistent GAS cache: unit behavior, engine integration, and
the warm-path bit-identity guarantee."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.cache import (
    DEFAULT_CAPACITY,
    GASCache,
    GASKey,
    fingerprint_array,
    quantize_half_width,
)
from repro.core.engine import RTNNEngine, VARIANTS


def _key(i: int) -> GASKey:
    return GASKey(points_fp="p", width_bits=i, leaf_size=4, order_fp="o")


# ----------------------------------------------------------------------
# unit: fingerprint / quantization
# ----------------------------------------------------------------------
def test_fingerprint_is_content_addressed():
    a = np.arange(12, dtype=np.float64).reshape(4, 3)
    b = a.copy()
    assert fingerprint_array(a) == fingerprint_array(b)
    b[0, 0] += 1.0
    assert fingerprint_array(a) != fingerprint_array(b)
    # dtype and shape are part of the content
    assert fingerprint_array(a) != fingerprint_array(a.astype(np.float32))
    assert fingerprint_array(a) != fingerprint_array(a.reshape(3, 4))


def test_quantize_merges_ulp_neighbors_but_not_distinct_widths():
    w = 0.1  # bit pattern ends ...1010, far from a 256-float boundary
    up = np.nextafter(w, np.inf)
    down = np.nextafter(w, -np.inf)
    assert quantize_half_width(w) == quantize_half_width(up)
    assert quantize_half_width(w) == quantize_half_width(down)
    # genuinely different widths stay apart
    assert quantize_half_width(0.1) != quantize_half_width(0.1001)
    assert quantize_half_width(0.1) != quantize_half_width(0.2)


# ----------------------------------------------------------------------
# unit: LRU cache
# ----------------------------------------------------------------------
def test_cache_hit_miss_and_stats():
    cache = GASCache(capacity=4)
    assert cache.lookup(_key(1)) is None
    cache.insert(_key(1), "gas1")
    assert cache.lookup(_key(1)) == "gas1"
    assert _key(1) in cache and len(cache) == 1
    assert cache.stats.as_dict() == {"hits": 1, "misses": 1, "evictions": 0}


def test_cache_evicts_least_recently_used():
    cache = GASCache(capacity=2)
    cache.insert(_key(1), "a")
    cache.insert(_key(2), "b")
    cache.lookup(_key(1))  # refresh 1; 2 is now LRU
    cache.insert(_key(3), "c")
    assert _key(2) not in cache
    assert _key(1) in cache and _key(3) in cache
    assert cache.stats.evictions == 1


def test_cache_capacity_validated():
    with pytest.raises(ValueError):
        GASCache(capacity=0)
    assert GASCache().capacity == DEFAULT_CAPACITY


def test_cache_consistent_under_concurrent_hammer():
    """Many threads racing lookup/insert/len must never corrupt the
    cache: the capacity bound holds at every observation, stats add up,
    and no operation raises (the serve worker thread and direct engine
    callers share one cache)."""
    cache = GASCache(capacity=8)
    n_threads, n_ops = 8, 400
    errors: list[BaseException] = []
    barrier = threading.Barrier(n_threads)

    def hammer(wid: int) -> None:
        try:
            barrier.wait()
            for i in range(n_ops):
                key = _key((wid * 13 + i) % 24)
                if cache.lookup(key) is None:
                    cache.insert(key, f"gas-{wid}-{i}")
                assert len(cache) <= 8
                if i % 50 == 49:
                    cache.lookup(_key(i % 24))
        except BaseException as exc:  # surfaced below; threads can't fail a test
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(w,)) for w in range(n_threads)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    assert len(cache) <= 8
    total_lookups = n_threads * (n_ops + n_ops // 50)
    assert cache.stats.hits + cache.stats.misses == total_lookups
    assert cache.stats.misses >= 24  # every distinct key missed at least once


def test_take_all_and_clear_keep_stats():
    cache = GASCache()
    cache.insert(_key(1), "a")
    cache.insert(_key(2), "b")
    taken = cache.take_all()
    assert [k.width_bits for k, _ in taken] == [1, 2]
    assert len(cache) == 0
    cache.insert(_key(3), "c")
    cache.lookup(_key(3))
    cache.clear()
    assert len(cache) == 0
    assert cache.stats.hits == 1  # cumulative across clear


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_cloud():
    rng = np.random.default_rng(42)
    return rng.random((600, 3)), rng.random((80, 3))


def test_second_search_skips_every_build(small_cloud):
    points, queries = small_cloud
    engine = RTNNEngine(points)
    cold = engine.knn_search(queries, k=4, radius=0.1)
    warm = engine.knn_search(queries, k=4, radius=0.1)
    assert cold.report.n_bvh_builds > 0
    assert cold.report.extras["gas_cache"]["hits"] == 0
    assert warm.report.n_bvh_builds == 0
    assert warm.report.extras["gas_cache"]["hits"] > 0
    assert warm.report.breakdown.bvh == 0.0
    assert cold.report.breakdown.bvh > 0.0


def test_widths_within_one_ulp_share_one_build(small_cloud):
    points, queries = small_cloud
    engine = RTNNEngine(points)
    r = 0.1  # half-width 0.1 sits away from a quantization boundary
    engine.range_search(queries, radius=r, k=8)
    builds_before = engine.gas_cache.stats.misses
    res = engine.range_search(queries, radius=np.nextafter(r, np.inf), k=8)
    # the 1-ULP perturbed radius resolves to the cached entry
    assert engine.gas_cache.stats.misses == builds_before
    assert res.report.n_bvh_builds == 0
    assert res.report.extras["gas_cache"]["hits"] > 0


@pytest.mark.parametrize("variant", list(VARIANTS))
@pytest.mark.parametrize("kind", ["knn", "range"])
def test_warm_search_bit_identical_to_cold_engine(small_cloud, kind, variant):
    """The cache must be invisible to results and counters: a warm
    second search equals a fresh engine's cold search, bit for bit."""
    points, queries = small_cloud
    held = RTNNEngine(points, config=VARIANTS[variant])
    fresh = RTNNEngine(points, config=VARIANTS[variant])
    if kind == "knn":
        held.knn_search(queries, k=5, radius=0.12)
        warm = held.knn_search(queries, k=5, radius=0.12)
        cold = fresh.knn_search(queries, k=5, radius=0.12)
    else:
        held.range_search(queries, radius=0.12, k=16)
        warm = held.range_search(queries, radius=0.12, k=16)
        cold = fresh.range_search(queries, radius=0.12, k=16)
    assert (warm.indices == cold.indices).all()
    assert (warm.counts == cold.counts).all()
    assert (warm.sq_distances[warm.indices >= 0]
            == cold.sq_distances[cold.indices >= 0]).all()
    assert warm.report.is_calls == cold.report.is_calls
    assert warm.report.traversal_steps == cold.report.traversal_steps
    assert warm.report.n_partitions == cold.report.n_partitions
    assert warm.report.n_bundles == cold.report.n_bundles


def test_update_points_same_shape_refits_cache(small_cloud):
    from repro.baselines import brute_force_knn

    points, queries = small_cloud
    engine = RTNNEngine(points)
    engine.knn_search(queries, k=4, radius=0.1)
    entries = len(engine.gas_cache)
    moved = points + 0.001
    refit_time = engine.update_points(moved)
    assert refit_time > 0.0
    assert len(engine.gas_cache) == entries  # warm, re-keyed
    res = engine.knn_search(queries, k=4, radius=0.1)
    # refit cost lands in the next run's bvh slot; no full rebuilds
    assert res.report.breakdown.bvh == pytest.approx(refit_time)
    assert res.report.n_bvh_builds == 0
    # refit bounds are exact: results still match the oracle
    ref = brute_force_knn(moved, queries, k=4, radius=0.1)
    assert (res.counts == ref.counts).all()


def test_update_points_new_shape_invalidates(small_cloud):
    points, queries = small_cloud
    engine = RTNNEngine(points)
    engine.knn_search(queries, k=4, radius=0.1)
    assert len(engine.gas_cache) > 0
    assert engine.update_points(points[:-10]) == 0.0
    assert len(engine.gas_cache) == 0
    res = engine.knn_search(queries, k=4, radius=0.1)
    assert res.report.n_bvh_builds > 0


def test_with_config_starts_cold(small_cloud):
    points, queries = small_cloud
    engine = RTNNEngine(points, cache_capacity=7)
    engine.knn_search(queries, k=4, radius=0.1)
    other = engine.with_config(schedule=False)
    assert other.gas_cache.capacity == 7
    assert len(other.gas_cache) == 0
    assert other.knn_search(queries, k=4, radius=0.1).report.n_bvh_builds > 0


def test_equal_point_sets_share_keys(small_cloud):
    """Content addressing: equal arrays in different engines produce
    the same GAS keys."""
    points, _ = small_cloud
    a = RTNNEngine(points)
    b = RTNNEngine(points.copy())
    assert a._gas_key(0.05) == b._gas_key(0.05)


def test_cold_run_emits_no_cache_span(small_cloud):
    """Pre-cache trace baselines must stay byte-identical: the
    gas_cache span only appears once there is a hit to report."""
    from repro.obs import RecordingTracer

    points, queries = small_cloud
    tracer = RecordingTracer()
    engine = RTNNEngine(points, tracer=tracer)
    engine.knn_search(queries, k=4, radius=0.1)
    assert tracer.find("gas_cache") == []
    engine.knn_search(queries, k=4, radius=0.1)
    spans = tracer.find("gas_cache")
    assert len(spans) == 1
    assert spans[0].counters["gas_cache_hits"] > 0
    assert spans[0].counters["gas_cache_misses"] == 0
