"""Cost-model tests: device scaling and the paper's cost ratios."""

import numpy as np
import pytest

from repro.gpu.costmodel import CostModel, IsKind, IS_WARP_CYCLES, RT_WARP_CYCLES
from repro.gpu.device import RTX_2080, RTX_2080TI


def test_build_time_linear():
    cm = CostModel(RTX_2080)
    t1 = cm.bvh_build_time(1000)
    t2 = cm.bvh_build_time(2000)
    assert np.isclose(t2, 2 * t1)


def test_faster_device_builds_faster():
    assert CostModel(RTX_2080TI).bvh_build_time(10**6) < CostModel(
        RTX_2080
    ).bvh_build_time(10**6)


def test_is_cost_ordering():
    """FIRST_HIT < RANGE_FAST < RANGE_TEST < KNN (paper's cost ladder)."""
    cm = CostModel(RTX_2080)
    costs = [
        cm.is_cost_per_call(k)
        for k in (IsKind.FIRST_HIT, IsKind.RANGE_FAST, IsKind.RANGE_TEST, IsKind.KNN)
    ]
    assert costs == sorted(costs)


def test_knn_is_3_to_6x_range_test():
    """§6.3: KNN IS is 3-6x the sphere-testing range IS."""
    ratio = IS_WARP_CYCLES[IsKind.KNN] / IS_WARP_CYCLES[IsKind.RANGE_TEST]
    assert 1.5 <= ratio <= 6.0


def test_fast_is_much_cheaper_than_test():
    """App. A: skipping the sphere test is a big per-call saving."""
    ratio = IS_WARP_CYCLES[IsKind.RANGE_TEST] / IS_WARP_CYCLES[IsKind.RANGE_FAST]
    assert ratio >= 3.0


def test_is_call_more_expensive_than_traversal_step():
    """§3.1: Step 2 an order of magnitude costlier than Step 1."""
    assert IS_WARP_CYCLES[IsKind.KNN] / RT_WARP_CYCLES >= 10


def test_mem_time_decreases_with_hits():
    cm = CostModel(RTX_2080)
    assert cm.mem_time(1000, 0.9, 0.9) < cm.mem_time(1000, 0.1, 0.1)


def test_transfer_time():
    cm = CostModel(RTX_2080)
    assert np.isclose(cm.transfer_time(12_000_000_000), 1.0)


def test_launch_cost_without_tracer_uses_defaults():
    from repro.bvh.traverse import TraceResult

    trace = TraceResult(
        steps=np.array([10, 10]),
        is_calls=np.array([2, 2]),
        prim_tests_per_ray=np.array([0, 0]),
        iterations=10,
        warp_traversal_steps=10,
        warp_is_steps=2,
        prim_test_warp_steps=0,
        node_transactions=20,
        prim_transactions=4,
        n_rays=2,
        warp_size=32,
    )
    cm = CostModel(RTX_2080)
    cost = cm.launch_cost(trace, IsKind.KNN)
    assert cost.total > 0
    assert 0 <= cost.stall_fraction <= 1
    assert cost.l1_hit_rate == pytest.approx(0.55)
