"""CON/DET rule families: each rule fires on a broken fixture and
stays silent on the corrected one, plus the project-wide pass itself
(cross-module call graph, execution contexts, injected-bug e2e)."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import AnalysisConfig, analyze_paths, analyze_source
from repro.analysis.engine import ModuleContext
from repro.analysis.project import (
    CTX_EVENT_LOOP,
    CTX_HOT_PATH,
    CTX_THREADED,
    ProjectContext,
)

REPO = Path(__file__).resolve().parent.parent

#: hot-path fixture module: engine entry-point names classify here
HOT = "repro/core/fixture.py"
SERVE = "repro/serve/fixture.py"


def ids(findings):
    return [f.rule_id for f in findings]


def run(source, rel_path=HOT, **cfg):
    return analyze_source(
        textwrap.dedent(source), rel_path, AnalysisConfig(**cfg)
    )


# ----------------------------------------------------------------------
# CON001 — unguarded shared write from a threaded context
# ----------------------------------------------------------------------
LOCKED_CLASS = """
    import threading

    class Cache:
        def __init__(self):
            self._lock = threading.Lock()
            self._entries = {{}}

        def insert(self, key, value):
            {body}

    def fan_out(pool, cache):
        return pool.submit(cache.insert, "k", 1).result()
"""


def test_con001_fires_on_unguarded_write():
    findings = run(
        LOCKED_CLASS.format(body="self._entries[key] = value"),
        select=("CON",),
    )
    assert ids(findings) == ["CON001"]
    assert "Cache.insert" in findings[0].message
    assert "_lock" in findings[0].message


def test_con001_silent_when_lock_held():
    findings = run(
        LOCKED_CLASS.format(
            body="with self._lock:\n                self._entries[key] = value"
        ),
        select=("CON",),
    )
    assert findings == []


def test_con001_silent_without_threaded_context():
    # Same unguarded write, but nothing submits the method to a pool.
    src = """
        import threading

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def insert(self, key, value):
                self._entries[key] = value
    """
    assert run(src, select=("CON",)) == []


def test_con001_fires_on_module_global_mutation():
    src = """
        _RESULTS = []

        def job(x):
            _RESULTS.append(x)

        def fan_out(pool):
            return pool.submit(job, 1).result()
    """
    findings = run(src, select=("CON",))
    assert ids(findings) == ["CON001"]
    assert "_RESULTS" in findings[0].message


# ----------------------------------------------------------------------
# CON002 — await while holding a threading lock
# ----------------------------------------------------------------------
def test_con002_fires_on_await_under_thread_lock():
    src = """
        import threading

        _LOCK = threading.Lock()

        async def push(q):
            with _LOCK:
                await q.put(1)
    """
    findings = run(src, rel_path=SERVE, select=("CON",))
    assert ids(findings) == ["CON002"]


def test_con002_silent_when_released_before_await():
    src = """
        import threading

        _LOCK = threading.Lock()

        async def push(q, items):
            with _LOCK:
                items.append(1)
            await q.put(1)
    """
    assert run(src, rel_path=SERVE, select=("CON",)) == []


def test_con002_silent_for_asyncio_lock():
    src = """
        import asyncio

        _LOCK = asyncio.Lock()

        async def push(q):
            async with _LOCK:
                await q.put(1)
    """
    assert run(src, rel_path=SERVE, select=("CON",)) == []


# ----------------------------------------------------------------------
# CON003 — inconsistent lock acquisition order
# ----------------------------------------------------------------------
ORDERED = """
    import threading

    _A = threading.Lock()
    _B = threading.Lock()

    def flush():
        with _A:
            with _B:
                pass

    def rekey():
        with {first}:
            with {second}:
                pass
"""


def test_con003_fires_on_reversed_order():
    findings = run(
        ORDERED.format(first="_B", second="_A"), select=("CON",)
    )
    assert ids(findings) == ["CON003", "CON003"]
    assert "reverse order" in findings[0].message


def test_con003_silent_on_consistent_order():
    assert run(ORDERED.format(first="_A", second="_B"), select=("CON",)) == []


# ----------------------------------------------------------------------
# CON004 — module-level state rebound after import
# ----------------------------------------------------------------------
def test_con004_fires_on_global_rebind():
    src = """
        _CONFIG = {"shards": 1}

        def reload_config(d):
            global _CONFIG
            _CONFIG = d
    """
    findings = run(src, select=("CON",))
    assert ids(findings) == ["CON004"]
    assert "_CONFIG" in findings[0].message


def test_con004_silent_without_global_statement():
    src = """
        _CONFIG = {"shards": 1}

        def load_config(d):
            config = dict(_CONFIG)
            config.update(d)
            return config
    """
    assert run(src, select=("CON",)) == []


# ----------------------------------------------------------------------
# DET001 — unseeded RNG on a classified path
# ----------------------------------------------------------------------
def test_det001_fires_on_unseeded_default_rng():
    src = """
        import numpy as np

        def knn_search(queries):
            rng = np.random.default_rng()
            return rng.random(queries.shape[0])
    """
    findings = run(src, select=("DET",))
    assert ids(findings) == ["DET001"]
    assert findings[0].line == 5


def test_det001_fires_on_legacy_global_rng():
    src = """
        import numpy as np

        def knn_search(queries):
            return np.random.random(queries.shape[0])
    """
    assert ids(run(src, select=("DET",))) == ["DET001"]


def test_det001_silent_when_seeded():
    src = """
        import numpy as np

        def knn_search(queries, seed=0):
            rng = np.random.default_rng(seed)
            return rng.random(queries.shape[0])
    """
    assert run(src, select=("DET",)) == []


def test_det001_silent_off_the_classified_paths():
    # Unclassified helper: nothing reaches it from an engine/serve root.
    src = """
        import numpy as np

        def scratch_helper(n):
            return np.random.default_rng().random(n)
    """
    assert run(src, select=("DET",)) == []


# ----------------------------------------------------------------------
# DET002 — wall-clock flowing into values
# ----------------------------------------------------------------------
def test_det002_fires_on_clock_into_result():
    src = """
        import time

        def knn_search(queries):
            return {"count": time.time()}
    """
    findings = run(src, select=("DET",))
    assert ids(findings) == ["DET002"]
    assert "return value" in findings[0].message


def test_det002_silent_for_span_timing():
    src = """
        import time

        def knn_search(queries, out):
            t0 = time.perf_counter()
            out.run(queries)
            elapsed_s = time.perf_counter() - t0
            return elapsed_s
    """
    assert run(src, select=("DET",)) == []


# ----------------------------------------------------------------------
# DET003 — unordered iteration reaching output
# ----------------------------------------------------------------------
def test_det003_fires_on_set_iteration_into_output():
    src = """
        def range_search(cells):
            out = []
            for c in set(cells):
                out.append(c)
            return out
    """
    findings = run(src, select=("DET",))
    assert ids(findings) == ["DET003"]


def test_det003_silent_when_sorted():
    src = """
        def range_search(cells):
            out = []
            for c in sorted(set(cells)):
                out.append(c)
            return out
    """
    assert run(src, select=("DET",)) == []


# ----------------------------------------------------------------------
# DET004 — as_completed without index re-merge
# ----------------------------------------------------------------------
def test_det004_fires_on_completion_order_append():
    src = """
        from concurrent.futures import as_completed

        def merge(futures):
            out = []
            for fut in as_completed(futures):
                out.append(fut.result())
            return out
    """
    findings = run(src, select=("DET",))
    assert ids(findings) == ["DET004"]


def test_det004_silent_with_index_remerge():
    src = """
        from concurrent.futures import as_completed

        def merge(futures, index):
            out = [None] * len(futures)
            for fut in as_completed(futures):
                out[index[fut]] = fut.result()
            return out
    """
    assert run(src, select=("DET",)) == []


# ----------------------------------------------------------------------
# project pass: contexts, cross-module graph, e2e injection
# ----------------------------------------------------------------------
def _project(sources: dict[str, str]) -> ProjectContext:
    config = AnalysisConfig()
    return ProjectContext.build(
        [
            ModuleContext.from_source(textwrap.dedent(src), rel, config)
            for rel, src in sorted(sources.items())
        ]
    )


def test_contexts_classify_threaded_event_loop_and_hot():
    proj = _project(
        {
            "repro/core/engine_fixture.py": """
                def knn_search(queries):
                    return _narrow(queries)

                def _narrow(queries):
                    return queries
            """,
            "repro/serve/loop_fixture.py": """
                async def handle(req):
                    return _shape(req)

                def _shape(req):
                    return req

                def fan_out(pool, payload):
                    return pool.submit(_job, payload)

                def _job(payload):
                    return payload
            """,
        }
    )
    by_name = {fn.qualname: fn for fn in proj.functions.values()}
    hot = by_name["repro/core/engine_fixture.py::_narrow"]
    assert CTX_HOT_PATH in hot.contexts
    looped = by_name["repro/serve/loop_fixture.py::_shape"]
    assert CTX_EVENT_LOOP in looped.contexts
    threaded = by_name["repro/serve/loop_fixture.py::_job"]
    assert CTX_THREADED in threaded.contexts
    assert threaded.in_context()


def test_threaded_context_propagates_across_modules():
    # The submit() is in one module, the mutation two hops away in
    # another: only the whole-project pass can connect them.
    proj = _project(
        {
            "repro/core/store_fixture.py": """
                import threading

                class Store:
                    def __init__(self):
                        self._lock = threading.Lock()
                        self._rows = []

                    def add(self, row):
                        self._rows.append(row)
            """,
            "repro/serve/driver_fixture.py": """
                def submit_all(pool, store, rows):
                    return [pool.submit(store.add, r) for r in rows]
            """,
        }
    )
    by_name = {fn.qualname: fn for fn in proj.functions.values()}
    add = by_name["repro/core/store_fixture.py::Store.add"]
    assert CTX_THREADED in add.contexts
    assert [c.name for c in proj.lock_owning_classes()] == ["Store"]


def test_e2e_injected_bugs_caught_with_file_and_line(tmp_path):
    """Acceptance: a deliberately injected unlocked write and an
    unseeded RNG are both caught, each at the right file and line."""
    core = tmp_path / "repro" / "core"
    core.mkdir(parents=True)
    cache_py = core / "cache_fixture.py"
    cache_py.write_text(
        "import threading\n"
        "\n"
        "\n"
        "class ShardCache:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self._entries = {}\n"
        "\n"
        "    def insert(self, key, value):\n"
        "        self._entries[key] = value\n"          # line 10
    )
    engine_py = core / "engine_fixture.py"
    engine_py.write_text(
        "import numpy as np\n"
        "\n"
        "\n"
        "def knn_search(queries, pool, cache):\n"
        "    pool.submit(cache.insert, 0, queries)\n"
        "    rng = np.random.default_rng()\n"           # line 6
        "    return rng.random(queries.shape[0])\n"
    )
    config = AnalysisConfig(select=("CON", "DET"))
    findings, n_modules = analyze_paths([core], config, root=tmp_path)
    assert n_modules == 2
    got = {(f.rule_id, f.path, f.line) for f in findings}
    assert ("CON001", "repro/core/cache_fixture.py", 10) in got
    assert ("DET001", "repro/core/engine_fixture.py", 6) in got


# ----------------------------------------------------------------------
# select / ignore interaction with the new families
# ----------------------------------------------------------------------
MIXED = """
    import numpy as np

    _CONFIG = {"n": 1}

    def knn_search(queries):
        global _CONFIG
        _CONFIG = {"n": 2}
        return np.random.default_rng().random(3)
"""


def test_select_prefix_scopes_to_one_family():
    assert ids(run(MIXED, select=("CON",))) == ["CON004"]
    assert ids(run(MIXED, select=("DET",))) == ["DET001"]


def test_ignore_prefix_beats_select():
    assert run(MIXED, select=("CON",), ignore=("CON00",)) == []


def test_exact_rule_id_select():
    assert ids(run(MIXED, select=("DET001",))) == ["DET001"]


# ----------------------------------------------------------------------
# analyzer self-determinism: byte-identical output across hash seeds
# ----------------------------------------------------------------------
def test_analyzer_output_is_byte_identical_across_hash_seeds():
    def run_once(hashseed):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis",
                "src/repro/core", "src/repro/serve",
                "--format", "json", "--root", str(REPO),
            ],
            cwd=REPO,
            capture_output=True,
            text=True,
            env={"PYTHONHASHSEED": hashseed, "PYTHONPATH": "src", "PATH": ""},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        return proc.stdout

    first, second = run_once("0"), run_once("424242")
    assert first == second
    json.loads(first)  # and it is valid JSON
