"""Experiment runners at tiny scale: structure + key paper shapes."""

import numpy as np
import pytest

from repro.experiments import (
    approx_ablation,
    fig05_coherence,
    fig06_microarch,
    fig07_aabb_time,
    fig08_is_calls,
    fig11_speedup,
    fig12_breakdown,
    fig13_ablation,
    fig14_sensitivity,
    fig15_bvh_build,
    fig16_partition_dist,
    micro_step_costs,
)
from repro.experiments.harness import annotate_speedup, format_table


def test_format_table_mixed_keys():
    s = format_table([{"a": 1.0}, {"a": 2.0, "b": "x"}])
    assert "a" in s and "b" in s


def test_annotate_speedup():
    assert annotate_speedup(1.0, 2.0) == "2.0x"
    assert annotate_speedup(1.0, 2.0, oom=True) == "OOM"
    assert annotate_speedup(1.0, 5000.0) == "DNF"


def test_fig05_ordered_faster():
    rows = fig05_coherence.run(sizes=(2000,), scale=1.0)
    assert rows[0]["slowdown_random"] > 1.0


def test_fig06_shapes():
    rows = fig06_microarch.run(n=3000, scale=1.0)
    by = {r["mapping"]: r for r in rows}
    assert by["ordered"]["l1_hit_rate"] > by["random"]["l1_hit_rate"]
    assert by["ordered"]["sm_occupancy"] > by["random"]["sm_occupancy"]


def test_fig07_time_grows_with_width():
    rows = fig07_aabb_time.run(widths=(0.5, 4.0, 16.0), n=2000, scale=1.0)
    times = [r["search_ms"] for r in rows]
    assert times[0] < times[-1]


def test_fig08_superlinear():
    rows = fig08_is_calls.run(widths=(0.5, 2.0, 8.0), n=2000, scale=1.0)
    exp = fig08_is_calls.growth_exponent(
        [r["aabb_width"] for r in rows], [r["is_calls"] for r in rows]
    )
    assert exp > 1.2  # super-linear (cubic until scene saturation)


def test_fig11_rows_and_annotations():
    rows = fig11_speedup.run(datasets=["Bunny-360K"], scale=0.15)
    assert len(rows) == 2
    for r in rows:
        assert r["rtnn_ms"] > 0
    summary = fig11_speedup.summarize(rows)
    assert all(v > 0 for v in summary.values())


def test_fig12_fractions_sum():
    rows = fig12_breakdown.run(datasets=["Bunny-360K"], scale=0.15)
    for r in rows:
        total = sum(r[f"{c}_frac"] for c in ("data", "opt", "bvh", "fs", "search"))
        assert total == pytest.approx(1.0)
    knn = next(r for r in rows if r["type"] == "knn")
    rng_ = next(r for r in rows if r["type"] == "range")
    # KNN spends a larger search fraction than range (paper §6.2)
    assert knn["search_frac"] > rng_["search_frac"]


def test_fig13_noopt_slowest():
    rows = fig13_ablation.run(datasets=("KITTI-12M",), scale=0.05, kinds=("knn",))
    r = rows[0]
    assert r["noopt"] > r["sched"]
    assert r["oracle"] <= min(r["sched"], r["sched+part+bundle"]) + 1e-12


def test_fig14_sweeps_run():
    rows_r = fig14_sensitivity.run_radius_sweep(radii=(0.1, 0.3), scale=0.08)
    assert len(rows_r) == 2
    rows_k = fig14_sensitivity.run_k_sweep(ks=(1, 8), scale=0.08)
    assert "pcloctree_x" in rows_k[0] and "pcloctree_x" not in rows_k[1]


def test_fig15_linear_fit():
    # Wall-clock timing is load-sensitive (CI contention); min-of-5
    # repeats plus a modest threshold keeps the check meaningful
    # without being flaky. The benchmark suite asserts the tight bound.
    rows = fig15_bvh_build.run(sizes=(2000, 4000, 8000, 16000), scale=1.0, repeats=5)
    f = fig15_bvh_build.fit(rows)
    assert f.r_squared > 0.9
    assert f.slope > 0
    fm = fig15_bvh_build.fit(rows, column="modeled_ms")
    assert fm.r_squared > 0.999999  # modeled time exactly linear


def test_fig16_inverse_correlation():
    rows = fig16_partition_dist.run(dataset="KITTI-12M", scale=0.1)
    assert len(rows) >= 3
    rho = fig16_partition_dist.correlation(rows)
    assert rho < 0  # inverse correlation (paper's Fig. 16)


def test_micro_cost_ratios():
    ratios = micro_step_costs.cost_ratios()
    assert ratios["k1_over_k3_fast"] > ratios["k1_over_k3_test"]
    assert 1.5 <= ratios["knn_over_range_test"] <= 6.0


def test_micro_tmax_sweep():
    rows = micro_step_costs.run_tmax_sweep(
        t_maxes=(1e-16, 1.0), n=1500, scale=1.0
    )
    assert rows[1]["is_calls"] > rows[0]["is_calls"]  # long rays: false positives
    assert all(r["results_match_short_ray"] for r in rows)  # same answers


def test_approx_elide_bound():
    out = approx_ablation.run_elide_sphere_test(dataset="Bunny-360K", scale=0.2)
    assert out["bound_holds"]
    assert out["approx_ms"] < out["exact_ms"]


def test_approx_shrink_recall_monotone():
    rows = approx_ablation.run_shrunk_aabb(
        shrink_factors=(1.0, 0.5), dataset="Bunny-360K", k=4, scale=0.2
    )
    assert rows[0]["recall"] >= rows[1]["recall"]
    assert rows[1]["modeled_ms"] <= rows[0]["modeled_ms"] * 1.05
