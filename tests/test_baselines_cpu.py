"""CPU reference searcher tests (FLANN k-d tree, CompactNSearch grid)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import brute_force_knn, brute_force_range
from repro.baselines.cpu import CompactNSearch, CpuSpec, FlannKdTree, build_kdtree


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(11)
    return rng.random((900, 3)), rng.random((250, 3)), 0.12


def test_kdtree_structure(setup):
    pts, _, _ = setup
    t = build_kdtree(pts, leaf_size=8)
    assert sorted(t.order.tolist()) == list(range(len(pts)))
    leaf = t.axis < 0
    covered = np.zeros(len(pts), dtype=int)
    for i in np.flatnonzero(leaf):
        covered[t.order[t.start[i]:t.end[i]]] += 1
        assert t.end[i] - t.start[i] <= 8
    assert (covered == 1).all()
    # internal nodes: left subtree <= split <= right subtree on the axis
    for i in np.flatnonzero(~leaf):
        ax = t.axis[i]
        l, r = t.left[i], t.right[i]
        lmax = pts[t.order[t.start[l]:t.end[l]], ax].max()
        rmin = pts[t.order[t.start[r]:t.end[r]], ax].min()
        assert lmax <= t.split[i] + 1e-12
        assert rmin >= t.split[i] - 1e-12 or np.isclose(rmin, t.split[i])


def test_kdtree_knn_exact(setup):
    pts, q, r = setup
    res = FlannKdTree(pts).knn_search(q, k=5, radius=r)
    ref = brute_force_knn(pts, q, k=5, radius=r)
    assert (res.counts == ref.counts).all()
    a = np.where(np.isinf(res.sq_distances), -1, res.sq_distances)
    b = np.where(np.isinf(ref.sq_distances), -1, ref.sq_distances)
    np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)


def test_kdtree_range_exact(setup):
    pts, q, r = setup
    res = FlannKdTree(pts).range_search(q, radius=r, k=4000)
    ref = brute_force_range(pts, q, radius=r, k=4000)
    assert (res.counts == ref.counts).all()


def test_kdtree_prunes(setup):
    """The k-d tree must visit far fewer nodes than exist."""
    pts, q, r = setup
    kd = FlannKdTree(pts)
    res = kd.knn_search(q, k=5, radius=r)
    assert res.report.traversal_steps < kd.tree.n_nodes * len(q) * 0.2
    assert res.report.modeled_time > 0
    assert res.report.device == "8-core CPU"


def test_compactnsearch_exact(setup):
    pts, q, r = setup
    res = CompactNSearch(pts).range_search(q, radius=r, k=4000)
    ref = brute_force_range(pts, q, radius=r, k=4000)
    assert (res.counts == ref.counts).all()


def test_cpu_spec_scaling(setup):
    pts, q, r = setup
    fast = CpuSpec(name="16c", n_cores=16)
    a = FlannKdTree(pts, cpu=CpuSpec()).knn_search(q, 3, r)
    b = FlannKdTree(pts, cpu=fast).knn_search(q, 3, r)
    assert b.report.modeled_time < a.report.modeled_time


def test_kdtree_validation():
    with pytest.raises(ValueError):
        build_kdtree(np.zeros((4, 3)), leaf_size=0)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(2, 120),
    k=st.integers(1, 5),
    r=st.floats(0.05, 0.7),
    seed=st.integers(0, 50),
)
def test_property_kdtree_matches_brute(n, k, r, seed):
    rng = np.random.default_rng(seed)
    pts = rng.random((n, 3))
    q = rng.random((8, 3))
    res = FlannKdTree(pts, leaf_size=4).knn_search(q, k=k, radius=r)
    ref = brute_force_knn(pts, q, k=k, radius=r)
    assert (res.counts == ref.counts).all()
