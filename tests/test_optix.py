"""OptiX-layer tests: GAS building and pipeline launches."""

import numpy as np
import pytest

from repro.bvh.stats import validate_bvh
from repro.gpu.costmodel import IsKind
from repro.gpu.device import RTX_2080TI
from repro.geometry.ray import short_rays_from_queries
from repro.optix import CountingShader, Pipeline, build_gas


@pytest.fixture(scope="module")
def world():
    rng = np.random.default_rng(5)
    pts = rng.random((600, 3))
    q = rng.random((200, 3))
    return pts, q


def test_build_gas(world):
    pts, _ = world
    pipe = Pipeline()
    gas = build_gas(pts, 0.05, pipe.cost_model)
    assert gas.n_prims == 600
    assert gas.aabb_width == pytest.approx(0.1)
    assert gas.build_time > 0
    validate_bvh(gas.bvh)


def test_launch_counts(world):
    pts, q = world
    pipe = Pipeline()
    gas = build_gas(pts, 0.05, pipe.cost_model)
    shader = CountingShader(len(q))
    res = pipe.launch(gas, short_rays_from_queries(q), shader, IsKind.RANGE_TEST)
    cheb = np.abs(q[:, None, :] - pts[None, :, :]).max(axis=2)
    assert (shader.calls == (cheb <= 0.05).sum(axis=1)).all()
    assert res.modeled_time > 0
    assert res.l1_hit_rate is not None


def test_launch_no_cache_sim(world):
    pts, q = world
    pipe = Pipeline(cache_sim=False)
    gas = build_gas(pts, 0.05, pipe.cost_model)
    res = pipe.launch(
        gas, short_rays_from_queries(q), CountingShader(len(q)), IsKind.KNN
    )
    assert res.l1_hit_rate is None
    assert res.modeled_time > 0


def test_launch_empty(world):
    pts, _ = world
    pipe = Pipeline()
    gas = build_gas(pts, 0.05, pipe.cost_model)
    res = pipe.launch(
        gas,
        short_rays_from_queries(np.zeros((0, 3))),
        CountingShader(0),
        IsKind.KNN,
    )
    assert res.trace.n_rays == 0
    assert res.modeled_time == 0


def test_device_binding(world):
    pts, q = world
    fast = Pipeline(device=RTX_2080TI)
    slow = Pipeline()
    g_fast = build_gas(pts, 0.05, fast.cost_model)
    g_slow = build_gas(pts, 0.05, slow.cost_model)
    assert g_fast.build_time < g_slow.build_time
    r_fast = fast.launch(
        g_fast, short_rays_from_queries(q), CountingShader(len(q)), IsKind.KNN
    )
    r_slow = slow.launch(
        g_slow, short_rays_from_queries(q), CountingShader(len(q)), IsKind.KNN
    )
    assert r_fast.trace.total_is_calls == r_slow.trace.total_is_calls


def test_is_kind_changes_cost_only(world):
    pts, q = world
    pipe = Pipeline(cache_sim=False)
    gas = build_gas(pts, 0.05, pipe.cost_model)
    costs = {}
    for kind in (IsKind.RANGE_FAST, IsKind.RANGE_TEST, IsKind.KNN):
        res = pipe.launch(
            gas, short_rays_from_queries(q), CountingShader(len(q)), kind
        )
        costs[kind] = res.cost.is_time
    assert costs[IsKind.RANGE_FAST] < costs[IsKind.RANGE_TEST] < costs[IsKind.KNN]
