"""Morton code tests, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.geometry.morton import (
    MORTON_BITS_3D,
    _compact1by2,
    _part1by2,
    morton_decode_3d,
    morton_encode_2d,
    morton_encode_3d,
    morton_order,
    normalize_to_grid,
)

coords = st.integers(0, 2**21 - 1)


@given(st.lists(coords, min_size=1, max_size=64))
def test_part_compact_roundtrip(values):
    x = np.asarray(values, dtype=np.uint64)
    assert (_compact1by2(_part1by2(x)) == x).all()


@given(
    x=coords, y=coords, z=coords,
)
def test_encode_decode_roundtrip_quantized(x, y, z):
    """decode(encode(q)) recovers the quantized integer coordinates."""
    # Build a point whose quantization is exactly (x, y, z) by passing
    # explicit unit-grid bounds.
    q = np.array([[x, y, z]], dtype=np.float64)
    code = morton_encode_3d(q, lo=np.zeros(3), hi=np.full(3, 2**MORTON_BITS_3D - 1))
    out = morton_decode_3d(code)
    assert (out == np.array([[x, y, z]], dtype=np.uint64)).all()


def test_encode_monotone_along_axis():
    """Increasing a single coordinate never decreases the code's bits for it."""
    pts = np.stack(
        [np.linspace(0, 1, 64), np.zeros(64), np.zeros(64)], axis=1
    )
    codes = morton_encode_3d(pts, lo=np.zeros(3), hi=np.ones(3))
    assert (np.diff(codes.astype(np.int64)) >= 0).all()


def test_morton_order_groups_neighbors():
    """Points in the same octant sort adjacently before crossing octants."""
    rng = np.random.default_rng(0)
    a = rng.random((50, 3)) * 0.4            # low octant
    b = rng.random((50, 3)) * 0.4 + 0.6      # high octant
    pts = np.concatenate([a, b])
    order = morton_order(pts)
    labels = (order >= 50).astype(int)
    # one transition between the two groups
    assert (np.diff(labels) != 0).sum() == 1


def test_morton_order_is_permutation(rng=np.random.default_rng(3)):
    pts = rng.random((200, 3))
    order = morton_order(pts)
    assert sorted(order.tolist()) == list(range(200))


def test_morton_2d_shapes():
    pts = np.random.default_rng(0).random((10, 2))
    codes = morton_encode_2d(pts)
    assert codes.shape == (10,) and codes.dtype == np.uint64


def test_morton_rejects_wrong_dim():
    with pytest.raises(ValueError):
        morton_encode_3d(np.zeros((4, 2)))
    with pytest.raises(ValueError):
        morton_encode_2d(np.zeros((4, 3)))
    with pytest.raises(ValueError):
        morton_order(np.zeros((4, 4)))


def test_normalize_degenerate_axis():
    pts = np.array([[0.5, 1.0, 2.0], [0.5, 2.0, 4.0]])
    q = normalize_to_grid(pts, 8)
    assert (q[:, 0] == 0).all()  # zero-extent axis maps to 0


@settings(max_examples=50)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(2, 40), st.just(3)),
        elements=st.floats(-50, 50, allow_nan=False),
    )
)
def test_property_order_consistent(pts):
    """morton_order is a stable permutation consistent with the codes:
    the codes along the returned order are non-decreasing, and applying
    the order twice is idempotent up to code ties."""
    order = morton_order(pts)
    assert sorted(order.tolist()) == list(range(len(pts)))
    codes = morton_encode_3d(pts)
    assert (np.diff(codes[order].astype(np.int64)) >= 0).all()
