"""Parallel bundle fan-out: determinism, merging, and validation.

``parallel_bundles`` fans independent per-bundle launches over a
thread pool.  Because bundles own disjoint query ids and every
accumulation runs in bundle order after the pool drains, the parallel
path must be *bit-identical* to serial execution — results, breakdown
charges, and the recorded span tree alike.
"""

import time
from dataclasses import replace

import numpy as np
import pytest

from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.core.parallel import BundleJob, execute_bundles, graft_spans
from repro.obs.tracer import NULL_TRACER, RecordingTracer
from repro.utils.rng import default_rng


def _clustered_world(n=900, n_queries=240, seed=3):
    rng = default_rng(seed)
    centers = rng.random((16, 3)) * 4.0
    pts = centers[rng.integers(0, len(centers), n)] + rng.normal(0, 0.02, (n, 3))
    return pts, pts[:n_queries]


def _strip(span):
    return (
        span.name,
        span.phase,
        dict(span.counters),
        dict(span.extras),
        [_strip(c) for c in span.children],
    )


def _run(points, queries, variant, mode, workers):
    cfg = VARIANTS[variant]
    if workers:
        cfg = replace(cfg, parallel_bundles=workers)
    tracer = RecordingTracer()
    engine = RTNNEngine(points, config=cfg, tracer=tracer)
    if mode == "knn":
        res = engine.knn_search(queries, k=8, radius=0.3)
    else:
        res = engine.range_search(queries, radius=0.3, k=8)
    return res, res.report, tracer


@pytest.mark.parametrize("variant", ["sched+part", "sched+part+bundle"])
@pytest.mark.parametrize("mode", ["knn", "range"])
def test_parallel_matches_serial_bitwise(variant, mode):
    points, queries = _clustered_world()
    serial_res, serial_rep, serial_tr = _run(points, queries, variant, mode, 0)
    par_res, par_rep, par_tr = _run(points, queries, variant, mode, 4)

    assert np.array_equal(serial_res.indices, par_res.indices)
    assert np.array_equal(serial_res.counts, par_res.counts)
    assert np.array_equal(serial_res.sq_distances, par_res.sq_distances)
    for field in ("data", "opt", "bvh", "fs", "search"):
        assert getattr(serial_rep.breakdown, field) == getattr(
            par_rep.breakdown, field
        ), field
    assert serial_rep.l1_hit_rate == par_rep.l1_hit_rate
    assert serial_rep.sm_occupancy == par_rep.sm_occupancy
    assert [_strip(s) for s in serial_tr.spans] == [_strip(s) for s in par_tr.spans]


def test_parallel_single_bundle_degenerates_to_serial():
    # a uniform blob yields one bundle; the pool path must not engage
    points = default_rng(0).random((300, 3))
    serial_res, _, _ = _run(points, points[:64], "sched+part", "knn", 0)
    par_res, _, _ = _run(points, points[:64], "sched+part", "knn", 8)
    assert np.array_equal(serial_res.indices, par_res.indices)


def test_parallel_bundles_validation():
    points, queries = _clustered_world(n=200, n_queries=16)
    cfg = replace(VARIANTS["sched+part"], parallel_bundles=0)
    engine = RTNNEngine(points, config=cfg)
    with pytest.raises(ValueError):
        engine.knn_search(queries, k=4, radius=0.2)
    cfg = replace(VARIANTS["sched+part"], parallel_bundles=-2)
    engine = RTNNEngine(points, config=cfg)
    with pytest.raises(ValueError):
        engine.knn_search(queries, k=4, radius=0.2)


def test_config_defaults_to_serial():
    assert RTNNConfig().parallel_bundles is None
    for cfg in VARIANTS.values():
        assert cfg.parallel_bundles is None


# ----------------------------------------------------------------------
# executor building blocks
# ----------------------------------------------------------------------
class _FakePipeline:
    def launch(self, gas, rays, shader, is_kind, tracer=None,
               step_budget=None):
        with tracer.span("launch", phase="traverse"):
            pass
        return gas * 10


class _FakeRays:
    query_ids = np.arange(3)


def _jobs(n):
    return [
        BundleJob(index=i, gas=i, rays=_FakeRays(), shader=None,
                  is_kind=None, aabb_width=0.5)
        for i in range(n)
    ]


@pytest.mark.parametrize("workers", [1, 4])
def test_execute_bundles_preserves_order(workers):
    outcomes = execute_bundles(_FakePipeline(), _jobs(5), workers)
    assert [o.index for o in outcomes] == list(range(5))
    assert [o.launch for o in outcomes] == [i * 10 for i in range(5)]
    for i, o in enumerate(outcomes):
        assert [s.name for s in o.spans] == [f"bundle[{i}]"]
        assert [c.name for c in o.spans[0].children] == ["launch"]


class _FlakyPipeline:
    """Fails the launches whose job index is in ``fail``, optionally
    after a delay, so tests can stage any completion order."""

    def __init__(self, fail, delay_s=None):
        self.fail = set(fail)
        self.delay_s = dict(delay_s or {})

    def launch(self, gas, rays, shader, is_kind, tracer=None,
               step_budget=None):
        with tracer.span("launch", phase="traverse"):
            pass
        delay = self.delay_s.get(gas, 0.0)
        if delay:
            time.sleep(delay)
        if gas in self.fail:
            raise RuntimeError(f"boom[{gas}]")
        return gas * 10


@pytest.mark.parametrize("workers", [1, 4])
def test_execute_bundles_propagates_lowest_index_failure(workers):
    # jobs 2 and 4 both fail; serial and parallel must surface the same
    # exception — the one the serial loop would hit first
    with pytest.raises(RuntimeError, match=r"boom\[2\]"):
        execute_bundles(_FlakyPipeline({2, 4}), _jobs(6), workers)


def test_execute_bundles_failure_deterministic_under_timing():
    # job 3 fails immediately; job 1 fails only after a delay — the
    # propagated exception must still be job 1's, independent of which
    # worker failed first in wall-clock terms
    pipeline = _FlakyPipeline({1, 3}, delay_s={1: 0.05})
    with pytest.raises(RuntimeError, match=r"boom\[1\]"):
        execute_bundles(pipeline, _jobs(5), 4)


def test_execute_bundles_drains_pool_before_raising():
    # after the exception leaves, no launch may still be running: every
    # job either finished or was cancelled before it started
    started = []

    class _P(_FlakyPipeline):
        def launch(self, gas, rays, shader, is_kind, tracer=None,
               step_budget=None):
            started.append(gas)
            return super().launch(gas, rays, shader, is_kind, tracer=tracer,
                                  step_budget=step_budget)

    # job 0 fails instantly; every other job is slow, so most are still
    # pending when the exception is observed and must be cancelled
    delays = {g: 0.01 for g in range(1, 64)}
    with pytest.raises(RuntimeError, match=r"boom\[0\]"):
        execute_bundles(_P({0}, delay_s=delays), _jobs(64), 2)
    n_started = len(started)
    # the with-block has exited, so the pool is gone; nothing new starts
    time.sleep(0.02)
    assert len(started) == n_started
    assert n_started < 64  # cancellation actually pruned pending jobs


def test_graft_spans_lands_under_open_span():
    donor = RecordingTracer()
    with donor.span("inner"):
        pass
    target = RecordingTracer()
    with target.span("outer"):
        graft_spans(target, donor.spans)
    assert [s.name for s in target.spans] == ["outer"]
    assert [c.name for c in target.spans[0].children] == ["inner"]
    graft_spans(target, donor.spans)  # no open span -> top level
    assert [s.name for s in target.spans] == ["outer", "inner"]


def test_graft_spans_noops_on_disabled_tracer():
    donor = RecordingTracer()
    with donor.span("x"):
        pass
    graft_spans(NULL_TRACER, donor.spans)  # must not raise or record
