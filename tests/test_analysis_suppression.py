"""Suppression machinery edge cases: multi-line noqa spans, stale
baseline entries, and the justification-preserving baseline writer."""

import json

from repro.analysis import AnalysisConfig, analyze_source
from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    load_justifications,
    write_baseline,
)
from repro.analysis.cli import main as analysis_main
from repro.analysis.findings import Finding, Severity

HOT = "repro/core/fixture.py"


def run(source, **cfg):
    return analyze_source(source, HOT, AnalysisConfig(**cfg))


# A VEC002 np.append call inside a statement spanning four lines; the
# finding anchors on line 4 (the call), the statement covers 4-7.
MULTILINE = """\
import numpy as np

def g(a, b):
    out = np.append({first}
        a,
        b,
    ){last}
    return out
"""


def test_noqa_on_multiline_statement_first_line():
    src = MULTILINE.format(first="  # noqa: VEC002", last="")
    assert run(src, select=("VEC",)) == []


def test_noqa_on_multiline_statement_last_line():
    src = MULTILINE.format(first="", last="  # noqa: VEC002")
    assert run(src, select=("VEC",)) == []


def test_unmarked_multiline_statement_still_fires():
    src = MULTILINE.format(first="", last="")
    findings = run(src, select=("VEC",))
    assert [f.rule_id for f in findings] == ["VEC002"]
    assert findings[0].line == 4


def test_noqa_on_def_line_does_not_cover_the_body():
    # Compound statements span their whole body; a trailing comment on
    # the def must not silence findings inside it.
    src = (
        "import numpy as np\n"
        "\n"
        "def g(a, b):  # noqa: VEC002\n"
        "    return np.append(a, b)\n"
    )
    findings = run(src, select=("VEC",))
    assert [f.rule_id for f in findings] == ["VEC002"]


def test_noqa_with_wrong_rule_id_does_not_suppress():
    src = MULTILINE.format(first="", last="  # noqa: DET001")
    assert [f.rule_id for f in run(src, select=("VEC",))] == ["VEC002"]


def test_bare_noqa_suppresses_all_rules():
    src = MULTILINE.format(first="", last="  # noqa")
    assert run(src, select=("VEC",)) == []


# ----------------------------------------------------------------------
# stale baseline entries
# ----------------------------------------------------------------------
def _finding(msg="msg", path="repro/core/x.py"):
    return Finding("VEC002", Severity.ERROR, path, 3, 0, msg)


def test_apply_baseline_reports_stale_entries():
    live = [_finding("still here")]
    accepted = {
        ("VEC002", "repro/core/x.py", "still here"),
        ("VEC002", "repro/core/gone.py", "paid off"),
    }
    fresh, n_baselined, stale = apply_baseline(live, accepted)
    assert fresh == []
    assert n_baselined == 1
    assert stale == [("VEC002", "repro/core/gone.py", "paid off")]


def test_cli_warns_on_stale_baseline_entry(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\ndef g(a, b):\n    return np.append(a, b)\n"
    )
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps({
        "version": 1,
        "findings": [
            {"rule": "CON001", "path": "repro/core/deleted.py",
             "message": "long gone", "why": "was deliberate"},
        ],
    }))
    rc = analysis_main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(baseline),
         "--format", "json"]
    )
    captured = capsys.readouterr()
    assert rc == 1  # the VEC002 finding is not baselined
    assert "stale baseline entry CON001" in captured.err
    payload = json.loads(captured.out)
    assert payload["stale_baseline"] == [
        {"rule": "CON001", "path": "repro/core/deleted.py",
         "message": "long gone"},
    ]


def test_write_baseline_preserves_justifications(tmp_path):
    path = tmp_path / "baseline.json"
    f_kept, f_new = _finding("kept"), _finding("new")
    write_baseline(path, [f_kept])
    # Annotate the entry by hand, as a reviewer would.
    data = json.loads(path.read_text())
    data["findings"][0]["why"] = "deliberate: benign lookup race"
    path.write_text(json.dumps(data))

    write_baseline(path, [f_kept, f_new])
    assert load_justifications(path) == {
        ("VEC002", "repro/core/x.py", "kept"): "deliberate: benign lookup race",
    }
    assert load_baseline(path) == {
        ("VEC002", "repro/core/x.py", "kept"),
        ("VEC002", "repro/core/x.py", "new"),
    }
