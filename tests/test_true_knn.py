"""Unbounded exact kNN: the adaptive radius-expansion loop.

The contract under test is the one the ``true-knn-smoke`` CI gate and
the ``*-tknn`` bench families enforce: ``true_knn_search`` returns the
*exact* k nearest neighbors of every query — bit-identical to the
brute-force oracle — regardless of engine variant or sharded topology,
re-launching only still-unsatisfied queries each round, on a radius
schedule that is a pure function of (points, k, policy).

On clouds in generic position (random float64) identity is raw bitwise
equality of indices, counts and squared distances. At exact distance
ties crossing the k boundary the bounded engine keeps a
traversal-order tie subset while the oracle keeps the lowest indices,
so tie-heavy clouds (duplicates) compare counts + squared distances
bitwise and validate indices by recomputing each returned distance.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.api import SearchSession, true_knn_search
from repro.baselines.brute import brute_force_true_knn
from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.core.expansion import (
    DEFAULT_POLICY,
    ExpansionPolicy,
    cover_radius,
    seed_radius,
)
from repro.obs.tracer import RecordingTracer
from repro.serve import ShardedEngine
from repro.utils.rng import default_rng

K = 8


@pytest.fixture(scope="module")
def uniform():
    rng = default_rng(31)
    return rng.random((500, 3)), rng.random((60, 3))


@pytest.fixture(scope="module")
def clustered():
    """Dense clusters plus far-out queries: forces multi-round runs
    (cluster queries satisfy early, far queries keep expanding)."""
    rng = default_rng(32)
    centers = rng.random((6, 3)) * 0.3
    which = rng.integers(0, 6, 400)
    pts = np.clip(centers[which] + rng.normal(0, 0.005, (400, 3)), 0, 1)
    queries = np.vstack([pts[:20] + 0.001, [[0.95, 0.95, 0.95]]])
    return pts, queries


def _assert_identical(a, b, msg=""):
    assert np.array_equal(a.indices, b.indices), f"{msg}: indices"
    assert np.array_equal(a.counts, b.counts), f"{msg}: counts"
    assert np.array_equal(a.sq_distances, b.sq_distances), f"{msg}: distances"


def _shader_d2(points, q, idx):
    """Squared distances recomputed with the shader's arithmetic."""
    diff = points[idx] - q[None, :]
    return np.einsum("nd,nd->n", diff, diff)


# ----------------------------------------------------------------------
# the acceptance identity matrix: clouds x variants x topologies
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cloud", ["uniform", "clustered"])
@pytest.mark.parametrize("cfg_name", ["full", "noopt"])
@pytest.mark.parametrize("n_shards", [1, 4])
def test_matches_brute_oracle(cloud, cfg_name, n_shards, request):
    points, queries = request.getfixturevalue(cloud)
    cfg = None if cfg_name == "full" else VARIANTS["noopt"]
    engine = (
        RTNNEngine(points, config=cfg)
        if n_shards == 1
        else ShardedEngine(points, n_shards=n_shards, config=cfg)
    )
    res = engine.true_knn_search(queries, k=K)
    oracle = brute_force_true_knn(points, queries, k=K)
    _assert_identical(res, oracle, f"{cloud}/{cfg_name}/sh{n_shards}")
    tk = res.report.extras["true_knn"]
    assert tk["converged"]
    assert (res.counts == K).all()


def test_sharded_walks_the_solo_radius_schedule(clustered):
    points, queries = clustered
    solo = RTNNEngine(points).true_knn_search(queries, k=K)
    sharded = ShardedEngine(points, n_shards=4).true_knn_search(queries, k=K)
    a = solo.report.extras["true_knn"]
    b = sharded.report.extras["true_knn"]
    assert a["seed_radius"] == b["seed_radius"]
    assert a["round_radii"] == b["round_radii"]
    assert a["relaunched"] == b["relaunched"]
    assert a["satisfied"] == b["satisfied"]
    _assert_identical(solo, sharded, "sharded vs solo")


# ----------------------------------------------------------------------
# convergence telemetry: only unsatisfied queries re-launch
# ----------------------------------------------------------------------
def test_only_unsatisfied_queries_relaunch(clustered):
    points, queries = clustered
    res = RTNNEngine(points).true_knn_search(queries, k=K)
    tk = res.report.extras["true_knn"]
    assert tk["rounds"] >= 2, "fixture must force a multi-round run"
    assert tk["relaunched"][0] == len(queries)
    for j in range(1, tk["rounds"]):
        # Round j re-launches exactly the queries round j-1 left short.
        assert tk["relaunched"][j] == (
            tk["relaunched"][j - 1] - tk["satisfied"][j - 1]
        )
        assert tk["relaunched"][j] <= tk["relaunched"][j - 1]
    # The fixture's cluster queries satisfy round 0; only the far
    # query keeps expanding.
    assert tk["relaunched"][1] < tk["relaunched"][0]
    assert sum(tk["satisfied"]) == len(queries)
    assert tk["converged"]
    # The schedule is the pure geometric series off the seed.
    for j, r in enumerate(tk["round_radii"]):
        assert r == tk["seed_radius"] * tk["growth"] ** j
    fractions = tk["relaunched_fraction"]
    assert fractions[0] == 1.0
    assert all(b <= a for a, b in zip(fractions, fractions[1:]))


def test_tracer_records_round_spans_and_counters(clustered):
    points, queries = clustered
    tracer = RecordingTracer()
    res = RTNNEngine(points, tracer=tracer).true_knn_search(queries, k=K)
    tk = res.report.extras["true_knn"]
    names = [s.name for root in tracer.spans for s in root.walk()]
    for j in range(tk["rounds"]):
        assert f"true_knn.round[{j}]" in names
    rounds = [
        s
        for root in tracer.spans
        for s in root.walk()
        if s.name.startswith("true_knn.round[")
    ]
    assert all(s.phase == "expand" for s in rounds)
    totals = tracer.total_counters()
    assert totals["true_knn_rounds"] == tk["rounds"]
    assert totals["relaunched_queries"] == sum(tk["relaunched"])
    assert totals["satisfied_queries"] == sum(tk["satisfied"])


# ----------------------------------------------------------------------
# fusion: groups, dtypes, the service path
# ----------------------------------------------------------------------
def test_fused_groups_match_solo(uniform):
    points, queries = uniform
    engine = RTNNEngine(points)
    g1, g2 = queries[:25], queries[25:]
    fused = engine.search_fused("true_knn", [g1, g2], radius=None, k=K)
    assert len(fused) == 2
    solo1 = RTNNEngine(points).true_knn_search(g1, k=K)
    solo2 = RTNNEngine(points).true_knn_search(g2, k=K)
    _assert_identical(fused[0], solo1, "group 0")
    _assert_identical(fused[1], solo2, "group 1")
    # Solo schedules are prefixes of the fused batch's schedule.
    tk = fused[0].report.extras["true_knn"]
    for solo in (solo1, solo2):
        stk = solo.report.extras["true_knn"]
        assert tk["round_radii"][: stk["rounds"]] == stk["round_radii"]


def test_fused_mixed_dtype_is_normalized_not_upcast_mid_pass(uniform):
    # Satellite: a float32 group fused with a float64 group must give
    # each group the same bits as a solo float64 call — queries are
    # normalized up front, never silently upcast inside the pass.
    points, queries = uniform
    g32 = queries[:20].astype(np.float32)
    g64 = queries[20:]
    fused = RTNNEngine(points).search_fused(
        "true_knn", [g32, g64], radius=None, k=K
    )
    solo32 = RTNNEngine(points).true_knn_search(
        np.asarray(g32, dtype=np.float64), k=K
    )
    solo64 = RTNNEngine(points).true_knn_search(g64, k=K)
    _assert_identical(fused[0], solo32, "float32 group")
    _assert_identical(fused[1], solo64, "float64 group")
    # Same contract through the bounded kinds.
    bounded = RTNNEngine(points).search_fused("knn", [g32, g64], 0.2, K)
    _assert_identical(
        bounded[0],
        RTNNEngine(points).knn_search(
            np.asarray(g32, dtype=np.float64), k=K, radius=0.2
        ),
        "bounded float32 group",
    )


def test_service_seeds_radius_so_equal_k_requests_fuse(uniform):
    points, queries = uniform
    session = SearchSession(points)
    g32 = queries[:20].astype(np.float32)
    g64 = queries[20:]

    async def drive():
        async with session.serve() as svc:
            return await asyncio.gather(
                svc.submit("true_knn", g32, k=K),
                svc.submit("true_knn", g64, k=K),
            )

    a, b = asyncio.run(drive())
    # radius=None resolved to the engine's seed up front -> concrete,
    # equal compat keys -> one fused launch.
    assert a.batch_occupancy == 2 and b.batch_occupancy == 2
    solo = RTNNEngine(points)
    _assert_identical(
        a, solo.true_knn_search(np.asarray(g32, dtype=np.float64), k=K),
        "served float32",
    )
    _assert_identical(b, solo.true_knn_search(g64, k=K), "served float64")


def test_service_rejects_missing_radius_for_bounded_kinds(uniform):
    points, queries = uniform
    session = SearchSession(points)

    async def drive():
        async with session.serve() as svc:
            await svc.submit("knn", queries[:4], k=K)

    with pytest.raises(ValueError, match="radius"):
        asyncio.run(drive())


# ----------------------------------------------------------------------
# the seed: deterministic, memoized, invalidated on update_points
# ----------------------------------------------------------------------
def test_seed_radius_is_a_pure_function_of_points_k_policy(uniform):
    points, _ = uniform
    module_seed = seed_radius(points, K)
    assert RTNNEngine(points).seed_radius(K) == module_seed
    assert ShardedEngine(points, n_shards=4).seed_radius(K) == module_seed
    assert seed_radius(points, K) == module_seed  # deterministic
    assert module_seed > 0.0
    # Memoized: same key returns without recompute (same float).
    engine = RTNNEngine(points)
    assert engine.seed_radius(K) == engine.seed_radius(K)
    # Explicit init_radius short-circuits the density estimate.
    assert seed_radius(points, K, ExpansionPolicy(init_radius=0.25)) == 0.25


def test_update_points_refit_then_true_knn_is_bit_identical(uniform):
    # Satellite: a warm refit (same count) must invalidate the density
    # seed and the per-round GAS keys — the post-update answer must
    # match a cold engine on the new cloud, bit for bit.
    points, queries = uniform
    engine = RTNNEngine(points)
    engine.true_knn_search(queries, k=K)  # warm caches on the old cloud
    moved = points * 0.5 + 0.1  # same count -> refit path
    engine.update_points(moved)
    res = engine.true_knn_search(queries, k=K)
    cold = RTNNEngine(moved).true_knn_search(queries, k=K)
    _assert_identical(res, cold, "refit vs cold")
    _assert_identical(res, brute_force_true_knn(moved, queries, k=K), "oracle")
    # The halved extent doubles the density: the seed must move too.
    assert engine.seed_radius(K) == seed_radius(moved, K)
    assert engine.seed_radius(K) != seed_radius(points, K)


def test_sharded_update_points_invalidates_seed(uniform):
    points, queries = uniform
    sharded = ShardedEngine(points, n_shards=4)
    sharded.true_knn_search(queries, k=K)
    moved = points * 0.5 + 0.1
    sharded.update_points(moved)
    assert sharded.seed_radius(K) == seed_radius(moved, K)
    res = sharded.true_knn_search(queries, k=K)
    _assert_identical(res, brute_force_true_knn(moved, queries, k=K), "oracle")


# ----------------------------------------------------------------------
# validation: one ValueError family at every entry point
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [{"k": 0}, {"k": 3, "radius": 0.0},
                                 {"k": 3, "radius": -0.5}])
def test_invalid_scalars_raise_valueerror_everywhere(uniform, bad):
    points, queries = uniform
    kwargs = {"k": bad.get("k"), "radius": bad.get("radius")}
    with pytest.raises(ValueError):
        RTNNEngine(points).true_knn_search(queries, **kwargs)
    with pytest.raises(ValueError):
        SearchSession(points).true_knn_search(queries, **kwargs)
    with pytest.raises(ValueError):
        true_knn_search(points, queries, **kwargs)
    with pytest.raises(ValueError):
        ShardedEngine(points, n_shards=2).true_knn_search(queries, **kwargs)


def test_bounded_kinds_share_the_valueerror_family(uniform):
    points, queries = uniform
    from repro.api import knn_search, range_search

    with pytest.raises(ValueError):
        knn_search(points, queries, k=0, radius=0.1)
    with pytest.raises(ValueError):
        knn_search(points, queries, k=3, radius=0.0)
    with pytest.raises(ValueError):
        range_search(points, queries, radius=-1.0, k=3)


def test_expansion_policy_validates():
    with pytest.raises(ValueError):
        ExpansionPolicy(growth=1.0)
    with pytest.raises(ValueError):
        ExpansionPolicy(growth=float("nan"))
    with pytest.raises(ValueError):
        ExpansionPolicy(init_radius=-0.1)
    with pytest.raises(ValueError):
        ExpansionPolicy(max_rounds=0)
    with pytest.raises(ValueError):
        ExpansionPolicy(oversample=0.0)
    assert DEFAULT_POLICY.growth > 1.0


# ----------------------------------------------------------------------
# edge shapes: n < k, empty queries, duplicates, round budget
# ----------------------------------------------------------------------
def test_cloud_smaller_than_k_terminates_with_short_counts():
    rng = default_rng(9)
    points = rng.random((4, 3))
    queries = rng.random((7, 3))
    res = RTNNEngine(points).true_knn_search(queries, k=10)
    assert (res.counts == 4).all()
    assert (res.indices[:, 4:] == -1).all()
    assert np.isinf(res.sq_distances[:, 4:]).all()
    tk = res.report.extras["true_knn"]
    assert tk["converged"], "n < k must converge via the cover bound"
    _assert_identical(res, brute_force_true_knn(points, queries, k=10), "n<k")


def test_empty_queries_return_empty_results(uniform):
    points, _ = uniform
    res = RTNNEngine(points).true_knn_search(np.empty((0, 3)), k=K)
    assert res.indices.shape == (0, K)
    assert res.report.extras["true_knn"]["rounds"] == 0


def test_round_budget_is_honored_and_reported():
    rng = default_rng(12)
    points = np.vstack([rng.random((50, 3)) * 0.01, [[1.0, 1.0, 1.0]]])
    queries = np.array([[0.005, 0.005, 0.005]])
    tight = ExpansionPolicy(init_radius=1e-6, max_rounds=3)
    res = RTNNEngine(points).true_knn_search(queries, k=K, policy=tight)
    tk = res.report.extras["true_knn"]
    assert tk["rounds"] <= 3
    if (res.counts < K).any():
        assert not tk["converged"]


def test_duplicate_cloud_terminates_and_matches_on_distances():
    # Every point triplicated: exact ties everywhere. Counts and the
    # distance rows stay bitwise-oracle-identical; indices are checked
    # by value (each returned index must realize its distance slot).
    rng = default_rng(13)
    base = rng.random((60, 3))
    points = np.repeat(base, 3, axis=0)
    queries = rng.random((15, 3))
    res = RTNNEngine(points).true_knn_search(queries, k=5)
    oracle = brute_force_true_knn(points, queries, k=5)
    assert np.array_equal(res.counts, oracle.counts)
    assert np.array_equal(res.sq_distances, oracle.sq_distances)
    for i, q in enumerate(queries):
        idx = res.indices[i, : res.counts[i]]
        assert len(set(idx.tolist())) == len(idx)
        assert np.array_equal(_shader_d2(points, q, idx), res.sq_distances[i, : res.counts[i]])
    assert res.report.extras["true_knn"]["converged"]


# ----------------------------------------------------------------------
# the property: unlimited rounds == brute-force exact kNN
# ----------------------------------------------------------------------
coords = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)
clouds = hnp.arrays(
    np.float64, st.tuples(st.integers(2, 50), st.just(3)), elements=coords
)


@settings(max_examples=30, deadline=None)
@given(pts=clouds, k=st.integers(1, 9), seed=st.integers(0, 10),
       dup=st.booleans())
def test_property_true_knn_equals_brute_exact(pts, k, seed, dup):
    if dup:
        pts = np.repeat(pts, 2, axis=0)[: len(pts) + 8]
    q = np.random.default_rng(seed).random((6, 3))
    engine = RTNNEngine(pts, config=RTNNConfig(cache_sim=False))
    res = engine.true_knn_search(q, k=k)
    ref = brute_force_true_knn(pts, q, k=k)
    tk = res.report.extras["true_knn"]
    assert tk["converged"] and tk["rounds"] <= DEFAULT_POLICY.max_rounds
    assert np.array_equal(res.counts, ref.counts)
    # counts == min(k, n) always: the expansion never stops short.
    assert (res.counts == min(k, len(pts))).all()
    assert np.array_equal(res.sq_distances, ref.sq_distances)
    for i in range(len(q)):
        idx = res.indices[i, : res.counts[i]]
        assert len(set(idx.tolist())) == len(idx)
        assert np.array_equal(
            _shader_d2(pts, q[i], idx), res.sq_distances[i, : res.counts[i]]
        )


def test_cover_radius_bounds_every_pair(uniform):
    points, queries = uniform
    cover = cover_radius(points, queries)
    worst = 0.0
    lo = np.minimum(points.min(0), queries.min(0))
    hi = np.maximum(points.max(0), queries.max(0))
    span = hi - lo
    worst = float(np.sqrt((span * span).sum()))
    assert cover == worst
    assert cover_radius(points, np.empty((0, 3))) == 0.0
