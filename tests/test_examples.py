"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, env=None) -> str:
    out = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=560,
        env=env,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    return out.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "Modeled GPU time" in out
    assert "KNN results" in out


@pytest.mark.slow
def test_sph_fluid_runs():
    out = _run("sph_fluid.py")
    assert "total modeled neighbor-search time" in out


@pytest.mark.slow
def test_lidar_clustering_runs():
    out = _run("lidar_clustering.py")
    assert "clusters with >=" in out


@pytest.mark.slow
def test_galaxy_correlation_runs():
    out = _run("galaxy_correlation.py")
    assert "hierarchically clustered" in out
