"""End-to-end engine correctness against the brute-force oracle,
across all optimization variants and both search types."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn, brute_force_range
from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.gpu.device import RTX_2080TI


def _assert_knn_equal(res, ref):
    for i in range(res.n_queries):
        got = set(res.indices[i][: res.counts[i]].tolist())
        want = set(ref.indices[i][: ref.counts[i]].tolist())
        if got != want:
            # ties at the k-th distance make sets legitimately differ;
            # require equal counts and equal distance multisets instead
            assert res.counts[i] == ref.counts[i]
            np.testing.assert_allclose(
                np.sort(res.sq_distances[i][: res.counts[i]]),
                np.sort(ref.sq_distances[i][: ref.counts[i]]),
                rtol=1e-9,
            )


def _assert_range_valid(res, ref, points, queries, radius, k):
    r2 = radius * radius * (1 + 1e-12)
    for i in range(res.n_queries):
        got = res.indices[i][: res.counts[i]]
        # all returned neighbors are true neighbors
        d2 = ((points[got] - queries[i]) ** 2).sum(axis=1)
        assert (d2 <= r2).all()
        # counts are correct: min(true_count, k)
        assert res.counts[i] == min(ref.counts[i], k)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_knn_matches_oracle_all_variants(cube_points, cube_queries, variant):
    k, r = 6, 0.12
    cfg = VARIANTS[variant]
    engine = RTNNEngine(cube_points, config=cfg)
    res = engine.knn_search(cube_queries, k=k, radius=r)
    ref = brute_force_knn(cube_points, cube_queries, k=k, radius=r)
    _assert_knn_equal(res, ref)


@pytest.mark.parametrize("variant", list(VARIANTS))
def test_range_matches_oracle_all_variants(cube_points, cube_queries, variant):
    k, r = 2000, 0.12
    engine = RTNNEngine(cube_points, config=VARIANTS[variant])
    res = engine.range_search(cube_queries, radius=r, k=k)
    ref = brute_force_range(cube_points, cube_queries, radius=r, k=k)
    for i in range(res.n_queries):
        got = set(res.indices[i][: res.counts[i]].tolist())
        want = set(ref.indices[i][: ref.counts[i]].tolist())
        assert got == want


def test_knn_equiv_volume_heuristic_recall(cube_points, cube_queries):
    """The paper's heuristic is 'sufficient for correctness' on its
    datasets; on uniform data it should recover essentially everything."""
    k, r = 6, 0.12
    engine = RTNNEngine(cube_points, config=RTNNConfig(knn_aabb="equiv_volume"))
    res = engine.knn_search(cube_queries, k=k, radius=r)
    ref = brute_force_knn(cube_points, cube_queries, k=k, radius=r)
    got = sum(res.counts)
    recovered = 0
    for i in range(res.n_queries):
        recovered += len(
            set(res.indices[i][: res.counts[i]].tolist())
            & set(ref.indices[i][: ref.counts[i]].tolist())
        )
    assert recovered / max(sum(ref.counts), 1) >= 0.98
    assert got <= sum(ref.counts)


def test_clustered_points(clustered_points):
    """Partitioning and bundling must stay exact on clustered data."""
    q = clustered_points[::3]
    k, r = 5, 0.08
    engine = RTNNEngine(clustered_points)
    res = engine.knn_search(q, k=k, radius=r)
    ref = brute_force_knn(clustered_points, q, k=k, radius=r)
    _assert_knn_equal(res, ref)


def test_bounded_range_subset(cube_points, cube_queries):
    """With small k, returned neighbors are a k-subset of true ones."""
    r, k = 0.15, 3
    engine = RTNNEngine(cube_points)
    res = engine.range_search(cube_queries, radius=r, k=k)
    ref = brute_force_range(cube_points, cube_queries, radius=r, k=10**6 // 100)
    _assert_range_valid(res, ref, cube_points, cube_queries, r, k)


def test_queries_outside_cloud(cube_points):
    far = np.full((10, 3), 7.0)
    engine = RTNNEngine(cube_points)
    res = engine.knn_search(far, k=4, radius=0.1)
    assert (res.counts == 0).all()
    assert (res.indices == -1).all()


def test_empty_queries(cube_points):
    engine = RTNNEngine(cube_points)
    res = engine.range_search(np.zeros((0, 3)), radius=0.1, k=4)
    assert res.n_queries == 0
    assert res.report.modeled_time > 0  # transfer of the points still counted


def test_empty_queries_report_shape_matches_nonempty(cube_points):
    """The n_q == 0 path goes through the same report tail as every
    other run, so the serialized structure is identical."""
    from repro.metrics.breakdown import Breakdown

    engine = RTNNEngine(cube_points)
    empty = engine.range_search(np.zeros((0, 3)), radius=0.1, k=4).report
    full = engine.range_search(cube_points[:10], radius=0.1, k=4).report
    assert set(empty.extras) == set(full.extras)
    assert set(empty.extras["gas_cache"]) == set(full.extras["gas_cache"])
    # nothing is partitioned, bundled, or built for zero queries
    assert empty.n_partitions == 0
    assert empty.n_bundles == 0
    assert empty.n_bvh_builds == 0
    assert empty.is_calls == 0
    # the breakdown round-trips through its dict form exactly
    rt = Breakdown.from_dict(empty.breakdown.as_dict())
    assert rt.as_dict() == empty.breakdown.as_dict()


def test_report_structure(cube_points, cube_queries):
    engine = RTNNEngine(cube_points)
    res = engine.knn_search(cube_queries, k=4, radius=0.1)
    rep = res.report
    assert rep.breakdown.total > 0
    assert rep.is_calls > 0
    assert rep.n_bundles >= 1
    assert rep.device == "RTX 2080"
    assert set(rep.breakdown.fractions()) == {"data", "opt", "bvh", "fs", "search"}
    assert abs(sum(rep.breakdown.fractions().values()) - 1.0) < 1e-9


def test_devices_scale_modeled_time(cube_points, cube_queries):
    slow = RTNNEngine(cube_points).knn_search(cube_queries, k=4, radius=0.1)
    fast = RTNNEngine(cube_points, device=RTX_2080TI).knn_search(
        cube_queries, k=4, radius=0.1
    )
    # functional results identical
    assert (slow.indices == fast.indices).all()
    # the bigger board is modeled faster
    assert fast.report.modeled_time < slow.report.modeled_time


def test_with_config(cube_points):
    engine = RTNNEngine(cube_points)
    other = engine.with_config(schedule=False)
    assert engine.config.schedule and not other.config.schedule
    assert other.points is not None


def test_input_validation(cube_points):
    engine = RTNNEngine(cube_points)
    with pytest.raises(ValueError):
        engine.knn_search(cube_points[:5], k=0, radius=0.1)
    with pytest.raises(ValueError):
        engine.knn_search(cube_points[:5], k=4, radius=-1.0)
    with pytest.raises(ValueError):
        engine.range_search(np.zeros((5, 2)), radius=0.1, k=4)
    with pytest.raises(ValueError):
        RTNNEngine(np.full((5, 3), np.nan))


def test_approx_elide_sphere_test_bound(cube_points, cube_queries):
    """§8: without the sphere test every neighbor is within sqrt(3)r."""
    r = 0.1
    engine = RTNNEngine(
        cube_points, config=RTNNConfig(approx_elide_sphere_test=True)
    )
    res = engine.range_search(cube_queries, radius=r, k=500)
    valid = res.sq_distances[res.indices >= 0]
    assert (valid <= 3 * r * r * (1 + 1e-9)).all()


def test_approx_shrunk_aabb_trades_recall(cube_points, cube_queries):
    k, r = 6, 0.12
    ref = brute_force_knn(cube_points, cube_queries, k=k, radius=r)
    res = RTNNEngine(
        cube_points, config=RTNNConfig(aabb_shrink=0.5)
    ).knn_search(cube_queries, k=k, radius=r)
    # still valid neighbors, possibly fewer
    assert (res.counts <= ref.counts).all()
    valid = res.sq_distances[res.indices >= 0]
    assert (valid <= r * r * (1 + 1e-9)).all()


def test_negative_and_offset_coordinates(rng):
    """Scenes far from the origin / spanning negative coordinates."""
    pts = rng.random((800, 3)) * 4.0 - 100.0  # [-100, -96)^3
    q = pts[:100] + rng.normal(0, 0.02, (100, 3))
    res = RTNNEngine(pts).knn_search(q, k=4, radius=0.3)
    ref = brute_force_knn(pts, q, k=4, radius=0.3)
    assert (res.counts == ref.counts).all()
    np.testing.assert_allclose(
        np.where(np.isinf(res.sq_distances), -1, res.sq_distances),
        np.where(np.isinf(ref.sq_distances), -1, ref.sq_distances),
        rtol=1e-9, atol=1e-9,
    )


def test_anisotropic_scene(rng):
    """Thin-slab scenes (like LiDAR) exercise anisotropic grids."""
    pts = rng.random((800, 3)) * np.array([50.0, 50.0, 0.5])
    res = RTNNEngine(pts).range_search(pts[:100], radius=2.0, k=500)
    ref = brute_force_range(pts, pts[:100], radius=2.0, k=500)
    assert (res.counts == ref.counts).all()
