"""The observability tracer: span trees, rollups, and run reports.

Covers the three guarantees the subsystem advertises: (1) recording is
structurally faithful (nesting, counter deltas, phase inheritance),
(2) the engine's numeric results are bit-identical whether it runs
under the no-op or the recording tracer, and (3) a RunReport survives
a JSON round trip unchanged.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import RTNNEngine, VARIANTS
from repro.obs import (
    NULL_TRACER,
    PHASES,
    RecordingTracer,
    RunReport,
    Span,
    render_report,
)


# ----------------------------------------------------------------------
# tracer mechanics (no engine involved)
# ----------------------------------------------------------------------
def test_spans_nest_and_accumulate():
    tr = RecordingTracer()
    with tr.span("outer", phase="traverse") as outer:
        outer.add(steps=3)
        with tr.span("inner") as inner:
            inner.add(steps=4, is_calls=2)
        with tr.span("inner") as inner2:
            inner2.add(steps=5)
            inner2.add(steps=1)  # add() accumulates on repeat keys

    assert [s.name for s in tr.spans] == ["outer"]
    assert [c.name for c in tr.spans[0].children] == ["inner", "inner"]
    assert tr.spans[0].children[1].counters == {"steps": 6}
    assert tr.total_counters() == {"steps": 13, "is_calls": 2}
    assert tr.spans[0].wall_s >= tr.spans[0].children[0].wall_s >= 0.0


def test_phase_rollup_inherits_and_defaults_to_other():
    tr = RecordingTracer()
    with tr.span("a", phase="schedule") as a:
        a.add(n=1)
        with tr.span("child"):  # inherits schedule
            pass
        with tr.span("grandchild") as g:
            g.add(n=10)
    with tr.span("orphan") as o:  # no phase anywhere -> "other"
        o.add(n=100)

    roll = tr.phase_rollup()
    assert roll["schedule"]["counters"] == {"n": 11}
    assert roll["other"]["counters"] == {"n": 100}
    # wall attributed once, at the phase's outermost span
    assert roll["schedule"]["wall_s"] == pytest.approx(tr.spans[0].wall_s)


def test_null_tracer_span_is_inert():
    with NULL_TRACER.span("anything", phase="build") as sp:
        sp.add(steps=1)
        sp.note(label="x")
    assert not NULL_TRACER.enabled
    # the null handle is shared and records nothing
    assert NULL_TRACER.span("a") is NULL_TRACER.span("b")


def test_find_walks_tree_in_order():
    tr = RecordingTracer()
    with tr.span("launch"):
        with tr.span("launch"):
            pass
    with tr.span("launch"):
        pass
    assert len(tr.find("launch")) == 3


# ----------------------------------------------------------------------
# engine integration
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_run(cube_points, cube_queries):
    tracer = RecordingTracer()
    engine = RTNNEngine(
        cube_points, config=VARIANTS["sched+part"], tracer=tracer
    )
    res = engine.knn_search(cube_queries, k=8, radius=0.12)
    return tracer, res


def test_engine_emits_expected_span_tree(traced_run):
    tracer, _ = traced_run
    top = [s.name for s in tracer.spans]
    assert top[0] == "transfer"
    assert "partition" in top
    assert "schedule" in top
    assert any(name.startswith("bundle[") for name in top)
    # the scheduling pre-pass builds its own GAS and launches through it
    sched = next(s for s in tracer.spans if s.name == "schedule")
    assert [c.name for c in sched.children] == ["build_gas", "launch"]
    # every bundle span wraps at least one launch
    for s in tracer.spans:
        if s.name.startswith("bundle["):
            assert any(c.name == "launch" for c in s.walk())


def test_phase_counters_match_launch_spans(traced_run):
    tracer, res = traced_run
    launches = tracer.find("launch")
    assert launches, "engine must route every traversal through launch spans"
    total_is = sum(s.counters["is_calls"] for s in launches)
    assert tracer.total_counters()["is_calls"] == total_is
    roll = tracer.phase_rollup()
    assert set(roll) <= set(PHASES)  # engine spans never land in "other"
    # rollup preserves every counted IS call
    assert (
        sum(p["counters"].get("is_calls", 0) for p in roll.values())
        == total_is
    )
    # the engine's own report counts the *search* IS calls — exactly the
    # traverse phase; the FS pre-pass launch lands under schedule
    assert roll["traverse"]["counters"]["is_calls"] == res.report.is_calls
    assert total_is == (
        res.report.is_calls + roll["schedule"]["counters"]["is_calls"]
    )


def test_phase_modeled_time_sums_to_breakdown_total(traced_run):
    tracer, res = traced_run
    roll = tracer.phase_rollup()
    modeled = sum(
        p["counters"].get("modeled_s", 0.0) for p in roll.values()
    )
    assert modeled == pytest.approx(res.report.breakdown.total, rel=1e-12)


@pytest.mark.parametrize("variant", ["noopt", "sched", "sched+part"])
def test_results_bit_identical_with_and_without_tracer(
    cube_points, cube_queries, variant
):
    cfg = VARIANTS[variant]
    silent = RTNNEngine(cube_points, config=cfg, tracer=NULL_TRACER)
    traced = RTNNEngine(cube_points, config=cfg, tracer=RecordingTracer())
    a = silent.knn_search(cube_queries, k=8, radius=0.12)
    b = traced.knn_search(cube_queries, k=8, radius=0.12)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.counts, b.counts)
    assert np.array_equal(a.sq_distances, b.sq_distances)
    assert a.report.modeled_time == b.report.modeled_time


# ----------------------------------------------------------------------
# RunReport
# ----------------------------------------------------------------------
def test_run_report_round_trips_through_json(traced_run):
    tracer, res = traced_run
    rep = RunReport.from_run(
        "unit", tracer, result=res, scenario={"k": 8, "radius": 0.12}
    )
    assert rep.device == res.report.device
    assert rep.modeled_s == pytest.approx(res.report.modeled_time)
    again = RunReport.from_json(rep.to_json())
    assert again == rep
    assert again.phase_order()[0] == "data"


def test_run_report_renders_every_phase(traced_run):
    tracer, res = traced_run
    rep = RunReport.from_run("unit", tracer, result=res)
    text = render_report(rep)
    for phase in rep.phase_order():
        assert phase in text
    assert "is_calls" in text


def test_span_round_trip():
    s = Span(name="x", phase="build", wall_s=0.5,
             counters={"n": 2}, extras={"w": 1.5},
             children=[Span(name="y")])
    assert Span.from_dict(s.to_dict()) == s
