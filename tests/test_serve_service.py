"""The asyncio serving tier end to end: coalescing with bit-identical
results, admission control, deadlines, cancellation, retry/backoff,
and graceful degradation to the exact brute baseline.

No async test plugin is assumed: each test drives its scenario with
``asyncio.run`` over a small engine, using the deterministic
:class:`FaultInjector` to provoke the resilience paths on demand.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.api import SearchSession
from repro.baselines.brute import brute_force_knn
from repro.core.engine import RTNNEngine
from repro.obs.tracer import RecordingTracer
from repro.serve import (
    AdmissionError,
    DeadlineExpired,
    Fault,
    FaultInjector,
    SearchService,
    ServeError,
    ServiceConfig,
    ServiceStopped,
)
from repro.utils.rng import default_rng


K, RADIUS = 4, 0.2


@pytest.fixture(scope="module")
def world():
    rng = default_rng(42)
    points = rng.random((500, 3))
    queries = [points[rng.integers(0, 500, 8)] + rng.normal(0, 0.02, (8, 3))
               for _ in range(6)]
    return points, queries


def _service(points, *, faults=None, tracer=None, **cfg_kw):
    cfg_kw.setdefault("batch_window_s", 0.02)
    cfg_kw.setdefault("backoff_base_s", 0.001)
    engine = RTNNEngine(points, tracer=tracer) if tracer else RTNNEngine(points)
    return SearchService(engine, config=ServiceConfig(**cfg_kw), faults=faults)


# ----------------------------------------------------------------------
# coalescing + bit-identity
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["knn", "range"])
def test_concurrent_submits_coalesce_and_stay_bit_identical(world, kind):
    points, queries = world

    async def scenario():
        async with _service(points) as service:
            return await asyncio.gather(
                *(service.submit(kind, q, k=K, radius=RADIUS) for q in queries[:4])
            )

    served = asyncio.run(scenario())
    assert [r.batch_occupancy for r in served] == [4, 4, 4, 4]
    assert not any(r.degraded for r in served)
    for q, res in zip(queries, served):
        solo = RTNNEngine(points)
        direct = (
            solo.knn_search(q, k=K, radius=RADIUS)
            if kind == "knn"
            else solo.range_search(q, radius=RADIUS, k=K)
        )
        assert np.array_equal(res.indices, direct.indices)
        assert np.array_equal(res.counts, direct.counts)
        assert np.array_equal(res.sq_distances, direct.sq_distances)


def test_session_serve_surface_and_report_extras(world):
    points, queries = world
    tracer = RecordingTracer()
    session = SearchSession(points, tracer=tracer)
    service = session.serve()
    assert isinstance(service, SearchService)
    assert service.engine is session.engine

    async def scenario():
        async with service:
            await asyncio.gather(
                *(service.submit("knn", q, k=K, radius=RADIUS) for q in queries[:3])
            )

    asyncio.run(scenario())
    report = service.report(scenario={"n_points": len(points)})
    svc = report.extras["service"]
    assert svc["requests"]["completed"] == 3
    assert svc["requests"]["rejected"] == 0
    assert svc["batches"]["occupancy_max"] == 3
    assert svc["latency_s"]["p50"] is not None
    assert svc["latency_s"]["p99"] >= svc["latency_s"]["p50"]
    # the serve spans landed on the session tracer
    names = [s.name for s in tracer.spans]
    assert any(n.startswith("serve.batch[") for n in names)


# ----------------------------------------------------------------------
# admission control
# ----------------------------------------------------------------------
def test_admission_reject_carries_retry_hint(world):
    points, queries = world

    async def scenario():
        service = _service(points, max_queue_depth=1, batch_window_s=0.2)
        async with service:
            first = asyncio.ensure_future(
                service.submit("knn", queries[0], k=K, radius=RADIUS)
            )
            await asyncio.sleep(0)            # let it enqueue
            with pytest.raises(AdmissionError) as ei:
                await service.submit("knn", queries[1], k=K, radius=RADIUS)
            assert ei.value.retry_after_s > 0.0
            assert service.metrics.rejected == 1
            res = await first
        return res

    res = asyncio.run(scenario())
    assert res.batch_occupancy == 1 and not res.degraded


# ----------------------------------------------------------------------
# deadlines
# ----------------------------------------------------------------------
def test_deadline_expired_while_queued(world):
    points, queries = world

    async def scenario():
        faults = FaultInjector(stall_s=0.08)   # wedge the worker pre-dequeue
        service = _service(points, faults=faults, batch_window_s=0.0)
        async with service:
            with pytest.raises(DeadlineExpired, match="deadline at dequeue"):
                await service.submit(
                    "knn", queries[0], k=K, radius=RADIUS, deadline_s=0.02
                )
            assert service.metrics.expired == 1
            assert service.metrics.failed == 1
            # the engine never saw the request
            assert faults.launches == 0

    asyncio.run(scenario())


def test_zero_query_request_is_served(world):
    points, _ = world

    async def scenario():
        async with _service(points, batch_window_s=0.0) as service:
            return await service.submit(
                "knn", np.empty((0, 3)), k=K, radius=RADIUS
            )

    res = asyncio.run(scenario())
    assert res.results.n_queries == 0
    assert res.indices.shape == (0, K)
    assert not res.degraded


# ----------------------------------------------------------------------
# cancellation
# ----------------------------------------------------------------------
def test_cancel_then_resubmit_same_queries(world):
    points, queries = world

    async def scenario():
        service = _service(points, batch_window_s=0.1)
        async with service:
            task = asyncio.ensure_future(
                service.submit("knn", queries[0], k=K, radius=RADIUS)
            )
            await asyncio.sleep(0)
            task.cancel()
            with pytest.raises(asyncio.CancelledError):
                await task
            assert service.metrics.cancelled == 1
            # a duplicate submit after the cancel must serve normally
            res = await service.submit("knn", queries[0], k=K, radius=RADIUS)
        return service, res

    service, res = asyncio.run(scenario())
    assert not res.degraded
    assert service.metrics.completed == 1     # only the resubmission


# ----------------------------------------------------------------------
# retry + degradation
# ----------------------------------------------------------------------
def test_transient_fault_is_retried_to_success(world):
    points, queries = world

    async def scenario():
        faults = FaultInjector(script=[Fault.fail()])   # first launch only
        async with _service(points, faults=faults, max_attempts=3) as service:
            res = await service.submit("knn", queries[0], k=K, radius=RADIUS)
        return service, faults, res

    service, faults, res = asyncio.run(scenario())
    assert res.attempts == 2 and not res.degraded
    assert service.metrics.retries == 1
    assert faults.injected_errors == 1 and faults.launches == 2


def test_retry_exhaustion_degrades_to_exact_brute_fallback(world):
    points, queries = world

    async def scenario():
        faults = FaultInjector(error_rate=1.0, seed=7)
        service = _service(
            points,
            faults=faults,
            max_attempts=2,
            degrade_after=1,
            degrade_cooldown_s=5.0,
        )
        async with service:
            res = await service.submit("knn", queries[0], k=K, radius=RADIUS)
            launches_after_first = faults.launches
            assert service.degraded_mode      # cooldown tripped
            # during the cooldown the engine is skipped entirely
            res2 = await service.submit("knn", queries[1], k=K, radius=RADIUS)
        return service, faults, res, res2, launches_after_first

    service, faults, res, res2, launches = asyncio.run(scenario())
    assert res.degraded and res.attempts == 2
    assert res2.degraded
    assert faults.launches == launches == 2   # no launch during cooldown
    assert service.metrics.fallback_batches == 2
    # degraded answers are still exact: they come from the brute oracle
    for q, r in zip([world[1][0], world[1][1]], [res, res2]):
        ref = brute_force_knn(points, q, k=K, radius=RADIUS)
        assert np.array_equal(r.indices, ref.indices)
        assert np.array_equal(r.counts, ref.counts)
        assert np.array_equal(r.sq_distances, ref.sq_distances)


def test_fault_pattern_deterministic_under_fixed_seed(world):
    points, queries = world

    def run_once():
        async def scenario():
            faults = FaultInjector(error_rate=0.5, seed=321)
            service = _service(
                points,
                faults=faults,
                max_attempts=1,
                degrade_after=10_000,         # never trip the cooldown
                batch_window_s=0.0,
            )
            flags = []
            async with service:
                for q in queries:
                    res = await service.submit("knn", q, k=K, radius=RADIUS)
                    flags.append(res.degraded)
            return flags

        return asyncio.run(scenario())

    a, b = run_once(), run_once()
    assert a == b
    assert True in a and False in a


def test_internal_error_fails_batch_but_worker_survives(world):
    points, queries = world

    async def scenario():
        faults = FaultInjector(error_rate=1.0, seed=0)
        service = _service(
            points,
            faults=faults,
            max_attempts=1,
            degrade_after=10_000,
            batch_window_s=0.0,
        )
        real_fallback = service._fallback
        service._fallback = lambda batch: (_ for _ in ()).throw(ValueError("bug"))
        async with service:
            with pytest.raises(ServeError, match="internal service error"):
                await service.submit("knn", queries[0], k=K, radius=RADIUS)
            # the worker is still alive: repair the fallback and serve
            service._fallback = real_fallback
            res = await service.submit("knn", queries[1], k=K, radius=RADIUS)
        return res

    res = asyncio.run(scenario())
    assert res.degraded                       # engine still failing, brute answers


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_stop_without_drain_fails_pending_and_blocks_submits(world):
    points, queries = world

    async def scenario():
        service = _service(points, batch_window_s=0.5)
        await service.start()
        task = asyncio.ensure_future(
            service.submit("knn", queries[0], k=K, radius=RADIUS)
        )
        await asyncio.sleep(0)
        await service.stop(drain=False)
        with pytest.raises(ServiceStopped):
            await task
        with pytest.raises(ServiceStopped):
            await service.submit("knn", queries[1], k=K, radius=RADIUS)

    asyncio.run(scenario())


def test_stop_with_drain_serves_everything_queued(world):
    points, queries = world

    async def scenario():
        service = _service(points, batch_window_s=0.5)
        await service.start()
        tasks = [
            asyncio.ensure_future(service.submit("knn", q, k=K, radius=RADIUS))
            for q in queries[:3]
        ]
        await asyncio.sleep(0)
        await service.stop(drain=True)        # skips the window, serves all
        return await asyncio.gather(*tasks)

    served = asyncio.run(scenario())
    assert len(served) == 3
    assert not any(r.degraded for r in served)


def test_submit_validates_inputs(world):
    points, queries = world

    async def scenario():
        async with _service(points) as service:
            with pytest.raises(ValueError, match="kind"):
                await service.submit("ball", queries[0], k=K, radius=RADIUS)
            with pytest.raises(ValueError, match="radius"):
                await service.submit("knn", queries[0], k=K, radius=-1.0)
            with pytest.raises(ValueError, match="k must"):
                await service.submit("knn", queries[0], k=0, radius=RADIUS)

    asyncio.run(scenario())
