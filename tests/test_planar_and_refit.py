"""2-D planar search and BVH refit tests."""

import numpy as np
import pytest

from repro.bvh import build_lbvh, build_median_split, refit_bvh, validate_bvh
from repro.core import PlanarRTNN
from repro.geometry.aabb import aabbs_from_points


# ---------------------------------------------------------------------
# PlanarRTNN
# ---------------------------------------------------------------------
def _brute_2d(pts, q, r, k):
    d = np.linalg.norm(pts[None, :, :] - q[:, None, :], axis=2)
    out = []
    for row in d:
        ids = np.flatnonzero(row <= r)
        out.append(set(ids[np.argsort(row[ids])][:k].tolist()))
    return out


def test_planar_knn_exact():
    rng = np.random.default_rng(0)
    pts = rng.random((800, 2))
    q = rng.random((150, 2))
    r, k = 0.1, 5
    res = PlanarRTNN(pts).knn_search(q, k=k, radius=r)
    ref = _brute_2d(pts, q, r, k)
    for i in range(len(q)):
        assert set(res.indices[i][: res.counts[i]].tolist()) == ref[i]


def test_planar_range_counts():
    rng = np.random.default_rng(1)
    pts = rng.random((600, 2))
    q = rng.random((100, 2))
    r = 0.12
    res = PlanarRTNN(pts).range_search(q, radius=r, k=1000)
    d = np.linalg.norm(pts[None] - q[:, None], axis=2)
    assert (res.counts == (d <= r).sum(axis=1)).all()


def test_planar_rejects_3d():
    with pytest.raises(ValueError):
        PlanarRTNN(np.zeros((5, 3)))
    p = PlanarRTNN(np.random.default_rng(0).random((10, 2)))
    with pytest.raises(ValueError):
        p.knn_search(np.zeros((2, 3)), k=1, radius=0.1)


def test_planar_report_present():
    pts = np.random.default_rng(2).random((200, 2))
    res = PlanarRTNN(pts).knn_search(pts[:10], k=3, radius=0.2)
    assert res.report.modeled_time > 0


# ---------------------------------------------------------------------
# refit
# ---------------------------------------------------------------------
@pytest.mark.parametrize("builder", [build_lbvh, build_median_split])
def test_refit_matches_rebuild_bounds(builder):
    rng = np.random.default_rng(3)
    pts = rng.random((300, 3))
    lo, hi = aabbs_from_points(pts, 0.05)
    bvh = builder(lo, hi, leaf_size=3)
    moved = pts + rng.normal(0, 0.02, pts.shape)
    nlo, nhi = aabbs_from_points(moved, 0.05)
    refit_bvh(bvh, nlo, nhi)
    validate_bvh(bvh)  # all invariants hold on the refitted tree


def test_refit_traversal_still_exact():
    from repro.bvh import trace_batch
    from repro.optix.shaders import CountingShader

    rng = np.random.default_rng(4)
    pts = rng.random((400, 3))
    lo, hi = aabbs_from_points(pts, 0.06)
    bvh = build_lbvh(lo, hi, leaf_size=2)
    moved = pts + rng.normal(0, 0.05, pts.shape)
    refit_bvh(bvh, *aabbs_from_points(moved, 0.06))

    rays = rng.random((100, 3))
    dirs = np.broadcast_to(np.array([1.0, 0.0, 0.0]), rays.shape).copy()
    shader = CountingShader(100)
    trace_batch(bvh, rays, dirs, 0.0, 1e-16, shader)
    cheb = np.abs(rays[:, None] - moved[None]).max(axis=2)
    assert (shader.calls == (cheb <= 0.06).sum(axis=1)).all()


def test_refit_validation():
    pts = np.random.default_rng(5).random((50, 3))
    lo, hi = aabbs_from_points(pts, 0.05)
    bvh = build_lbvh(lo, hi)
    with pytest.raises(ValueError):
        refit_bvh(bvh, lo[:10], hi[:10])
    with pytest.raises(ValueError):
        refit_bvh(bvh, hi, lo)
