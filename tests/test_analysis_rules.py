"""Per-rule unit tests: each family fires on a broken fixture and
stays silent on a correct one."""

import textwrap

from repro.analysis import AnalysisConfig, analyze_source

#: virtual paths placing fixtures in each scoping class
HOT = "repro/core/fixture.py"        # hot + modeled
SHADERS = "repro/core/shaders.py"    # hot + modeled + shader module
COLD = "repro/experiments/fixture.py"


def ids(findings):
    return [f.rule_id for f in findings]


def run(source, rel_path=HOT, **cfg):
    return analyze_source(
        textwrap.dedent(source), rel_path, AnalysisConfig(**cfg)
    )


# ----------------------------------------------------------------------
# SHD — shader contracts
# ----------------------------------------------------------------------
GOOD_SHADER = """
    class GoodShader:
        def __init__(self, query_ids, acc):
            self.query_ids = query_ids
            self.acc = acc

        def __call__(self, ray_ids, prim_ids):
            self.acc.insert(self.query_ids[ray_ids], prim_ids)
            return None
"""


def test_shd001_fires_on_wrong_signature():
    findings = run(
        """
        class BadShader:
            def __call__(self, single_ray, prim):
                return None
        """,
        rel_path=SHADERS,
    )
    assert "SHD001" in ids(findings)


def test_shd001_fires_on_missing_call():
    findings = run(
        """
        class NoCallShader:
            def process(self, ray_ids, prim_ids):
                return None
        """
    )
    assert "SHD001" in ids(findings)


def test_shd001_silent_on_contract_signature():
    assert ids(run(GOOD_SHADER, rel_path=SHADERS)) == []


def test_shd002_fires_on_geometry_write():
    findings = run(
        """
        class MutatingShader:
            def __init__(self, points, query_ids):
                self.points = points
                self.query_ids = query_ids

            def __call__(self, ray_ids, prim_ids):
                self.points[prim_ids] = 0.0
                q = self.query_ids[ray_ids]
                return None
        """
    )
    assert "SHD002" in ids(findings)


def test_shd002_silent_on_accumulator_writes():
    findings = run(
        """
        import numpy as np

        class AccumShader:
            def __init__(self, n, query_ids):
                self.first_hit = np.full(n, -1)
                self.query_ids = query_ids

            def __call__(self, ray_ids, prim_ids):
                self.first_hit[self.query_ids[ray_ids]] = prim_ids
                return ray_ids
        """
    )
    assert "SHD002" not in ids(findings)


def test_shd003_fires_when_ray_ids_used_untranslated():
    findings = run(
        """
        class UntranslatedShader:
            def __init__(self, query_ids, acc):
                self.query_ids = query_ids
                self.acc = acc

            def __call__(self, ray_ids, prim_ids):
                self.acc.insert(ray_ids, prim_ids)
                return None
        """
    )
    assert "SHD003" in ids(findings)


def test_shd003_silent_without_query_state():
    findings = run(
        """
        import numpy as np

        class CountingShader:
            def __init__(self, n_rays):
                self.calls = np.zeros(n_rays)

            def __call__(self, ray_ids, prim_ids):
                self.calls[ray_ids] += 1
                return None
        """
    )
    assert "SHD003" not in ids(findings)


# ----------------------------------------------------------------------
# VEC — lockstep / vectorization
# ----------------------------------------------------------------------
def test_vec001_fires_on_scalar_ray_loop():
    findings = run(
        """
        def slow(ray_ids, out):
            for r in ray_ids:
                out[r] += 1
        """
    )
    assert "VEC001" in ids(findings)


def test_vec001_fires_on_range_len_and_tolist():
    src = """
        def slow(points, queries):
            total = 0.0
            for i in range(len(points)):
                total += points[i][0]
            return [q for q in queries.tolist()] and total
    """
    assert ids(run(src)).count("VEC001") == 2


def test_vec001_silent_outside_hot_modules_and_on_batches():
    src = """
        def fine(ray_ids, out):
            out[ray_ids] += 1
            for chunk in range(0, 10, 2):
                out[chunk:] *= 2
    """
    assert ids(run(src)) == []
    slow = """
        def slow(ray_ids, out):
            for r in ray_ids:
                out[r] += 1
    """
    assert ids(run(slow, rel_path=COLD)) == []


def test_vec002_fires_on_np_append():
    findings = run(
        """
        import numpy as np

        def grow(acc, more):
            return np.append(acc, more)
        """
    )
    assert "VEC002" in ids(findings)


def test_vec002_silent_on_concatenate():
    findings = run(
        """
        import numpy as np

        def grow(parts):
            return np.concatenate(parts)
        """
    )
    assert ids(findings) == []


def test_vec003_fires_on_mixed_dtypes():
    findings = run(
        """
        import numpy as np

        def mixed(n):
            a = np.zeros(n, dtype=np.float32)
            b = np.ones(n, dtype=np.float64)
            return a + b
        """
    )
    assert "VEC003" in ids(findings)


def test_vec003_silent_on_uniform_dtype():
    findings = run(
        """
        import numpy as np

        def uniform(n):
            a = np.zeros(n, dtype=np.float64)
            b = np.ones(n, dtype=np.float64)
            return a + b
        """
    )
    assert ids(findings) == []


# ----------------------------------------------------------------------
# COST — accounting
# ----------------------------------------------------------------------
def test_cost001_fires_on_raw_trace_batch():
    findings = run(
        """
        from repro.bvh.traverse import trace_batch

        def free_work(bvh, o, d, shader):
            return trace_batch(bvh, o, d, 0.0, 1e-16, shader)
        """
    )
    assert "COST001" in ids(findings)


def test_cost001_silent_in_pipeline_module():
    findings = run(
        """
        from repro.bvh.traverse import trace_batch

        def launch(bvh, o, d, shader):
            return trace_batch(bvh, o, d, 0.0, 1e-16, shader)
        """,
        rel_path="repro/optix/pipeline.py",
    )
    assert ids(findings) == []


def test_cost002_fires_on_discarded_launch():
    findings = run(
        """
        def run(pipeline, gas, rays, shader, kind):
            pipeline.launch(gas, rays, shader, kind)
        """
    )
    assert "COST002" in ids(findings)


def test_cost002_silent_when_cost_captured():
    findings = run(
        """
        def run(pipeline, gas, rays, shader, kind, breakdown):
            launch = pipeline.launch(gas, rays, shader, kind)
            breakdown.search += launch.modeled_time
            return launch
        """
    )
    assert ids(findings) == []


def test_cost003_fires_on_distance_outside_shaders():
    findings = run(
        """
        import numpy as np

        def free_distance(a, b):
            d = a - b
            return np.einsum("ij,ij->i", d, d)
        """
    )
    assert "COST003" in ids(findings)


def test_cost003_silent_in_shader_module_and_cold_code():
    src = """
        import numpy as np

        def _pair_sq_dist(a, b):
            d = a - b
            return np.einsum("ij,ij->i", d, d)
    """
    assert ids(run(src, rel_path=SHADERS)) == []
    assert ids(run(src, rel_path=COLD)) == []


# ----------------------------------------------------------------------
# API — hygiene
# ----------------------------------------------------------------------
def test_api001_fires_on_direct_rng():
    findings = run(
        """
        import numpy as np

        def jitter(points):
            return points + np.random.default_rng().normal()
        """,
        rel_path=COLD,
    )
    assert "API001" in ids(findings)


def test_api001_silent_in_rng_module_and_on_plumbing():
    src = """
        import numpy as np

        def default_rng(seed=None):
            if isinstance(seed, np.random.Generator):
                return seed
            return np.random.default_rng(seed)
    """
    assert ids(run(src, rel_path="repro/utils/rng.py")) == []
    plumbed = """
        from repro.utils.rng import default_rng

        def jitter(points, seed=None):
            return points + default_rng(seed).normal()
    """
    assert ids(run(plumbed, rel_path=COLD)) == []


def test_api002_fires_on_wall_clock_in_modeled_code():
    findings = run(
        """
        import time

        def modeled(trace):
            return time.perf_counter()
        """
    )
    assert "API002" in ids(findings)


def test_api002_silent_outside_modeled_modules():
    findings = run(
        """
        import time

        def wall():
            return time.perf_counter()
        """,
        rel_path=COLD,
    )
    assert ids(findings) == []


def test_api003_fires_on_unused_import():
    findings = run(
        """
        import os
        import sys

        def cwd():
            return os.getcwd()
        """,
        rel_path=COLD,
    )
    assert [f.rule_id for f in findings] == ["API003"]
    assert "sys" in findings[0].message


def test_api003_silent_on_future_reexport_and_used():
    findings = run(
        """
        from __future__ import annotations

        import os
        from os import path

        __all__ = ["path"]

        def cwd():
            return os.getcwd()
        """,
        rel_path=COLD,
    )
    assert ids(findings) == []


# ----------------------------------------------------------------------
# engine mechanics
# ----------------------------------------------------------------------
def test_inline_noqa_suppresses_only_named_rule():
    src = """
        def slow(ray_ids, out):
            for r in ray_ids:  # noqa: VEC001
                out[r] += 1
    """
    assert ids(run(src)) == []
    other = """
        def slow(ray_ids, out):
            for r in ray_ids:  # noqa: SHD001
                out[r] += 1
    """
    assert ids(run(other)) == ["VEC001"]


def test_bare_noqa_suppresses_everything_on_line():
    src = """
        import numpy as np

        def grow(acc, more):
            return np.append(acc, more)  # noqa
    """
    assert ids(run(src)) == []


def test_select_and_ignore_prefixes():
    src = """
        import numpy as np

        def grow(ray_ids, acc):
            for r in ray_ids:
                acc = np.append(acc, r)
            return acc
    """
    assert set(ids(run(src))) == {"VEC001", "VEC002"}
    assert ids(run(src, select=("VEC002",))) == ["VEC002"]
    assert ids(run(src, ignore=("VEC",))) == []


# ----------------------------------------------------------------------
# exempt-modules — observability code rides beside the hot loop
# ----------------------------------------------------------------------
#: a tracer callback that walks ray_ids scalar-wise AND defines a class
#: the shader-contract rules would flag — legal in repro/obs/, not in
#: hot code.
OBS_STYLE_SOURCE = """
    class TimelineShader:
        def __call__(self, ray_ids):
            for r in ray_ids:
                self.events.append(r)
"""

OBS = "repro/obs/tracer_fixture.py"


def test_exempt_module_skips_vec_and_shd():
    findings = run(
        OBS_STYLE_SOURCE,
        rel_path=OBS,
        hot_modules=("repro/",),       # would otherwise cover repro/obs/
        exempt_modules=("repro/obs/",),
    )
    assert ids(findings) == []


def test_same_source_still_fires_outside_exempt_modules():
    findings = run(
        OBS_STYLE_SOURCE,
        rel_path=HOT,
        exempt_modules=("repro/obs/",),
    )
    assert "VEC001" in ids(findings)
    assert "SHD001" in ids(findings)


def test_default_config_exempts_repro_obs():
    from repro.analysis.config import AnalysisConfig as _Cfg

    cfg = _Cfg()
    assert cfg.is_exempt("repro/obs/bench.py")
    assert not cfg.is_hot("repro/obs/bench.py")
    assert not cfg.is_exempt(HOT)


def test_exempt_modules_loads_from_pyproject(tmp_path):
    from repro.analysis.config import load_config

    (tmp_path / "pyproject.toml").write_text(
        '[tool.repro-analysis]\nexempt-modules = ["repro/custom_obs/"]\n'
    )
    cfg = load_config(tmp_path)
    assert cfg.exempt_modules == ("repro/custom_obs/",)
