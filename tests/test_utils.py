"""Validation and RNG helper tests."""

import numpy as np
import pytest

from repro.utils import (
    as_points,
    check_finite,
    check_positive,
    check_positive_int,
    default_rng,
)


def test_as_points_coerces():
    out = as_points([[1, 2, 3]])
    assert out.dtype == np.float64
    assert out.flags.c_contiguous
    assert out.shape == (1, 3)


def test_as_points_single_point():
    assert as_points([1.0, 2.0, 3.0]).shape == (1, 3)


def test_as_points_single_point_dims_none():
    # a bare 1-D coordinate is unambiguous even with dims left open
    assert as_points([1.0, 2.0, 3.0], dims=None).shape == (1, 3)
    assert as_points([1.0, 2.0], dims=None).shape == (1, 2)
    with pytest.raises(ValueError):
        as_points([1.0, 2.0, 3.0, 4.0], dims=None)


def test_as_points_rejects():
    with pytest.raises(ValueError):
        as_points(np.zeros((2, 4)))
    with pytest.raises(ValueError):
        as_points(np.zeros((2, 2)))  # dims defaults to 3
    with pytest.raises(ValueError):
        as_points([[1.0, np.nan, 2.0]])
    with pytest.raises(ValueError):
        as_points(np.zeros((2, 2, 2)))


def test_as_points_2d_allowed():
    assert as_points(np.zeros((4, 2)), dims=2).shape == (4, 2)
    assert as_points(np.zeros((4, 2)), dims=None).shape == (4, 2)


def test_check_finite():
    with pytest.raises(ValueError):
        check_finite(np.array([np.inf]), "x")
    check_finite(np.array([1.0]), "x")


def test_check_positive():
    assert check_positive(2, "x") == 2.0
    for bad in (0, -1, np.nan, np.inf):
        with pytest.raises(ValueError):
            check_positive(bad, "x")


def test_check_positive_int():
    assert check_positive_int(3, "x") == 3
    for bad in (0, -2, 1.5):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")


def test_check_positive_int_accepts_integral_scalars():
    assert check_positive_int(np.int64(5), "x") == 5
    assert check_positive_int(np.uint8(2), "x") == 2
    assert check_positive_int(4.0, "x") == 4


def test_check_positive_int_rejects_bools():
    # int(True) == 1, so k=True would silently mean k=1 otherwise
    for bad in (True, False, np.True_, np.False_):
        with pytest.raises(ValueError):
            check_positive_int(bad, "x")


def test_default_rng_passthrough():
    g = np.random.default_rng(0)
    assert default_rng(g) is g
    a = default_rng(7).random()
    b = default_rng(7).random()
    assert a == b
