"""One-shot API and SearchSession tests."""

import numpy as np

from repro.api import SearchSession, knn_search, range_search
from repro.core.engine import RTNNConfig
from repro.gpu.device import RTX_2080TI


def test_knn_one_shot(cube_points, cube_queries):
    res = knn_search(cube_points, cube_queries, k=4, radius=0.1)
    assert res.indices.shape == (len(cube_queries), 4)
    assert res.report is not None


def test_range_one_shot(cube_points, cube_queries):
    res = range_search(cube_points, cube_queries, radius=0.1, k=8)
    assert (res.counts <= 8).all()


def test_one_shot_passes_options(cube_points, cube_queries):
    res = knn_search(
        cube_points,
        cube_queries,
        k=4,
        radius=0.1,
        device=RTX_2080TI,
        config=RTNNConfig(schedule=False),
    )
    assert res.report.device == "RTX 2080 Ti"


def test_one_shot_matches_engine(cube_points, cube_queries):
    from repro import RTNNEngine

    a = knn_search(cube_points, cube_queries, k=4, radius=0.1)
    b = RTNNEngine(cube_points).knn_search(cube_queries, k=4, radius=0.1)
    assert (a.indices == b.indices).all()


def test_session_is_importable_from_package():
    import repro

    assert repro.SearchSession is SearchSession


def test_session_amortizes_builds(cube_points, cube_queries):
    session = SearchSession(cube_points)
    first = session.knn_search(cube_queries, k=4, radius=0.1)
    warm = session.knn_search(cube_queries, k=4, radius=0.1)
    assert first.report.n_bvh_builds > 0
    assert warm.report.n_bvh_builds == 0
    assert (warm.indices == first.indices).all()
    stats = session.cache_stats
    assert set(stats) == {"hits", "misses", "evictions"}
    assert stats["hits"] > 0


def test_session_matches_one_shot(cube_points, cube_queries):
    a = SearchSession(cube_points).range_search(cube_queries, radius=0.1, k=8)
    b = range_search(cube_points, cube_queries, radius=0.1, k=8)
    assert (a.indices == b.indices).all()
    assert (a.counts == b.counts).all()


def test_session_with_config_and_update(cube_points, cube_queries):
    session = SearchSession(cube_points, config=RTNNConfig(schedule=True))
    session.knn_search(cube_queries, k=4, radius=0.1)
    other = session.with_config(schedule=False)
    assert isinstance(other, SearchSession)
    assert not other.config.schedule
    assert other.cache_stats["hits"] == 0  # derived sessions start cold
    moved = np.asarray(cube_points) + 0.001
    assert session.update_points(moved) > 0.0
    assert (session.points == moved).all()
