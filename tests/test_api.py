"""One-shot API tests."""

import numpy as np

from repro.api import knn_search, range_search
from repro.core.engine import RTNNConfig
from repro.gpu.device import RTX_2080TI


def test_knn_one_shot(cube_points, cube_queries):
    res = knn_search(cube_points, cube_queries, k=4, radius=0.1)
    assert res.indices.shape == (len(cube_queries), 4)
    assert res.report is not None


def test_range_one_shot(cube_points, cube_queries):
    res = range_search(cube_points, cube_queries, radius=0.1, k=8)
    assert (res.counts <= 8).all()


def test_one_shot_passes_options(cube_points, cube_queries):
    res = knn_search(
        cube_points,
        cube_queries,
        k=4,
        radius=0.1,
        device=RTX_2080TI,
        config=RTNNConfig(schedule=False),
    )
    assert res.report.device == "RTX 2080 Ti"


def test_one_shot_matches_engine(cube_points, cube_queries):
    from repro import RTNNEngine

    a = knn_search(cube_points, cube_queries, k=4, radius=0.1)
    b = RTNNEngine(cube_points).knn_search(cube_queries, k=4, radius=0.1)
    assert (a.indices == b.indices).all()
