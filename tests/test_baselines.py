"""Baseline searchers vs the brute-force oracle."""

import numpy as np
import pytest

from repro.baselines import (
    CuNSearch,
    FRNN,
    FastRNN,
    PCLOctree,
    brute_force_knn,
    brute_force_range,
)


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(42)
    pts = rng.random((1200, 3))
    q = rng.random((350, 3))
    return pts, q, 0.11


def _sets(res):
    return [
        set(res.indices[i][: res.counts[i]].tolist()) for i in range(res.n_queries)
    ]


def test_brute_range_counts(setup):
    pts, q, r = setup
    res = brute_force_range(pts, q, r, k=2000)
    # spot-check against direct computation
    for i in range(0, len(q), 50):
        d = np.linalg.norm(pts - q[i], axis=1)
        assert res.counts[i] == (d <= r).sum()


def test_brute_knn_sorted(setup):
    pts, q, r = setup
    res = brute_force_knn(pts, q, k=5, radius=r)
    d = res.sq_distances
    for i in range(len(q)):
        c = res.counts[i]
        assert (np.diff(d[i][:c]) >= 0).all()


def test_cunsearch_exact(setup):
    pts, q, r = setup
    got = CuNSearch(pts).range_search(q, r, k=2000)
    ref = brute_force_range(pts, q, r, k=2000)
    assert _sets(got) == _sets(ref)
    assert got.report.modeled_time > 0


def test_cunsearch_bounded_k(setup):
    pts, q, r = setup
    got = CuNSearch(pts).range_search(q, r, k=3)
    ref = brute_force_range(pts, q, r, k=2000)
    for i in range(len(q)):
        assert got.counts[i] == min(ref.counts[i], 3)
        d2 = ((pts[got.indices[i][: got.counts[i]]] - q[i]) ** 2).sum(axis=1)
        assert (d2 <= r * r * (1 + 1e-12)).all()


def test_frnn_exact(setup):
    pts, q, r = setup
    got = FRNN(pts).knn_search(q, k=7, radius=r)
    ref = brute_force_knn(pts, q, k=7, radius=r)
    for i in range(len(q)):
        assert got.counts[i] == ref.counts[i]
        np.testing.assert_allclose(
            got.sq_distances[i][: got.counts[i]],
            ref.sq_distances[i][: ref.counts[i]],
            rtol=1e-9,
        )


def test_pcl_octree_range_exact(setup):
    pts, q, r = setup
    got = PCLOctree(pts).range_search(q, r, k=2000)
    ref = brute_force_range(pts, q, r, k=2000)
    assert _sets(got) == _sets(ref)


def test_pcl_octree_nn_exact(setup):
    pts, q, r = setup
    got = PCLOctree(pts).knn_search(q, k=1, radius=r)
    ref = brute_force_knn(pts, q, k=1, radius=r)
    assert (got.counts == ref.counts).all()
    both = (got.counts == 1) & (ref.counts == 1)
    np.testing.assert_allclose(
        got.sq_distances[both, 0], ref.sq_distances[both, 0], rtol=1e-9
    )


def test_pcl_octree_rejects_k_gt_1(setup):
    pts, q, r = setup
    with pytest.raises(ValueError):
        PCLOctree(pts).knn_search(q, k=2, radius=r)


def test_fastrnn_exact(setup):
    pts, q, r = setup
    got = FastRNN(pts).knn_search(q, k=5, radius=r)
    ref = brute_force_knn(pts, q, k=5, radius=r)
    for i in range(len(q)):
        assert got.counts[i] == ref.counts[i]
        np.testing.assert_allclose(
            np.sort(got.sq_distances[i][: got.counts[i]]),
            ref.sq_distances[i][: ref.counts[i]],
            rtol=1e-9,
        )


def test_memory_models_positive(setup):
    pts, _, r = setup
    assert CuNSearch(pts).modeled_memory_bytes(10**7, r, 1.0) > 0
    assert FRNN(pts).modeled_memory_bytes(10**7, r, 1.0) > 0
    assert PCLOctree(pts).modeled_memory_bytes(10**7) > 0
    assert FastRNN(pts).modeled_memory_bytes(10**7) > 0


def test_grid_memory_blows_up_with_small_radius(setup):
    pts, _, _ = setup
    cu = CuNSearch(pts)
    assert cu.modeled_memory_bytes(10**6, 0.001, 100.0) > cu.modeled_memory_bytes(
        10**6, 1.0, 100.0
    )


def test_grid_chunking_matches_unchunked(setup):
    """Chunk boundaries must not change results (CSR bookkeeping)."""
    pts, q, r = setup
    a = CuNSearch(pts, chunk_size=64).range_search(q, r, k=2000)
    b = CuNSearch(pts).range_search(q, r, k=2000)
    assert _sets(a) == _sets(b)
    assert a.report.extras["candidates"] == b.report.extras["candidates"]
    fa = FRNN(pts, chunk_size=64).knn_search(q, k=6, radius=r)
    fb = FRNN(pts).knn_search(q, k=6, radius=r)
    assert (fa.counts == fb.counts).all()
    assert (fa.indices == fb.indices).all()


def test_chunk_size_validated(setup):
    pts, _, _ = setup
    with pytest.raises(ValueError):
        CuNSearch(pts, chunk_size=0)
    with pytest.raises(ValueError):
        FRNN(pts, chunk_size=-1)
