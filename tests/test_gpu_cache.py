"""Cache-hierarchy and sampled-tracer tests."""

import numpy as np
import pytest

from repro.gpu.cache import (
    CacheHierarchy,
    IDS_PER_LINE,
    SampledCacheTracer,
    _SetAssociativeLRU,
)


def test_lru_hits_on_repeat():
    c = _SetAssociativeLRU(n_sets=4, n_ways=2)
    assert not c.access(0)       # cold miss
    assert c.access(0)           # hit
    assert c.stats.hits == 1 and c.stats.misses == 1


def test_lru_eviction_order():
    c = _SetAssociativeLRU(n_sets=1, n_ways=2)
    c.access(0)
    c.access(1)
    c.access(0)        # refresh 0 -> 1 becomes LRU
    c.access(2)        # evicts 1
    assert c.access(0)
    assert not c.access(1)


def test_lru_set_isolation():
    c = _SetAssociativeLRU(n_sets=2, n_ways=1)
    c.access(0)  # set 0
    c.access(1)  # set 1
    assert c.access(0) and c.access(1)


def test_lru_validation():
    with pytest.raises(ValueError):
        _SetAssociativeLRU(0, 1)


def test_hierarchy_l2_catches_l1_miss():
    h = CacheHierarchy(l1_kb=1, l2_kb=64, l2_share=1.0)
    # Touch enough distinct lines to overflow L1 (8 lines) but not L2.
    for line in range(32):
        h.access(line)
    for line in range(32):
        h.access(line)
    assert h.l1_stats.hit_rate < 1.0
    assert h.l2_stats.hits > 0


def test_tracer_sampled_block_contiguous():
    t = SampledCacheTracer(n_rays=32 * 100, max_warps=8)
    assert len(t.sampled) == 8
    assert (np.diff(t.sampled) == 1).all()
    assert np.isclose(t.sample_fraction, 8 / 100)


def test_tracer_small_launch_samples_everything():
    t = SampledCacheTracer(n_rays=64, max_warps=8)
    assert t.sample_fraction == 1.0


def test_tracer_coherent_hits_more_than_random():
    n_rays = 32 * 32
    coh = SampledCacheTracer(n_rays)
    rnd = SampledCacheTracer(n_rays)
    rng = np.random.default_rng(0)
    rays = np.arange(n_rays)
    for it in range(40):
        # coherent: whole warp reads the same node
        nodes_c = np.repeat(np.arange(n_rays // 32) * 7 + it, 32)
        coh.on_node_access(it, rays, nodes_c)
        # random: every lane somewhere else
        nodes_r = rng.integers(0, 100_000, n_rays)
        rnd.on_node_access(it, rays, nodes_r)
    assert coh.l1_hit_rate > rnd.l1_hit_rate + 0.3


def test_tracer_scaled_misses():
    t = SampledCacheTracer(n_rays=32 * 16, max_warps=8)
    rays = np.arange(32 * 16)
    t.on_node_access(0, rays, np.arange(32 * 16) * IDS_PER_LINE)
    # half the warps sampled -> misses scale by 2
    assert t.scaled_l1_misses() == t.hier.l1_stats.misses * 2
