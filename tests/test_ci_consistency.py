"""`make ci` and `.github/workflows/ci.yml` must describe the same gates.

The Makefile's ``ci`` target is the local mirror of the workflow; they
used to drift every time a job was added. These tests parse both files
(plain text — no YAML dependency) and fail on any divergence:

* the sequence of ``make`` targets the workflow jobs run must equal
  the ``ci`` target's prerequisite list, in order;
* every workflow job must carry ``timeout-minutes``;
* the workflow must cancel superseded runs (``concurrency`` group with
  ``cancel-in-progress``);
* every pip cache must be keyed on ``pyproject.toml``;
* the test matrix must cover Python 3.13 and upload a JUnit artifact.
"""

from __future__ import annotations

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
WORKFLOW = REPO / ".github" / "workflows" / "ci.yml"
MAKEFILE = REPO / "Makefile"


def _workflow_text() -> str:
    return WORKFLOW.read_text()


def _make_targets_in_workflow() -> list[str]:
    """Every `run: make <target>` in the workflow, in file order."""
    return re.findall(
        r"^\s*run:\s*make\s+([A-Za-z0-9_-]+)", _workflow_text(), re.MULTILINE
    )


def _ci_prerequisites() -> list[str]:
    match = re.search(r"^ci:\s*(.+)$", MAKEFILE.read_text(), re.MULTILINE)
    assert match, "Makefile has no `ci:` target"
    return match.group(1).split()


def _job_names() -> list[str]:
    """Top-level job keys (2-space indent under `jobs:`), in order."""
    text = _workflow_text()
    jobs_at = text.index("\njobs:")
    return re.findall(r"^  ([A-Za-z0-9_-]+):\s*$", text[jobs_at:], re.MULTILINE)


def test_make_ci_mirrors_workflow_gates_in_order():
    workflow = _make_targets_in_workflow()
    makefile = _ci_prerequisites()
    assert workflow == makefile, (
        "make ci and ci.yml drifted:\n"
        f"  workflow runs: {workflow}\n"
        f"  make ci runs:  {makefile}"
    )


def test_every_workflow_job_runs_exactly_one_make_gate():
    # One gate per job keeps the mirror mapping unambiguous.
    assert len(_make_targets_in_workflow()) == len(_job_names())


def test_every_job_has_a_timeout():
    text = _workflow_text()
    jobs = _job_names()
    timeouts = re.findall(r"^    timeout-minutes:\s*\d+\s*$", text, re.MULTILINE)
    assert len(timeouts) == len(jobs), (
        f"{len(jobs)} jobs but {len(timeouts)} timeout-minutes entries — "
        "every job must bound its runtime"
    )


def test_workflow_cancels_superseded_runs():
    text = _workflow_text()
    assert re.search(r"^concurrency:", text, re.MULTILINE), (
        "ci.yml needs a top-level concurrency group"
    )
    assert "cancel-in-progress: true" in text


def test_pip_caches_are_keyed_on_pyproject():
    text = _workflow_text()
    caches = len(re.findall(r"^\s*cache:\s*pip\s*$", text, re.MULTILINE))
    keys = len(
        re.findall(
            r"^\s*cache-dependency-path:\s*pyproject\.toml\s*$",
            text,
            re.MULTILINE,
        )
    )
    assert caches > 0
    assert caches == keys, (
        f"{caches} pip caches but {keys} keyed on pyproject.toml — "
        "dependency bumps would not invalidate the others"
    )


def test_matrix_covers_python_313_and_uploads_junit():
    text = _workflow_text()
    matrix = re.search(r"python-version:\s*\[([^\]]+)\]", text)
    assert matrix, "test job has no python-version matrix"
    versions = [v.strip().strip("\"'") for v in matrix.group(1).split(",")]
    assert "3.13" in versions, f"matrix {versions} is missing 3.13"
    assert "--junitxml=" in text, "test job does not produce a JUnit report"
    assert re.search(r"name:\s*pytest-junit", text), (
        "JUnit report is not uploaded as an artifact"
    )
    assert "if: always()" in text, (
        "JUnit upload must run on failure too — that is its entire point"
    )


def test_shard_smoke_gate_is_wired():
    assert "serve-shard-smoke" in _ci_prerequisites()
    assert "serve-shard-smoke" in _job_names()
    make_text = MAKEFILE.read_text()
    assert "--shard-smoke" in make_text
    assert "--min-scaling 2.5" in make_text


def test_true_knn_smoke_gate_is_wired():
    assert "true-knn-smoke" in _ci_prerequisites()
    assert "true-knn-smoke" in _job_names()
    make_text = MAKEFILE.read_text()
    assert "--true-knn-smoke" in make_text
    assert "--mode true-knn" in make_text
    assert "--max-rounds 12" in make_text
    assert "--shards 4" in make_text


def test_workloads_smoke_gate_is_wired():
    assert "workloads-smoke" in _ci_prerequisites()
    assert "workloads-smoke" in _job_names()
    make_text = MAKEFILE.read_text()
    # The gate is the CLI's self-checking path: oracles + cross-path
    # bit-identity over a sharded topology.
    assert re.search(r"workload\s+--check", make_text)
    assert re.search(r"workloads-smoke:\n\t.*--shards 4", make_text)


def test_backend_smoke_gate_is_wired():
    assert "backend-smoke" in _ci_prerequisites()
    assert "backend-smoke" in _job_names()
    make_text = MAKEFILE.read_text()
    assert "--backend-check" in make_text
    text = _workflow_text()
    # The gate must run both matrix legs: pure-NumPy fallback and the
    # real JIT kernels (installed only on that leg).
    assert re.search(r"numba:\s*\[", text), (
        "backend-smoke job has no numba matrix"
    )
    assert "pip install numba" in text
    assert "matrix.numba == 'numba'" in text
