"""DynamicRTNN (refit + rebuild policy) tests."""

import numpy as np
import pytest

from repro.baselines import brute_force_knn
from repro.core.dynamic import DynamicRTNN


@pytest.fixture()
def stream(rng):
    pts = rng.random((600, 3))
    return pts


def test_search_exact_after_refits(stream, rng):
    r, k = 0.12, 5
    dyn = DynamicRTNN(stream, radius=r, rebuild_every=100)
    pts = stream
    for frame in range(4):
        pts = np.clip(pts + rng.normal(0, 0.01, pts.shape), 0, 1)
        rep = dyn.update(pts)
        assert not rep.rebuilt  # drift too small to degrade quality
        res = dyn.knn_search(pts[:50], k=k)
        ref = brute_force_knn(pts, pts[:50], k=k, radius=r)
        assert (res.counts == ref.counts).all()
        np.testing.assert_allclose(
            np.where(np.isinf(res.sq_distances), -1, res.sq_distances),
            np.where(np.isinf(ref.sq_distances), -1, ref.sq_distances),
            rtol=1e-9, atol=1e-12,
        )


def test_rebuild_on_schedule(stream, rng):
    dyn = DynamicRTNN(stream, radius=0.1, rebuild_every=2)
    pts = stream
    reports = []
    for _ in range(4):
        pts = np.clip(pts + rng.normal(0, 0.005, pts.shape), 0, 1)
        reports.append(dyn.update(pts))
    assert any(r.rebuilt for r in reports)
    assert any(not r.rebuilt for r in reports)


def test_rebuild_on_quality_degradation(stream, rng):
    dyn = DynamicRTNN(stream, radius=0.1, rebuild_every=1000, quality_factor=1.5)
    # Teleport points: the refitted tree's SAH explodes -> rebuild.
    rep = dyn.update(rng.random((600, 3)))
    assert rep.rebuilt


def test_rebuild_on_count_change(stream, rng):
    dyn = DynamicRTNN(stream, radius=0.1)
    rep = dyn.update(rng.random((700, 3)))
    assert rep.rebuilt


def test_refit_cheaper_than_rebuild(stream):
    dyn = DynamicRTNN(stream, radius=0.1)
    assert dyn.refit_time() < dyn.gas.build_time


def test_range_search_mode(stream):
    dyn = DynamicRTNN(stream, radius=0.15, schedule=False)
    res = dyn.range_search(stream[:40], k=8)
    assert (res.counts <= 8).all()
    assert res.report.modeled_time > 0
