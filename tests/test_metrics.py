"""Metrics tests: breakdowns, fits, geomeans."""

import numpy as np
import pytest

from repro.metrics import Breakdown, LinearFit, geomean, linear_fit


def test_breakdown_total_and_add():
    a = Breakdown(data=1, opt=2, bvh=3, fs=4, search=5)
    assert a.total == 15
    b = a + Breakdown(search=5)
    assert b.search == 10 and b.total == 20
    assert a.search == 5  # addition does not mutate


def test_breakdown_fractions():
    a = Breakdown(data=1, search=3)
    f = a.fractions()
    assert f["data"] == pytest.approx(0.25)
    assert f["search"] == pytest.approx(0.75)
    assert Breakdown().fractions()["search"] == 0.0


def test_breakdown_as_dict():
    d = Breakdown(data=1).as_dict()
    assert d["total"] == 1 and set(d) == {"data", "opt", "bvh", "fs", "search", "total"}


def test_linear_fit_exact():
    f = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
    assert f.slope == pytest.approx(2.0)
    assert f.intercept == pytest.approx(1.0)
    assert f.r_squared == pytest.approx(1.0)
    assert f.predict(5) == pytest.approx(11.0)


def test_linear_fit_noisy_r2():
    rng = np.random.default_rng(0)
    x = np.linspace(0, 10, 50)
    y = 2 * x + rng.normal(0, 5, 50)
    f = linear_fit(x, y)
    assert 0.0 < f.r_squared < 1.0


def test_linear_fit_validation():
    with pytest.raises(ValueError):
        linear_fit([1], [2])
    with pytest.raises(ValueError):
        linear_fit([1, 2], [1, 2, 3])


def test_geomean():
    assert geomean([1, 100]) == pytest.approx(10.0)
    assert geomean([5]) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        geomean([])
    with pytest.raises(ValueError):
        geomean([1.0, -1.0])


def test_linear_fit_type():
    assert isinstance(linear_fit([0, 1], [0, 1]), LinearFit)
