"""The live tree passes its own static analysis, and the CLI works.

This is the tier-1 wiring for the linter: ``src/repro`` must have zero
non-baselined findings, with the shipped pyproject config, forever.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import all_rules, analyze_paths, load_config
from repro.analysis.baseline import load_baseline, write_baseline
from repro.analysis.cli import main as analysis_main
from repro.analysis.findings import Finding, Severity
from repro.analysis.lint import main as lint_main

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"


def test_live_tree_has_zero_findings():
    config = load_config(REPO)
    findings, n_modules = analyze_paths([SRC], config, root=REPO)
    accepted = load_baseline(REPO / config.baseline)
    fresh = [f for f in findings if f.fingerprint not in accepted]
    assert n_modules > 80
    assert fresh == [], "\n" + "\n".join(f.render() for f in fresh)
    # The CON/DET project families must actually have run: they are
    # registered, enabled by the shipped config, and the concurrent
    # surfaces they exist for are in the analyzed tree.
    rule_ids = {r.rule_id for r in all_rules()}
    for rid in ("CON001", "CON002", "CON003", "CON004",
                "DET001", "DET002", "DET003", "DET004"):
        assert rid in rule_ids
        assert config.rule_enabled(rid)


def test_gas_cache_module_is_exempt_and_clean():
    """The GAS cache is host-side bookkeeping inside the hot
    ``repro/core/`` tree: the shipped config must exempt it from the
    lockstep/shader rules, and it must carry zero findings of any
    family (including the COST accounting rules)."""
    config = load_config(REPO)
    assert "repro/core/cache.py" in config.exempt_modules
    assert config.is_exempt("src/repro/core/cache.py")
    assert not config.is_hot("src/repro/core/cache.py")
    findings, n_modules = analyze_paths(
        [SRC / "core" / "cache.py"], config, root=REPO
    )
    assert n_modules == 1
    assert findings == []


def test_shipped_baseline_is_empty():
    # Debt should be fixed, not accumulated; loosen deliberately if a
    # future PR must baseline something.
    config = load_config(REPO)
    assert load_baseline(REPO / config.baseline) == set()


def test_cli_exit_codes_and_text_output(capsys):
    rc = analysis_main([str(SRC), "--root", str(REPO)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 finding(s)" in out


def test_cli_json_format(capsys):
    rc = analysis_main([str(SRC), "--root", str(REPO), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert payload["findings"] == []
    assert payload["counts"] == {}
    assert payload["modules"] > 80


def test_cli_json_reports_findings(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\n\ndef g(a, b):\n    return np.append(a, b)\n")
    rc = analysis_main([str(bad), "--root", str(tmp_path), "--format", "json"])
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["counts"] == {"VEC002": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "VEC002"
    assert finding["path"].endswith("repro/core/bad.py")
    assert finding["line"] == 4


def test_cli_list_rules_covers_all_families(capsys):
    rc = analysis_main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for family in ("SHD", "VEC", "COST", "API", "CON", "DET"):
        assert family in out
    assert len(all_rules()) >= 20


def test_cli_explain_prints_rationale_and_examples(capsys):
    for rule_id in ("CON001", "DET002"):
        rc = analysis_main(["--explain", rule_id])
        out = capsys.readouterr().out
        assert rc == 0
        assert rule_id in out
        for section in ("Rationale:", "Bad:", "Good:"):
            assert section in out


def test_cli_explain_unknown_rule_is_usage_error(capsys):
    rc = analysis_main(["--explain", "NOPE999"])
    assert rc == 2
    assert "unknown rule id" in capsys.readouterr().err


def test_cli_sarif_format(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        "import numpy as np\n\ndef knn_search(q):\n"
        "    return np.random.default_rng().random(3)\n"
    )
    rc = analysis_main(
        [str(bad), "--root", str(tmp_path), "--format", "sarif",
         "--select", "DET"]
    )
    payload = json.loads(capsys.readouterr().out)
    assert rc == 1
    assert payload["version"] == "2.1.0"
    (sarif_run,) = payload["runs"]
    (result,) = sarif_run["results"]
    assert result["ruleId"] == "DET001"
    loc = result["locations"][0]["physicalLocation"]
    assert loc["artifactLocation"]["uri"].endswith("repro/core/bad.py")
    assert loc["region"]["startLine"] == 4
    driver_ids = [r["id"] for r in sarif_run["tool"]["driver"]["rules"]]
    assert "DET001" in driver_ids
    assert driver_ids == sorted(driver_ids)


def test_baseline_round_trip(tmp_path, capsys):
    bad = tmp_path / "repro" / "core" / "bad.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import numpy as np\n\ndef g(a, b):\n    return np.append(a, b)\n")
    baseline = tmp_path / "baseline.json"

    rc = analysis_main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(baseline),
         "--write-baseline"]
    )
    assert rc == 0
    capsys.readouterr()

    # Baselined: clean exit, reported as baselined.
    rc = analysis_main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(baseline)]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert "(1 baselined)" in out

    # --no-baseline resurfaces it.
    rc = analysis_main(
        [str(bad), "--root", str(tmp_path), "--baseline", str(baseline),
         "--no-baseline"]
    )
    assert rc == 1


def test_write_and_load_baseline_helpers(tmp_path):
    f = Finding("VEC002", Severity.ERROR, "repro/core/x.py", 3, 0, "msg")
    path = tmp_path / "sub" / "b.json"
    write_baseline(path, [f, f])
    assert load_baseline(path) == {("VEC002", "repro/core/x.py", "msg")}


def test_missing_path_is_usage_error(capsys):
    rc = analysis_main(["definitely/not/here.py"])
    assert rc == 2
    assert "no such path" in capsys.readouterr().err


def test_parse_error_becomes_finding(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def oops(:\n")
    rc = analysis_main([str(bad), "--root", str(tmp_path)])
    out = capsys.readouterr().out
    assert rc == 1
    assert "PARSE" in out


def test_repro_lint_runs_both_layers(capsys):
    rc = lint_main([str(SRC), "--root", str(REPO)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 finding(s)" in out


def test_repro_cli_analyze_subcommand(capsys):
    from repro.cli import main as repro_main

    rc = repro_main(["analyze", str(SRC), "--root", str(REPO)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 finding(s)" in out


@pytest.mark.slow
def test_module_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=REPO,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
