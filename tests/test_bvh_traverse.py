"""Traversal engine tests: functional results and counter semantics."""

import numpy as np
import pytest

from repro.bvh import build_lbvh, build_median_split, trace_batch
from repro.geometry.aabb import aabbs_from_points
from repro.optix.shaders import CountingShader


def _setup(n_pts=300, n_rays=100, hw=0.08, leaf_size=1, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n_pts, 3))
    rays = rng.random((n_rays, 3))
    lo, hi = aabbs_from_points(pts, hw)
    bvh = build_lbvh(lo, hi, leaf_size=leaf_size)
    return pts, rays, bvh, hw


def _expected_hits(pts, rays, hw):
    """Rays whose origin lies in each point's AABB (Chebyshev <= hw)."""
    cheb = np.abs(rays[:, None, :] - pts[None, :, :]).max(axis=2)
    return cheb <= hw


def _dirs(rays):
    return np.broadcast_to(np.array([1.0, 0.0, 0.0]), rays.shape).copy()


@pytest.mark.parametrize("leaf_size", [1, 3, 8])
def test_is_calls_equal_enclosing_aabbs(leaf_size):
    """IS must fire exactly once per (ray, enclosing prim AABB) pair,
    regardless of leaf width (per-prim filtering, Fig. 1b)."""
    pts, rays, bvh, hw = _setup(leaf_size=leaf_size)
    shader = CountingShader(len(rays), record_pairs=True)
    res = trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, shader)
    expect = _expected_hits(pts, rays, hw)
    assert (shader.calls == expect.sum(axis=1)).all()
    assert res.total_is_calls == expect.sum()
    # every pair is distinct and correct
    got = set()
    for r, p in shader.pairs:
        got.update(zip(r.tolist(), p.tolist()))
    want = {(i, j) for i, j in zip(*np.nonzero(expect))}
    assert got == want


def test_same_results_for_both_builders():
    pts, rays, _, hw = _setup()
    lo, hi = aabbs_from_points(pts, hw)
    for builder in (build_lbvh, build_median_split):
        bvh = builder(lo, hi, leaf_size=2)
        shader = CountingShader(len(rays))
        trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, shader)
        assert (shader.calls == _expected_hits(pts, rays, hw).sum(axis=1)).all()


def test_termination_stops_ray():
    """A handler that terminates on first hit yields <=1 IS call per ray."""
    pts, rays, bvh, hw = _setup()

    calls = np.zeros(len(rays), dtype=np.int64)

    def first_hit_only(ray_ids, prim_ids):
        calls[ray_ids] += 1
        return ray_ids

    trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, first_hit_only)
    assert (calls <= 1).all()
    expect_any = _expected_hits(pts, rays, hw).any(axis=1)
    assert (calls.astype(bool) == expect_any).all()


def test_empty_ray_batch():
    pts, _, bvh, _ = _setup()
    res = trace_batch(bvh, np.zeros((0, 3)), np.zeros((0, 3)), 0.0, 1e-16,
                      CountingShader(0))
    assert res.n_rays == 0 and res.iterations == 0


def test_counters_consistency():
    pts, rays, bvh, hw = _setup(leaf_size=4)
    shader = CountingShader(len(rays))
    res = trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, shader)
    assert res.total_steps == res.steps.sum()
    assert res.total_is_calls == shader.total_calls
    # warp maxima bound per-lane sums
    assert res.warp_traversal_steps >= res.total_steps / res.warp_size
    assert res.warp_traversal_steps <= res.total_steps
    assert 0.0 < res.simd_efficiency <= 1.0
    assert res.prim_tests >= res.total_is_calls  # filter can only reduce


def test_per_warp_steps_are_maxima():
    pts, rays, bvh, _ = _setup(n_rays=70)
    res = trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, CountingShader(70))
    padded = np.zeros(3 * 32, dtype=np.int64)
    padded[:70] = res.steps
    assert (res.per_warp_steps == padded.reshape(3, 32).max(axis=1)).all()


def test_merge_accumulates():
    pts, rays, bvh, _ = _setup()
    a = trace_batch(bvh, rays[:50], _dirs(rays[:50]), 0.0, 1e-16, CountingShader(50))
    b = trace_batch(bvh, rays[50:], _dirs(rays[50:]), 0.0, 1e-16, CountingShader(50))
    m = a.merge(b)
    assert m.n_rays == 100
    assert m.total_steps == a.total_steps + b.total_steps
    assert m.warp_is_steps == a.warp_is_steps + b.warp_is_steps


def test_merge_rejects_warp_size_mismatch():
    pts, rays, bvh, _ = _setup()
    a = trace_batch(bvh, rays[:50], _dirs(rays[:50]), 0.0, 1e-16, CountingShader(50))
    b = trace_batch(
        bvh, rays[50:], _dirs(rays[50:]), 0.0, 1e-16, CountingShader(50), warp_size=16
    )
    with pytest.raises(ValueError, match="warp size"):
        a.merge(b)


def test_long_rays_hit_more():
    """Condition-1 hits appear once the segment is long (Fig. 4c Q')."""
    pts, rays, bvh, hw = _setup()
    short = CountingShader(len(rays))
    trace_batch(bvh, rays, _dirs(rays), 0.0, 1e-16, short)
    long = CountingShader(len(rays))
    trace_batch(bvh, rays, _dirs(rays), 0.0, 10.0, long)
    assert long.total_calls > short.total_calls
