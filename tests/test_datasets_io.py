"""PLY / XYZ loader round-trip and robustness tests."""

import numpy as np
import pytest

from repro.datasets.io import read_ply, read_xyz, write_ply, write_xyz


@pytest.fixture()
def cloud(rng):
    return rng.random((137, 3))


def test_xyz_roundtrip(tmp_path, cloud):
    p = tmp_path / "c.xyz"
    write_xyz(p, cloud)
    back = read_xyz(p)
    np.testing.assert_allclose(back, cloud, rtol=1e-8)


def test_xyz_extra_columns(tmp_path):
    p = tmp_path / "c.xyz"
    p.write_text("1 2 3 9 9\n4 5 6 9 9\n")
    assert read_xyz(p).tolist() == [[1, 2, 3], [4, 5, 6]]


def test_xyz_too_few_columns(tmp_path):
    p = tmp_path / "c.xyz"
    p.write_text("1 2\n")
    with pytest.raises(ValueError):
        read_xyz(p)


@pytest.mark.parametrize("binary", [True, False])
def test_ply_roundtrip(tmp_path, cloud, binary):
    p = tmp_path / "c.ply"
    write_ply(p, cloud, binary=binary)
    back = read_ply(p)
    np.testing.assert_allclose(back, cloud, rtol=1e-6)


def test_ply_extra_properties_binary(tmp_path):
    """A vertex element with extra scalar properties parses fine."""
    import struct

    header = (
        b"ply\nformat binary_little_endian 1.0\n"
        b"element vertex 2\n"
        b"property float x\nproperty float y\nproperty float z\n"
        b"property uchar red\nproperty uchar green\nproperty uchar blue\n"
        b"end_header\n"
    )
    rec = struct.Struct("<fffBBB")
    p = tmp_path / "c.ply"
    with open(p, "wb") as fh:
        fh.write(header)
        fh.write(rec.pack(1.0, 2.0, 3.0, 255, 0, 0))
        fh.write(rec.pack(4.0, 5.0, 6.0, 0, 255, 0))
    assert read_ply(p).tolist() == [[1, 2, 3], [4, 5, 6]]


def test_ply_rejects_bad_files(tmp_path):
    p = tmp_path / "bad.ply"
    p.write_bytes(b"not a ply\n")
    with pytest.raises(ValueError, match="magic"):
        read_ply(p)

    p2 = tmp_path / "bad2.ply"
    p2.write_bytes(
        b"ply\nformat binary_big_endian 1.0\nelement vertex 0\n"
        b"property float x\nproperty float y\nproperty float z\nend_header\n"
    )
    with pytest.raises(ValueError, match="unsupported"):
        read_ply(p2)


def test_ply_truncated(tmp_path, cloud):
    p = tmp_path / "c.ply"
    write_ply(p, cloud, binary=True)
    data = p.read_bytes()
    p.write_bytes(data[:-8])
    with pytest.raises(ValueError, match="truncated"):
        read_ply(p)


def test_write_ply_validates(tmp_path):
    with pytest.raises(ValueError):
        write_ply(tmp_path / "x.ply", np.zeros((3, 2)))


def test_ply_searchable_end_to_end(tmp_path, cloud):
    """Loaded clouds feed straight into the engine."""
    from repro import RTNNEngine

    p = tmp_path / "c.ply"
    write_ply(p, cloud)
    pts = read_ply(p)
    res = RTNNEngine(pts).knn_search(pts[:5], k=3, radius=0.5)
    assert res.counts.max() > 0
