"""Grid-baseline helper tests (CSR expansion, ranks, warp rounds)."""

import numpy as np
from hypothesis import given, strategies as st

from repro.baselines.gridcommon import (
    csr_expand,
    segment_ranks,
    sweep_neighbors,
    warp_round_sum,
)
from repro.geometry.grid import UniformGrid


def test_csr_expand_basic():
    out = csr_expand(np.array([10, 20]), np.array([3, 2]))
    assert out.tolist() == [10, 11, 12, 20, 21]


def test_csr_expand_empty():
    assert len(csr_expand(np.array([], dtype=np.int64), np.array([], dtype=np.int64))) == 0
    out = csr_expand(np.array([5, 9]), np.array([0, 2]))
    assert out.tolist() == [9, 10]


@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 5)), max_size=20))
def test_property_csr_expand(pairs):
    starts = np.array([p[0] for p in pairs], dtype=np.int64)
    counts = np.array([p[1] for p in pairs], dtype=np.int64)
    out = csr_expand(starts, counts)
    expect = [s + j for s, c in pairs for j in range(c)]
    assert out.tolist() == expect


def test_segment_ranks():
    ids = np.array([0, 0, 0, 2, 2, 5])
    assert segment_ranks(ids).tolist() == [0, 1, 2, 0, 1, 0]
    assert len(segment_ranks(np.array([], dtype=np.int64))) == 0


@given(st.lists(st.integers(0, 5), min_size=1, max_size=40))
def test_property_segment_ranks(vals):
    ids = np.sort(np.array(vals, dtype=np.int64))
    ranks = segment_ranks(ids)
    seen = {}
    for i, v in enumerate(ids.tolist()):
        assert ranks[i] == seen.get(v, 0)
        seen[v] = seen.get(v, 0) + 1


def test_warp_round_sum():
    work = np.zeros(64, dtype=np.int64)
    work[0] = 10       # warp 0 max = 10
    work[40] = 7       # warp 1 max = 7
    assert warp_round_sum(work, 32) == 17
    assert warp_round_sum(np.array([], dtype=np.int64)) == 0


def test_sweep_finds_superset_of_ball():
    rng = np.random.default_rng(0)
    pts = rng.random((400, 3))
    q = rng.random((50, 3))
    r = 0.15
    grid = UniformGrid(pts, cell_size=r)
    sweep = sweep_neighbors(grid, q)
    # every true r-neighbor pair appears among the candidates
    cand = set(zip(sweep.pair_q.tolist(), sweep.pair_p.tolist()))
    d = np.linalg.norm(q[:, None] - pts[None], axis=2)
    for i, j in zip(*np.nonzero(d <= r)):
        assert (i, j) in cand
    assert sweep.work_per_query.sum() == len(sweep.pair_q)
    assert sweep.cell_lookups <= 27 * len(q)
    assert sweep.point_fetch_lines > 0
