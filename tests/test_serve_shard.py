"""The sharded serving tier: placement, scatter-gather bit-identity,
fan-out pruning, deterministic failover, and service integration.

The contract under test is the one the ``serve-shard-smoke`` CI gate
enforces at scale: any sharded topology — 1 shard, N shards, degraded
replicas, dead workers — produces answers bit-identical to the
single-engine path, because the merge is a canonical ``(sq_distance,
index)`` order that depends only on candidate values. Fault scenarios
are driven by the deterministic :class:`FaultInjector`, so every
failover here replays exactly.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.core.partition import make_spatial_shards
from repro.serve import (
    Fault,
    FaultInjector,
    HashRing,
    LoadSpec,
    SearchService,
    ServiceConfig,
    ShardedEngine,
    shard_spot_check,
)
from repro.utils.rng import default_rng

K, RADIUS = 6, 0.15
# Range set-identity needs a k no row overflows (a truncated bounded
# range result is a k-subset choice, not a set): ~6.8 expected
# neighbors at r=0.15 over 480 points, Poisson tail at 32 is ~1e-12.
K_RANGE = 32


@pytest.fixture(scope="module")
def world():
    rng = default_rng(11)
    points = rng.random((480, 3))
    queries = rng.random((41, 3))
    return points, queries


def _direct(points, kind, queries, cfg=None, radius=RADIUS):
    engine = RTNNEngine(points, config=cfg)
    if kind == "knn":
        return engine.knn_search(queries, k=K, radius=radius)
    return engine.range_search(queries, radius=radius, k=K_RANGE)


def _sharded(sh, kind, queries, radius=RADIUS):
    if kind == "knn":
        return sh.knn_search(queries, k=K, radius=radius)
    return sh.range_search(queries, radius=radius, k=K_RANGE)


def _assert_rows_equal(a, b, msg=""):
    assert np.array_equal(a.indices, b.indices), f"{msg}: indices"
    assert np.array_equal(a.counts, b.counts), f"{msg}: counts"
    assert np.array_equal(a.sq_distances, b.sq_distances), f"{msg}: distances"


# ----------------------------------------------------------------------
# spatial shards (repro.core.partition reuse)
# ----------------------------------------------------------------------
def test_spatial_shards_partition_the_index_set(world):
    points, _ = world
    shards = make_spatial_shards(points, 4)
    assert len(shards) == 4
    all_ids = np.concatenate([s.point_ids for s in shards])
    assert sorted(all_ids.tolist()) == list(range(len(points)))
    for s in shards:
        assert np.all(np.diff(s.point_ids) > 0), "ids must be ascending"
        member = points[s.point_ids]
        assert np.allclose(s.lo, member.min(axis=0))
        assert np.allclose(s.hi, member.max(axis=0))
    sizes = [s.n_points for s in shards]
    assert max(sizes) - min(sizes) <= 1, "near-equal split"


def test_one_shard_is_the_identity_split(world):
    points, _ = world
    (shard,) = make_spatial_shards(points, 1)
    assert np.array_equal(shard.point_ids, np.arange(len(points)))


def test_shard_count_clamped_and_empty_rejected():
    pts = default_rng(0).random((3, 3))
    assert len(make_spatial_shards(pts, 10)) == 3
    with pytest.raises(ValueError):
        make_spatial_shards(np.empty((0, 3)), 2)
    with pytest.raises(ValueError):
        make_spatial_shards(pts, 0)


# ----------------------------------------------------------------------
# consistent-hash placement
# ----------------------------------------------------------------------
def test_hash_ring_is_deterministic_and_complete():
    ring = HashRing(range(4))
    again = HashRing(range(4))
    for key in ("a", "b", "c"):
        assert ring.preference(key) == again.preference(key)
        assert sorted(ring.preference(key)) == [0, 1, 2, 3]


def test_bounded_load_assignment_balances_primaries():
    ring = HashRing(range(4))
    for salt in range(5):
        keys = [f"shard:{salt}:{i}" for i in range(4)]
        primaries = [p[0] for p in ring.assign(keys)]
        assert sorted(primaries) == [0, 1, 2, 3], (
            "4 shards on 4 workers must place one primary each"
        )


def test_removing_a_worker_only_moves_its_own_shards():
    keys = [f"k{i}" for i in range(8)]
    full = {k: HashRing(range(4)).preference(k)[0] for k in keys}
    reduced = HashRing([0, 1, 2])
    for k in keys:
        if full[k] != 3:
            assert reduced.preference(k)[0] == full[k], (
                "consistent hashing must not reshuffle surviving owners"
            )


# ----------------------------------------------------------------------
# scatter-gather bit-identity (the core contract)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", ["knn", "range"])
@pytest.mark.parametrize("cfg_name", ["full", "noopt"])
@pytest.mark.parametrize("n_shards", [1, 3, 4])
def test_sharded_matches_single_engine(world, kind, cfg_name, n_shards):
    points, queries = world
    cfg = RTNNConfig() if cfg_name == "full" else VARIANTS["noopt"]
    direct = _direct(points, kind, queries, cfg)
    sh = ShardedEngine(points, n_shards=n_shards, config=cfg)
    res = _sharded(sh, kind, queries)
    if kind == "range":
        # The set identity is only sound when no row overflows k.
        assert int(direct.counts.max(initial=0)) < K_RANGE
    if kind == "knn":
        # KNN single-engine rows are already distance-sorted: raw equal.
        _assert_rows_equal(direct, res, f"{kind}/{cfg_name}/{n_shards}")
    _assert_rows_equal(
        direct.canonical(), res, f"{kind}/{cfg_name}/{n_shards} canonical"
    )


def test_search_fused_merges_groups_independently(world):
    points, queries = world
    groups = [queries[:15], queries[15:20], queries[20:]]
    sh = ShardedEngine(points, n_shards=4)
    fused = sh.search_fused("knn", groups, radius=RADIUS, k=K)
    single = RTNNEngine(points)
    for g, res in zip(groups, fused):
        _assert_rows_equal(single.knn_search(g, k=K, radius=RADIUS), res)
    extra = fused[0].report.extras["shard"]
    assert extra["group_sizes"] == [15, 5, 21]
    assert extra["degraded_groups"] == [False, False, False]


def test_sharded_run_is_deterministic(world):
    points, queries = world
    a = _sharded(ShardedEngine(points, n_shards=4), "range", queries)
    b = _sharded(ShardedEngine(points, n_shards=4), "range", queries)
    _assert_rows_equal(a, b, "repeat run")


def test_merge_underfilled_rows_never_interleaves_padding():
    # Regression: a query with fewer than k in-radius neighbors, split
    # 1 + 1 across two shards, must merge into [real, real, -1, -1] —
    # the inf/-1 padding of each under-filled per-shard row must sink
    # below every real hit, and the merged count must be the clamped
    # sum of the per-shard counts.
    rng = default_rng(23)
    left = 0.2 + 0.05 * rng.random((12, 3))
    right = 0.8 - 0.05 * rng.random((12, 3))
    bridge = np.array([[0.45, 0.5, 0.5], [0.55, 0.5, 0.5]])
    points = np.vstack([left, right, bridge])
    a, b = len(points) - 2, len(points) - 1
    query = np.array([[0.5, 0.5, 0.5]])

    sh = ShardedEngine(points, n_shards=2)
    # The bridge points straddle the spatial split: one per shard.
    shard_of = {
        gi: sid
        for sid, shard in enumerate(sh.shards)
        for gi in (a, b)
        if gi in shard.point_ids
    }
    assert shard_of[a] != shard_of[b], "bridge points must be split 1+1"

    for kind in ("knn", "range"):
        res = (
            sh.knn_search(query, k=4, radius=0.08)
            if kind == "knn"
            else sh.range_search(query, radius=0.08, k=4)
        )
        assert res.counts[0] == 2, kind  # 1 + 1, clamped sum
        assert sorted(res.indices[0, :2].tolist()) == [a, b], kind
        assert (res.indices[0, 2:] == -1).all(), kind
        assert np.isfinite(res.sq_distances[0, :2]).all(), kind
        assert np.isinf(res.sq_distances[0, 2:]).all(), kind
        solo = (
            RTNNEngine(points).knn_search(query, k=4, radius=0.08)
            if kind == "knn"
            else RTNNEngine(points).range_search(query, radius=0.08, k=4)
        )
        _assert_rows_equal(res, solo, f"underfilled {kind}")


def test_merge_breaks_distance_ties_by_index():
    # Two points exactly mirrored about the query (coordinates exact in
    # binary, so the squared distances are bitwise equal): canonical
    # order must put the lower global index first.
    points = np.array(
        [[0.25, 0.5, 0.5], [0.75, 0.5, 0.5], [0.0, 0.0, 0.0], [1.0, 1.0, 1.0]]
    )
    sh = ShardedEngine(points, n_shards=2)
    res = sh.knn_search(np.array([[0.5, 0.5, 0.5]]), k=2, radius=0.5)
    assert res.counts[0] == 2
    assert res.sq_distances[0, 0] == res.sq_distances[0, 1]
    assert res.indices[0, 0] < res.indices[0, 1]


# ----------------------------------------------------------------------
# fan-out pruning
# ----------------------------------------------------------------------
def test_interior_queries_visit_only_their_shard():
    # Two well-separated clusters -> 2 shards with disjoint AABBs.
    rng = default_rng(5)
    a = rng.random((100, 3)) * 0.2
    b = rng.random((100, 3)) * 0.2 + 0.8
    points = np.concatenate([a, b])
    sh = ShardedEngine(points, n_shards=2)
    lo_a, hi_a = sh.shards[0].lo, sh.shards[0].hi
    assert (hi_a < sh.shards[1].lo).any(), "clusters must separate"
    queries = rng.random((20, 3)) * 0.1 + 0.05  # deep inside cluster A
    mask = sh.overlap_mask(queries, 0.05)
    assert mask[:, 0].all() and not mask[:, 1].any()
    sh.knn_search(queries, k=4, radius=0.05)
    assert sh.fanout_visits == len(queries), "no cross-cluster fan-out"
    # Only the overlapped shard got a sub-launch.
    assert sum(w.launches for w in sh.workers) == 1


def test_boundary_queries_fan_out_to_overlapped_shards_only(world):
    points, queries = world
    sh = ShardedEngine(points, n_shards=4)
    mask = sh.overlap_mask(queries, RADIUS)
    assert mask.any(axis=1).all(), "every query overlaps at least one shard"
    sh.knn_search(queries, k=K, radius=RADIUS)
    assert sh.fanout_visits == int(mask.sum())


# ----------------------------------------------------------------------
# failover + degradation
# ----------------------------------------------------------------------
def test_dead_primary_fails_over_bit_identically(world):
    points, queries = world
    direct = _direct(points, "knn", queries)
    sh = ShardedEngine(points, n_shards=4, replication=2)
    sh.kill_worker(sh.preference[0][0])
    res = sh.knn_search(queries, k=K, radius=RADIUS)
    _assert_rows_equal(direct, res, "dead primary")
    assert sh.failovers >= 1
    assert sh.brute_fallbacks == 0
    assert res.report.extras["shard"]["degraded_groups"] == [False]


def test_injected_fault_mid_batch_fails_over_deterministically(world):
    points, queries = world
    direct = _direct(points, "range", queries).canonical()

    def run():
        sh = ShardedEngine(
            points,
            n_shards=4,
            replication=2,
            faults=FaultInjector(script=[Fault(error=True)]),
        )
        res = sh.range_search(queries, radius=RADIUS, k=K_RANGE)
        return sh, res

    sh1, res1 = run()
    sh2, res2 = run()
    _assert_rows_equal(direct, res1, "injected fault")
    _assert_rows_equal(res1, res2, "replayed fault scenario")
    assert sh1.failovers == sh2.failovers == 1
    # The crashed worker stays dead until revived.
    assert sum(not w.alive for w in sh1.workers) == 1
    sh1.revive_worker(next(w.worker_id for w in sh1.workers if not w.alive))
    assert all(w.alive for w in sh1.workers)


def test_all_replicas_dead_degrades_to_exact_brute(world):
    points, queries = world
    for kind in ("knn", "range"):
        direct = _direct(points, kind, queries).canonical()
        sh = ShardedEngine(points, n_shards=4, replication=1)
        for w in sh.workers:
            w.alive = False
        res = _sharded(sh, kind, queries)
        _assert_rows_equal(direct, res, f"{kind} all-dead")
        extra = res.report.extras["shard"]
        assert extra["brute_shards"] == 4
        assert extra["degraded_groups"] == [True]
        assert sh.brute_fallbacks == 4


def test_update_points_reshards(world):
    points, queries = world
    sh = ShardedEngine(points, n_shards=4)
    sh.knn_search(queries, k=K, radius=RADIUS)
    new_points = default_rng(99).random((300, 3))
    sh.update_points(new_points)
    assert sh._points_fp != ""
    direct = _direct(new_points, "knn", queries)
    _assert_rows_equal(direct, sh.knn_search(queries, k=K, radius=RADIUS))


# ----------------------------------------------------------------------
# modeled clock
# ----------------------------------------------------------------------
def test_makespan_is_the_busiest_worker_not_the_sum(world):
    points, queries = world
    sh = ShardedEngine(points, n_shards=4)
    sh.knn_search(queries, k=K, radius=RADIUS)
    busy = [w.busy_s for w in sh.workers]
    assert sh.modeled_makespan_s == max(busy)
    assert sh.modeled_makespan_s < sum(busy), (
        "4 busy workers must beat serial execution on the modeled clock"
    )


# ----------------------------------------------------------------------
# behind the SearchService front door
# ----------------------------------------------------------------------
def test_service_over_sharded_engine_is_bit_identical(world):
    points, queries = world
    direct = _direct(points, "knn", queries)

    async def scenario():
        service = SearchService(
            ShardedEngine(points, n_shards=4),
            config=ServiceConfig(batch_window_s=0.01),
        )
        async with service:
            res = await service.submit("knn", queries, k=K, radius=RADIUS)
        return service, res

    service, res = asyncio.run(scenario())
    assert not res.degraded
    _assert_rows_equal(direct, res.results, "served")
    report = service.report()
    shards = report.extras["service"]["shards"]
    assert shards["n_shards"] == 4
    assert shards["failovers"] == 0
    assert len(shards["workers"]) == 4


def test_killed_shard_mid_batch_surfaces_in_service_metrics(world):
    """Satellite: killed shard mid-batch -> failover result bit-identical
    to the healthy single-engine answer, flags in ServiceMetrics."""
    points, queries = world
    direct = _direct(points, "knn", queries)

    async def scenario(replication):
        engine = ShardedEngine(
            points,
            n_shards=4,
            replication=replication,
            faults=FaultInjector(script=[Fault(error=True)]),
        )
        service = SearchService(
            engine, config=ServiceConfig(batch_window_s=0.01)
        )
        async with service:
            res = await service.submit("knn", queries, k=K, radius=RADIUS)
        return service, res

    # With a replica: transparent failover, nothing degraded.
    service, res = asyncio.run(scenario(replication=2))
    _assert_rows_equal(direct, res.results, "failover via service")
    assert not res.degraded
    assert service.metrics.shard_failovers == 1
    assert service.metrics.shard_brute == 0
    assert service.metrics.rollup()["shard"]["failovers"] == 1

    # Without a replica: the shard degrades to brute, request flagged.
    service, res = asyncio.run(scenario(replication=1))
    _assert_rows_equal(direct, res.results, "brute degrade via service")
    assert res.degraded
    assert service.metrics.shard_brute == 1
    assert service.metrics.degraded == 1
    assert service.metrics.rollup()["shard"]["brute_shards"] == 1


def test_shard_spot_check_passes(world):
    points, _ = world
    spec = LoadSpec(k=K, radius=RADIUS, queries_per_request=8, seed=3)
    checked = asyncio.run(
        shard_spot_check(points, spec, shards=4, n_requests=2)
    )
    assert checked == 2 * 2 * 2  # kinds x configs x requests
