"""Query scheduling tests (Listing 2)."""

import numpy as np

from repro.core.scheduling import schedule_queries
from repro.geometry.morton import morton_order
from repro.optix import Pipeline, build_gas


def _setup(n_pts=800, n_q=300, hw=0.08, seed=0):
    rng = np.random.default_rng(seed)
    pts = rng.random((n_pts, 3))
    q = rng.random((n_q, 3))
    pipe = Pipeline(cache_sim=False)
    gas = build_gas(pts, hw, pipe.cost_model, leaf_size=2)
    return pts, q, pipe, gas


def test_order_is_permutation():
    _, q, pipe, gas = _setup()
    out = schedule_queries(pipe, gas, q)
    assert sorted(out.order.tolist()) == list(range(len(q)))


def test_first_hit_is_enclosing_aabb():
    pts, q, pipe, gas = _setup()
    out = schedule_queries(pipe, gas, q)
    hw = gas.half_width
    hit = out.first_hit >= 0
    # every reported first hit must actually enclose the query
    cheb = np.abs(q[hit] - pts[out.first_hit[hit]]).max(axis=1)
    assert (cheb <= hw + 1e-12).all()
    # every miss must really be enclosed by nothing
    for i in np.flatnonzero(~hit):
        assert (np.abs(q[i] - pts).max(axis=1) > hw).all()


def test_fs_is_truncated():
    """The first search costs at most one IS call per ray."""
    _, q, pipe, gas = _setup()
    out = schedule_queries(pipe, gas, q)
    assert out.fs_launch.trace.total_is_calls <= len(q)


def test_misses_sort_last():
    pts, _, pipe, gas = _setup()
    # Mix of guaranteed hits (points themselves) and guaranteed misses
    # (far outside the cloud).
    far = np.full((20, 3), 5.0) + np.random.default_rng(1).random((20, 3))
    q = np.concatenate([pts[:50], far])
    out = schedule_queries(pipe, gas, q)
    miss = out.first_hit[out.order] < 0
    assert not miss[:50].any()
    assert miss[-20:].all()


def test_subset_scheduling():
    _, q, pipe, gas = _setup()
    ids = np.arange(0, len(q), 3, dtype=np.int64)
    out = schedule_queries(pipe, gas, q, query_ids=ids)
    assert sorted(out.order.tolist()) == list(range(len(ids)))


def test_scheduled_order_improves_coherence():
    """Scheduled order should look like a Morton-ish order: adjacent
    launch positions map to nearby queries."""
    pts, q, pipe, gas = _setup(n_q=600)
    out = schedule_queries(pipe, gas, q)
    sched = q[out.order]
    d_sched = np.linalg.norm(np.diff(sched, axis=0), axis=1).mean()
    d_input = np.linalg.norm(np.diff(q, axis=0), axis=1).mean()
    assert d_sched < d_input
    # and is in the same ballpark as a true Morton sort of the queries
    d_morton = np.linalg.norm(
        np.diff(q[morton_order(q)], axis=0), axis=1
    ).mean()
    assert d_sched < 3 * d_morton
