"""The perf-regression bench harness: comparator, CLI, and CI wiring."""

from __future__ import annotations

import copy
import json
from pathlib import Path

import pytest

from repro.obs import bench


def _tiny_suite():
    """A 3-scenario suite small enough for unit tests."""
    return [
        bench.Scenario(family="uniform", n_points=80, n_queries=40,
                       variant="noopt"),
        bench.Scenario(family="uniform", n_points=80, n_queries=40,
                       variant="sched+part"),
        bench.Scenario(family="uniform", n_points=80, n_queries=40,
                       variant="noopt", repeat=2),
    ]


@pytest.fixture(scope="module")
def payload():
    return bench.run_suite(_tiny_suite(), verbose=False)


# ----------------------------------------------------------------------
# comparator
# ----------------------------------------------------------------------
def test_identical_payloads_compare_clean(payload):
    assert bench.compare_records(payload, payload) == []


def test_rerun_is_deterministic(payload):
    again = bench.run_suite(_tiny_suite(), verbose=False)
    assert bench.compare_records(again, payload, check_wall=False) == []


@pytest.mark.parametrize("direction", [+1, -1])
def test_counter_drift_fails_in_both_directions(payload, direction):
    cur = copy.deepcopy(payload)
    name = next(iter(cur["scenarios"]))
    cur["scenarios"][name]["counters"]["is_calls"] += direction
    failures = bench.compare_records(cur, payload, check_wall=False)
    assert len(failures) == 1
    assert "is_calls" in failures[0]


def test_phase_counter_drift_fails(payload):
    cur = copy.deepcopy(payload)
    name = next(iter(cur["scenarios"]))
    phases = cur["scenarios"][name]["phases"]
    phase = next(p for p in phases if phases[p]["counters"])
    key = next(iter(phases[phase]["counters"]))
    phases[phase]["counters"][key] += 1
    failures = bench.compare_records(cur, payload, check_wall=False)
    assert any(f"phase {phase!r}" in f for f in failures)


def test_checksum_drift_fails(payload):
    cur = copy.deepcopy(payload)
    name = next(iter(cur["scenarios"]))
    cur["scenarios"][name]["checksum"] += 1
    failures = bench.compare_records(cur, payload, check_wall=False)
    assert any("checksum" in f for f in failures)


def test_modeled_time_drift_fails(payload):
    cur = copy.deepcopy(payload)
    name = next(iter(cur["scenarios"]))
    cur["scenarios"][name]["modeled_s"] *= 1.001
    failures = bench.compare_records(cur, payload, check_wall=False)
    assert any("modeled_s" in f for f in failures)


def test_wall_clock_tolerance_is_one_sided(payload):
    cur = copy.deepcopy(payload)
    name = next(iter(cur["scenarios"]))
    base_wall = payload["scenarios"][name]["wall_s"]
    # 2x slower: regression beyond +20%
    cur["scenarios"][name]["wall_s"] = base_wall * 2.0
    assert bench.compare_records(cur, payload, check_wall=True)
    assert bench.compare_records(cur, payload, check_wall=False) == []
    assert bench.compare_records(cur, payload, wall_tol=1.5) == []
    # 2x faster: improvements never fail
    cur["scenarios"][name]["wall_s"] = base_wall * 0.5
    assert bench.compare_records(cur, payload, check_wall=True) == []


def test_only_shared_scenarios_are_compared(payload):
    subset = copy.deepcopy(payload)
    name, record = next(iter(payload["scenarios"].items()))
    subset["scenarios"] = {name: copy.deepcopy(record)}
    # smoke-style subset against a full baseline: clean
    assert bench.compare_records(subset, payload, check_wall=False) == []
    # disjoint files have nothing to say
    other = {"scenarios": {"elsewhere": record}}
    assert bench.compare_records(other, payload, check_wall=False) == []


def test_find_baseline_picks_latest(tmp_path):
    assert bench.find_baseline(tmp_path) is None
    (tmp_path / "BENCH_2026-01-01.json").write_text("{}")
    (tmp_path / "BENCH_2026-02-01.json").write_text("{}")
    assert bench.find_baseline(tmp_path).name == "BENCH_2026-02-01.json"
    latest = tmp_path / "BENCH_2026-02-01.json"
    assert (
        bench.find_baseline(tmp_path, exclude=latest).name
        == "BENCH_2026-01-01.json"
    )


# ----------------------------------------------------------------------
# suites
# ----------------------------------------------------------------------
def test_smoke_suite_is_subset_of_full_suite():
    smoke = {s.name for s in bench.smoke_suite()}
    full = {s.name for s in bench.full_suite()}
    assert smoke <= full
    assert len(full) >= 6  # the acceptance floor for pinned scenarios


def test_scenario_names_are_unique():
    names = [s.name for s in bench.full_suite()]
    assert len(names) == len(set(names))


def test_repeat_scenario_naming():
    single = bench.Scenario(family="uniform", n_points=80, n_queries=40,
                            variant="noopt")
    repeated = bench.Scenario(family="uniform", n_points=80, n_queries=40,
                              variant="noopt", repeat=2)
    assert single.name == "uniform-80/noopt/knn"
    assert repeated.name == "uniform-80/noopt/knn/x2"


def test_repeat_scenarios_in_smoke_suite():
    repeats = bench.repeat_scenarios()
    assert len(repeats) == 3
    assert all(s.repeat > 1 for s in repeats)
    smoke_names = {s.name for s in bench.smoke_suite()}
    assert {s.name for s in repeats} <= smoke_names


def test_shard_scenario_naming_and_twin():
    sharded = bench.Scenario(family="uniform", n_points=80, n_queries=40,
                             variant="sched+part", shards=4)
    assert sharded.name == "uniform-80/sched+part/knn/sh4"
    assert bench.shard_twin(sharded.name) == "uniform-80/sched+part/knn"
    # variant names containing "sh" must not look like shard suffixes
    assert bench.shard_twin("uniform-80/sched+part/knn") is None
    assert bench.shard_twin("uniform-80/sched+part/knn/par4") is None


def test_smoke_suite_has_a_sharded_twin():
    smoke = bench.smoke_suite()
    sharded = [s for s in smoke if s.shards]
    assert sharded, "smoke suite lost its sharded-topology scenario"
    names = {s.name for s in smoke}
    for s in sharded:
        assert bench.shard_twin(s.name) in names


def test_sharded_scenario_matches_single_engine_twin():
    suite = [
        bench.Scenario(family="uniform", n_points=80, n_queries=40,
                       variant="sched+part"),
        bench.Scenario(family="uniform", n_points=80, n_queries=40,
                       variant="sched+part", shards=3),
    ]
    payload = bench.run_suite(suite, verbose=False)
    assert bench.check_shard_consistency(payload) == []
    rec = payload["scenarios"]["uniform-80/sched+part/knn/sh3"]
    ref = payload["scenarios"]["uniform-80/sched+part/knn"]
    assert rec["neighbors"] == ref["neighbors"]
    assert rec["checksum"] == ref["checksum"]


def test_shard_consistency_catches_divergence_and_missing_twin():
    payload = {
        "scenarios": {
            "uniform-80/noopt/knn": {"neighbors": 10, "checksum": 42},
            "uniform-80/noopt/knn/sh4": {"neighbors": 10, "checksum": 41},
            "kitti-80/noopt/range/sh4": {"neighbors": 5, "checksum": 7},
        }
    }
    failures = bench.check_shard_consistency(payload)
    assert len(failures) == 2
    assert any("checksum" in f for f in failures)
    assert any("missing" in f for f in failures)


def test_repeat_record_carries_amortization_fields(payload):
    records = payload["scenarios"]
    repeated = records["uniform-80/noopt/knn/x2"]
    single = records["uniform-80/noopt/knn"]
    for key in ("wall_first_s", "wall_warm_s", "warm_speedup", "gas_cache"):
        assert key in repeated
        assert key not in single
    cache = repeated["gas_cache"]
    assert cache["misses"] >= 1  # the cold batch built
    assert cache["hits"] >= 1    # the warm batch reused
    # counters accumulate over batches: exactly 2x the single-batch run
    assert repeated["counters"]["is_calls"] == 2 * single["counters"]["is_calls"]
    assert repeated["checksum"] == single["checksum"]


# ----------------------------------------------------------------------
# CLI driver
# ----------------------------------------------------------------------
@pytest.fixture()
def tiny_main(monkeypatch, tmp_path):
    """bench.main wired to the tiny suite inside an isolated directory."""
    monkeypatch.setattr(bench, "full_suite", _tiny_suite)
    monkeypatch.setattr(bench, "smoke_suite", _tiny_suite)

    def run(*argv):
        return bench.main(["--dir", str(tmp_path), *argv])

    return run, tmp_path


def test_main_writes_then_passes_then_catches_regression(tiny_main, capsys):
    run, tmp_path = tiny_main
    assert run() == 0  # first full run: writes, nothing to compare
    written = list(tmp_path.glob("BENCH_*.json"))
    assert len(written) == 1
    payload = json.loads(written[0].read_text())
    assert len(payload["scenarios"]) == 3
    for record in payload["scenarios"].values():
        assert record["counters"]
        assert record["phases"]

    # second run compares clean against the first (skip wall: shared CI
    # machines make same-file wall times noisy)
    assert run("--no-wall", "--no-write") == 0

    # perturb one counter in the baseline -> regression detected
    name = next(iter(payload["scenarios"]))
    payload["scenarios"][name]["counters"]["is_calls"] += 1
    written[0].write_text(json.dumps(payload))
    assert run("--no-wall", "--no-write") == 1
    assert "is_calls" in capsys.readouterr().err


def test_main_smoke_mode_skips_write_and_wall(tiny_main):
    run, tmp_path = tiny_main
    assert run("--smoke") == 0
    assert list(tmp_path.glob("BENCH_*.json")) == []


def test_main_missing_baseline_is_usage_error(tiny_main):
    run, tmp_path = tiny_main
    assert run("--smoke", "--baseline", str(tmp_path / "nope.json")) == 2


# ----------------------------------------------------------------------
# CI pipeline wiring
# ----------------------------------------------------------------------
def test_ci_workflow_parses_and_runs_all_gates():
    yaml = pytest.importorskip("yaml")
    path = Path(__file__).resolve().parent.parent / ".github/workflows/ci.yml"
    data = yaml.safe_load(path.read_text())
    jobs = data["jobs"]
    assert {"test", "analyze", "bench"} <= set(jobs)
    matrix = jobs["test"]["strategy"]["matrix"]["python-version"]
    assert {"3.10", "3.12"} <= {str(v) for v in matrix}
    bench_cmds = " ".join(
        step.get("run", "") for step in jobs["bench"]["steps"]
    )
    # CI goes through the Makefile target so local `make bench-smoke`
    # and the CI gate can never drift apart.
    assert "make bench-smoke" in bench_cmds
    makefile = (path.parent.parent.parent / "Makefile").read_text()
    assert "repro.obs.bench --smoke" in makefile
