"""BVH persistence tests."""

import numpy as np
import pytest

from repro.bvh import build_lbvh, trace_batch, validate_bvh
from repro.bvh.serialize import load_bvh, save_bvh
from repro.geometry.aabb import aabbs_from_points
from repro.optix.shaders import CountingShader


def test_roundtrip(tmp_path, rng):
    pts = rng.random((400, 3))
    lo, hi = aabbs_from_points(pts, 0.05)
    bvh = build_lbvh(lo, hi, leaf_size=3)
    p = tmp_path / "tree.npz"
    save_bvh(p, bvh)
    back = load_bvh(p)
    validate_bvh(back)
    assert back.depth == bvh.depth and back.leaf_size == bvh.leaf_size
    for name in ("node_lo", "node_left", "prim_order", "prim_hi"):
        np.testing.assert_array_equal(getattr(back, name), getattr(bvh, name))

    # identical traversal behavior
    q = rng.random((60, 3))
    d = np.broadcast_to(np.array([1.0, 0.0, 0.0]), q.shape).copy()
    a = CountingShader(60)
    b = CountingShader(60)
    trace_batch(bvh, q, d, 0.0, 1e-16, a)
    trace_batch(back, q, d, 0.0, 1e-16, b)
    assert (a.calls == b.calls).all()


def test_rejects_foreign_npz(tmp_path):
    p = tmp_path / "x.npz"
    np.savez(p, stuff=np.arange(3))
    with pytest.raises(ValueError, match="not a saved BVH"):
        load_bvh(p)


def test_rejects_future_version(tmp_path, rng):
    pts = rng.random((20, 3))
    lo, hi = aabbs_from_points(pts, 0.05)
    bvh = build_lbvh(lo, hi)
    p = tmp_path / "tree.npz"
    save_bvh(p, bvh)
    data = dict(np.load(p))
    data["__format__"] = np.int64(99)
    np.savez(p, **data)
    with pytest.raises(ValueError, match="version"):
        load_bvh(p)
