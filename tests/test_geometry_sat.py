"""Summed-area-table tests, including a hypothesis equivalence property."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
import hypothesis.extra.numpy as hnp

from repro.geometry.sat import SummedAreaTable3D


def test_single_cell():
    dense = np.zeros((3, 3, 3), dtype=np.int64)
    dense[1, 2, 0] = 5
    sat = SummedAreaTable3D(dense)
    assert sat.box_sums(np.array([1, 2, 0]), np.array([1, 2, 0])) == 5
    assert sat.box_sums(np.array([0, 0, 0]), np.array([2, 2, 2])) == 5
    assert sat.box_sums(np.array([2, 2, 2]), np.array([2, 2, 2])) == 0


def test_total(rng=np.random.default_rng(0)):
    dense = rng.integers(0, 10, (4, 5, 6))
    sat = SummedAreaTable3D(dense)
    assert sat.total == dense.sum()


def test_inverted_box_is_zero():
    sat = SummedAreaTable3D(np.ones((3, 3, 3), dtype=np.int64))
    assert sat.box_sums(np.array([2, 0, 0]), np.array([1, 2, 2])) == 0


def test_clipping_out_of_range():
    dense = np.ones((3, 3, 3), dtype=np.int64)
    sat = SummedAreaTable3D(dense)
    # A huge box clips to the table and counts everything.
    assert sat.box_sums(np.array([-5, -5, -5]), np.array([99, 99, 99])) == 27


def test_batched_shapes():
    sat = SummedAreaTable3D(np.ones((2, 2, 2), dtype=np.int64))
    lo = np.zeros((7, 3), dtype=np.int64)
    hi = np.ones((7, 3), dtype=np.int64)
    out = sat.box_sums(lo, hi)
    assert out.shape == (7,)
    assert (out == 8).all()


def test_rejects_non_3d():
    with pytest.raises(ValueError):
        SummedAreaTable3D(np.ones((2, 2)))


@settings(max_examples=40)
@given(
    dense=hnp.arrays(np.int64, st.tuples(*(st.integers(1, 6),) * 3),
                     elements=st.integers(0, 20)),
    data=st.data(),
)
def test_property_equals_direct_sum(dense, data):
    """box_sums == dense[lo:hi+1].sum() for arbitrary boxes."""
    sat = SummedAreaTable3D(dense)
    shape = dense.shape
    lo = np.array([data.draw(st.integers(0, shape[d] - 1)) for d in range(3)])
    hi = np.array([data.draw(st.integers(lo[d], shape[d] - 1)) for d in range(3)])
    expect = dense[lo[0]:hi[0] + 1, lo[1]:hi[1] + 1, lo[2]:hi[2] + 1].sum()
    assert sat.box_sums(lo, hi) == expect
