"""Octree substrate tests (structure + traversal)."""

import numpy as np
import pytest

from repro.baselines.octree import Octree, build_octree, octree_traverse


@pytest.fixture(scope="module")
def tree():
    pts = np.random.default_rng(9).random((1000, 3))
    return build_octree(pts, leaf_size=8), pts


def test_structure(tree):
    t, pts = tree
    assert t.n_points == 1000
    assert sorted(t.point_order.tolist()) == list(range(1000))
    leaf = t.is_leaf
    # leaves cover all points exactly once
    covered = np.zeros(1000, dtype=int)
    for i in np.flatnonzero(leaf):
        covered[t.point_order[t.node_start[i] : t.node_end[i]]] += 1
    assert (covered == 1).all()


def test_children_partition_parent(tree):
    t, _ = tree
    for i in range(t.n_nodes):
        if t.child_first[i] < 0:
            continue
        cf, cc = t.child_first[i], t.child_count[i]
        assert 1 <= cc <= 8
        starts = t.node_start[cf : cf + cc]
        ends = t.node_end[cf : cf + cc]
        assert starts[0] == t.node_start[i]
        assert ends[-1] == t.node_end[i]
        assert (starts[1:] == ends[:-1]).all()


def test_bounds_contain_points(tree):
    t, pts = tree
    sp = pts[t.point_order]
    for i in range(0, t.n_nodes, 7):
        s, e = t.node_start[i], t.node_end[i]
        assert (t.node_lo[i] <= sp[s:e].min(axis=0) + 1e-12).all()
        assert (t.node_hi[i] >= sp[s:e].max(axis=0) - 1e-12).all()


def test_leaf_sizes(tree):
    t, _ = tree
    leaf = t.is_leaf
    sizes = (t.node_end - t.node_start)[leaf]
    assert sizes.max() == t.max_leaf_count
    # adaptive splitting keeps leaves small unless codes collide
    assert t.max_leaf_count <= 8 or t.depth == 21


def test_duplicates_dont_split_forever():
    pts = np.zeros((100, 3))
    t = build_octree(pts, leaf_size=4)
    assert t.max_leaf_count == 100  # unsplittable duplicates


def test_build_validation():
    with pytest.raises(ValueError):
        build_octree(np.zeros((0, 3)))
    with pytest.raises(ValueError):
        build_octree(np.zeros((5, 3)), leaf_size=0)


def test_traverse_finds_all_in_radius(tree):
    t, pts = tree
    rng = np.random.default_rng(1)
    q = rng.random((60, 3))
    r = 0.15
    found = [set() for _ in range(60)]

    def cb(qids, pids, d2):
        hit = d2 <= r * r
        for qq, pp in zip(qids[hit], pids[hit]):
            found[qq].add(int(pp))
        return None

    prune2 = np.full(60, r * r)
    stats = octree_traverse(t, q, prune2, cb)
    assert stats.steps.sum() > 0
    for i in range(60):
        d = np.linalg.norm(pts - q[i], axis=1)
        assert found[i] == set(np.flatnonzero(d <= r).tolist())


def test_traverse_empty_queries(tree):
    t, _ = tree
    stats = octree_traverse(t, np.zeros((0, 3)), np.zeros(0), lambda *a: None)
    assert len(stats.steps) == 0


def test_traverse_termination(tree):
    t, _ = tree
    q = np.random.default_rng(2).random((40, 3))

    calls = np.zeros(40, dtype=int)

    def one_and_done(qids, pids, d2):
        calls[qids] += 1
        return qids

    octree_traverse(t, q, np.full(40, np.inf), one_and_done)
    assert (calls <= 1).all()
