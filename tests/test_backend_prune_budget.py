"""Leaf MBR pruning, the traversal step budget, and the backend seam.

Three contracts from one PR, each tested against the others' oracle:

* **pruning is invisible**: every (query, leaf) pair the MBR distance
  test skips would have been rejected by the accumulator anyway, so
  results — indices, counts, squared distances — are bit-identical
  with pruning on and off, across modes, variants and topologies; only
  the pruning counters may differ.
* **backends are invisible**: the ``numba`` backend (here: its
  graceful NumPy fallback, since CI's other matrix leg owns the real
  JIT kernels) performs the same float64 operations in the same order,
  so results, counters *and* modeled seconds are bit-identical.
* **the budget is honest**: a budgeted run returns a subset of the
  exact answer, reports a recall lower bound the actual recall always
  meets, recovers exactness monotonically as the budget grows, and is
  rejected outright where it cannot be honest (``true_knn``).
"""

from __future__ import annotations

import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    NUMPY_BACKEND,
    available_backends,
    numba_available,
    resolve_backend,
)
from repro.backend import numpy_ref
from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.utils.rng import default_rng


def _clustered(n: int, seed: int = 3) -> np.ndarray:
    rng = default_rng(seed)
    centers = rng.random((8, 3))
    pts = centers[rng.integers(0, 8, n)] + rng.normal(0.0, 0.02, (n, 3))
    return np.clip(pts, 0.0, 1.0)


def _identical(a, b) -> bool:
    return (
        np.array_equal(a.indices, b.indices)
        and np.array_equal(a.counts, b.counts)
        and np.array_equal(a.sq_distances, b.sq_distances)
    )


def _search(engine, mode, queries, radius, k, **kw):
    if mode == "knn":
        return engine.knn_search(queries, k=k, radius=radius, **kw)
    if mode == "true_knn":
        return engine.true_knn_search(queries, k=k, radius=radius, **kw)
    return engine.range_search(queries, radius=radius, k=k, **kw)


# ----------------------------------------------------------------------
# reference kernels
# ----------------------------------------------------------------------
def test_box_sq_dists_bounds_every_point_in_the_box():
    rng = default_rng(11)
    lo = rng.random((64, 3))
    hi = lo + rng.random((64, 3))
    pts = rng.random((64, 3)) * 3.0 - 1.0
    min_d2, max_d2 = numpy_ref.box_sq_dists(pts, lo, hi)
    # Brute-force check against a dense corner/clamp sample per box.
    for i in range(64):
        clamped = np.clip(pts[i], lo[i], hi[i])
        assert min_d2[i] == pytest.approx(((pts[i] - clamped) ** 2).sum())
        corners = np.array(
            [[lo[i][d] if (m >> d) & 1 else hi[i][d] for d in range(3)]
             for m in range(8)]
        )
        far = ((pts[i] - corners) ** 2).sum(axis=1).max()
        assert max_d2[i] == pytest.approx(far)
    inside = numpy_ref.points_in_boxes(pts, lo, hi)
    assert np.all(min_d2[inside] == 0.0)


def test_resolve_backend_registry():
    assert resolve_backend(None) is NUMPY_BACKEND
    assert resolve_backend("numpy") is NUMPY_BACKEND
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("cuda")
    assert "numpy" in available_backends()
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        nb = resolve_backend("numba")
    assert nb.name == "numba"
    assert nb.is_fallback == (not numba_available())


# ----------------------------------------------------------------------
# pruning is invisible
# ----------------------------------------------------------------------
@pytest.mark.parametrize("variant", ["noopt", "sched+part", "sched+part+bundle"])
@pytest.mark.parametrize("mode", ["knn", "range", "true_knn"])
def test_pruned_results_bit_identical(mode, variant):
    points = _clustered(500)
    queries = points[:120]
    radius, k = (0.06, 8) if mode != "true_knn" else (None, 6)
    runs = {}
    for prune in (True, False):
        cfg = replace(VARIANTS[variant], leaf_prune=prune)
        runs[prune] = _search(
            RTNNEngine(points, config=cfg), mode, queries, radius, k
        )
    assert _identical(runs[True], runs[False])
    pruned = runs[True].report.extras["prune"]
    unpruned = runs[False].report.extras["prune"]
    assert pruned["enabled"] and not unpruned["enabled"]
    assert unpruned["leaves_pruned"] == 0
    # Clustered clouds guarantee distant leaves to skip.
    assert pruned["leaves_pruned"] > 0


def test_pruning_survives_refits():
    # Moving points invalidates the cached leaf MBRs; a stale cache
    # would prune against frame-0 geometry and silently drop neighbors.
    from repro.core.dynamic import DynamicRTNN

    points = _clustered(300, seed=9)
    queries = points[:60].copy()
    runs = {}
    for prune in (True, False):
        dyn = DynamicRTNN(points.copy(), radius=0.08)
        dyn.pipeline.prune_leaves = prune
        rng = default_rng(21)
        for _ in range(3):
            dyn.update(dyn.points + rng.normal(0.0, 0.004, points.shape))
            res = dyn.knn_search(queries, k=6)
        runs[prune] = res
    assert _identical(runs[True], runs[False])


@pytest.mark.parametrize("mode", ["knn", "range"])
def test_pruned_results_bit_identical_sharded(mode):
    from repro.serve.shard import ShardedEngine

    points = _clustered(400, seed=5)
    queries = points[:100]
    runs = {}
    for prune in (True, False):
        eng = ShardedEngine(
            points, n_shards=4, config=RTNNConfig(leaf_prune=prune)
        )
        runs[prune] = _search(eng, mode, queries, 0.07, 6)
    assert _identical(runs[True], runs[False])


# ----------------------------------------------------------------------
# backends are invisible
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["knn", "range", "true_knn"])
def test_backend_results_bit_identical(mode):
    points = _clustered(400, seed=7)
    queries = points[:100]
    radius, k = (0.06, 8) if mode != "true_knn" else (None, 4)
    runs = {}
    for backend in BACKEND_NAMES:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            eng = RTNNEngine(points, config=RTNNConfig(backend=backend))
        runs[backend] = _search(eng, mode, queries, radius, k)
    a, b = runs["numpy"], runs["numba"]
    assert _identical(a, b)
    assert a.report.modeled_time == b.report.modeled_time
    assert a.report.is_calls == b.report.is_calls
    assert a.report.traversal_steps == b.report.traversal_steps


def test_fallback_warns_once_and_round_trips_name():
    if numba_available():
        pytest.skip("numba installed: no fallback to exercise")
    from repro.backend import _numba_backend

    _numba_backend.cache_clear()
    with pytest.warns(RuntimeWarning, match="falling back"):
        backend = resolve_backend("numba")
    assert backend.name == "numba" and backend.is_fallback
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # a second warning would raise
        assert resolve_backend("numba") is backend


# ----------------------------------------------------------------------
# the budget is honest
# ----------------------------------------------------------------------
def _row_recall(res, exact) -> float:
    rows = len(exact.indices)
    same = sum(
        np.array_equal(res.indices[i], exact.indices[i]) for i in range(rows)
    )
    return same / rows if rows else 1.0


@pytest.mark.parametrize("mode", ["knn", "range"])
def test_budget_monotone_recall_and_honest_bound(mode):
    points = _clustered(500, seed=13)
    queries = points[:120]
    engine = RTNNEngine(points)
    exact = _search(engine, mode, queries, 0.06, 8)
    last = -1.0
    for budget in (2, 6, 20, 10_000):
        res = _search(engine, mode, queries, 0.06, 8, budget=budget)
        bud = res.report.extras["budget"]
        assert bud["step_budget"] == budget
        assert 0.0 <= bud["recall_lower_bound"] <= 1.0
        recall = _row_recall(res, exact)
        # The reported bound must never overpromise, and recall must
        # never degrade as the budget grows.
        assert recall >= bud["recall_lower_bound"] - 1e-12
        assert recall >= last - 1e-12
        # Budgeted answers are subsets: never more neighbors than exact.
        assert res.counts.sum() <= exact.counts.sum()
        last = recall
    # A huge budget never fires: bit-identical to the exact run.
    assert not bud["budget_exhausted"]
    assert bud["exhausted_queries"] == 0
    assert _identical(res, exact)


def test_budget_is_deterministic_and_config_equivalent():
    points = _clustered(400, seed=17)
    queries = points[:80]
    by_call = RTNNEngine(points).knn_search(
        queries, k=6, radius=0.05, budget=5
    )
    again = RTNNEngine(points).knn_search(queries, k=6, radius=0.05, budget=5)
    by_cfg = RTNNEngine(
        points, config=RTNNConfig(step_budget=5)
    ).knn_search(queries, k=6, radius=0.05)
    assert _identical(by_call, again)
    assert _identical(by_call, by_cfg)


def test_budget_exact_mode_untouched_by_default():
    points = _clustered(300, seed=19)
    res = RTNNEngine(points).knn_search(points[:50], k=4, radius=0.05)
    assert "budget" not in res.report.extras


def test_true_knn_rejects_budget_everywhere():
    points = _clustered(200, seed=23)
    engine = RTNNEngine(points, config=RTNNConfig(step_budget=4))
    with pytest.raises(ValueError, match="true_knn"):
        engine.true_knn_search(points[:20], k=4)
    with pytest.raises(ValueError, match="true_knn"):
        RTNNEngine(points).search_fused(
            "true_knn", [points[:20]], radius=0.1, k=4, budget=4
        )
    from repro.serve.shard import ShardedEngine

    with pytest.raises(ValueError, match="true_knn"):
        ShardedEngine(points, n_shards=2).search_fused(
            "true_knn", [points[:20]], radius=0.1, k=4, budget=4
        )


def test_budget_through_sharded_engine():
    from repro.serve.shard import ShardedEngine

    points = _clustered(400, seed=29)
    queries = points[:100]
    eng = ShardedEngine(points, n_shards=4)
    exact = eng.knn_search(queries, k=6, radius=0.06)
    tight = eng.knn_search(queries, k=6, radius=0.06, budget=3)
    bud = tight.report.extras["budget"]
    assert bud["step_budget"] == 3
    assert 0.0 <= bud["recall_lower_bound"] <= 1.0
    assert tight.counts.sum() <= exact.counts.sum()
    loose = eng.knn_search(queries, k=6, radius=0.06, budget=10_000)
    assert _identical(loose, exact)
    assert not loose.report.extras["budget"]["budget_exhausted"]


# ----------------------------------------------------------------------
# serving front door
# ----------------------------------------------------------------------
def test_budget_isolates_fusion_and_rides_the_batcher():
    from repro.serve.batcher import MicroBatch, execute_batch
    from repro.serve.queue import RequestQueue, SearchRequest

    points = _clustered(300, seed=31)

    def req(rid, budget):
        return SearchRequest(
            rid=rid, kind="knn", queries=points[rid * 10:rid * 10 + 10],
            k=4, radius=0.06, submitted_at=0.0, points_fp="fp",
            budget=budget,
        )

    # Different budgets (and budgeted vs exact) never share a launch.
    q = RequestQueue(max_depth=8)
    for rid, budget in enumerate([3, 3, None, 5]):
        q.offer(req(rid, budget))
    batch, _ = q.pop_batch(now=0.0, max_requests=8, max_queries=1000)
    assert [r.rid for r in batch] == [0, 1]

    # A budgeted batch produces exactly the engine's budgeted answer.
    engine = RTNNEngine(points)
    out = execute_batch(engine, MicroBatch([req(0, 3), req(1, 3)]))
    for rid, res in enumerate(out):
        solo = engine.knn_search(
            points[rid * 10:rid * 10 + 10], k=4, radius=0.06, budget=3
        )
        assert _identical(res, solo)


def test_service_submit_validates_budget():
    import asyncio

    from repro.serve.service import SearchService

    points = _clustered(200, seed=37)

    async def drive():
        async with SearchService(RTNNEngine(points)) as svc:
            with pytest.raises(ValueError, match="true_knn"):
                await svc.submit(
                    "true_knn", points[:10], k=4, radius=0.1, budget=3
                )
            with pytest.raises(ValueError, match="step_budget|budget"):
                await svc.submit(
                    "knn", points[:10], k=4, radius=0.1, budget=0
                )
            ok = await svc.submit(
                "knn", points[:10], k=4, radius=0.1, budget=4
            )
        return ok

    result = asyncio.run(drive())
    solo = RTNNEngine(points).knn_search(
        points[:10], k=4, radius=0.1, budget=4
    )
    assert _identical(result.results, solo)
