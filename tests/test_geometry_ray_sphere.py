"""RayBatch and sphere-kernel tests."""

import numpy as np
import pytest

from repro.geometry.ray import (
    DEFAULT_DIRECTION,
    RayBatch,
    SHORT_RAY_TMAX,
    short_rays_from_queries,
)
from repro.geometry.sphere import pairwise_sq_distances, points_in_sphere


def test_short_rays_defaults():
    q = np.random.default_rng(0).random((10, 3))
    rays = short_rays_from_queries(q)
    assert rays.t_min == 0.0 and rays.t_max == SHORT_RAY_TMAX
    assert np.allclose(rays.directions, DEFAULT_DIRECTION)
    assert (rays.query_ids == np.arange(10)).all()
    assert len(rays) == 10


def test_ray_batch_permuted_tracks_query_ids():
    q = np.arange(30, dtype=np.float64).reshape(10, 3)
    rays = short_rays_from_queries(q)
    perm = np.random.default_rng(1).permutation(10)
    moved = rays.permuted(perm)
    assert (moved.query_ids == perm).all()
    assert np.allclose(moved.origins, q[perm])


def test_ray_batch_validation():
    q = np.zeros((4, 3))
    with pytest.raises(ValueError):
        RayBatch(q, np.zeros((3, 3)))
    with pytest.raises(ValueError):
        RayBatch(q, np.zeros((4, 3)), t_min=1.0, t_max=0.0)
    with pytest.raises(ValueError):
        RayBatch(q, np.zeros((4, 3)), query_ids=np.zeros(3, dtype=np.int64))
    with pytest.raises(ValueError):
        short_rays_from_queries(np.zeros((4, 2)))


def test_points_in_sphere_boundary():
    q = np.array([[1.0, 0.0, 0.0]])
    c = np.array([[0.0, 0.0, 0.0]])
    assert points_in_sphere(q, c, 1.0).all()           # boundary inside
    assert not points_in_sphere(q, c, 0.999).any()


def test_pairwise_sq_distances_matches_loop():
    rng = np.random.default_rng(2)
    a = rng.random((7, 3))
    b = rng.random((9, 3))
    d2 = pairwise_sq_distances(a, b)
    for i in range(7):
        for j in range(9):
            assert np.isclose(d2[i, j], ((a[i] - b[j]) ** 2).sum())


def test_pairwise_sq_distances_nonnegative():
    a = np.full((5, 3), 1e8)
    d2 = pairwise_sq_distances(a, a)
    assert (d2 >= 0).all()
