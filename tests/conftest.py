"""Shared fixtures: small deterministic point sets and engines."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def cube_points(rng):
    """1500 uniform points in the unit cube."""
    return rng.random((1500, 3))


@pytest.fixture(scope="session")
def cube_queries(rng):
    """400 uniform query points in the unit cube."""
    return rng.random((400, 3))


@pytest.fixture(scope="session")
def clustered_points(rng):
    """A strongly clustered set (stress for partitioning/bundling)."""
    centers = rng.random((12, 3))
    which = rng.integers(0, 12, 1200)
    pts = centers[which] + rng.normal(0, 0.01, (1200, 3))
    return np.clip(pts, 0.0, 1.0)


def knn_sets(res):
    """Per-query neighbor frozensets from a SearchResults."""
    return [
        frozenset(row[:c].tolist())
        for row, c in zip(res.indices, res.counts)
    ]


@pytest.fixture(scope="session")
def neighbor_sets():
    return knn_sets
