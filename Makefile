PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint lint-concurrency analyze baseline bench bench-smoke serve-smoke serve-shard-smoke true-knn-smoke backend-smoke workloads-smoke profile trace-demo ci

# Extra pytest arguments ride in PYTEST_FLAGS (CI passes --junitxml=...).
test:
	$(PYTHON) -m pytest -x -q $(PYTEST_FLAGS)

# Generic lint (ruff, skipped with a notice if not installed) + the
# execution-model static analysis. Fails on any non-baselined finding.
lint:
	$(PYTHON) -m repro.analysis.lint src/repro

# Domain rules only.
analyze:
	$(PYTHON) -m repro.analysis src/repro

# Project-wide concurrency/determinism pass only (CON/DET families):
# cross-module call-graph contexts, lock-guard inference, RNG/clock/
# ordering discipline. Gates the sharded-serving work.
lint-concurrency:
	$(PYTHON) -m repro.analysis src/repro --select CON --select DET

# Accept the current findings as technical debt (use sparingly).
baseline:
	$(PYTHON) -m repro.analysis src/repro --write-baseline

# Full perf-regression suite: compares against the latest committed
# BENCH_*.json and writes a fresh BENCH_<date>.json.
bench:
	$(PYTHON) -m repro.obs.bench

# CI subset: counter-exact comparison only (including the parallel
# fan-out twin vs its serial scenario), writes nothing.
bench-smoke:
	$(PYTHON) -m repro.obs.bench --smoke

# Serving-tier load check: ~2s of seeded open-loop traffic through the
# micro-batching service; fails on any errored request, on batch
# occupancy never exceeding 1 (no coalescing), or on a non-bit-identical
# spot-check vs direct engine calls.
serve-smoke:
	$(PYTHON) -m repro.cli serve --dataset Bunny-360K --scale 0.03 \
	  --mode knn -k 4 --rps 300 --clients 4 --duration 2 \
	  --window-ms 10 --seed 0 --check

# Sharded-topology scale gate: the same seeded load through 1-shard and
# 4-shard topologies; fails on any errored/expired request, on any
# non-bit-identical cell of the knn/range x full/noopt identity matrix
# (1-shard vs 4-shard vs the raw single engine), or on modeled-clock
# throughput scaling below 2.5x at 4 shards.
serve-shard-smoke:
	$(PYTHON) -m repro.cli serve --dataset Bunny-360K --scale 0.1 \
	  --mode knn -k 8 --radius 0.05 --rps 150 --clients 4 --duration 1 \
	  --window-ms 5 --seed 0 --shards 4 --shard-smoke --min-scaling 2.5

# Unbounded exact-kNN gate: seeded true-knn traffic served by the solo
# engine and by 1-shard and 4-shard topologies; fails on any cell of
# the full/noopt x 1/4-shard identity matrix that is not bit-identical
# to BOTH the solo engine and the brute-force exact-kNN oracle, on a
# diverging radius schedule, on incoherent relaunch counters, or on
# any query taking more than 12 expansion rounds.
true-knn-smoke:
	$(PYTHON) -m repro.cli serve --dataset Bunny-360K --scale 0.1 \
	  --mode true-knn -k 8 --seed 0 --shards 4 --true-knn-smoke \
	  --max-rounds 12

# Backend seam gate: compiled-backend (/nb) twins must be bit-identical
# to the NumPy reference kernels — results, counters AND modeled time —
# and budgeted (/bN) twins bounded by their exact twins. Runs against
# whatever backends are importable: with numba installed it exercises
# the JIT kernels, without it the graceful fallback; both must pass
# (CI runs both matrix legs).
backend-smoke:
	$(PYTHON) -m repro.obs.bench --backend-check

# Downstream-workloads gate: DBSCAN, directed Hausdorff, and a 5-step
# SPH trajectory run on three serving paths (solo session, fused
# service, 4-shard service); fails unless every output is bit-identical
# across paths AND exactly equal to its brute-force oracle (labels,
# witness pair, full trajectory).
workloads-smoke:
	$(PYTHON) -m repro.cli workload --check --shards 4 --seed 7

# cProfile the fully-optimized large scenario (override with
# PROFILE_SCENARIO=<name> to pick another suite entry).
profile:
	$(PYTHON) -m repro.obs.bench --profile $(PROFILE_SCENARIO)

# Render a traced run (span tree + counter tables) on a tiny dataset.
trace-demo:
	$(PYTHON) -m repro.cli trace --dataset KITTI-1M --scale 0.002

# Everything CI gates on, in the same order as .github/workflows/ci.yml
# runs its jobs; tests/test_ci_consistency.py cross-checks the two so
# they cannot drift.
ci: test analyze lint-concurrency bench-smoke serve-smoke serve-shard-smoke true-knn-smoke backend-smoke workloads-smoke
