PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test lint analyze baseline

test:
	$(PYTHON) -m pytest -x -q

# Generic lint (ruff, skipped with a notice if not installed) + the
# execution-model static analysis. Fails on any non-baselined finding.
lint:
	$(PYTHON) -m repro.analysis.lint src/repro

# Domain rules only.
analyze:
	$(PYTHON) -m repro.analysis src/repro

# Accept the current findings as technical debt (use sparingly).
baseline:
	$(PYTHON) -m repro.analysis src/repro --write-baseline
