"""JIT-compiled hot-path kernels (optional ``numba`` feature flag).

The kernels mirror :mod:`repro.backend.numpy_ref` operation for
operation: per row, float64 subtractions/max's followed by a
left-to-right ``d0*d0 + d1*d1 + d2*d2`` accumulation — the same order
``np.einsum("ij,ij->i")`` uses for three columns — so results are
bit-identical to the reference backend (asserted by the bench ``/nb``
twins and ``make backend-smoke``).

When numba is not installed this module still imports cleanly with
``NUMBA_AVAILABLE = False`` and no kernel symbols;
:func:`repro.backend.resolve_backend` then falls back to the reference
kernels with a warning instead of failing.
"""

from __future__ import annotations

import numpy as np

try:  # feature flag: the container may not ship numba
    import numba

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - exercised on numba-less installs
    numba = None
    NUMBA_AVAILABLE = False


if NUMBA_AVAILABLE:

    @numba.njit(cache=True)
    def _sq_dist_kernel(diff, out):  # pragma: no cover - compiled
        for i in range(diff.shape[0]):
            acc = 0.0
            for j in range(3):
                d = diff[i, j]
                acc = acc + d * d
            out[i] = acc
        return out

    @numba.njit(cache=True)
    def _in_boxes_kernel(pts, lo, hi, out):  # pragma: no cover - compiled
        for i in range(pts.shape[0]):
            inside = True
            for j in range(3):
                p = pts[i, j]
                if p < lo[i, j] or p > hi[i, j]:
                    inside = False
                    break
            out[i] = inside
        return out

    @numba.njit(cache=True)
    def _box_sq_dists_kernel(pts, lo, hi, min_out, max_out):
        # pragma: no cover - compiled
        for i in range(pts.shape[0]):
            near_acc = 0.0
            far_acc = 0.0
            for j in range(3):
                p = pts[i, j]
                gap = lo[i, j] - p
                over = p - hi[i, j]
                near = gap if gap > over else over
                if near < 0.0:
                    near = 0.0
                a = p - lo[i, j]
                b = hi[i, j] - p
                far = a if a > b else b
                near_acc = near_acc + near * near
                far_acc = far_acc + far * far
            min_out[i] = near_acc
            max_out[i] = far_acc
        return min_out, max_out

    def sq_dist(diff, out=None):
        """Row-wise squared norm; see :func:`numpy_ref.sq_dist`."""
        diff = np.ascontiguousarray(diff, dtype=np.float64)
        if out is None:
            out = np.empty(len(diff), dtype=np.float64)
        return _sq_dist_kernel(diff, out)

    def points_in_boxes(pts, lo, hi):
        """Closed-box containment; see :func:`numpy_ref.points_in_boxes`."""
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        lo = np.ascontiguousarray(np.broadcast_to(lo, pts.shape), dtype=np.float64)
        hi = np.ascontiguousarray(np.broadcast_to(hi, pts.shape), dtype=np.float64)
        out = np.empty(len(pts), dtype=np.bool_)
        return _in_boxes_kernel(pts, lo, hi, out)

    def box_sq_dists(pts, lo, hi):
        """Point-to-box distance bounds; see :func:`numpy_ref.box_sq_dists`."""
        pts = np.ascontiguousarray(pts, dtype=np.float64)
        lo = np.ascontiguousarray(lo, dtype=np.float64)
        hi = np.ascontiguousarray(hi, dtype=np.float64)
        min_out = np.empty(len(pts), dtype=np.float64)
        max_out = np.empty(len(pts), dtype=np.float64)
        return _box_sq_dists_kernel(pts, lo, hi, min_out, max_out)
