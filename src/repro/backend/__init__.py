"""Pluggable hot-path kernel backends.

The traversal engine and the IS shaders spend their time in three tiny
numeric kernels: pair squared distances, origin-in-AABB tests, and
point-to-AABB squared-distance bounds (the leaf MBR pruning tests). A
:class:`Backend` packages one implementation of each behind a narrow
seam, so a compiled implementation can replace the NumPy inner loops
without touching the algorithm.

Two backends are registered:

* ``numpy`` — the reference implementation (:mod:`repro.backend.numpy_ref`).
  It *is* the oracle: every other backend must be bit-identical to it
  (asserted by ``make backend-smoke`` and the bench ``/nb`` twins).
* ``numba`` — JIT-compiled kernels (:mod:`repro.backend.numba_jit`),
  a feature flag: when numba is not installed, :func:`resolve_backend`
  degrades gracefully to the NumPy kernels (``is_fallback=True``) with
  a one-time warning instead of failing, so configs and bench records
  naming ``backend="numba"`` stay valid everywhere.

Bit-identity holds because every implementation performs the *same*
float64 operations in the same order (subtract, then ``d0*d0 + d1*d1 +
d2*d2`` accumulated left to right — exactly what
``np.einsum("ij,ij->i", d, d)`` does for 3 columns). That contract is
what lets pruned/budgeted/compiled paths share one set of committed
result checksums.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass

from repro.backend import numpy_ref

#: canonical backend names, in registry order
BACKEND_NAMES = ("numpy", "numba")


@dataclass(frozen=True)
class Backend:
    """One implementation of the hot-path kernels.

    Attributes
    ----------
    name:
        The *requested* name (``"numba"`` even when running on the
        fallback kernels, so configs round-trip).
    is_fallback:
        True when the requested backend is unavailable and the NumPy
        reference kernels are standing in.
    sq_dist:
        ``(diff (n,3) float64, out (n,) float64) -> (n,) float64`` —
        row-wise squared norm of already-subtracted pair differences,
        written into ``out``.
    points_in_boxes:
        ``(pts, lo, hi) -> (n,) bool`` — closed-box containment,
        row-wise (the short-ray primitive AABB test).
    box_sq_dists:
        ``(pts, lo, hi) -> (min_d2, max_d2)`` — squared Euclidean
        lower/upper bounds from each point to its (closed) box: the
        min/max-dist² of leaf MBR pruning.
    """

    name: str
    is_fallback: bool
    sq_dist: object
    points_in_boxes: object
    box_sq_dists: object


#: the reference backend (module-level singleton: backends are stateless)
NUMPY_BACKEND = Backend(
    name="numpy",
    is_fallback=False,
    sq_dist=numpy_ref.sq_dist,
    points_in_boxes=numpy_ref.points_in_boxes,
    box_sq_dists=numpy_ref.box_sq_dists,
)

def numba_available() -> bool:
    """Is the compiled backend importable in this environment?"""
    from repro.backend import numba_jit

    return numba_jit.NUMBA_AVAILABLE


def available_backends() -> list[str]:
    """Backends that run *natively* here (``numba`` only if installed)."""
    names = ["numpy"]
    if numba_available():
        names.append("numba")
    return names


def resolve_backend(name: str | None) -> Backend:
    """Resolve a config/CLI backend name to kernel implementations.

    ``None`` and ``"numpy"`` return the reference backend. ``"numba"``
    returns the JIT kernels when numba is importable and otherwise
    *falls back* to the reference kernels (``is_fallback=True``,
    one-time :class:`RuntimeWarning`) — results are bit-identical
    either way, only wall-clock differs. Unknown names raise
    ``ValueError``.
    """
    if name is None or name == "numpy":
        return NUMPY_BACKEND
    if name != "numba":
        raise ValueError(
            f"unknown backend {name!r}; expected one of {BACKEND_NAMES}"
        )
    return _numba_backend()


@functools.lru_cache(maxsize=1)
def _numba_backend() -> Backend:
    """Build (once) the numba backend, or its warned NumPy fallback.

    The ``lru_cache`` doubles as the one-time-warning latch: the
    fallback warning fires on the first resolve only.
    """
    from repro.backend import numba_jit

    if numba_jit.NUMBA_AVAILABLE:
        return Backend(
            name="numba",
            is_fallback=False,
            sq_dist=numba_jit.sq_dist,
            points_in_boxes=numba_jit.points_in_boxes,
            box_sq_dists=numba_jit.box_sq_dists,
        )
    warnings.warn(
        "backend 'numba' requested but numba is not installed; "
        "falling back to the NumPy reference kernels "
        "(results are identical, wall-clock speedup is lost)",
        RuntimeWarning,
        stacklevel=3,
    )
    return Backend(
        name="numba",
        is_fallback=True,
        sq_dist=numpy_ref.sq_dist,
        points_in_boxes=numpy_ref.points_in_boxes,
        box_sq_dists=numpy_ref.box_sq_dists,
    )
