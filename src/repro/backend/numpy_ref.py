"""The NumPy reference kernels — the backend oracle.

Every other backend must reproduce these bit-for-bit (same float64
operations, same accumulation order); see :mod:`repro.backend`.
"""

from __future__ import annotations

import numpy as np


def sq_dist(diff: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """Row-wise squared norm of ``diff`` ``(n, 3)``.

    ``einsum("ij,ij->i")`` accumulates the three products left to
    right — the op-order contract compiled backends must match.
    """
    if out is None:
        return np.einsum("ij,ij->i", diff, diff)
    return np.einsum("ij,ij->i", diff, diff, out=out)


def points_in_boxes(
    pts: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> np.ndarray:
    """Closed-box containment of ``pts`` in boxes ``(lo, hi)``, row-wise.

    Exactly the origin-inside condition of
    :func:`repro.geometry.aabb.ray_aabb_intersect`'s short-ray fast
    path (boundary points count as inside).
    """
    return np.logical_and(pts >= lo, pts <= hi).all(axis=-1)


def box_sq_dists(
    pts: np.ndarray, lo: np.ndarray, hi: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Squared Euclidean lower/upper bounds from points to closed boxes.

    Per axis, the nearest box point is at gap
    ``max(lo - p, p - hi, 0)`` and the farthest corner at
    ``max(p - lo, hi - p)``; summing squares over the axes gives
    ``min_d2`` (0 inside the box) and ``max_d2``. The accumulation is
    the same ``einsum`` reduction as :func:`sq_dist`.
    """
    near = np.maximum(np.maximum(lo - pts, pts - hi), 0.0)
    far = np.maximum(pts - lo, hi - pts)
    min_d2 = np.einsum("ij,ij->i", near, near)
    max_d2 = np.einsum("ij,ij->i", far, far)
    return min_d2, max_d2
