"""Directed Hausdorff distance via bichromatic NN with cmin/cmax pruning.

``h(A, B) = max_a min_b d(a, b)`` — the classic RT-accelerated
formulation (SNIPPETS.md snippets 1–2) keeps a global running maximum
``cmax`` (a lower bound on the answer) and, per A point, a ``cmin``
(its NN distance): a point whose ``cmin`` cannot exceed ``cmax`` can
never move the answer and is pruned from further work.

This pipeline walks A in fixed-size chunks (index order). Each chunk
probes k=1 NN at a radius derived from the current ``cmax`` — a point
whose NN falls inside that radius gets its exact ``cmin`` for free and
is pruned if it does not beat ``cmax``; only the *survivors* (no
neighbor found) pay geometric radius-expansion rounds, re-launching
only the still-empty rows (the ``run_expansion`` relaunch idiom).
Because later chunks probe at the (monotonically growing) ``cmax``,
most of A never expands at all.

Determinism contract: the squared distance is exact and bit-identical
to the chunked subtract-then-einsum brute oracle; ``index_a`` is the
**lowest** A index attaining the maximum (chunks are walked in index
order and updates are strict); ``index_b`` is canonicalized after the
fact as the lowest-index B witness at exactly the final distance (one
extra range query), so ties in either argument resolve identically on
every serving path and in the oracle.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.expansion import COVER_SLACK, cover_radius
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils.validate import as_points, check_positive, check_positive_int


@dataclass(frozen=True)
class HausdorffConfig:
    """Knobs of the directed-Hausdorff pipeline.

    ``init_radius`` seeds the probe when no ``cmax`` exists yet
    (default: the joint cover radius / 1024, so at most ~10 expansion
    doublings reach exhaustive). ``max_rounds`` is a hard safety cap on
    expansion rounds per chunk.
    """

    chunk_size: int = 256
    growth: float = 2.0
    max_rounds: int = 64
    init_radius: float | None = None

    def __post_init__(self):
        check_positive_int(self.chunk_size, "chunk_size")
        check_positive_int(self.max_rounds, "max_rounds")
        if not self.growth > 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        if self.init_radius is not None:
            check_positive(self.init_radius, "init_radius")


@dataclass
class HausdorffResult:
    """The directed distance, its witness pair, and pruning telemetry."""

    distance: float
    sq_distance: float
    index_a: int
    index_b: int
    stats: dict = field(default_factory=dict)


def _probe_radius(cmax2: float, floor: float) -> float:
    """Smallest radius whose shader-arithmetic r² covers ``cmax2``.

    The shader's acceptance test is ``d2 <= float(r) * float(r)``; a
    bare ``sqrt`` can round below, so nudge up until the product
    clears. Never below ``floor`` (the seed radius)."""
    if cmax2 <= 0.0:
        return floor
    r = math.sqrt(cmax2)
    while r * r < cmax2:
        r = math.nextafter(r, math.inf)
    return max(r, floor)


def run_hausdorff(
    client, queries_a, config: HausdorffConfig, tracer: Tracer | None = None
) -> HausdorffResult:
    """Directed ``h(A, B)`` where B is the client's point set."""
    tracer = tracer if tracer is not None else NULL_TRACER
    a = as_points(queries_a, "queries_a")
    n = len(a)
    if n == 0:
        return HausdorffResult(0.0, 0.0, -1, -1, {"chunks": 0, "rounds": 0})

    cover = cover_radius(client.points, a) * COVER_SLACK
    r0 = (
        float(config.init_radius)
        if config.init_radius is not None
        else max(cover / 1024.0, 1e-12)
    )

    cmax2 = -1.0  # below any d2, so the first chunk always updates
    index_a = -1
    rounds_total = 0
    relaunched_total = 0
    pruned_total = 0

    chunk_starts = range(0, n, config.chunk_size)
    for ci, start in enumerate(chunk_starts):
        ids = np.arange(start, min(start + config.chunk_size, n))
        pts = a[ids]
        with tracer.span(
            f"workload.hausdorff.chunk[{ci}]", phase="workload"
        ) as sp:
            mins = np.full(len(ids), np.inf)
            pending = np.arange(len(ids))
            r = _probe_radius(cmax2, r0)
            rounds = 0
            while len(pending):
                if rounds >= config.max_rounds:
                    raise RuntimeError(
                        "hausdorff expansion exceeded max_rounds "
                        f"({config.max_rounds}) at radius {r}"
                    )
                res = client.knn(pts[pending], 1, r)
                found = res.counts > 0
                if found.any():
                    mins[pending[found]] = res.sq_distances[found, 0]
                sp.add(
                    hausdorff_rounds=1,
                    relaunched_queries=len(pending),
                    satisfied_queries=int(found.sum()),
                )
                sp.note(radius=float(r))
                relaunched_total += len(pending)
                pending = pending[~found]
                rounds += 1
                if len(pending):
                    if r >= cover:
                        # an exhaustive round found nothing: B is
                        # unreachable, which as_points precludes
                        raise RuntimeError(
                            "hausdorff expansion failed at cover radius"
                        )
                    r = min(r * config.growth, cover)
            rounds_total += rounds
            pruned = mins <= cmax2
            pruned_total += int(pruned.sum())
            sp.add(pruned_queries=int(pruned.sum()))
            best = int(np.argmax(mins))  # first max = lowest index
            if mins[best] > cmax2:
                cmax2 = float(mins[best])
                index_a = int(ids[best])

    hd2 = max(cmax2, 0.0)
    # Canonical witness: the lowest-index B point at exactly hd2. The
    # shader recomputes the same bitwise d2, so the equality filter is
    # exact; the count pins the escalation k so no witness is dropped.
    r_wit = _probe_radius(hd2, r0)
    wq = a[index_a : index_a + 1]
    k_wit = max(int(client.count(wq, r_wit)[0]), 1)
    wres = client.range(wq, r_wit, k_wit)
    row = wres.indices[0, : wres.counts[0]]
    row_d2 = wres.sq_distances[0, : wres.counts[0]]
    witnesses = row[row_d2 == hd2]
    index_b = int(witnesses.min())

    stats = {
        "chunks": len(list(chunk_starts)),
        "rounds": rounds_total,
        "relaunched": relaunched_total,
        "pruned": pruned_total,
        "seed_radius": r0,
    }
    return HausdorffResult(
        distance=math.sqrt(hd2),
        sq_distance=hd2,
        index_a=index_a,
        index_b=index_b,
        stats=stats,
    )
