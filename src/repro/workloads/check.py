"""The workloads smoke gate: oracles + cross-path bit-identity.

``repro workload --check`` (the ``workloads-smoke`` CI gate) runs a
small DBSCAN, a directed Hausdorff, and a 5-step SPH trajectory on
three serving paths — solo :class:`SessionClient`, fused
:class:`SearchService`, and a sharded service — asserting every output
bit-identical across paths and exactly equal to its brute oracle.
"""

from __future__ import annotations

import contextlib

import numpy as np

from repro.api import SearchSession
from repro.serve.service import ServiceConfig
from repro.utils.rng import default_rng
from repro.workloads.client import SessionClient, service_client
from repro.workloads.dbscan import DBSCANConfig, run_dbscan
from repro.workloads.hausdorff import HausdorffConfig, run_hausdorff
from repro.workloads.oracles import brute_dbscan, brute_hausdorff, brute_sph
from repro.workloads.sph import SPHConfig, run_sph

#: tight batching window so the smoke gate's fanned submits stay quick
_SERVE_CONFIG = ServiceConfig(batch_window_s=0.002)


def clustered_cloud(n: int, seed: int, spread: float = 0.02) -> np.ndarray:
    """A deterministic clustered point cloud in the unit cube."""
    rng = default_rng(seed)
    centers = rng.random((8, 3))
    pts = centers[rng.integers(0, 8, n)] + rng.normal(0.0, spread, (n, 3))
    return np.clip(pts, 0.0, 1.0)


@contextlib.contextmanager
def _client(points, path: str, shards: int, fan: int):
    """One workload client per serving path, over a fresh session."""
    session = SearchSession(points)
    if path == "solo":
        yield SessionClient(session)
    elif path == "fused":
        with service_client(session, fan=fan, config=_SERVE_CONFIG) as c:
            yield c
    else:  # sharded
        with service_client(
            session, shards=shards, fan=fan, config=_SERVE_CONFIG
        ) as c:
            yield c


def workloads_smoke(
    n_points: int = 300,
    n_queries: int = 120,
    shards: int = 4,
    seed: int = 7,
    fan: int = 2,
    sph_steps: int = 5,
) -> dict:
    """Run all three workloads on all three paths; assert exactness.

    Returns a summary dict for the CLI to print. Raises
    ``AssertionError`` on any oracle or cross-path mismatch.
    """
    paths = ("solo", "fused", f"sh{shards}")
    points_b = clustered_cloud(n_points, seed)
    queries_a = clustered_cloud(n_queries, seed + 1)
    summary: dict = {"paths": list(paths)}

    # --- DBSCAN ------------------------------------------------------
    dcfg = DBSCANConfig(eps=0.05, min_pts=5, batch_size=64)
    d_runs = {}
    for path in paths:
        with _client(points_b, path, shards, fan) as client:
            d_runs[path] = run_dbscan(client, dcfg)
    ref = d_runs["solo"]
    for path in paths[1:]:
        assert np.array_equal(d_runs[path].labels, ref.labels), (
            f"dbscan labels diverge on {path}"
        )
        assert np.array_equal(d_runs[path].counts, ref.counts), (
            f"dbscan counts diverge on {path}"
        )
    o_labels, o_core, o_counts, o_clusters = brute_dbscan(points_b, dcfg)
    assert np.array_equal(ref.labels, o_labels), "dbscan labels != oracle"
    assert np.array_equal(ref.counts, o_counts), "dbscan counts != oracle"
    assert ref.n_clusters == o_clusters, "dbscan cluster count != oracle"
    summary["dbscan"] = {
        "clusters": ref.n_clusters,
        "noise": ref.stats["noise_points"],
        "rounds": ref.rounds,
    }

    # --- Hausdorff ---------------------------------------------------
    hcfg = HausdorffConfig(chunk_size=48)
    h_runs = {}
    for path in paths:
        with _client(points_b, path, shards, fan) as client:
            h_runs[path] = run_hausdorff(client, queries_a, hcfg)
    href = h_runs["solo"]
    for path in paths[1:]:
        got = h_runs[path]
        assert got.sq_distance == href.sq_distance, (
            f"hausdorff distance diverges on {path}"
        )
        assert (got.index_a, got.index_b) == (href.index_a, href.index_b), (
            f"hausdorff witness diverges on {path}"
        )
    o_hd2, o_ia, o_ib = brute_hausdorff(queries_a, points_b)
    assert href.sq_distance == o_hd2, "hausdorff distance != oracle"
    assert (href.index_a, href.index_b) == (o_ia, o_ib), (
        "hausdorff witness != oracle"
    )
    summary["hausdorff"] = {
        "distance": href.distance,
        "witness": [href.index_a, href.index_b],
        "pruned": href.stats["pruned"],
    }

    # --- SPH ---------------------------------------------------------
    scfg = SPHConfig(radius=0.06, dt=1e-3, n_steps=sph_steps)
    s_runs = {}
    for path in paths:
        with _client(points_b, path, shards, fan) as client:
            s_runs[path] = run_sph(client, scfg)
    sref = s_runs["solo"]
    for path in paths[1:]:
        got = s_runs[path]
        assert np.array_equal(got.positions, sref.positions), (
            f"sph positions diverge on {path}"
        )
        assert np.array_equal(got.velocities, sref.velocities), (
            f"sph velocities diverge on {path}"
        )
    o_x, o_v = brute_sph(points_b, scfg)
    assert np.array_equal(sref.positions, o_x), "sph positions != oracle"
    assert np.array_equal(sref.velocities, o_v), "sph velocities != oracle"
    summary["sph"] = {
        "steps": sph_steps,
        "neighbor_pairs": sref.stats["neighbor_pairs"],
        "refit_s": sref.stats["refit_s"],
    }
    return summary
