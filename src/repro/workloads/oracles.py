"""Brute-force oracles for the workload pipelines.

Each oracle recomputes its workload from exhaustive pairwise
distances, using the *same* float arithmetic as the engine's shaders
(subtract, then einsum over the coordinate axis — the
``_PairDistance`` contract, shared with ``brute_force_true_knn``) and
the same canonical finalization rules as the pipelines. Matches are
therefore exact:

* :func:`brute_dbscan` — labels equal bit-for-bit (not just up to
  renaming);
* :func:`brute_hausdorff` — identical squared distance and witness
  pair;
* :func:`brute_sph` — bit-identical trajectories (shares
  :func:`~repro.workloads.sph.interaction_forces`).

All oracles chunk over queries so memory stays ``O(chunk · N)``.
"""

from __future__ import annotations

import numpy as np

from repro.workloads.dbscan import DBSCANConfig, finalize_labels, _union
from repro.workloads.sph import SPHConfig, interaction_forces

_CHUNK = 256


def _chunk_d2(queries: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Exact (Q, N) squared distances, shader arithmetic."""
    diff = queries[:, None, :] - points[None, :, :]
    return np.einsum("qnd,qnd->qn", diff, diff)


def brute_dbscan(
    points, config: DBSCANConfig
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Exhaustive DBSCAN with the pipeline's canonical labeling.

    Returns ``(labels, core, counts, n_clusters)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n = len(points)
    r2 = float(config.eps) * float(config.eps)

    counts = np.zeros(n, dtype=np.int64)
    within_rows: list[np.ndarray] = []
    for start in range(0, n, _CHUNK):
        d2 = _chunk_d2(points[start : start + _CHUNK], points)
        within = d2 <= r2
        counts[start : start + _CHUNK] = within.sum(axis=1)
        within_rows.append(within)
    core = counts >= config.min_pts

    parent = np.arange(n, dtype=np.int64)
    border_anchor = np.full(n, n, dtype=np.int64)
    for ci, within in enumerate(within_rows):
        base = ci * _CHUNK
        for local in range(len(within)):
            i = base + local
            if not core[i]:
                continue
            nbrs = np.flatnonzero(within[local])
            core_nbrs = nbrs[core[nbrs]]
            for j in core_nbrs.tolist():
                _union(parent, i, j)
            other = nbrs[~core[nbrs]]
            if len(other):
                np.minimum.at(border_anchor, other, i)
    labels, n_clusters = finalize_labels(parent, core, border_anchor)
    return labels, core, counts, n_clusters


def brute_hausdorff(queries_a, points_b) -> tuple[float, int, int]:
    """Exhaustive directed ``h²(A, B)`` with canonical tie-breaks.

    Returns ``(sq_distance, index_a, index_b)`` — the lowest-index
    maximizer of A and, for it, the lowest-index minimizer of B (both
    via first-occurrence argmax/argmin over index-ordered chunks),
    matching the pipeline's strict-update and canonical-witness rules.
    """
    a = np.asarray(queries_a, dtype=np.float64)
    b = np.asarray(points_b, dtype=np.float64)
    if len(a) == 0:
        return 0.0, -1, -1
    cmax2 = -1.0
    index_a = -1
    index_b = -1
    for start in range(0, len(a), _CHUNK):
        d2 = _chunk_d2(a[start : start + _CHUNK], b)
        mins = d2.min(axis=1)
        best = int(np.argmax(mins))
        if mins[best] > cmax2:
            cmax2 = float(mins[best])
            index_a = start + best
            index_b = int(np.argmin(d2[best]))
    return max(cmax2, 0.0), index_a, index_b


def brute_sph(
    points, config: SPHConfig, velocities=None
) -> tuple[np.ndarray, np.ndarray]:
    """Exhaustive stepper sharing the pipeline's force function.

    Neighbor rows are rebuilt per step from full pairwise distances in
    natural (ascending) index order — exactly the canonical rows the
    pipeline feeds :func:`interaction_forces` — with the same per-step
    width ``k = counts.max()``. Returns ``(positions, velocities)``.
    """
    x = np.array(points, dtype=np.float64, copy=True)
    n = len(x)
    v = (
        np.zeros_like(x)
        if velocities is None
        else np.array(velocities, dtype=np.float64, copy=True)
    )
    r2 = float(config.radius) * float(config.radius)
    dt = float(config.dt)
    for _ in range(config.n_steps):
        counts = np.zeros(n, dtype=np.int64)
        rows: list[tuple[np.ndarray, np.ndarray]] = []
        for start in range(0, n, _CHUNK):
            d2 = _chunk_d2(x[start : start + _CHUNK], x)
            within = d2 <= r2
            counts[start : start + _CHUNK] = within.sum(axis=1)
            rows.append((within, d2))
        k = max(int(counts.max()), 1)
        cidx = np.full((n, k), -1, dtype=np.int64)
        cd2 = np.full((n, k), np.inf)
        for ci, (within, d2) in enumerate(rows):
            base = ci * _CHUNK
            for local in range(len(within)):
                nbrs = np.flatnonzero(within[local])
                cidx[base + local, : len(nbrs)] = nbrs
                cd2[base + local, : len(nbrs)] = d2[local, nbrs]
        acc = interaction_forces(x, cidx, cd2, config.gravity, config.softening)
        v = v + dt * acc
        x = x + dt * v
    return x, v
