"""Downstream workload pipelines over the serving stack.

End-to-end consumers of the neighbor-search primitive — density
clustering (DBSCAN), bichromatic distance (directed Hausdorff), and a
dynamic SPH/n-body stepper — each driving the engine exclusively
through :class:`~repro.api.SearchSession` or a live
:class:`~repro.serve.service.SearchService` (see
:mod:`repro.workloads.client`), with brute-force oracles and
bit-stability contracts across serving paths. ``docs/workloads.md``
has the algorithm sketches and determinism contracts.
"""

from repro.workloads.client import (
    ServiceClient,
    SessionClient,
    canonical_rows,
    service_client,
)
from repro.workloads.dbscan import DBSCANConfig, DBSCANResult, run_dbscan
from repro.workloads.hausdorff import (
    HausdorffConfig,
    HausdorffResult,
    run_hausdorff,
)
from repro.workloads.oracles import brute_dbscan, brute_hausdorff, brute_sph
from repro.workloads.sph import SPHConfig, SPHResult, interaction_forces, run_sph

__all__ = [
    "SessionClient",
    "ServiceClient",
    "service_client",
    "canonical_rows",
    "DBSCANConfig",
    "DBSCANResult",
    "run_dbscan",
    "HausdorffConfig",
    "HausdorffResult",
    "run_hausdorff",
    "SPHConfig",
    "SPHResult",
    "run_sph",
    "interaction_forces",
    "brute_dbscan",
    "brute_hausdorff",
    "brute_sph",
]
