"""Neighbor-search clients for the downstream workload pipelines.

Workloads never talk to an engine directly (enforced by
``tests/test_workloads.py``): they drive one of two interchangeable
clients, both exposing the same five-method surface —

* :class:`SessionClient` — a thin adapter over a
  :class:`~repro.api.SearchSession` (solo engine, blocking calls);
* :class:`ServiceClient` — an adapter over a **live**
  :class:`~repro.serve.service.SearchService` (solo or sharded). Each
  logical query batch is split into ``fan`` chunks submitted
  concurrently, so the service's micro-batcher genuinely fuses them
  into one engine pass. Aggregate counts ride on k-escalated range
  submits (the service has no count request kind).

Both clients return the engine's exact answers; workloads that consume
row *content* (not just sets/counts) must first pass results through
:func:`canonical_rows`, which re-sorts each row by neighbor index — a
total order on values, so the canonicalized rows are bit-identical
across the solo, fused-serve, and sharded paths.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading

import numpy as np

from repro.core.results import SearchResults


def canonical_rows(
    results: SearchResults, k: int, n_points: int
) -> tuple[np.ndarray, np.ndarray]:
    """Width-``k`` rows sorted ascending by neighbor index.

    Returns ``(indices, sq_distances)`` of shape ``(Q, k)`` with each
    row's valid entries first (sorted by point index, which is unique
    within a row) and ``-1``/``inf`` padding after. Because the sort
    key is the neighbor *index*, the result depends only on the
    neighbor set and its (path-independent) distances — never on
    discovery order — which is what makes downstream arithmetic
    bit-stable across serving topologies. Callers pass
    ``k >= counts.max()`` so no valid entry is dropped.
    """
    counts = results.counts
    n_q, k_in = results.indices.shape
    valid = np.arange(k_in)[None, :] < counts[:, None]
    # Invalid slots get an index key beyond every real point id, so the
    # stable argsort pushes them to the tail without reordering ties
    # (there are none: indices are unique within a row).
    keys = np.where(valid, results.indices, n_points)
    order = np.argsort(keys, axis=1, kind="stable")
    rows = np.arange(n_q)[:, None]
    s_valid = valid[rows, order]
    s_idx = np.where(s_valid, results.indices[rows, order], -1)
    s_d2 = np.where(s_valid, results.sq_distances[rows, order], np.inf)
    out_idx = np.full((n_q, k), -1, dtype=np.int64)
    out_d2 = np.full((n_q, k), np.inf, dtype=np.float64)
    w = min(k, k_in)
    out_idx[:, :w] = s_idx[:, :w]
    out_d2[:, :w] = s_d2[:, :w]
    return out_idx, out_d2


class SessionClient:
    """The solo-engine client: direct :class:`SearchSession` calls."""

    kind = "session"

    def __init__(self, session):
        self.session = session

    @property
    def points(self) -> np.ndarray:
        return self.session.points

    def count(self, queries, radius: float) -> np.ndarray:
        """Exact within-radius neighbor counts (aggregate-only path)."""
        return self.session.count_in_radius(queries, radius).counts

    def range(self, queries, radius: float, k: int) -> SearchResults:
        return self.session.range_search(queries, radius=radius, k=k)

    def knn(self, queries, k: int, radius: float) -> SearchResults:
        return self.session.knn_search(queries, k=k, radius=radius)

    def update(self, points) -> float:
        return self.session.update_points(points)


class ServiceClient:
    """A blocking workload client over a live :class:`SearchService`.

    The service's event loop runs on a dedicated background thread;
    every batch is split into ``fan`` chunks submitted concurrently and
    gathered on that loop, then reassembled in chunk order. Counts are
    derived by k-escalated range submits: double ``k`` until no row
    saturates (mirroring the shard spot-check in the load generator),
    at which point every count is exact.
    """

    kind = "service"

    #: starting k of the count escalation
    COUNT_K0 = 8

    def __init__(self, service, loop, points, fan: int = 2):
        self._service = service
        self._loop = loop
        self._points = np.asarray(points, dtype=np.float64)
        self.fan = max(1, int(fan))

    @property
    def points(self) -> np.ndarray:
        return self._points

    def _submit_gather(self, kind, chunks, k, radius) -> list:
        async def _gather():
            tasks = [
                asyncio.ensure_future(
                    self._service.submit(kind, c, k=k, radius=radius)
                )
                for c in chunks
            ]
            return await asyncio.gather(*tasks)

        return asyncio.run_coroutine_threadsafe(_gather(), self._loop).result()

    def _fanned(self, kind, queries, k, radius) -> SearchResults:
        queries = np.asarray(queries, dtype=np.float64)
        n = len(queries)
        if n == 0:
            return SearchResults(
                indices=np.full((0, k), -1, dtype=np.int64),
                counts=np.zeros(0, dtype=np.int64),
                sq_distances=np.full((0, k), np.inf),
            )
        chunks = [c for c in np.array_split(queries, self.fan) if len(c)]
        outs = self._submit_gather(kind, chunks, k, radius)
        return SearchResults(
            indices=np.concatenate([o.indices for o in outs]),
            counts=np.concatenate([o.counts for o in outs]),
            sq_distances=np.concatenate([o.sq_distances for o in outs]),
            report=outs[0].results.report,
        )

    def count(self, queries, radius: float) -> np.ndarray:
        n_pts = len(self._points)
        k = min(self.COUNT_K0, max(n_pts, 1))
        while True:
            counts = self._fanned("range", queries, k, radius).counts
            if len(counts) == 0 or counts.max() < k or k >= n_pts:
                return counts.copy()
            k = min(2 * k, n_pts)

    def range(self, queries, radius: float, k: int) -> SearchResults:
        return self._fanned("range", queries, k, radius)

    def knn(self, queries, k: int, radius: float) -> SearchResults:
        return self._fanned("knn", queries, k, radius)

    def update(self, points) -> float:
        """Move the served point set (no requests may be in flight)."""
        refit_s = self._service.update_points(points)
        self._points = np.asarray(points, dtype=np.float64).copy()
        return refit_s


@contextlib.contextmanager
def service_client(
    session,
    shards: int | None = None,
    fan: int = 2,
    config=None,
    workers: int | None = None,
):
    """A running :class:`ServiceClient` over ``session``'s points.

    Spins up a private event loop on a daemon thread, starts the
    service there (``shards=None`` serves the session's own engine;
    an integer builds the sharded topology), and tears both down on
    exit. The yielded client's blocking calls are safe from the caller
    thread; the loop thread only ever runs service internals.
    """
    service = session.serve(config=config, shards=shards, workers=workers)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(
        target=loop.run_forever, name="workload-serve-loop", daemon=True
    )
    thread.start()
    try:
        asyncio.run_coroutine_threadsafe(service.start(), loop).result()
        try:
            yield ServiceClient(service, loop, session.points, fan=fan)
        finally:
            asyncio.run_coroutine_threadsafe(service.stop(), loop).result()
    finally:
        loop.call_soon_threadsafe(loop.stop)
        thread.join()
        loop.close()
