"""RT-DBSCAN: density clustering by range-query region growing.

The classic DBSCAN recurrence — grow clusters outward from core
points — maps directly onto the engine's range primitive (RT-DBSCAN,
PAPERS.md): one aggregate ``count`` pass classifies core points, then
batched frontier rounds fetch the neighborhoods of (only) unvisited
core points, mirroring the ``run_expansion`` relaunch idiom.

Determinism contract: labels are **bit-stable** across the solo,
fused-serve, and sharded paths, because every step consumes only
path-independent values — within-radius counts and neighbor *sets* —
and the labeling itself is canonical:

* union-find merges always attach the larger root under the smaller,
  so each component's representative is its minimum member index
  (independent of edge discovery order);
* final labels renumber components by ascending representative;
* a border point joins the cluster of its **minimum-index** core
  neighbor; points that are neither core nor within ``eps`` of a core
  point are noise (label ``-1``).

The brute oracle (:func:`repro.workloads.oracles.brute_dbscan`)
replays the same canonical rules over exhaustively computed
neighborhoods, so pipeline labels match it exactly — not merely up to
renaming (the test suite checks both).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils.validate import check_positive, check_positive_int


@dataclass(frozen=True)
class DBSCANConfig:
    """Knobs of the DBSCAN pipeline.

    ``min_pts`` counts the point itself (the sklearn ``min_samples``
    convention: a point is core when its closed eps-neighborhood holds
    at least ``min_pts`` points). ``batch_size`` caps how many frontier
    points one round expands.
    """

    eps: float
    min_pts: int = 4
    batch_size: int = 256

    def __post_init__(self):
        check_positive(self.eps, "eps")
        check_positive_int(self.min_pts, "min_pts")
        check_positive_int(self.batch_size, "batch_size")


@dataclass
class DBSCANResult:
    """Cluster assignment plus the expansion telemetry."""

    labels: np.ndarray        # (N,) int64; -1 = noise
    core: np.ndarray          # (N,) bool
    counts: np.ndarray        # (N,) exact eps-neighborhood sizes
    n_clusters: int
    rounds: int
    stats: dict = field(default_factory=dict)


def _find(parent: np.ndarray, i: int) -> int:
    """Union-find root with full path compression."""
    root = i
    while parent[root] != root:
        root = parent[root]
    while parent[i] != root:
        parent[i], i = root, int(parent[i])
    return root


def _union(parent: np.ndarray, a: int, b: int) -> None:
    """Merge two components, keeping the smaller index as the root."""
    ra = _find(parent, a)
    rb = _find(parent, b)
    if ra == rb:
        return
    if ra < rb:
        parent[rb] = ra
    else:
        parent[ra] = rb


def finalize_labels(
    parent: np.ndarray, core: np.ndarray, border_anchor: np.ndarray
) -> tuple[np.ndarray, int]:
    """Canonical labels from the union-find state.

    Components are renumbered by ascending representative (the minimum
    member index, by the union rule); border points inherit their
    anchor core point's label; everything else is noise. Shared with
    the brute oracle so both finalize identically.
    """
    n = len(parent)
    labels = np.full(n, -1, dtype=np.int64)
    core_ids = np.flatnonzero(core)
    if len(core_ids):
        roots = np.array([_find(parent, int(i)) for i in core_ids])
        uniq = np.unique(roots)  # ascending representatives
        labels[core_ids] = np.searchsorted(uniq, roots)
        n_clusters = len(uniq)
    else:
        n_clusters = 0
    border = (~core) & (border_anchor < n)
    labels[border] = labels[border_anchor[border]]
    return labels, n_clusters


def _valid_pairs(frontier, res) -> tuple[np.ndarray, np.ndarray]:
    """Flatten one round's neighbor rows into (source, neighbor) pairs.

    Valid entries sit in the leading ``counts`` slots of each row on
    every serving path, so the row-major boolean gather stays aligned
    with ``np.repeat`` over the counts.
    """
    counts = res.counts
    k_in = res.indices.shape[1]
    mask = np.arange(k_in)[None, :] < counts[:, None]
    rows = np.repeat(frontier, counts)
    cols = res.indices[mask]
    return rows, cols


def run_dbscan(
    client, config: DBSCANConfig, tracer: Tracer | None = None
) -> DBSCANResult:
    """Cluster the client's own point set (queries == points).

    One exact count pass classifies core points, then frontier rounds
    expand at most ``batch_size`` unvisited core points each: neighbor
    rounds are fetched only for points whose neighborhood has not been
    seen (the relaunch idiom), discovered core neighbors queue for the
    next round, core-core edges merge components, and core→non-core
    edges record border anchors. Seeding prefers queued (discovered)
    points, falling back to the lowest-index unvisited core points, so
    traversal is deterministic — though labels do not depend on it.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    points = client.points
    n = len(points)
    eps = float(config.eps)

    with tracer.span("workload.dbscan.count", phase="workload") as sp:
        counts = client.count(points, eps)
        sp.add(count_queries=n)
    core = counts >= config.min_pts

    parent = np.arange(n, dtype=np.int64)
    visited = np.zeros(n, dtype=bool)   # core neighborhoods fetched
    queued = np.zeros(n, dtype=bool)    # discovered, awaiting expansion
    border_anchor = np.full(n, n, dtype=np.int64)  # min core neighbor
    rounds = 0
    edges_total = 0
    relaunched_total = 0

    while True:
        ready = np.flatnonzero(queued & ~visited)
        if len(ready) == 0:
            ready = np.flatnonzero(core & ~visited)
            if len(ready) == 0:
                break
        frontier = ready[: config.batch_size]
        with tracer.span(
            f"workload.dbscan.round[{rounds}]", phase="workload"
        ) as sp:
            k_round = int(counts[frontier].max())
            res = client.range(points[frontier], eps, k_round)
            visited[frontier] = True
            queued[frontier] = False
            rows, cols = _valid_pairs(frontier, res)
            core_cols = core[cols]
            cc_rows = rows[core_cols]
            cc_cols = cols[core_cols]
            for a, b in zip(cc_rows.tolist(), cc_cols.tolist()):
                _union(parent, a, b)
            nb = ~core_cols
            if nb.any():
                np.minimum.at(border_anchor, cols[nb], rows[nb])
            fresh = cc_cols[~visited[cc_cols]]
            queued[fresh] = True
            edges_total += len(rows)
            relaunched_total += len(frontier)
            sp.add(
                dbscan_rounds=1,
                relaunched_queries=len(frontier),
                dbscan_edges=len(rows),
            )
            sp.note(k_round=k_round)
        rounds += 1

    labels, n_clusters = finalize_labels(parent, core, border_anchor)
    border = (~core) & (border_anchor < n)
    stats = {
        "rounds": rounds,
        "relaunched": relaunched_total,
        "edges": edges_total,
        "clusters": n_clusters,
        "core_points": int(core.sum()),
        "border_points": int(border.sum()),
        "noise_points": int((labels == -1).sum()),
    }
    return DBSCANResult(
        labels=labels,
        core=core,
        counts=counts,
        n_clusters=n_clusters,
        rounds=rounds,
        stats=stats,
    )
