"""A multi-step SPH/n-body stepper over the dynamic-refit path.

Each step runs the neighbor primitive over the *current* positions —
one aggregate count (to pin the exact row width), one range query —
then applies a softened-gravity symplectic kick-drift and moves the
point set with ``update_points``, exercising the GAS refit and
seed-radius invalidation machinery for N sustained steps.

Determinism contract: the acceleration of point *i* sums over its
canonicalized neighbor rows (sorted by neighbor index, fixed width
``k = counts.max()`` per step), using the engine's own squared
distances — both path-independent — with padding and the self pair
weighted exactly ``0.0``. Every arithmetic op (einsum reduction, kick,
drift) therefore sees identical operands in identical order on the
solo, fused-serve, and sharded paths *and* in the brute stepper
(:func:`repro.workloads.oracles.brute_sph`, which shares
:func:`interaction_forces`): trajectories are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import NULL_TRACER, Tracer
from repro.utils.validate import as_points, check_positive, check_positive_int
from repro.workloads.client import canonical_rows


@dataclass(frozen=True)
class SPHConfig:
    """Knobs of the stepper: interaction radius, step size, physics."""

    radius: float
    dt: float = 1e-3
    n_steps: int = 5
    gravity: float = 1.0
    softening: float = 1e-2

    def __post_init__(self):
        check_positive(self.radius, "radius")
        check_positive(self.dt, "dt")
        check_positive_int(self.n_steps, "n_steps")
        check_positive(self.softening, "softening")


@dataclass
class SPHResult:
    """Final phase-space state plus per-step telemetry."""

    positions: np.ndarray
    velocities: np.ndarray
    stats: dict = field(default_factory=dict)


def interaction_forces(
    positions: np.ndarray,
    idx: np.ndarray,
    d2: np.ndarray,
    gravity: float,
    softening: float,
) -> np.ndarray:
    """Softened pairwise attraction from canonical neighbor rows.

    ``a_i = G * Σ_j (x_j - x_i) / (d2_ij + ε²)^{3/2}`` over the valid,
    non-self entries of row ``i``. ``idx``/``d2`` must be canonical
    rows (:func:`~repro.workloads.client.canonical_rows`): index-sorted
    valid entries first, ``-1``/``inf`` padding after. Padding and the
    self pair contribute an exact ``0.0`` — their weight is forced to
    zero before the reduction — so the result depends only on the
    neighbor sets and the engine's distances.
    """
    n = len(positions)
    use = (idx >= 0) & (idx != np.arange(n)[:, None])
    safe = np.where(idx >= 0, idx, 0)
    rel = positions[safe] - positions[:, None, :]
    soft2 = float(softening) * float(softening)
    d2_use = np.where(use, d2, 1.0)  # keep the pow off inf padding
    w = np.where(use, float(gravity) / np.sqrt((d2_use + soft2) ** 3), 0.0)
    return np.einsum("qk,qkd->qd", w, rel)


def run_sph(
    client,
    config: SPHConfig,
    velocities=None,
    tracer: Tracer | None = None,
) -> SPHResult:
    """Advance the client's point set ``n_steps`` kick-drift steps."""
    tracer = tracer if tracer is not None else NULL_TRACER
    x = np.array(client.points, dtype=np.float64, copy=True)
    n = len(x)
    if velocities is None:
        v = np.zeros_like(x)
    else:
        v = np.array(as_points(velocities, "velocities"), copy=True)
        if v.shape != x.shape:
            raise ValueError(
                f"velocities shape {v.shape} != points shape {x.shape}"
            )
    dt = float(config.dt)
    pairs_total = 0
    refit_total = 0.0
    ks: list[int] = []

    for step in range(config.n_steps):
        with tracer.span(f"workload.sph.step[{step}]", phase="workload") as sp:
            counts = client.count(x, config.radius)
            k = max(int(counts.max()), 1)
            res = client.range(x, config.radius, k)
            cidx, cd2 = canonical_rows(res, k, n)
            acc = interaction_forces(
                x, cidx, cd2, config.gravity, config.softening
            )
            v = v + dt * acc
            x = x + dt * v
            refit_s = client.update(x)
            pairs = int(counts.sum())
            pairs_total += pairs
            refit_total += refit_s
            ks.append(k)
            sp.add(sph_steps=1, neighbor_pairs=pairs, relaunched_queries=n)
            sp.note(k_step=k)

    stats = {
        "steps": config.n_steps,
        "neighbor_pairs": pairs_total,
        "k_per_step": ks,
        "refit_s": refit_total,
    }
    return SPHResult(positions=x, velocities=v, stats=stats)
