"""Fig. 7 — search time vs AABB width.

Fixed query set, sweep the AABB width used to build the BVH (the paper
sweeps 0.3-30 in KITTI's meter units) and measure the modeled search
time. Expected: time grows with width, super-linearly at the top end
(the AABB volume — and hence IS calls — grows cubically).
"""

from __future__ import annotations

import numpy as np

from repro.core.queues import KnnQueueBatch
from repro.core.shaders import KnnShader
from repro.datasets import kitti_like
from repro.experiments.harness import env_scale, format_table
from repro.geometry.ray import RayBatch, DEFAULT_DIRECTION
from repro.gpu.costmodel import IsKind
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.optix import Pipeline, build_gas


def run(
    widths=(0.3, 1.0, 3.0, 10.0, 20.0, 30.0),
    n: int = 10_000,
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """One row per AABB width: modeled search time + IS calls."""
    scale = env_scale() if scale is None else scale
    n = max(int(n * scale), 64)
    points = kitti_like(n, seed=7)
    queries = kitti_like(n, seed=13)
    pipe = Pipeline(device=device)
    rows = []
    for w in widths:
        gas = build_gas(points, w / 2.0, pipe.cost_model, leaf_size=4)
        acc = KnnQueueBatch(len(queries), k, radius=w / 2.0)
        shader = KnnShader(points, queries, np.arange(len(queries)), acc)
        rays = RayBatch(
            queries,
            np.broadcast_to(np.asarray(DEFAULT_DIRECTION), queries.shape).copy(),
        )
        launch = pipe.launch(gas, rays, shader, IsKind.KNN)
        rows.append(
            {
                "aabb_width": w,
                "search_ms": launch.modeled_time * 1e3,
                "is_calls": launch.trace.total_is_calls,
                "traversal_steps": launch.trace.total_steps,
            }
        )
    return rows


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 7 — search time vs AABB width")
    print(format_table(rows))


if __name__ == "__main__":
    main()
