"""Experiment runners — one module per figure of the paper.

Every runner exposes ``run(...) -> list[dict]`` returning the rows of
the corresponding figure/table, and a ``main()`` that pretty-prints
them. The benchmark suite (``benchmarks/``) wraps these runners with
pytest-benchmark; EXPERIMENTS.md records paper-vs-measured values.

| module                | paper figure |
|-----------------------|--------------|
| fig05_coherence       | Fig. 5       |
| fig06_microarch       | Fig. 6       |
| fig07_aabb_time       | Fig. 7       |
| fig08_is_calls        | Fig. 8       |
| fig11_speedup         | Fig. 11a/b   |
| fig12_breakdown       | Fig. 12a/b   |
| fig13_ablation        | Fig. 13a/b   |
| fig14_sensitivity     | Fig. 14a/b   |
| fig15_bvh_build       | Fig. 15      |
| fig16_partition_dist  | Fig. 16      |
| micro_step_costs      | §3.1 / App. A cost ratios |
| design_ablations      | this implementation's knobs (leaf width, grid granularity, KNN sizing) |
| approx_ablation       | §8 approximate search |
"""

from repro.experiments.harness import format_table, env_scale

__all__ = ["format_table", "env_scale"]
