"""Fig. 8 — IS-call count vs AABB width (super-linear growth).

Same sweep as Fig. 7; the claim verified here is structural: the number
of IS calls grows ~cubically with AABB width because the AABB *volume*
does (each query triggers one IS call per enclosing AABB). The runner
reports the measured log-log growth exponent alongside the raw counts.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import fig07_aabb_time
from repro.experiments.harness import format_table
from repro.gpu.device import DeviceSpec, RTX_2080


def growth_exponent(widths, is_calls) -> float:
    """Least-squares slope of log(IS calls) vs log(width)."""
    w = np.log(np.asarray(widths, dtype=np.float64))
    c = np.log(np.asarray(is_calls, dtype=np.float64))
    return float(np.polyfit(w, c, 1)[0])


def run(
    widths=(0.3, 1.0, 3.0, 10.0, 20.0, 30.0),
    n: int = 10_000,
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """One row per width; see also :func:`growth_exponent`."""
    return fig07_aabb_time.run(widths=widths, n=n, k=k, device=device, scale=scale)


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 8 — IS calls vs AABB width")
    print(format_table(rows))
    exp = growth_exponent(
        [r["aabb_width"] for r in rows], [r["is_calls"] for r in rows]
    )
    print(f"log-log growth exponent: {exp:.2f} (cubic saturates toward 3 "
          "until the AABB covers the scene)")


if __name__ == "__main__":
    main()
