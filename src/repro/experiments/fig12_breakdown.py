"""Fig. 12 — time distribution of RTNN runs (Data/Opt/BVH/FS/Search).

One stacked-bar row per dataset for each search type. Paper findings
this reproduces: small inputs are dominated by non-search overheads;
the N-body inputs spend an outsized share in Opt + BVH (non-uniform
density -> many partitions); KNN spends a larger *search* fraction than
range search (88.5% vs 63.5% on KITTI-12M).
"""

from __future__ import annotations

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import DATASETS, load
from repro.experiments.harness import env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080


def run(
    datasets: list[str] | None = None,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
    k_range: int = 32,
    k_knn: int = 8,
    kinds=("knn", "range"),
) -> list[dict]:
    """One row per (dataset, kind) with per-category time fractions."""
    scale = env_scale() if scale is None else scale
    names = datasets or list(DATASETS)
    rows = []
    for name in names:
        points, spec = load(name, scale=scale)
        engine = RTNNEngine(
            points, device=device, config=RTNNConfig(knn_aabb="equiv_volume")
        )
        for kind in kinds:
            if kind == "knn":
                res = engine.knn_search(points, k_knn, spec.radius)
            else:
                res = engine.range_search(points, spec.radius, k_range)
            frac = res.report.breakdown.fractions()
            rows.append(
                {
                    "dataset": name,
                    "type": kind,
                    "total_ms": res.report.modeled_time * 1e3,
                    **{f"{cat}_frac": frac[cat] for cat in ("data", "opt", "bvh", "fs", "search")},
                    "n_partitions": res.report.n_partitions,
                    "n_bundles": res.report.n_bundles,
                }
            )
    return rows


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 12 — RTNN time distribution")
    print(format_table(rows))


if __name__ == "__main__":
    main()
