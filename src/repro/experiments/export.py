"""Export experiment rows to CSV / JSON for plotting elsewhere."""

from __future__ import annotations

import csv
import json
from pathlib import Path


def _columns(rows: list[dict]) -> list[str]:
    cols: list[str] = []
    for r in rows:
        for c in r:
            if c not in cols:
                cols.append(c)
    return cols


def write_csv(path, rows: list[dict]) -> None:
    """Write experiment rows (list of dicts) as CSV."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=_columns(rows))
        writer.writeheader()
        writer.writerows(rows)


def write_json(path, rows: list[dict]) -> None:
    """Write experiment rows as a JSON array."""
    Path(path).write_text(json.dumps(rows, indent=2, default=float) + "\n")


def read_rows(path) -> list[dict]:
    """Read rows back from a JSON export."""
    return json.loads(Path(path).read_text())
