"""§8 — approximate neighbor search ablations.

Two approximations the paper sketches as future work, implemented and
measured here:

* **Elide the sphere test** everywhere (treat AABB containment as
  sphere containment): all returned range neighbors are then within
  ``sqrt(3) * r`` of the query — the runner verifies the bound and
  reports the speedup.
* **Shrink the AABB** below the strictly-required width for KNN: fewer
  neighbors may be returned (recall < 1) in exchange for speed; the
  runner sweeps a shrink factor and reports recall vs speedup.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import brute_force_knn
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import load
from repro.experiments.harness import env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080


def run_elide_sphere_test(
    dataset: str = "Buddha-4.6M",
    k: int = 32,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> dict:
    """Exact vs sphere-test-elided range search; verifies the sqrt(3)r bound."""
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    r = spec.radius
    # Section 8 frames this approximation for the base formulation,
    # where every IS call performs the sphere test (partitioned range
    # search already elides it on uncapped bundles), so both runs use
    # the scheduling-only configuration.
    exact = RTNNEngine(
        points, device=device, config=RTNNConfig(partition=False, bundle=False)
    ).range_search(points, r, k)
    approx = RTNNEngine(
        points,
        device=device,
        config=RTNNConfig(
            partition=False, bundle=False, approx_elide_sphere_test=True
        ),
    ).range_search(points, r, k)

    valid = approx.sq_distances[approx.indices >= 0]
    bound = 3.0 * r * r * (1.0 + 1e-9)
    return {
        "dataset": dataset,
        "exact_ms": exact.report.modeled_time * 1e3,
        "approx_ms": approx.report.modeled_time * 1e3,
        "speedup": exact.report.modeled_time / approx.report.modeled_time,
        "max_dist_over_r": float(np.sqrt(valid.max() / (r * r))) if valid.size else 0.0,
        "bound_holds": bool((valid <= bound).all()),
    }


def run_shrunk_aabb(
    shrink_factors=(1.0, 0.8, 0.6, 0.4),
    dataset: str = "Buddha-4.6M",
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """KNN recall vs speedup as the partition AABBs shrink.

    ``shrink=1.0`` is the paper's equi-volume heuristic; smaller factors
    scale the heuristic width down further (more aggressive
    approximation).
    """
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    r = spec.radius
    ref = brute_force_knn(points, points, k, r)
    ref_sets = ref.neighbor_sets()
    ref_total = sum(len(s) for s in ref_sets)

    base_time = None
    rows = []
    for f in shrink_factors:
        engine = RTNNEngine(
            points,
            device=device,
            config=RTNNConfig(knn_aabb="equiv_volume", aabb_shrink=f),
        )
        res = engine.knn_search(points, k, r)
        got_sets = res.neighbor_sets()
        recovered = sum(len(g & s) for g, s in zip(got_sets, ref_sets))
        t = res.report.modeled_time
        if base_time is None:
            base_time = t
        rows.append(
            {
                "shrink": f,
                "recall": recovered / max(ref_total, 1),
                "modeled_ms": t * 1e3,
                "speedup_vs_full": base_time / t,
            }
        )
    return rows


def main():
    """Print this section's tables to stdout."""
    print("§8a — elide sphere test (range search):")
    print(format_table([run_elide_sphere_test()]))
    print()
    print("§8b — shrunk-AABB approximate KNN:")
    print(format_table(run_shrunk_aabb()))


if __name__ == "__main__":
    main()
