"""§3.1 / Appendix A micro-characterization.

Three claims checked:

* Step 2 (an IS call) is ~an order of magnitude more expensive than
  Step 1 (a traversal step) — read off the cost model's per-op costs;
* the per-call cost ratios k1:k3 (build-per-AABB : range-IS-per-call)
  sit at ~20:1 without the sphere test and ~2:1 with it;
* short rays suppress Condition-1 false positives: sweeping t_max from
  1e-16 up to scene scale inflates the IS-call count without changing
  the result (the Q' scenario of Fig. 4c).
"""

from __future__ import annotations

import numpy as np

from repro.core.queues import KnnQueueBatch
from repro.core.shaders import KnnShader
from repro.experiments.harness import env_scale, format_table
from repro.geometry.ray import RayBatch, DEFAULT_DIRECTION
from repro.gpu.costmodel import CostModel, IsKind, RT_WARP_CYCLES, IS_WARP_CYCLES
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.optix import Pipeline, build_gas
from repro.utils.rng import default_rng


def cost_ratios(device: DeviceSpec = RTX_2080) -> dict[str, float]:
    """The paper's profiled constants, from the simulated device."""
    cm = CostModel(device)
    k1 = cm.build_cost_per_aabb()
    out = {
        "k1_ns": k1 * 1e9,
        "k1_over_k3_fast": k1 / cm.is_cost_per_call(IsKind.RANGE_FAST),
        "k1_over_k3_test": k1 / cm.is_cost_per_call(IsKind.RANGE_TEST),
        "knn_over_range_test": (
            cm.is_cost_per_call(IsKind.KNN) / cm.is_cost_per_call(IsKind.RANGE_TEST)
        ),
        "is_over_traversal": IS_WARP_CYCLES[IsKind.KNN] / RT_WARP_CYCLES,
    }
    return out


def run_tmax_sweep(
    t_maxes=(1e-16, 1e-3, 1e-1, 1.0),
    n: int = 5_000,
    radius: float = 0.05,
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """IS calls and results vs ray length (false-positive suppression)."""
    scale = env_scale() if scale is None else scale
    n = max(int(n * scale), 64)
    rng = default_rng(3)
    points = rng.random((n, 3))
    queries = rng.random((n, 3))
    # Leaf MBR pruning would suppress exactly the Condition-1 false
    # positives this sweep exists to measure; characterize raw t_max.
    pipe = Pipeline(device=device, cache_sim=False, prune_leaves=False)
    gas = build_gas(points, radius, pipe.cost_model, leaf_size=1)
    rows = []
    ref_sets = None
    for t_max in t_maxes:
        acc = KnnQueueBatch(len(queries), k, radius)
        shader = KnnShader(points, queries, np.arange(len(queries)), acc)
        rays = RayBatch(
            queries,
            np.broadcast_to(np.asarray(DEFAULT_DIRECTION), queries.shape).copy(),
            t_min=0.0,
            t_max=t_max,
        )
        launch = pipe.launch(gas, rays, shader, IsKind.KNN)
        idx, counts, _ = acc.finalize()
        sets = [frozenset(row[:c].tolist()) for row, c in zip(idx, counts)]
        if ref_sets is None:
            ref_sets = sets
        rows.append(
            {
                "t_max": t_max,
                "is_calls": launch.trace.total_is_calls,
                "search_ms": launch.modeled_time * 1e3,
                "results_match_short_ray": sets == ref_sets,
            }
        )
    return rows


def main():
    """Print this section's tables to stdout."""
    print("Per-op cost constants of the simulated device (cf. App. A):")
    for k, v in cost_ratios().items():
        print(f"  {k}: {v:.3g}")
    print()
    print("Short-ray false-positive suppression (t_max sweep):")
    print(format_table(run_tmax_sweep()))


if __name__ == "__main__":
    main()
