"""Fig. 16 — partition query counts vs AABB size are inversely correlated.

The Appendix-C bundling theorem rests on an empirical observation: only
a handful of sparse queries need large AABBs, while most queries live
in small-AABB partitions. This runner partitions a registry dataset and
reports query count per AABB size, plus the Spearman rank correlation
between the two (expected strongly negative).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.partition import compute_megacells, make_partitions
from repro.datasets import load
from repro.experiments.harness import env_scale, format_table


def run(
    dataset: str = "KITTI-12M",
    k: int = 8,
    scale: float | None = None,
    kind: str = "knn",
) -> list[dict]:
    """One row per partition: AABB width and query count."""
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    mc = compute_megacells(points, points, spec.radius, k)
    parts = make_partitions(mc, kind, spec.radius, k, knn_aabb="equiv_volume")
    return [
        {
            "aabb_width": p.aabb_width,
            "n_queries": p.n_queries,
            "capped": p.capped,
        }
        for p in parts
    ]


def correlation(rows: list[dict]) -> float:
    """Spearman rank correlation of query count vs AABB size."""
    widths = [r["aabb_width"] for r in rows]
    counts = [r["n_queries"] for r in rows]
    if len(rows) < 2:
        return 0.0
    rho, _ = stats.spearmanr(widths, counts)
    return float(rho) if np.isfinite(rho) else 0.0


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 16 — query count vs AABB size across partitions")
    print(format_table(rows))
    print(f"Spearman correlation: {correlation(rows):.3f} (paper: strongly negative)")


if __name__ == "__main__":
    main()
