"""Fig. 6 — why ordered searches are faster: L1/L2 hit rate, occupancy.

Runs the Fig. 5 workload once per mapping and reports the sampled-cache
hit rates and modeled achieved occupancy. Paper values (ordered vs
random): L1 ~82% vs ~38%, L2 ~80% vs ~28%, occupancy ~80% vs ~35%.
"""

from __future__ import annotations

from repro.datasets import kitti_like
from repro.experiments.fig05_coherence import grid_queries, run_pair
from repro.experiments.harness import env_scale, format_table
from repro.gpu.costmodel import CostModel
from repro.gpu.device import DeviceSpec, RTX_2080


def run(
    n: int = 20_000,
    radius: float = 2.0,
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """Returns one row per mapping with the microarchitectural metrics."""
    scale = env_scale() if scale is None else scale
    n = max(int(n * scale), 64)
    points = kitti_like(n, seed=7)
    queries = grid_queries(points, n, seed=11)
    ordered, shuffled = run_pair(points, queries, radius, k, device)
    cm = CostModel(device)
    rows = []
    for label, launch in (("ordered", ordered), ("random", shuffled)):
        rows.append(
            {
                "mapping": label,
                "l1_hit_rate": launch.l1_hit_rate,
                "l2_hit_rate": launch.l2_hit_rate,
                "sm_occupancy": cm.occupancy(launch.trace),
                "simd_efficiency": launch.trace.simd_efficiency,
            }
        )
    return rows


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 6 — microarchitectural behavior, ordered vs random")
    print(format_table(rows))


if __name__ == "__main__":
    main()
