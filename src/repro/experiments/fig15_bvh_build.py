"""Fig. 15 — BVH construction time is linear in the number of AABBs.

Two measurements:

* *modeled* build time (linear by construction, Eq. 3 — reported for
  completeness);
* the *actual wall-clock* time of this repository's LBVH builder over
  a size sweep, fitted with least squares. The paper reports R² =
  0.996 for NVIDIA's builder; our Morton-sort-based builder is
  O(N log N) but sort-dominated, and fits a line nearly as well at
  these scales.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bvh import build_lbvh
from repro.experiments.harness import env_scale, format_table
from repro.geometry.aabb import aabbs_from_points
from repro.gpu.costmodel import CostModel
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.fits import LinearFit, linear_fit
from repro.utils.rng import default_rng


def run(
    sizes=(5_000, 10_000, 20_000, 40_000, 80_000),
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
    repeats: int = 3,
) -> list[dict]:
    """One row per size: wall-clock and modeled build times."""
    scale = env_scale() if scale is None else scale
    rng = default_rng(5)
    cm = CostModel(device)
    rows = []
    for n in sizes:
        n = max(int(n * scale), 256)
        pts = rng.random((n, 3))
        lo, hi = aabbs_from_points(pts, 0.01)
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            build_lbvh(lo, hi, leaf_size=4)
            best = min(best, time.perf_counter() - t0)
        rows.append(
            {
                "n_aabbs": n,
                "wall_ms": best * 1e3,
                "modeled_ms": cm.bvh_build_time(n) * 1e3,
            }
        )
    return rows


def fit(rows: list[dict], column: str = "wall_ms") -> LinearFit:
    """Least-squares line through (n_aabbs, time); the paper's R² check."""
    return linear_fit(
        [r["n_aabbs"] for r in rows], [r[column] for r in rows]
    )


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 15 — BVH construction time vs AABB count")
    print(format_table(rows))
    f = fit(rows)
    print(f"wall-clock linear fit: R^2 = {f.r_squared:.4f} "
          f"(paper reports 0.996 for the hardware builder)")


if __name__ == "__main__":
    main()
