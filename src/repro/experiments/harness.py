"""Shared experiment machinery: scaling, table formatting, annotations."""

from __future__ import annotations

import os

#: baselines slower than this x RTNN are reported DNF, like the paper's
#: "did not finish within the time that would have given RTNN a 1,000x
#: speedup"
DNF_RATIO = 1000.0


def env_scale(default: float = 1.0) -> float:
    """Global dataset scale factor, overridable via ``REPRO_SCALE``."""
    try:
        return float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        return default


def format_table(rows: list[dict], floatfmt: str = "{:.4g}") -> str:
    """Render rows (list of dicts sharing keys) as an aligned text table."""
    if not rows:
        return "(no rows)"
    cols: list[str] = []
    for r in rows:
        for c in r:
            if c not in cols:
                cols.append(c)

    def cell(r, c):
        v = r.get(c, "")
        return floatfmt.format(v) if isinstance(v, float) else str(v)

    rendered = [[cell(r, c) for c in cols] for r in rows]
    widths = [
        max(len(c), *(len(row[i]) for row in rendered)) for i, c in enumerate(cols)
    ]
    out = ["  ".join(c.ljust(w) for c, w in zip(cols, widths))]
    out.append("  ".join("-" * w for w in widths))
    for row in rendered:
        out.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(out)


def annotate_speedup(rtnn_time: float, baseline_time: float, oom: bool = False) -> str:
    """Render a speedup cell with the paper's OOM/DNF annotations."""
    if oom:
        return "OOM"
    if baseline_time / rtnn_time > DNF_RATIO:
        return "DNF"
    return f"{baseline_time / rtnn_time:.1f}x"
