"""Fig. 14 — sensitivity of the speedup to r and K (Buddha, RTX 2080).

Two sweeps on the Buddha-like input:

* range search speedup vs cuNSearch / PCL-Octree as r varies
  (paper: rises then falls past r ~ 0.1 as the sphere covers the whole
  unit cube and everyone terminates quickly);
* speedup vs K (paper: grows with K, degrades at very large K where
  the bundler gets overly aggressive).

PCL-Octree joins the KNN sweep only at K = 1; FastRNN may be DNF at
large r (it searches the full 2r AABB without partitioning).
"""

from __future__ import annotations

from repro.baselines import CuNSearch, FRNN, FastRNN, PCLOctree
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import load
from repro.experiments.harness import DNF_RATIO, env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080


def _speedup(rtnn_t: float, base_t: float) -> str:
    if base_t / rtnn_t > DNF_RATIO:
        return "DNF"
    return f"{base_t / rtnn_t:.2f}x"


def run_radius_sweep(
    radii=(0.05, 0.1, 0.2, 0.4),
    dataset: str = "Buddha-4.6M",
    k: int = 32,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """Range-search speedups vs r (Fig. 14a)."""
    scale = env_scale() if scale is None else scale
    points, _ = load(dataset, scale=scale)
    engine = RTNNEngine(points, device=device, config=RTNNConfig(knn_aabb="equiv_volume"))
    cu = CuNSearch(points, device=device)
    pcl = PCLOctree(points, device=device)
    rows = []
    for r in radii:
        rt = engine.range_search(points, r, k).report.modeled_time
        cu_t = cu.range_search(points, r, k).report.modeled_time
        pcl_t = pcl.range_search(points, r, k).report.modeled_time
        rows.append(
            {
                "radius": r,
                "rtnn_ms": rt * 1e3,
                "cunsearch_x": _speedup(rt, cu_t),
                "pcloctree_x": _speedup(rt, pcl_t),
            }
        )
    return rows


def run_k_sweep(
    ks=(1, 4, 16, 64, 128),
    dataset: str = "Buddha-4.6M",
    radius: float = 0.15,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """KNN speedups vs K (Fig. 14b)."""
    scale = env_scale() if scale is None else scale
    points, _ = load(dataset, scale=scale)
    engine = RTNNEngine(points, device=device, config=RTNNConfig(knn_aabb="equiv_volume"))
    fr = FRNN(points, device=device)
    fa = FastRNN(points, device=device)
    pcl = PCLOctree(points, device=device)
    rows = []
    for k in ks:
        rt = engine.knn_search(points, k, radius).report.modeled_time
        row = {"k": k, "rtnn_ms": rt * 1e3}
        row["frnn_x"] = _speedup(rt, fr.knn_search(points, k, radius).report.modeled_time)
        row["fastrnn_x"] = _speedup(rt, fa.knn_search(points, k, radius).report.modeled_time)
        if k == 1:
            row["pcloctree_x"] = _speedup(
                rt, pcl.knn_search(points, 1, radius).report.modeled_time
            )
        rows.append(row)
    return rows


def main():
    """Print this figure's table to stdout."""
    print("Fig. 14a — range-search speedup vs r (Buddha)")
    print(format_table(run_radius_sweep()))
    print()
    print("Fig. 14b — KNN speedup vs K (Buddha)")
    print(format_table(run_k_sweep()))


if __name__ == "__main__":
    main()
