"""Fig. 13 — teasing apart the optimizations.

Five variants on KITTI-12M and NBody-9M, for KNN and range search:

* NoOpt, Sched, Sched+Partition, Sched+Partition+Bundle (the shipping
  configuration), and Oracle — the best a-posteriori choice of whether
  to partition and how to bundle (the paper computes it by offline
  exhaustive search; our bundler already scans every strategy in its
  family, so the oracle is the min over the measured variants plus the
  partitioning-disabled run).

Paper shapes to verify: scheduling alone gives 1.8-5.9x; partitioning
is dramatically effective for KNN on KITTI (~150x) but *hurts* on the
clustered N-body input; bundling recovers ~19% on range search and is
neutral for KNN; the shipping config lands within a few percent of
Oracle on KITTI while NBody's Oracle disables partitioning.
"""

from __future__ import annotations

from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.datasets import load
from repro.experiments.harness import env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080

#: variant display order of the figure
VARIANT_ORDER = ("noopt", "sched", "sched+part", "sched+part+bundle")


def run(
    datasets=("KITTI-12M", "NBody-9M"),
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
    k_range: int = 32,
    k_knn: int = 8,
    kinds=("knn", "range"),
) -> list[dict]:
    """One row per (dataset, kind): modeled ms per variant + oracle."""
    scale = env_scale() if scale is None else scale
    rows = []
    for name in datasets:
        points, spec = load(name, scale=scale)
        for kind in kinds:
            times = {}
            for vname in VARIANT_ORDER:
                cfg = VARIANTS[vname]
                engine = RTNNEngine(
                    points,
                    device=device,
                    config=RTNNConfig(
                        schedule=cfg.schedule,
                        partition=cfg.partition,
                        bundle=cfg.bundle,
                        knn_aabb="equiv_volume",
                    ),
                )
                if kind == "knn":
                    res = engine.knn_search(points, k_knn, spec.radius)
                else:
                    res = engine.range_search(points, spec.radius, k_range)
                times[vname] = res.report.modeled_time * 1e3
            # Oracle: best a-posteriori strategy (partition on with best
            # bundling, or partition off entirely).
            oracle = min(times["sched"], times["sched+part"], times["sched+part+bundle"])
            rows.append(
                {
                    "dataset": name,
                    "type": kind,
                    **{v: times[v] for v in VARIANT_ORDER},
                    "oracle": oracle,
                    "sched_speedup": times["noopt"] / times["sched"],
                    "part_speedup": times["sched"] / times["sched+part"],
                    "bundle_gain": times["sched+part"] / times["sched+part+bundle"],
                }
            )
    return rows


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 13 — optimization ablation (modeled ms per variant)")
    print(format_table(rows))


if __name__ == "__main__":
    main()
