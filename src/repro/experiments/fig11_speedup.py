"""Fig. 11 — RTNN speedup over the four baselines on all eight inputs.

For every registry dataset (self-search: queries = points) we run

* range search:  RTNN vs cuNSearch and PCL-Octree,
* KNN search:    RTNN vs FRNN and FastRNN,

and report modeled-GPU-time speedups, with the paper's OOM annotation
evaluated at *paper scale* (the baseline's modeled memory footprint for
the original point counts vs device capacity) and DNF for baselines
>1000x slower. Paper geomeans on the RTX 2080: range 2.2x (PCL), 44x
(cuNSearch); KNN 3.5x (FRNN), 65x (FastRNN); speedups grow with input
size; KNN speedups exceed range speedups.
"""

from __future__ import annotations

from repro.baselines import CuNSearch, FRNN, FastRNN, PCLOctree
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import DATASETS, load
from repro.experiments.harness import DNF_RATIO, env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.fits import geomean

#: neighbor bounds used for the headline comparison
K_RANGE = 32
K_KNN = 8


def _rtnn(points, device):
    return RTNNEngine(
        points,
        device=device,
        config=RTNNConfig(knn_aabb="equiv_volume"),
    )


def run(
    datasets: list[str] | None = None,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
    k_range: int = K_RANGE,
    k_knn: int = K_KNN,
    kinds=("range", "knn"),
) -> list[dict]:
    """One row per (dataset, search type)."""
    scale = env_scale() if scale is None else scale
    names = datasets or list(DATASETS)
    rows = []
    for name in names:
        points, spec = load(name, scale=scale)
        queries = points
        r = spec.radius
        engine = _rtnn(points, device)

        if "range" in kinds:
            rt = engine.range_search(queries, r, k_range)
            cu = CuNSearch(points, device=device)
            cu_res = cu.range_search(queries, r, k_range)
            cu_oom = (
                cu.modeled_memory_bytes(spec.paper_n_points, r, spec.scene_extent)
                + spec.paper_n_points * k_range * 4
            ) > device.mem_bytes
            pcl = PCLOctree(points, device=device)
            pcl_res = pcl.range_search(queries, r, k_range)
            pcl_oom = pcl.modeled_memory_bytes(spec.paper_n_points) > device.mem_bytes
            rows.append(
                {
                    "dataset": name,
                    "type": "range",
                    "rtnn_ms": rt.report.modeled_time * 1e3,
                    "cunsearch_x": _cell(rt, cu_res, cu_oom),
                    "pcloctree_x": _cell(rt, pcl_res, pcl_oom),
                }
            )
        if "knn" in kinds:
            rt = engine.knn_search(queries, k_knn, r)
            fr = FRNN(points, device=device)
            fr_res = fr.knn_search(queries, k_knn, r)
            fr_oom = (
                fr.modeled_memory_bytes(spec.paper_n_points, r, spec.scene_extent)
                + spec.paper_n_points * k_knn * 8
            ) > device.mem_bytes
            fa = FastRNN(points, device=device)
            fa_res = fa.knn_search(queries, k_knn, r)
            fa_oom = fa.modeled_memory_bytes(spec.paper_n_points) > device.mem_bytes
            rows.append(
                {
                    "dataset": name,
                    "type": "knn",
                    "rtnn_ms": rt.report.modeled_time * 1e3,
                    "frnn_x": _cell(rt, fr_res, fr_oom),
                    "fastrnn_x": _cell(rt, fa_res, fa_oom),
                }
            )
    return rows


def _cell(rtnn_res, base_res, oom: bool) -> str:
    if oom:
        return "OOM"
    ratio = base_res.report.modeled_time / rtnn_res.report.modeled_time
    if ratio > DNF_RATIO:
        return "DNF"
    return f"{ratio:.2f}x"


def speedup_values(rows: list[dict], column: str) -> list[float]:
    """Numeric speedups from a column, skipping OOM/DNF annotations."""
    out = []
    for r in rows:
        v = r.get(column)
        if isinstance(v, str) and v.endswith("x"):
            out.append(float(v[:-1]))
    return out


def summarize(rows: list[dict]) -> dict[str, float]:
    """Geomean speedup per baseline column (paper's headline numbers)."""
    out = {}
    for col in ("cunsearch_x", "pcloctree_x", "frnn_x", "fastrnn_x"):
        vals = speedup_values(rows, col)
        if vals:
            out[col] = geomean(vals)
    return out


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 11 — RTNN speedup over baselines (modeled GPU time)")
    print(format_table(rows))
    print("geomeans:", {k: f"{v:.1f}x" for k, v in summarize(rows).items()})


if __name__ == "__main__":
    main()
