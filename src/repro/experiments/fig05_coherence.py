"""Fig. 5 — search time: spatially-ordered vs random query-to-ray mapping.

The paper assigns queries uniformly to the cells of a 3-D grid and
compares two query-to-ray mappings: raster-scan cell order (adjacent
rays = spatially close queries) vs random. Random is consistently ~5x
slower. We reproduce the setup on a KITTI-like cloud with grid-cell
queries and report modeled search-launch time for both mappings (no
other optimization enabled, matching Section 3.2's characterization
setup).
"""

from __future__ import annotations

import numpy as np

from repro.core.queues import KnnQueueBatch
from repro.core.shaders import KnnShader
from repro.datasets import kitti_like
from repro.experiments.harness import env_scale, format_table
from repro.geometry.ray import RayBatch, DEFAULT_DIRECTION
from repro.gpu.costmodel import IsKind
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.optix import Pipeline, build_gas
from repro.utils.rng import default_rng


def grid_queries(points: np.ndarray, n_queries: int, seed=0) -> np.ndarray:
    """Queries assigned to grid cells, returned in raster-scan cell order.

    Queries are jittered copies of data points (so they perform real
    search work), bucketed into a coarse 3-D grid and emitted in
    x-major raster order of their cells — the paper's "spatially-close
    queries map to adjacent rays" ordering.
    """
    rng = default_rng(seed)
    idx = rng.choice(len(points), n_queries, replace=n_queries > len(points))
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    q = points[idx] + rng.normal(0, 0.002, (n_queries, 3)) * (hi - lo)
    g = max(int(round(n_queries ** (1.0 / 3.0))), 2)
    cell = np.clip(((q - lo) / (hi - lo + 1e-12) * g).astype(np.int64), 0, g - 1)
    raster = (cell[:, 0] * g + cell[:, 1]) * g + cell[:, 2]
    return q[np.argsort(raster, kind="stable")]


def run_pair(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    k: int,
    device: DeviceSpec = RTX_2080,
    seed=0,
):
    """Run one ordered + one shuffled launch; returns both LaunchResults."""
    pipe = Pipeline(device=device)
    gas = build_gas(points, radius, pipe.cost_model, leaf_size=4)
    rng = default_rng(seed)

    def launch(q):
        acc = KnnQueueBatch(len(q), k, radius)
        shader = KnnShader(points, q, np.arange(len(q)), acc)
        rays = RayBatch(
            q, np.broadcast_to(np.asarray(DEFAULT_DIRECTION), q.shape).copy()
        )
        return pipe.launch(gas, rays, shader, IsKind.KNN)

    ordered = launch(queries)
    shuffled = launch(queries[rng.permutation(len(queries))])
    return ordered, shuffled


def run(
    sizes=(3_000, 9_000, 27_000),
    radius: float = 2.0,
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """Sweep query counts; returns one row per size."""
    scale = env_scale() if scale is None else scale
    rows = []
    for n in sizes:
        n = max(int(n * scale), 64)
        points = kitti_like(n, seed=7)
        queries = grid_queries(points, n, seed=11)
        ordered, shuffled = run_pair(points, queries, radius, k, device)
        rows.append(
            {
                "n_queries": n,
                "ordered_ms": ordered.modeled_time * 1e3,
                "random_ms": shuffled.modeled_time * 1e3,
                "slowdown_random": shuffled.modeled_time / ordered.modeled_time,
            }
        )
    return rows


def main():
    """Print this figure's table to stdout."""
    rows = run()
    print("Fig. 5 — ordered vs random query-to-ray mapping")
    print(format_table(rows))


if __name__ == "__main__":
    main()
