"""Ablations of this implementation's own design choices.

Beyond the paper's figures, DESIGN.md calls out three knobs whose
settings deserve evidence:

* ``leaf_size`` — BVH leaf width. IS-call counts are invariant (per-
  primitive AABB tests gate the shader); wider leaves trade node pops
  for in-leaf primitive tests.
* ``cell_div`` — megacell grid granularity. Finer grids give tighter
  megacells (fewer IS calls) but more growth steps and more partitions
  (more BVH builds) — the paper's "smallest cell size memory allows"
  sits at the fine end.
* ``knn_aabb`` — conservative (exact) vs the paper's equi-volume
  heuristic for uncapped KNN partitions: smaller AABBs, slightly
  imperfect recall on adversarial data.

Each runner returns rows of modeled time plus the counter that explains
the trend.
"""

from __future__ import annotations

from repro.baselines import brute_force_knn
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import load
from repro.experiments.harness import env_scale, format_table
from repro.gpu.device import DeviceSpec, RTX_2080


def run_leaf_size(
    leaf_sizes=(1, 2, 4, 8),
    dataset: str = "KITTI-12M",
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """KNN modeled time and work counters vs BVH leaf width."""
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    rows = []
    for ls in leaf_sizes:
        engine = RTNNEngine(
            points,
            device=device,
            config=RTNNConfig(knn_aabb="equiv_volume", leaf_size=ls),
        )
        res = engine.knn_search(points, k, spec.radius)
        rows.append(
            {
                "leaf_size": ls,
                "modeled_ms": res.report.modeled_time * 1e3,
                "is_calls": res.report.is_calls,
                "traversal_steps": res.report.traversal_steps,
            }
        )
    return rows


def run_cell_div(
    cell_divs=(4, 8, 16, 32),
    dataset: str = "KITTI-12M",
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """KNN modeled time vs megacell grid granularity."""
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    rows = []
    for cd in cell_divs:
        engine = RTNNEngine(
            points,
            device=device,
            config=RTNNConfig(knn_aabb="equiv_volume", cell_div=cd),
        )
        res = engine.knn_search(points, k, spec.radius)
        rows.append(
            {
                "cell_div": cd,
                "modeled_ms": res.report.modeled_time * 1e3,
                "n_partitions": res.report.n_partitions,
                "n_bundles": res.report.n_bundles,
                "is_calls": res.report.is_calls,
                "opt_frac": res.report.breakdown.fractions()["opt"],
            }
        )
    return rows


def run_knn_aabb_mode(
    dataset: str = "NBody-9M",
    k: int = 8,
    device: DeviceSpec = RTX_2080,
    scale: float | None = None,
) -> list[dict]:
    """Conservative vs equi-volume KNN AABB sizing: time and recall."""
    scale = env_scale() if scale is None else scale
    points, spec = load(dataset, scale=scale)
    queries = points[:: max(len(points) // 2000, 1)]
    ref = brute_force_knn(points, queries, k, spec.radius)
    ref_sets = ref.neighbor_sets()
    ref_total = max(sum(len(s) for s in ref_sets), 1)
    rows = []
    for mode in ("conservative", "equiv_volume"):
        engine = RTNNEngine(
            points, device=device, config=RTNNConfig(knn_aabb=mode)
        )
        res = engine.knn_search(queries, k, spec.radius)
        got = res.neighbor_sets()
        recovered = sum(len(g & s) for g, s in zip(got, ref_sets))
        rows.append(
            {
                "mode": mode,
                "modeled_ms": res.report.modeled_time * 1e3,
                "is_calls": res.report.is_calls,
                "recall": recovered / ref_total,
            }
        )
    return rows


def main():
    """Print all three design-ablation tables."""
    print("leaf_size ablation (KITTI-12M, KNN):")
    print(format_table(run_leaf_size()))
    print()
    print("cell_div ablation (KITTI-12M, KNN):")
    print(format_table(run_cell_div()))
    print()
    print("knn_aabb sizing mode (NBody-9M):")
    print(format_table(run_knn_aabb_mode()))


if __name__ == "__main__":
    main()
