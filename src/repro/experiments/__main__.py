"""Run every experiment and print the full paper-reproduction report.

Usage::

    python -m repro.experiments               # default (scaled) inputs
    REPRO_SCALE=1.0 python -m repro.experiments   # full registered sizes

Each section regenerates one figure of the paper; EXPERIMENTS.md
records the expected shapes.
"""

from __future__ import annotations

import time

from repro.experiments import (
    approx_ablation,
    design_ablations,
    fig05_coherence,
    fig06_microarch,
    fig07_aabb_time,
    fig08_is_calls,
    fig11_speedup,
    fig12_breakdown,
    fig13_ablation,
    fig14_sensitivity,
    fig15_bvh_build,
    fig16_partition_dist,
    micro_step_costs,
)

SECTIONS = [
    ("Fig. 5 — ordered vs random mapping", fig05_coherence.main),
    ("Fig. 6 — microarchitectural behavior", fig06_microarch.main),
    ("Fig. 7 — search time vs AABB width", fig07_aabb_time.main),
    ("Fig. 8 — IS calls vs AABB width", fig08_is_calls.main),
    ("Fig. 11 — speedups over baselines", fig11_speedup.main),
    ("Fig. 12 — time distribution", fig12_breakdown.main),
    ("Fig. 13 — optimization ablation", fig13_ablation.main),
    ("Fig. 14 — r/K sensitivity", fig14_sensitivity.main),
    ("Fig. 15 — BVH build linearity", fig15_bvh_build.main),
    ("Fig. 16 — partition distribution", fig16_partition_dist.main),
    ("§3.1/App. A — micro cost characterization", micro_step_costs.main),
    ("§8 — approximate search", approx_ablation.main),
    ("design ablations (this implementation)", design_ablations.main),
]


def main():
    t0 = time.perf_counter()
    for title, runner in SECTIONS:
        print("=" * 72)
        print(title)
        print("=" * 72)
        t = time.perf_counter()
        runner()
        print(f"[{time.perf_counter() - t:.1f}s]\n")
    print(f"all experiments done in {time.perf_counter() - t0:.1f}s")


if __name__ == "__main__":
    main()
