"""BVH construction.

Two builders:

* :func:`build_lbvh` — the production builder. Primitives are sorted by
  the Morton code of their AABB centroid, then a balanced binary tree is
  erected over the sorted range by midpoint splitting, one tree *level*
  per NumPy pass (no per-node Python loop). This mirrors the linear-time
  LBVH construction GPUs use and — like NVIDIA's — has build time linear
  in the number of AABBs (Eq. 3 / Fig. 15 of the paper).

* :func:`build_median_split` — a small recursive object-median reference
  builder (widest-axis centroid median). Used in tests to cross-check
  traversal results against an independently-shaped tree.

Node bounds are computed per level with ``np.minimum.reduceat`` /
``np.maximum.reduceat`` over the Morton-sorted primitive bounds: within
one level the node ranges are disjoint and ascending, which is exactly
the segment layout ``reduceat`` wants.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.node import BVH
from repro.geometry.morton import morton_order


def _segment_bounds(slo: np.ndarray, shi: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    """Min/max of ``slo``/``shi`` over disjoint ascending segments.

    ``starts``/``ends`` are per-segment [start, end) ranges, sorted and
    non-overlapping. Implemented with a single interleaved ``reduceat``;
    the junk segments between an end and the next start are discarded.
    """
    n = len(slo)
    m = len(starts)
    if m == 0:
        return (
            np.empty((0, 3), dtype=np.float64),
            np.empty((0, 3), dtype=np.float64),
        )
    idx = np.empty(2 * m, dtype=np.int64)
    idx[0::2] = starts
    idx[1::2] = ends
    # reduceat indices must be < n; a trailing end == n is implied by the
    # array end, so clip it away (the final segment then runs to n).
    if idx[-1] == n:
        idx = idx[:-1]
        lo = np.minimum.reduceat(slo, idx, axis=0)[0::2]
        hi = np.maximum.reduceat(shi, idx, axis=0)[0::2]
    else:
        lo = np.minimum.reduceat(slo, idx, axis=0)[0::2]
        hi = np.maximum.reduceat(shi, idx, axis=0)[0::2]
    return lo, hi


def build_lbvh(
    prim_lo: np.ndarray,
    prim_hi: np.ndarray,
    leaf_size: int = 1,
    order: np.ndarray | None = None,
) -> BVH:
    """Build a balanced LBVH over primitive AABBs.

    Parameters
    ----------
    prim_lo, prim_hi:
        ``(N, 3)`` primitive bounds.
    leaf_size:
        Maximum primitives per leaf (1 matches the paper's one-AABB-per-
        point BVH).
    order:
        Optional precomputed primitive order; defaults to Morton order of
        the centroids.
    """
    prim_lo = np.ascontiguousarray(prim_lo, dtype=np.float64)
    prim_hi = np.ascontiguousarray(prim_hi, dtype=np.float64)
    n = len(prim_lo)
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")
    if prim_lo.shape != prim_hi.shape or prim_lo.shape[1] != 3:
        raise ValueError("prim_lo/prim_hi must both be (N, 3)")
    if np.any(prim_hi < prim_lo):
        raise ValueError("inverted primitive AABBs (hi < lo)")
    leaf_size = int(leaf_size)
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    if order is None:
        centers = 0.5 * (prim_lo + prim_hi)
        order = morton_order(centers)
    else:
        order = np.asarray(order, dtype=np.int64)
        if sorted(order.tolist()) != list(range(n)):
            raise ValueError("order must be a permutation of range(N)")
    slo = prim_lo[order]
    shi = prim_hi[order]

    starts_all: list[np.ndarray] = []
    ends_all: list[np.ndarray] = []
    left_all: list[np.ndarray] = []
    right_all: list[np.ndarray] = []
    level_sizes: list[int] = []

    # Level-order construction: the frontier holds this level's ranges.
    f_start = np.array([0], dtype=np.int64)
    f_end = np.array([n], dtype=np.int64)
    nodes_so_far = 0
    depth = 0
    while len(f_start):
        count = f_end - f_start
        split = count > leaf_size
        n_split = int(split.sum())
        mids = (f_start + f_end) // 2

        left = np.full(len(f_start), -1, dtype=np.int64)
        right = np.full(len(f_start), -1, dtype=np.int64)
        base = nodes_so_far + len(f_start)
        pos = np.cumsum(split) - 1  # rank among splitting nodes
        left[split] = base + 2 * pos[split]
        right[split] = base + 2 * pos[split] + 1

        starts_all.append(f_start)
        ends_all.append(f_end)
        left_all.append(left)
        right_all.append(right)
        level_sizes.append(len(f_start))
        nodes_so_far += len(f_start)

        if n_split == 0:
            break
        ns = np.empty(2 * n_split, dtype=np.int64)
        ne = np.empty(2 * n_split, dtype=np.int64)
        ns[0::2] = f_start[split]
        ne[0::2] = mids[split]
        ns[1::2] = mids[split]
        ne[1::2] = f_end[split]
        f_start, f_end = ns, ne
        depth += 1

    node_start = np.concatenate(starts_all)
    node_end = np.concatenate(ends_all)
    node_left = np.concatenate(left_all)
    node_right = np.concatenate(right_all)

    # Bounds, one reduceat per level (ranges within a level are disjoint
    # and ascending by construction).
    m = len(node_start)
    node_lo = np.empty((m, 3), dtype=np.float64)
    node_hi = np.empty((m, 3), dtype=np.float64)
    off = 0
    for size, s, e in zip(level_sizes, starts_all, ends_all):
        lo, hi = _segment_bounds(slo, shi, s, e)
        node_lo[off : off + size] = lo
        node_hi[off : off + size] = hi
        off += size

    return BVH(
        node_lo=node_lo,
        node_hi=node_hi,
        node_left=node_left,
        node_right=node_right,
        node_start=node_start,
        node_end=node_end,
        prim_order=order,
        prim_lo=prim_lo,
        prim_hi=prim_hi,
        depth=depth,
        leaf_size=leaf_size,
    )


def build_median_split(
    prim_lo: np.ndarray, prim_hi: np.ndarray, leaf_size: int = 1
) -> BVH:
    """Reference builder: recursive widest-axis object-median split.

    O(N log² N) with Python-level recursion — intended for tests and
    small inputs, where its independently-shaped tree cross-checks the
    LBVH traversal results.
    """
    prim_lo = np.ascontiguousarray(prim_lo, dtype=np.float64)
    prim_hi = np.ascontiguousarray(prim_hi, dtype=np.float64)
    n = len(prim_lo)
    if n == 0:
        raise ValueError("cannot build a BVH over zero primitives")
    leaf_size = int(leaf_size)
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")
    centers = 0.5 * (prim_lo + prim_hi)

    order = np.arange(n, dtype=np.int64)
    node_lo: list[np.ndarray] = []
    node_hi: list[np.ndarray] = []
    node_left: list[int] = []
    node_right: list[int] = []
    node_start: list[int] = []
    node_end: list[int] = []

    max_depth = 0
    # Explicit stack of (start, end, node_id, depth); children are
    # allocated eagerly so parent slots can be patched in place.
    def new_node(s: int, e: int) -> int:
        node_lo.append(prim_lo[order[s:e]].min(axis=0))
        node_hi.append(prim_hi[order[s:e]].max(axis=0))
        node_left.append(-1)
        node_right.append(-1)
        node_start.append(s)
        node_end.append(e)
        return len(node_left) - 1

    root = new_node(0, n)
    stack = [(0, n, root, 0)]
    while stack:
        s, e, nid, d = stack.pop()
        max_depth = max(max_depth, d)
        if e - s <= leaf_size:
            continue
        seg = order[s:e]
        ext = prim_hi[seg].max(axis=0) - prim_lo[seg].min(axis=0)
        axis = int(np.argmax(ext))
        loc = np.argsort(centers[seg, axis], kind="stable")
        order[s:e] = seg[loc]
        mid = s + (e - s) // 2
        lid = new_node(s, mid)
        rid = new_node(mid, e)
        node_left[nid] = lid
        node_right[nid] = rid
        stack.append((s, mid, lid, d + 1))
        stack.append((mid, e, rid, d + 1))

    return BVH(
        node_lo=np.asarray(node_lo),
        node_hi=np.asarray(node_hi),
        node_left=np.asarray(node_left, dtype=np.int64),
        node_right=np.asarray(node_right, dtype=np.int64),
        node_start=np.asarray(node_start, dtype=np.int64),
        node_end=np.asarray(node_end, dtype=np.int64),
        prim_order=order,
        prim_lo=prim_lo,
        prim_hi=prim_hi,
        depth=max_depth,
        leaf_size=leaf_size,
    )
