"""Batched BVH traversal — the simulated RT-core.

Execution model. Rays traverse autonomously on the RT cores (one stack
pop per ray per round), while SIMT costs are charged at *warp*
granularity: a warp (32 consecutive launch indices) stays busy until
its slowest lane finishes, so

``warp_traversal_steps = Σ_warps max(per-lane pops)``
``warp_is_steps        = Σ_warps max(per-lane IS calls)``

— the classic divergence penalty: incoherent warps mix short and long
rays and pay for the longest, coherent warps retire together.

Memory. Every node pop and leaf-primitive test fetches a record; the
optional ``tracer`` (the sampled cache simulator) observes the access
stream of one SM's worth of contiguous warps, with per-warp
per-iteration deduplication standing in for intra-warp coalescing.
``node_transactions``/``prim_transactions`` report the *uncoalesced*
fetch totals as a tracer-free fallback.

The intersection shader is a callback ``hit_handler(ray_ids, prim_ids)``
invoked once per round with every (ray, primitive) pair whose
*primitive* AABB the ray intersects (Fig. 1b: the IS shader is skipped
for primitives whose AABBs the ray misses — relevant for leaves holding
several primitives). It may return ray ids to terminate (the Any-Hit
path used when K neighbors are found).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import NUMPY_BACKEND, Backend
from repro.bvh.node import BVH
from repro.geometry.aabb import ray_aabb_intersect


def _finalize_tracer(tracer) -> None:
    """Invoke the tracer's optional ``finalize()`` hook."""
    fin = getattr(tracer, "finalize", None)
    if fin is not None:
        fin()


def _warp_max(values: np.ndarray, warp_size: int) -> np.ndarray:
    """Per-warp max of a per-ray array (last warp may be partial)."""
    n = len(values)
    if n == 0:
        return np.zeros(0, dtype=values.dtype)
    n_warps = (n + warp_size - 1) // warp_size
    padded = np.zeros(n_warps * warp_size, dtype=values.dtype)
    padded[:n] = values
    return padded.reshape(n_warps, warp_size).max(axis=1)


@dataclass(frozen=True)
class PruneSpec:
    """Leaf MBR distance-pruning bounds for one launch.

    The traversal skips a hit leaf outright when the squared Euclidean
    distance from the ray origin to the leaf's *tight point MBR*
    exceeds every bound under which the launch's shader could accept a
    member point:

    * ``static_t2`` — the launch-constant bound. Any accepted point
      must pass the primitive AABB test (``L∞ <= half_width``, hence
      ``d² <= 3·half_width²``), and when the shader applies the sphere
      test also ``d² <= r²``; ``static_t2`` is the minimum of the
      applicable bounds, so ``min_d2 > static_t2`` proves no member
      point can be accepted (or even reach the shader).
    * ``worst`` — optional per-query dynamic bound (the KNN queue's
      current worst-kept distance, ``+inf`` until a queue fills). The
      queue only improves on ``d² < worst`` and ``worst`` is monotone
      non-increasing, so any snapshot is a sound prune bound.

    ``bulk_t2`` enables the complementary move for range launches with
    an active sphere test and ``half_width >= r``: a leaf whose
    ``max_d2 <= bulk_t2 (= r²)`` is *bulk-accepted* — every member
    point provably passes both the primitive AABB test
    (``L∞ <= d <= r <= half_width``) and the sphere test, so its pairs
    skip the per-point AABB tests and flow straight to the shader, in
    the identical slot order (Any-Hit timing, and therefore results,
    stay bit-identical). ``None`` disables bulk acceptance (KNN — the
    queue still needs every distance compared — and fast-path bundles,
    whose inscribed AABBs must keep filtering).
    """

    leaf_lo: np.ndarray        # (M, 3) tight leaf point MBRs (leaf rows)
    leaf_hi: np.ndarray
    static_t2: float           # launch-constant squared prune bound
    bulk_t2: float | None = None     # bulk-accept bound (range w/ sphere test)
    worst: np.ndarray | None = None  # (Q,) live KNN worst-distance array
    query_ids: np.ndarray | None = None  # (R,) ray -> accumulator row


@dataclass
class TraceResult:
    """Counters produced by one :func:`trace_batch` launch."""

    steps: np.ndarray               # (R,) node pops per ray
    is_calls: np.ndarray            # (R,) IS shader calls per ray
    prim_tests_per_ray: np.ndarray  # (R,) leaf primitive-AABB tests per ray
    iterations: int                 # rounds executed
    warp_traversal_steps: int       # Σ warps max per-lane pops
    warp_is_steps: int              # Σ warps max per-lane IS calls
    prim_test_warp_steps: int       # Σ warps max per-lane prim tests
    node_transactions: int          # uncoalesced node fetches
    prim_transactions: int          # uncoalesced primitive fetches
    n_rays: int
    warp_size: int
    per_warp_steps: np.ndarray | None = None  # (W,) busy rounds
    ah_terminations: int = 0        # rays stopped via the Any-Hit path
    leaves_pruned: int = 0          # (ray, leaf) pairs skipped by MBR pruning
    leaves_bulk_accepted: int = 0   # (ray, leaf) pairs bulk-accepted
    budget_stopped_rays: int = 0    # rays truncated by the step budget
    budget_exhausted: np.ndarray | None = None  # (R,) bool, truncated rays

    @property
    def total_steps(self) -> int:
        return int(self.steps.sum())

    @property
    def total_is_calls(self) -> int:
        return int(self.is_calls.sum())

    @property
    def prim_tests(self) -> int:
        return int(self.prim_tests_per_ray.sum())

    @property
    def n_warps(self) -> int:
        return (self.n_rays + self.warp_size - 1) // self.warp_size

    @property
    def simd_efficiency(self) -> float:
        """Active traversal lanes / (warp_size × busy warp steps)."""
        if self.warp_traversal_steps == 0:
            return 1.0
        return self.total_steps / (self.warp_size * self.warp_traversal_steps)

    @property
    def is_simd_efficiency(self) -> float:
        """Active IS lanes / (warp_size × busy IS warp steps)."""
        if self.warp_is_steps == 0:
            return 1.0
        return self.total_is_calls / (self.warp_size * self.warp_is_steps)

    def counters(self) -> dict:
        """The launch's counters under their canonical observability
        names (what :mod:`repro.obs` spans and bench records carry).

        ``aabb_tests`` counts every ray-AABB evaluation — one per node
        pop plus one per in-leaf primitive test — the quantity the
        paper's Fig. 7 prices.
        """
        return {
            "rays": int(self.n_rays),
            "traversal_steps": self.total_steps,
            "is_calls": self.total_is_calls,
            "ah_terminations": int(self.ah_terminations),
            "prim_aabb_tests": self.prim_tests,
            "aabb_tests": self.total_steps + self.prim_tests,
            "warp_traversal_steps": int(self.warp_traversal_steps),
            "warp_is_steps": int(self.warp_is_steps),
            "node_transactions": int(self.node_transactions),
            "prim_transactions": int(self.prim_transactions),
            "leaves_pruned": int(self.leaves_pruned),
            "leaves_bulk_accepted": int(self.leaves_bulk_accepted),
            "budget_stopped_rays": int(self.budget_stopped_rays),
        }

    def merge(self, other: "TraceResult") -> "TraceResult":
        """Aggregate counters of two launches (used by partitioned search).

        Raises ``ValueError`` if the launches used different warp sizes
        — their warp-granular counters would not be commensurable.
        """
        if self.warp_size != other.warp_size:
            raise ValueError(
                f"cannot merge TraceResults with different warp sizes "
                f"({self.warp_size} != {other.warp_size})"
            )
        return TraceResult(
            steps=np.concatenate([self.steps, other.steps]),
            is_calls=np.concatenate([self.is_calls, other.is_calls]),
            prim_tests_per_ray=np.concatenate(
                [self.prim_tests_per_ray, other.prim_tests_per_ray]
            ),
            iterations=self.iterations + other.iterations,
            warp_traversal_steps=self.warp_traversal_steps + other.warp_traversal_steps,
            warp_is_steps=self.warp_is_steps + other.warp_is_steps,
            prim_test_warp_steps=self.prim_test_warp_steps + other.prim_test_warp_steps,
            node_transactions=self.node_transactions + other.node_transactions,
            prim_transactions=self.prim_transactions + other.prim_transactions,
            n_rays=self.n_rays + other.n_rays,
            warp_size=self.warp_size,
            per_warp_steps=None
            if self.per_warp_steps is None or other.per_warp_steps is None
            else np.concatenate([self.per_warp_steps, other.per_warp_steps]),
            ah_terminations=self.ah_terminations + other.ah_terminations,
            leaves_pruned=self.leaves_pruned + other.leaves_pruned,
            leaves_bulk_accepted=(
                self.leaves_bulk_accepted + other.leaves_bulk_accepted
            ),
            budget_stopped_rays=(
                self.budget_stopped_rays + other.budget_stopped_rays
            ),
            budget_exhausted=None
            if self.budget_exhausted is None or other.budget_exhausted is None
            else np.concatenate([self.budget_exhausted, other.budget_exhausted]),
        )


def trace_batch(
    bvh: BVH,
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float,
    t_max: float,
    hit_handler,
    warp_size: int = 32,
    tracer=None,
    max_iterations: int | None = None,
    prune: PruneSpec | None = None,
    step_budget: int | None = None,
    backend: Backend = NUMPY_BACKEND,
) -> TraceResult:
    """Trace a batch of rays through ``bvh``.

    Parameters
    ----------
    bvh:
        The acceleration structure.
    origins, directions:
        ``(R, 3)`` rays in *launch order* (warp w = rays 32w .. 32w+31).
    t_min, t_max:
        Shared ray segment (RTNN: ``[0, 1e-16]``).
    hit_handler:
        Callable ``(ray_ids, prim_ids) -> terminated_ray_ids | None``.
        ``prim_ids`` are original primitive indices. Returned rays stop
        traversing immediately (Any-Hit termination).
    tracer:
        Optional memory tracer with ``on_node_access(it, ray_ids,
        node_ids)`` / ``on_prim_access(it, ray_ids, prim_ids)`` hooks
        (the sampled cache simulator plugs in here). If the tracer also
        exposes ``finalize()``, it is called once after the last hook so
        record-and-replay tracers can roll up their deferred state.
    max_iterations:
        Safety valve; raises ``RuntimeError`` if exceeded.
    prune:
        Optional :class:`PruneSpec`. Hit leaves whose tight point MBR
        provably cannot contribute are skipped before the per-point
        gather; leaves provably entirely inside the acceptance sphere
        are bulk-accepted past the primitive AABB tests. Results are
        bit-identical with or without pruning; only work counters and
        the primitive access stream change.
    step_budget:
        Optional cap on node pops per ray. A ray that reaches the cap
        with stack entries remaining stops deterministically and is
        flagged in ``budget_exhausted`` — the approximate-search mode.
        ``None`` (default) traverses to completion (exact).
    backend:
        Kernel provider for the hot inner loops (prim containment
        tests, MBR distance bounds). All backends are bit-identical to
        the NumPy reference.

    Returns
    -------
    TraceResult
    """
    origins = np.ascontiguousarray(origins, dtype=np.float64)
    directions = np.ascontiguousarray(directions, dtype=np.float64)
    n_rays = len(origins)
    zeros = np.zeros(n_rays, dtype=np.int64)
    if n_rays == 0:
        _finalize_tracer(tracer)
        return TraceResult(
            steps=zeros,
            is_calls=zeros.copy(),
            prim_tests_per_ray=zeros.copy(),
            iterations=0,
            warp_traversal_steps=0,
            warp_is_steps=0,
            prim_test_warp_steps=0,
            node_transactions=0,
            prim_transactions=0,
            n_rays=0,
            warp_size=warp_size,
            per_warp_steps=np.zeros(0, dtype=np.int64),
            budget_exhausted=np.zeros(0, dtype=bool),
        )

    stack_width = bvh.depth + 2
    stack = np.zeros((n_rays, stack_width), dtype=np.int64)
    sp = np.ones(n_rays, dtype=np.int64)  # root pre-pushed at slot 0
    alive = np.ones(n_rays, dtype=bool)

    steps = np.zeros(n_rays, dtype=np.int64)
    is_calls = np.zeros(n_rays, dtype=np.int64)
    prim_tests = np.zeros(n_rays, dtype=np.int64)
    ah_terminations = 0
    leaves_pruned = 0
    leaves_bulk_accepted = 0
    prim_accesses = 0
    budget_exhausted = np.zeros(n_rays, dtype=bool)

    node_left = bvh.node_left
    node_right = bvh.node_right
    node_start = bvh.node_start
    node_end = bvh.node_end
    node_lo = bvh.node_lo
    node_hi = bvh.node_hi
    prim_order = bvh.prim_order
    prim_lo = bvh.prim_lo
    prim_hi = bvh.prim_hi
    max_leaf = bvh.leaf_size
    test_prims = max_leaf > 1  # leaf bound == prim bound when 1
    # RTNN's degenerate short rays reduce the prim AABB test to closed
    # origin-in-box containment — the backend-routed hot kernel. Longer
    # segments keep the general slab test.
    fast_prim_test = (t_max - t_min <= 1e-12) and (t_min >= 0.0)
    # Bulk acceptance only pays when there is a per-point test to skip.
    bulk_t2 = prune.bulk_t2 if prune is not None and test_prims else None

    if max_iterations is None:
        max_iterations = bvh.n_nodes + stack_width + 1

    # Active-set compaction: rays leave the set permanently (a ray pops
    # every round while its stack is non-empty, so activity is one
    # contiguous prefix of rounds).
    act = np.arange(n_rays, dtype=np.int64)
    iteration = 0
    while len(act):
        if iteration >= max_iterations:
            raise RuntimeError(
                f"traversal exceeded {max_iterations} iterations; "
                "possible cycle in BVH topology"
            )

        # --- step budget (approximate mode) ------------------------------
        # Truncation is deterministic: per-ray work is independent of
        # warp packing and of the other rays, so a larger budget only
        # ever adds candidate pairs (the recall monotonicity the
        # engine's lower bound relies on). Activity is a contiguous
        # prefix of rounds, so every still-active ray has popped
        # exactly ``iteration`` nodes — the whole set exhausts at once.
        if step_budget is not None and iteration >= step_budget:
            budget_exhausted[act] = True
            steps[act] = iteration
            break

        # --- pop (RT core) ---------------------------------------------
        tops = sp[act] - 1
        sp[act] = tops
        nodes = stack[act, tops]
        if tracer is not None:
            tracer.on_node_access(iteration, act, nodes)

        # --- ray-AABB test ----------------------------------------------
        # Degenerate short rays reduce the node slab test to the same
        # origin-in-box containment as the prim test. Containment hits
        # are a subset of slab hits, and every prim box lies inside its
        # node box, so no containment-passing primitive is ever lost.
        if fast_prim_test:
            hit = backend.points_in_boxes(
                origins[act], node_lo[nodes], node_hi[nodes]
            )
        else:
            hit = ray_aabb_intersect(
                origins[act], directions[act], t_min, t_max,
                node_lo[nodes], node_hi[nodes],
            )
        hit_nodes = nodes[hit]
        hit_rays = act[hit]
        internal = node_left[hit_nodes] >= 0

        # --- push children of hit internal nodes -------------------------
        pi = hit_rays[internal]
        if len(pi):
            if (sp[pi] + 2 > stack_width).any():
                raise RuntimeError(
                    "traversal stack overflow exceeded the tree depth; "
                    "possible cycle in BVH topology"
                )
            ni = hit_nodes[internal]
            stack[pi, sp[pi]] = node_right[ni]
            sp[pi] += 1
            stack[pi, sp[pi]] = node_left[ni]
            sp[pi] += 1

        # --- leaf handling ------------------------------------------------
        leaf_rays = hit_rays[~internal]
        leaf_nodes = hit_nodes[~internal]
        flat_bulk = None
        if len(leaf_rays) and prune is not None:
            # MBR distance pruning: bound each (ray, leaf) pair by the
            # squared distance from the query to the leaf's tight point
            # MBR. min_d2 above every acceptance bound -> skip the
            # leaf; max_d2 within the bulk bound -> every member point
            # provably passes the per-point tests.
            min_d2, max_d2 = backend.box_sq_dists(
                origins[leaf_rays],
                prune.leaf_lo[leaf_nodes],
                prune.leaf_hi[leaf_nodes],
            )
            thresh = prune.static_t2
            if prune.worst is not None:
                thresh = np.minimum(
                    thresh, prune.worst[prune.query_ids[leaf_rays]]
                )
            keep = min_d2 <= thresh
            leaves_pruned += int(len(keep)) - int(keep.sum())
            if bulk_t2 is not None:
                bulk = keep & (max_d2 <= bulk_t2)
                leaves_bulk_accepted += int(bulk.sum())
                flat_bulk = bulk[keep]
                if not flat_bulk.any():
                    flat_bulk = None
            leaf_rays = leaf_rays[keep]
            leaf_nodes = leaf_nodes[keep]
        if len(leaf_rays):
            starts = node_start[leaf_nodes]
            counts = node_end[leaf_nodes] - starts
            # Flat gather: expand every (leaf ray, in-leaf slot) pair
            # once, then bucket the pairs by slot. Slot j's bucket holds
            # exactly the rays whose leaf has > j primitives, in ray
            # order (the stable sort keeps the ray-major pair order), so
            # each hit_handler call groups the same pairs the per-slot
            # masking loop produced. Slots still run sequentially:
            # Any-Hit terminations in slot j must suppress later slots.
            pair_ray = np.repeat(
                np.arange(len(leaf_rays), dtype=np.int64), counts
            )
            # prim_order position of each pair: starts[pair_ray] plus the
            # in-leaf slot, folded into one repeat (starts - cum + counts
            # is the start minus the pair index where the run begins).
            pos = np.arange(len(pair_ray), dtype=np.int64)
            pos += np.repeat(starts - np.cumsum(counts) + counts, counts)
            flat_rays = leaf_rays[pair_ray]
            flat_prims = prim_order[pos]
            if flat_bulk is not None:
                flat_bulk = flat_bulk[pair_ray]
            if flat_bulk is None and hasattr(hit_handler, "flat_hits"):
                # Fused leaf stage. A handler exposing ``flat_hits``
                # never issues Any-Hit terminations (KNN), so no slot
                # can suppress a later one and the whole round's pairs
                # collapse into one tracer emission, one containment
                # test and one shader call. Per-pair work and counters
                # are identical to the slot loop; only the primitive
                # access stream's ordering (ray-major instead of
                # slot-major) differs, which results never observe.
                r_all = flat_rays
                p_all = flat_prims
                if tracer is not None:
                    tracer.on_prim_access(iteration, r_all, p_all)
                prim_accesses += len(r_all)
                if test_prims:
                    prim_tests += np.bincount(r_all, minlength=n_rays)
                    if fast_prim_test:
                        inside = backend.points_in_boxes(
                            origins[r_all], prim_lo[p_all], prim_hi[p_all]
                        )
                    else:
                        inside = ray_aabb_intersect(
                            origins[r_all], directions[r_all], t_min, t_max,
                            prim_lo[p_all], prim_hi[p_all],
                        )
                    r_all = r_all[inside]
                    p_all = p_all[inside]
                if len(r_all):
                    is_calls += np.bincount(r_all, minlength=n_rays)
                    hit_handler.flat_hits(r_all, p_all)
                keep = sp[act] > 0
                if not keep.all():
                    steps[act[~keep]] = iteration + 1
                    act = act[keep]
                iteration += 1
                continue
            pair_j = pos - starts[pair_ray]
            slot_order = np.argsort(pair_j, kind="stable")
            slot_bounds = np.searchsorted(
                pair_j[slot_order], np.arange(int(counts.max()) + 1)
            )
            for j in range(len(slot_bounds) - 1):
                sel = slot_order[slot_bounds[j]:slot_bounds[j + 1]]
                r = flat_rays[sel]
                live = alive[r]
                if not live.any():
                    break
                r = r[live]
                prims = flat_prims[sel][live]
                if tracer is not None:
                    tracer.on_prim_access(iteration, r, prims)
                prim_accesses += len(r)
                if test_prims:
                    bulk = (
                        flat_bulk[sel][live]
                        if flat_bulk is not None
                        else None
                    )
                    if bulk is not None and bulk.any():
                        # Bulk-accepted pairs skip the per-point AABB
                        # test; tested pairs scatter their verdicts back
                        # into the pair order so the shader sees the
                        # exact same sequence it would unpruned.
                        tested = ~bulk
                        rt = r[tested]
                        keep_pairs = bulk.copy()
                        if len(rt):
                            prim_tests[rt] += 1
                            pt = prims[tested]
                            if fast_prim_test:
                                keep_pairs[tested] = backend.points_in_boxes(
                                    origins[rt], prim_lo[pt], prim_hi[pt]
                                )
                            else:
                                keep_pairs[tested] = ray_aabb_intersect(
                                    origins[rt], directions[rt],
                                    t_min, t_max,
                                    prim_lo[pt], prim_hi[pt],
                                )
                        r = r[keep_pairs]
                        prims = prims[keep_pairs]
                    else:
                        prim_tests[r] += 1
                        if fast_prim_test:
                            inside = backend.points_in_boxes(
                                origins[r], prim_lo[prims], prim_hi[prims]
                            )
                        else:
                            inside = ray_aabb_intersect(
                                origins[r], directions[r], t_min, t_max,
                                prim_lo[prims], prim_hi[prims],
                            )
                        r = r[inside]
                        prims = prims[inside]
                    if len(r) == 0:
                        continue
                is_calls[r] += 1
                term = hit_handler(r, prims)
                if term is not None and len(term):
                    alive[np.asarray(term, dtype=np.int64)] = False
                    ah_terminations += len(term)

        keep = alive[act] & (sp[act] > 0)
        if not keep.all():
            steps[act[~keep]] = iteration + 1
            act = act[keep]
        iteration += 1

    _finalize_tracer(tracer)
    per_warp_steps = _warp_max(steps, warp_size)
    return TraceResult(
        steps=steps,
        is_calls=is_calls,
        prim_tests_per_ray=prim_tests,
        iterations=iteration,
        warp_traversal_steps=int(per_warp_steps.sum()),
        warp_is_steps=int(_warp_max(is_calls, warp_size).sum()),
        prim_test_warp_steps=int(_warp_max(prim_tests, warp_size).sum()),
        node_transactions=int(steps.sum()),
        # Every pair fed to the leaf stage fetches its primitive record,
        # tested or bulk-accepted alike. Without pruning this equals the
        # historical prim_tests/is_calls totals exactly.
        prim_transactions=prim_accesses,
        n_rays=n_rays,
        warp_size=warp_size,
        per_warp_steps=per_warp_steps,
        ah_terminations=ah_terminations,
        leaves_pruned=leaves_pruned,
        leaves_bulk_accepted=leaves_bulk_accepted,
        budget_stopped_rays=int(budget_exhausted.sum()),
        budget_exhausted=budget_exhausted,
    )
