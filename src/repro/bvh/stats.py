"""BVH quality statistics and structural validation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh.node import BVH
from repro.geometry.aabb import aabb_surface_area


@dataclass
class TreeStats:
    """Summary statistics of a built BVH."""

    n_nodes: int
    n_leaves: int
    n_prims: int
    depth: int
    sah_cost: float          # surface-area-heuristic cost relative to root
    mean_leaf_size: float
    max_leaf_size: int


def tree_stats(bvh: BVH) -> TreeStats:
    """Compute size/depth/SAH statistics for a BVH."""
    leaf = bvh.is_leaf
    leaf_counts = (bvh.node_end - bvh.node_start)[leaf]
    areas = aabb_surface_area(bvh.node_lo, bvh.node_hi)
    root_area = max(float(areas[0]), 1e-300)
    # Standard SAH estimate: traversal cost 1 per internal node visit,
    # intersection cost 1 per primitive, weighted by hit probability
    # (area ratio to the root).
    internal_cost = float(areas[~leaf].sum() / root_area)
    leaf_cost = float((areas[leaf] * leaf_counts / root_area).sum())
    return TreeStats(
        n_nodes=bvh.n_nodes,
        n_leaves=int(leaf.sum()),
        n_prims=bvh.n_prims,
        depth=bvh.depth,
        sah_cost=internal_cost + leaf_cost,
        mean_leaf_size=float(leaf_counts.mean()),
        max_leaf_size=int(leaf_counts.max()),
    )


def validate_bvh(bvh: BVH) -> None:
    """Raise ``AssertionError`` on any structural invariant violation.

    Checks performed:

    * ``prim_order`` is a permutation of the primitives;
    * every node's bounds enclose its primitives' bounds;
    * every internal node's bounds enclose both children;
    * children partition the parent's primitive range;
    * every primitive appears in exactly one leaf;
    * leaf sizes respect ``leaf_size``.
    """
    n = bvh.n_prims
    assert sorted(bvh.prim_order.tolist()) == list(range(n)), "prim_order not a permutation"

    slo = bvh.prim_lo[bvh.prim_order]
    shi = bvh.prim_hi[bvh.prim_order]
    eps = 1e-9
    leaf_cover = np.zeros(n, dtype=np.int64)
    for i in range(bvh.n_nodes):
        s, e = bvh.node_start[i], bvh.node_end[i]
        assert 0 <= s < e <= n, f"node {i} has bad range [{s}, {e})"
        assert (bvh.node_lo[i] <= slo[s:e].min(axis=0) + eps).all(), f"node {i} lo too tight"
        assert (bvh.node_hi[i] >= shi[s:e].max(axis=0) - eps).all(), f"node {i} hi too tight"
        l, r = bvh.node_left[i], bvh.node_right[i]
        if l < 0:
            assert r < 0, f"node {i} has right child but no left"
            assert e - s <= bvh.leaf_size, f"leaf {i} overflows leaf_size"
            leaf_cover[s:e] += 1
        else:
            assert 0 <= l < bvh.n_nodes and 0 <= r < bvh.n_nodes
            ls, le = bvh.node_start[l], bvh.node_end[l]
            rs, re = bvh.node_start[r], bvh.node_end[r]
            assert ls == s and re == e and le == rs, (
                f"children of node {i} do not partition [{s}, {e})"
            )
            assert (bvh.node_lo[i] <= bvh.node_lo[l] + eps).all()
            assert (bvh.node_lo[i] <= bvh.node_lo[r] + eps).all()
            assert (bvh.node_hi[i] >= bvh.node_hi[l] - eps).all()
            assert (bvh.node_hi[i] >= bvh.node_hi[r] - eps).all()
    assert (leaf_cover == 1).all(), "primitives not covered by exactly one leaf"
