"""Bounding Volume Hierarchy substrate.

This package stands in for the opaque BVH builder + hardware traversal
inside OptiX/RT cores:

* :mod:`repro.bvh.node` — flat array-of-arrays node layout,
* :mod:`repro.bvh.build` — LBVH (Morton-ordered, level-wise vectorized)
  and a reference median-split builder,
* :mod:`repro.bvh.traverse` — batched lockstep stack traversal with the
  hardware counters (pops, IS calls, warp steps) the GPU model consumes,
* :mod:`repro.bvh.stats` — tree-quality statistics (depth, SAH cost).
"""

from repro.bvh.node import BVH
from repro.bvh.build import build_lbvh, build_median_split
from repro.bvh.traverse import trace_batch, PruneSpec, TraceResult
from repro.bvh.refit import refit_bvh
from repro.bvh.serialize import save_bvh, load_bvh
from repro.bvh.stats import tree_stats, validate_bvh

__all__ = [
    "BVH",
    "build_lbvh",
    "build_median_split",
    "trace_batch",
    "PruneSpec",
    "TraceResult",
    "refit_bvh",
    "save_bvh",
    "load_bvh",
    "tree_stats",
    "validate_bvh",
]
