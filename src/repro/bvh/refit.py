"""BVH refitting: update bounds in place for moved primitives.

Dynamic workloads (SPH particles, LiDAR streams) move points every
step. Rebuilding the BVH costs k1 * M; *refitting* — recomputing node
bounds bottom-up over the unchanged topology — is cheaper and is what
OptiX exposes as an acceleration-structure update. Tree quality decays
as points drift from their build-time Morton order, so callers
typically refit for a few steps and rebuild periodically.

The refit walks the level structure implicitly: node bounds are
recomputed children-first by iterating nodes in reverse creation order
(children always have larger indices than their parent in both
builders).
"""

from __future__ import annotations

import numpy as np

from repro.bvh.node import BVH


def refit_bvh(bvh: BVH, prim_lo: np.ndarray, prim_hi: np.ndarray) -> None:
    """Update ``bvh``'s bounds in place for new primitive AABBs.

    ``prim_lo``/``prim_hi`` replace the primitive bounds (same count and
    order as at build time); topology, primitive order and leaf
    assignment stay fixed.
    """
    prim_lo = np.ascontiguousarray(prim_lo, dtype=np.float64)
    prim_hi = np.ascontiguousarray(prim_hi, dtype=np.float64)
    if prim_lo.shape != bvh.prim_lo.shape or prim_hi.shape != bvh.prim_hi.shape:
        raise ValueError("refit requires the same primitive count as the build")
    if np.any(prim_hi < prim_lo):
        raise ValueError("inverted primitive AABBs (hi < lo)")
    bvh.prim_lo = prim_lo
    bvh.prim_hi = prim_hi
    # Cached leaf point-MBRs are position-derived; every refit moves the
    # primitives, so stale MBRs would make distance pruning unsound.
    bvh.invalidate_leaf_mbrs()

    slo = prim_lo[bvh.prim_order]
    shi = prim_hi[bvh.prim_order]
    # Children are created after their parents in both builders, so a
    # reverse sweep sees every node's children before the node itself.
    for i in range(bvh.n_nodes - 1, -1, -1):
        l, r = bvh.node_left[i], bvh.node_right[i]
        if l < 0:
            s, e = bvh.node_start[i], bvh.node_end[i]
            bvh.node_lo[i] = slo[s:e].min(axis=0)
            bvh.node_hi[i] = shi[s:e].max(axis=0)
        else:
            bvh.node_lo[i] = np.minimum(bvh.node_lo[l], bvh.node_lo[r])
            bvh.node_hi[i] = np.maximum(bvh.node_hi[l], bvh.node_hi[r])
