"""BVH persistence: save/load built trees as ``.npz`` archives.

Building a BVH over a large static scene once and reusing it across
sessions is standard practice; this module round-trips every array of
the flat layout plus the scalar metadata.
"""

from __future__ import annotations

import numpy as np

from repro.bvh.node import BVH

_ARRAYS = (
    "node_lo",
    "node_hi",
    "node_left",
    "node_right",
    "node_start",
    "node_end",
    "prim_order",
    "prim_lo",
    "prim_hi",
)

#: bump when the on-disk layout changes
FORMAT_VERSION = 1


def save_bvh(path, bvh: BVH) -> None:
    """Write a BVH to ``path`` (compressed npz)."""
    np.savez_compressed(
        path,
        __format__=np.int64(FORMAT_VERSION),
        depth=np.int64(bvh.depth),
        leaf_size=np.int64(bvh.leaf_size),
        **{name: getattr(bvh, name) for name in _ARRAYS},
    )


def load_bvh(path) -> BVH:
    """Read a BVH written by :func:`save_bvh`."""
    with np.load(path) as data:
        if "__format__" not in data:
            raise ValueError(f"{path}: not a saved BVH archive")
        version = int(data["__format__"])
        if version != FORMAT_VERSION:
            raise ValueError(
                f"{path}: unsupported BVH format version {version} "
                f"(expected {FORMAT_VERSION})"
            )
        kwargs = {name: data[name] for name in _ARRAYS}
        return BVH(
            depth=int(data["depth"]),
            leaf_size=int(data["leaf_size"]),
            **kwargs,
        )
