"""Flat BVH storage.

Nodes are stored in structure-of-arrays form (bounds, children, leaf
ranges). Leaves reference a contiguous slice of ``prim_order`` — the
primitive indices sorted by the builder — so "primitives under this
leaf" is always a view, never a copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class BVH:
    """A flat binary BVH over primitive AABBs.

    Attributes
    ----------
    node_lo, node_hi:
        ``(M, 3)`` node bounds.
    node_left, node_right:
        ``(M,)`` child node indices; ``-1`` for leaves.
    node_start, node_end:
        ``(M,)`` range into ``prim_order`` covered by each node
        (leaves use it to enumerate primitives; internal nodes keep it
        for statistics/validation).
    prim_order:
        ``(N,)`` primitive indices in tree order.
    prim_lo, prim_hi:
        ``(N, 3)`` primitive AABBs in *original* primitive order.
    depth:
        Maximum node depth (root = 0); bounds the traversal stack.
    leaf_size:
        Builder's max primitives per leaf.
    """

    node_lo: np.ndarray
    node_hi: np.ndarray
    node_left: np.ndarray
    node_right: np.ndarray
    node_start: np.ndarray
    node_end: np.ndarray
    prim_order: np.ndarray
    prim_lo: np.ndarray
    prim_hi: np.ndarray
    depth: int
    leaf_size: int
    # Tight per-leaf *point* MBRs (leaf rows only; garbage elsewhere),
    # computed lazily by ensure_leaf_mbrs and dropped on refit. These
    # are deliberately NOT derived from the inflated node bounds
    # (node_lo + half_width drifts by rounding); they are exact
    # min/max reductions over the member points, which is what makes
    # the min/max-dist² pruning bounds provably conservative.
    leaf_lo: np.ndarray | None = field(default=None, repr=False)
    leaf_hi: np.ndarray | None = field(default=None, repr=False)

    @property
    def n_nodes(self) -> int:
        return len(self.node_left)

    @property
    def n_prims(self) -> int:
        return len(self.prim_order)

    @property
    def is_leaf(self) -> np.ndarray:
        """Boolean mask over nodes; True where the node is a leaf."""
        return self.node_left < 0

    def ensure_leaf_mbrs(self, points: np.ndarray) -> None:
        """Compute (once) the tight point MBR of every leaf.

        Fills ``leaf_lo``/``leaf_hi`` with per-node ``(M, 3)`` arrays
        whose *leaf* rows hold the elementwise min/max of the leaf's
        member points; internal rows are left at ±inf and must never be
        read. Leaf slices partition ``prim_order``, so one
        ``reduceat`` over the start-sorted slice boundaries covers
        every leaf. Idempotent; ``invalidate_leaf_mbrs`` (called on
        refit) forces recomputation after points move.
        """
        if self.leaf_lo is not None:
            return
        pts = np.asarray(points, dtype=np.float64)[self.prim_order]
        leaves = np.flatnonzero(self.is_leaf)
        lo = np.full((self.n_nodes, 3), np.inf, dtype=np.float64)
        hi = np.full((self.n_nodes, 3), -np.inf, dtype=np.float64)
        if len(leaves):
            by_start = leaves[np.argsort(self.node_start[leaves], kind="stable")]
            starts = self.node_start[by_start]
            lo[by_start] = np.minimum.reduceat(pts, starts, axis=0)
            hi[by_start] = np.maximum.reduceat(pts, starts, axis=0)
        self.leaf_lo = lo
        self.leaf_hi = hi

    def invalidate_leaf_mbrs(self) -> None:
        """Drop cached leaf MBRs (points moved under a refit)."""
        self.leaf_lo = None
        self.leaf_hi = None

    def leaf_of_prim(self) -> np.ndarray:
        """Map each primitive (original index) to its containing leaf node."""
        owner = np.full(self.n_prims, -1, dtype=np.int64)
        leaves = np.flatnonzero(self.is_leaf)
        for leaf in leaves:
            s, e = self.node_start[leaf], self.node_end[leaf]
            owner[self.prim_order[s:e]] = leaf
        return owner

    def memory_bytes(self, node_bytes: int = 32, prim_bytes: int = 32) -> int:
        """Modeled device-memory footprint (used by the GPU cost model).

        Hardware BVH nodes are compressed; 32 B/node approximates the
        Turing-era compressed-wide-node figure well enough for traffic
        modeling.
        """
        return self.n_nodes * node_bytes + self.n_prims * prim_bytes
