"""Flat BVH storage.

Nodes are stored in structure-of-arrays form (bounds, children, leaf
ranges). Leaves reference a contiguous slice of ``prim_order`` — the
primitive indices sorted by the builder — so "primitives under this
leaf" is always a view, never a copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class BVH:
    """A flat binary BVH over primitive AABBs.

    Attributes
    ----------
    node_lo, node_hi:
        ``(M, 3)`` node bounds.
    node_left, node_right:
        ``(M,)`` child node indices; ``-1`` for leaves.
    node_start, node_end:
        ``(M,)`` range into ``prim_order`` covered by each node
        (leaves use it to enumerate primitives; internal nodes keep it
        for statistics/validation).
    prim_order:
        ``(N,)`` primitive indices in tree order.
    prim_lo, prim_hi:
        ``(N, 3)`` primitive AABBs in *original* primitive order.
    depth:
        Maximum node depth (root = 0); bounds the traversal stack.
    leaf_size:
        Builder's max primitives per leaf.
    """

    node_lo: np.ndarray
    node_hi: np.ndarray
    node_left: np.ndarray
    node_right: np.ndarray
    node_start: np.ndarray
    node_end: np.ndarray
    prim_order: np.ndarray
    prim_lo: np.ndarray
    prim_hi: np.ndarray
    depth: int
    leaf_size: int

    @property
    def n_nodes(self) -> int:
        return len(self.node_left)

    @property
    def n_prims(self) -> int:
        return len(self.prim_order)

    @property
    def is_leaf(self) -> np.ndarray:
        """Boolean mask over nodes; True where the node is a leaf."""
        return self.node_left < 0

    def leaf_of_prim(self) -> np.ndarray:
        """Map each primitive (original index) to its containing leaf node."""
        owner = np.full(self.n_prims, -1, dtype=np.int64)
        leaves = np.flatnonzero(self.is_leaf)
        for leaf in leaves:
            s, e = self.node_start[leaf], self.node_end[leaf]
            owner[self.prim_order[s:e]] = leaf
        return owner

    def memory_bytes(self, node_bytes: int = 32, prim_bytes: int = 32) -> int:
        """Modeled device-memory footprint (used by the GPU cost model).

        Hardware BVH nodes are compressed; 32 B/node approximates the
        Turing-era compressed-wide-node figure well enough for traffic
        modeling.
        """
        return self.n_nodes * node_bytes + self.n_prims * prim_bytes
