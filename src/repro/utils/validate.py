"""Input validation helpers shared across the library.

All public entry points funnel user-provided arrays through these helpers
so error messages are uniform and failures happen at the API boundary
rather than deep inside a vectorized kernel.
"""

from __future__ import annotations

import numpy as np


def as_points(arr, name: str = "points", dims: int | None = 3) -> np.ndarray:
    """Coerce ``arr`` to a C-contiguous float64 ``(N, dims)`` array.

    Parameters
    ----------
    arr:
        Anything ``np.asarray`` accepts.
    name:
        Argument name used in error messages.
    dims:
        Required dimensionality (2 or 3). ``None`` accepts either.

    Returns
    -------
    numpy.ndarray
        ``(N, dims)`` float64, C-contiguous.

    Raises
    ------
    ValueError
        If the array is not 2-D, has the wrong number of columns, or
        contains non-finite values.
    """
    out = np.ascontiguousarray(np.asarray(arr, dtype=np.float64))
    if out.ndim == 1:
        if dims is not None and out.size == dims:
            out = out.reshape(1, dims)
        elif dims is None and out.size in (2, 3):
            # a bare coordinate with the dimensionality left open: its
            # length is unambiguous, so accept it as a single point
            out = out.reshape(1, out.size)
    if out.ndim != 2:
        raise ValueError(f"{name} must be a 2-D array, got shape {out.shape}")
    if dims is not None and out.shape[1] != dims:
        raise ValueError(
            f"{name} must have {dims} columns, got {out.shape[1]}"
        )
    if out.shape[1] not in (2, 3):
        raise ValueError(
            f"{name} must be 2-D or 3-D coordinates, got {out.shape[1]} columns"
        )
    check_finite(out, name)
    return out


def check_finite(arr: np.ndarray, name: str) -> None:
    """Raise ``ValueError`` if ``arr`` contains NaN or infinity."""
    if not np.isfinite(arr).all():
        raise ValueError(f"{name} contains non-finite values (NaN or inf)")


def check_positive(value: float, name: str) -> float:
    """Validate a strictly positive scalar and return it as ``float``."""
    value = float(value)
    if not np.isfinite(value) or value <= 0.0:
        raise ValueError(f"{name} must be a positive finite number, got {value}")
    return value


def check_positive_int(value: int, name: str) -> int:
    """Validate a strictly positive integer and return it as ``int``.

    Accepts any integral number (``numpy`` integer scalars, integral
    floats like ``4.0``) but rejects booleans: ``int(True) == 1``, so
    ``k=True`` would otherwise silently mean ``k=1``.
    """
    if isinstance(value, (bool, np.bool_)):
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    ivalue = int(value)
    if ivalue != value or ivalue <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value}")
    return ivalue
