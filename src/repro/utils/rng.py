"""Seeded random-number-generator plumbing.

Every stochastic component in the library (dataset generators, sampled
cache simulation) accepts either a seed or a ``numpy.random.Generator``
and routes it through :func:`default_rng`, so whole experiments are
reproducible from a single integer.
"""

from __future__ import annotations

import numpy as np


def default_rng(seed=None) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts ``None`` (fresh entropy), an integer seed, a ``SeedSequence``,
    or an existing ``Generator`` (returned unchanged so callers can share
    a stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
