"""Small shared utilities: validation helpers and seeded RNG plumbing."""

from repro.utils.validate import (
    as_points,
    check_finite,
    check_positive,
    check_positive_int,
)
from repro.utils.rng import default_rng

__all__ = [
    "as_points",
    "check_finite",
    "check_positive",
    "check_positive_int",
    "default_rng",
]
