"""Named datasets mapping the paper's eight inputs to simulator scale.

The paper's inputs run 0.36M-25M points on real GPUs; the Python-hosted
simulator runs the same *distributions* at ~1000x smaller scale. Each
spec remembers the paper-scale point count so memory-capacity modeling
(the OOM annotations of Fig. 11) can be evaluated at paper scale, and
carries a per-dataset search radius chosen so an r-sphere holds on
the order of a thousand points — preserving the paper-scale ratio of
ball population to neighbor bound K, which is what determines who wins
between exhaustive grids and tree pruning.

Scale can be adjusted globally: ``load(name, scale=2.0)`` doubles every
input, and the benchmark harness reads ``REPRO_SCALE`` from the
environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.datasets.kitti import kitti_like
from repro.datasets.nbody import nbody_like
from repro.datasets.scans import scan_like


@dataclass(frozen=True)
class DatasetSpec:
    """One named input of the paper's evaluation."""

    name: str
    family: str              # "kitti" | "scan" | "nbody"
    n_points: int            # simulator-scale size
    paper_n_points: int      # size used in the paper (for OOM modeling)
    radius: float            # default search radius, scene units
    scene_extent: float      # scene edge length (for grid OOM modeling)
    generator: Callable[..., np.ndarray]
    gen_kwargs: dict

    def generate(self, scale: float = 1.0, seed=0) -> np.ndarray:
        """Materialize the point set at ``scale`` x the registered size."""
        n = max(int(self.n_points * scale), 16)
        return self.generator(n, seed=seed, **self.gen_kwargs)


def _spec(name, family, n, paper_n, radius, extent, gen, **kw) -> DatasetSpec:
    return DatasetSpec(
        name=name,
        family=family,
        n_points=n,
        paper_n_points=paper_n,
        radius=radius,
        scene_extent=extent,
        generator=gen,
        gen_kwargs=kw,
    )


#: the eight inputs of Fig. 11, in paper order
DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        _spec("KITTI-1M", "kitti", 20_000, 1_000_000, 8.0, 100.0, kitti_like),
        _spec("KITTI-12M", "kitti", 60_000, 12_000_000, 6.0, 100.0, kitti_like),
        _spec("KITTI-25M", "kitti", 100_000, 25_000_000, 6.0, 100.0, kitti_like),
        _spec("Bunny-360K", "scan", 12_000, 360_000, 0.20, 1.0, scan_like, model="bunny"),
        _spec("Dragon-3.6M", "scan", 50_000, 3_600_000, 0.15, 1.0, scan_like, model="dragon"),
        _spec("Buddha-4.6M", "scan", 60_000, 4_600_000, 0.15, 1.0, scan_like, model="buddha"),
        _spec("NBody-9M", "nbody", 55_000, 9_000_000, 40.0, 500.0, nbody_like),
        _spec("NBody-10M", "nbody", 65_000, 10_000_000, 40.0, 500.0, nbody_like),
    ]
}


def load(name: str, scale: float = 1.0, seed=0) -> tuple[np.ndarray, DatasetSpec]:
    """Materialize a named dataset; returns ``(points, spec)``."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(f"unknown dataset {name!r}; choose from {sorted(DATASETS)}") from None
    return spec.generate(scale=scale, seed=seed), spec


def paper_inputs() -> list[str]:
    """The eight dataset names in the paper's presentation order."""
    return list(DATASETS)
