"""Synthetic hierarchically-clustered point sets (Millennium stand-in).

The paper stresses that N-body galaxy catalogues are *non-uniform* —
"roughly hierarchical clustering (fractal)" on Mpc scales (footnote 3)
— and shows that this non-uniformity makes RTNN's partitioning produce
many partitions whose BVH-construction overhead can outweigh its
benefit (Fig. 13b). The standard synthetic model for exactly this
structure is the Soneira-Peebles hierarchy: starting from one sphere,
recursively place ``eta`` child spheres of radius ``parent/lam`` at
random positions inside the parent; the leaves of the recursion are the
galaxies. The generator is level-synchronous and fully vectorized.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng


def nbody_like(
    n_points: int,
    seed=0,
    eta: int = 4,
    lam: float = 1.9,
    box_size: float = 500.0,
    levels: int | None = None,
) -> np.ndarray:
    """Generate an ``(n_points, 3)`` Soneira-Peebles clustered set.

    Parameters
    ----------
    n_points:
        Output size (leaves are subsampled/topped up to hit it exactly).
    eta:
        Children per sphere; with ``lam`` sets the fractal dimension
        ``D = log(eta) / log(lam)`` (~1.4 by default — strongly
        clustered, like the galaxy correlation function).
    lam:
        Radius shrink factor per level.
    box_size:
        Scene edge (the Millennium run is 500 Mpc/h on a side).
    levels:
        Recursion depth; default is enough for ``eta^levels >= n_points``.
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    if eta < 2:
        raise ValueError(f"eta must be >= 2, got {eta}")
    if lam <= 1.0:
        raise ValueError(f"lam must be > 1, got {lam}")
    rng = default_rng(seed)

    if levels is None:
        levels = max(int(np.ceil(np.log(n_points) / np.log(eta))), 1)

    # Several independent top-level spheres so the scene is not one blob
    # (the Millennium volume holds many superclusters).
    n_roots = 8
    centers = rng.uniform(0.15 * box_size, 0.85 * box_size, size=(n_roots, 3))
    radius = box_size * 0.15

    for _ in range(levels):
        n = len(centers)
        # Random offsets inside the parent sphere for eta children each.
        d = rng.normal(size=(n, eta, 3))
        d /= np.linalg.norm(d, axis=2, keepdims=True)
        rr = radius * rng.random((n, eta, 1)) ** (1.0 / 3.0)
        centers = (centers[:, None, :] + d * rr).reshape(-1, 3)
        radius /= lam
        if len(centers) >= 4 * n_points:
            break

    # Final jitter at the smallest scale, then sample exactly n_points.
    pts = centers + rng.normal(0, radius / 2.0, size=centers.shape)
    if len(pts) >= n_points:
        idx = rng.choice(len(pts), n_points, replace=False)
        out = pts[idx]
    else:
        extra = rng.choice(len(pts), n_points - len(pts), replace=True)
        out = np.concatenate([pts, pts[extra] + rng.normal(0, radius, (len(extra), 3))])
    np.clip(out, 0.0, box_size, out=out)
    rng.shuffle(out, axis=0)
    return np.ascontiguousarray(out)
