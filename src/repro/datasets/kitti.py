"""Synthetic LiDAR-like point clouds (KITTI stand-in).

An automotive LiDAR frame has a characteristic structure the paper
leans on ("points are mostly distributed in the xy-plane ... confined
in a very narrow z-range"): concentric ground-ring returns whose radial
density falls off with distance, plus clusters of vertical returns from
cars, poles, and building facades. The generator mixes:

* 70% ground returns — range sampled from the beam geometry (denser
  near the sensor), small z-noise around the ground plane;
* 20% object returns — box-shaped clusters (vehicles) scattered on the
  ground;
* 10% facade returns — vertical planar strips at the scene edges.

Units are meters; the scene spans ~[-50, 50] m in x/y and a few meters
of z, like a real KITTI frame.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng


def kitti_like(
    n_points: int,
    seed=0,
    scene_radius: float = 50.0,
    ground_frac: float = 0.70,
    object_frac: float = 0.20,
) -> np.ndarray:
    """Generate an ``(n_points, 3)`` LiDAR-like cloud."""
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    rng = default_rng(seed)
    n_ground = int(n_points * ground_frac)
    n_object = int(n_points * object_frac)
    n_facade = n_points - n_ground - n_object

    # Ground: radial density ~ 1/r (uniform in log range) like spinning
    # beams; azimuth uniform.
    r = np.exp(rng.uniform(np.log(2.0), np.log(scene_radius), n_ground))
    theta = rng.uniform(0, 2 * np.pi, n_ground)
    ground = np.stack(
        [
            r * np.cos(theta),
            r * np.sin(theta),
            rng.normal(0.0, 0.05, n_ground),
        ],
        axis=1,
    )

    # Objects: car-sized boxes scattered within 40 m.
    n_cars = max(n_object // 200, 1)
    centers_r = rng.uniform(5.0, scene_radius * 0.8, n_cars)
    centers_t = rng.uniform(0, 2 * np.pi, n_cars)
    centers = np.stack(
        [centers_r * np.cos(centers_t), centers_r * np.sin(centers_t)], axis=1
    )
    which = rng.integers(0, n_cars, n_object)
    objects = np.empty((n_object, 3))
    objects[:, 0] = centers[which, 0] + rng.uniform(-2.0, 2.0, n_object)
    objects[:, 1] = centers[which, 1] + rng.uniform(-1.0, 1.0, n_object)
    objects[:, 2] = rng.uniform(0.0, 1.6, n_object)

    # Facades: vertical strips on a ring near the scene edge.
    phi = rng.choice(rng.uniform(0, 2 * np.pi, 12), n_facade)
    rad = scene_radius * rng.uniform(0.85, 1.0, n_facade)
    facades = np.stack(
        [
            rad * np.cos(phi) + rng.normal(0, 0.3, n_facade),
            rad * np.sin(phi) + rng.normal(0, 0.3, n_facade),
            rng.uniform(0.0, 6.0, n_facade),
        ],
        axis=1,
    )

    cloud = np.concatenate([ground, objects, facades])
    rng.shuffle(cloud, axis=0)  # LiDAR packets arrive in scan order; shuffle
    return np.ascontiguousarray(cloud[:n_points])
