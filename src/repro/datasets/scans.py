"""Synthetic 3-D-scan-like surfaces (Stanford repository stand-in).

Scanned models (Bunny, Asian Dragon, Buddha) are dense, fairly uniform
samplings of a closed 2-D surface embedded in a roughly unit-cube
scene. We synthesize such surfaces as star-shaped bodies: a unit sphere
whose radius is modulated by a random band-limited spherical-harmonic-
like field, giving each "model" lobes and creases. Each named model has
a fixed modulation spectrum so Bunny/Dragon/Buddha are distinct but
reproducible. Points are scaled into the unit cube, matching the
paper's note that "points in Buddha are bounded in a 1^3 cube".
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import default_rng

#: per-model deformation spectra: (seed offset, n_modes, amplitude)
_MODEL_SPECTRA = {
    "bunny": (101, 6, 0.25),
    "dragon": (202, 14, 0.35),
    "buddha": (303, 10, 0.30),
}


def scan_like(n_points: int, model: str = "buddha", seed=0) -> np.ndarray:
    """Generate ``(n_points, 3)`` surface samples of a synthetic model.

    Parameters
    ----------
    n_points:
        Sample count.
    model:
        One of ``"bunny"``, ``"dragon"``, ``"buddha"``.
    seed:
        Sampling seed (the model *shape* is fixed per name; the seed
        varies only which surface points are drawn).
    """
    if n_points < 1:
        raise ValueError(f"n_points must be >= 1, got {n_points}")
    try:
        shape_seed, n_modes, amp = _MODEL_SPECTRA[model]
    except KeyError:
        raise ValueError(
            f"unknown model {model!r}; choose from {sorted(_MODEL_SPECTRA)}"
        ) from None

    shape_rng = default_rng(shape_seed)
    freqs = shape_rng.integers(1, 6, size=(n_modes, 2))
    phases = shape_rng.uniform(0, 2 * np.pi, size=(n_modes, 2))
    weights = shape_rng.uniform(0.3, 1.0, n_modes)
    weights *= amp / weights.sum()

    rng = default_rng(seed)
    # Uniform sphere directions.
    u = rng.normal(size=(n_points, 3))
    u /= np.linalg.norm(u, axis=1, keepdims=True)
    theta = np.arccos(np.clip(u[:, 2], -1, 1))
    phi = np.arctan2(u[:, 1], u[:, 0])

    radius = np.ones(n_points)
    for (f_t, f_p), (p_t, p_p), w in zip(freqs, phases, weights):
        radius += w * np.cos(f_t * theta + p_t) * np.cos(f_p * phi + p_p)
    radius = np.clip(radius, 0.3, None)

    pts = u * radius[:, None]
    # Small measurement noise normal to the surface, like scan data.
    pts += u * rng.normal(0, 0.002, n_points)[:, None]

    # Normalize into the unit cube.
    lo = pts.min(axis=0)
    hi = pts.max(axis=0)
    pts = (pts - lo) / (hi - lo).max()
    return np.ascontiguousarray(pts)
