"""Synthetic stand-ins for the paper's three dataset families.

The paper evaluates on (1) KITTI LiDAR point clouds, (2) Stanford 3-D
scans, (3) Millennium N-body galaxy catalogues — none of which ship
with this repository. What the experiments actually depend on is each
family's *distribution shape* (Section 6.1):

* KITTI: mass on the ground plane, confined z-range;
* scans: samples of a closed 2-D surface in a unit-cube scene;
* N-body: hierarchically clustered (fractal) density.

The generators here reproduce those shapes with seeded RNGs; the
registry maps the paper's eight named inputs to CPU-simulator-scale
versions while remembering the paper-scale point counts (used for OOM
modeling).
"""

from repro.datasets.kitti import kitti_like
from repro.datasets.scans import scan_like
from repro.datasets.nbody import nbody_like
from repro.datasets.registry import DATASETS, DatasetSpec, load, paper_inputs
from repro.datasets.io import read_ply, read_xyz, write_ply, write_xyz

__all__ = [
    "kitti_like",
    "scan_like",
    "nbody_like",
    "DATASETS",
    "DatasetSpec",
    "load",
    "paper_inputs",
    "read_ply",
    "read_xyz",
    "write_ply",
    "write_xyz",
]
