"""Point-cloud file I/O: PLY (ASCII + binary_little_endian) and XYZ.

The synthetic generators cover the experiments; these loaders let users
run the library on the actual Stanford scans, KITTI exports, or N-body
catalogues if they have them. Only vertex positions are read — extra
vertex properties (normals, colors) are parsed and skipped; non-vertex
elements (faces) are ignored.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

#: PLY scalar type -> (struct char, byte size)
_PLY_TYPES = {
    "char": ("b", 1), "int8": ("b", 1),
    "uchar": ("B", 1), "uint8": ("B", 1),
    "short": ("h", 2), "int16": ("h", 2),
    "ushort": ("H", 2), "uint16": ("H", 2),
    "int": ("i", 4), "int32": ("i", 4),
    "uint": ("I", 4), "uint32": ("I", 4),
    "float": ("f", 4), "float32": ("f", 4),
    "double": ("d", 8), "float64": ("d", 8),
}


def read_xyz(path) -> np.ndarray:
    """Read a whitespace-separated ``x y z [...]`` text file."""
    data = np.loadtxt(path, dtype=np.float64, ndmin=2)
    if data.shape[1] < 3:
        raise ValueError(f"{path}: expected at least 3 columns, got {data.shape[1]}")
    return np.ascontiguousarray(data[:, :3])


def write_xyz(path, points: np.ndarray) -> None:
    """Write points as an ``x y z`` text file."""
    points = np.asarray(points, dtype=np.float64)
    np.savetxt(path, points, fmt="%.9g")


def _parse_ply_header(fh):
    """Parse the header; returns (format, vertex_count, vertex_props)."""
    magic = fh.readline().strip()
    if magic != b"ply":
        raise ValueError("not a PLY file (missing 'ply' magic)")
    fmt = None
    elements: list[tuple[str, int]] = []
    props: dict[str, list[tuple[str, str]]] = {}
    current = None
    while True:
        line = fh.readline()
        if not line:
            raise ValueError("unexpected EOF in PLY header")
        parts = line.decode("ascii", "replace").strip().split()
        if not parts or parts[0] == "comment":
            continue
        if parts[0] == "format":
            fmt = parts[1]
        elif parts[0] == "element":
            current = parts[1]
            elements.append((current, int(parts[2])))
            props[current] = []
        elif parts[0] == "property":
            if parts[1] == "list":
                props[current].append(("list", " ".join(parts[2:])))
            else:
                props[current].append((parts[1], parts[2]))
        elif parts[0] == "end_header":
            break
    if fmt not in ("ascii", "binary_little_endian"):
        raise ValueError(f"unsupported PLY format: {fmt}")
    return fmt, elements, props


def read_ply(path) -> np.ndarray:
    """Read vertex positions from a PLY file.

    Supports ``ascii`` and ``binary_little_endian``; the vertex element
    must carry ``x``, ``y``, ``z`` scalar properties (any numeric type).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        fmt, elements, props = _parse_ply_header(fh)
        if not elements or "vertex" not in dict(elements):
            raise ValueError(f"{path}: no vertex element")
        vprops = props["vertex"]
        names = [t for _, t in vprops]
        for axis in ("x", "y", "z"):
            if axis not in names:
                raise ValueError(f"{path}: vertex element lacks '{axis}'")
        if any(t == "list" for t, _ in vprops):
            raise ValueError(f"{path}: list properties on vertices unsupported")
        n_vertex = dict(elements)["vertex"]
        # Vertices must be the first element for streaming reads.
        if elements[0][0] != "vertex":
            raise ValueError(f"{path}: vertex element must come first")

        cols = {name: i for i, (_, name) in enumerate(vprops)}
        sel = [cols["x"], cols["y"], cols["z"]]

        if fmt == "ascii":
            rows = np.loadtxt(fh, dtype=np.float64, max_rows=n_vertex, ndmin=2)
            if rows.shape[0] != n_vertex:
                raise ValueError(f"{path}: truncated vertex data")
            return np.ascontiguousarray(rows[:, sel])

        fmt_chars = "".join(_PLY_TYPES[t][0] for t, _ in vprops)
        record = struct.Struct("<" + fmt_chars)
        raw = fh.read(record.size * n_vertex)
        if len(raw) < record.size * n_vertex:
            raise ValueError(f"{path}: truncated vertex data")
        out = np.empty((n_vertex, 3), dtype=np.float64)
        for i, rec in enumerate(record.iter_unpack(raw)):
            out[i, 0] = rec[sel[0]]
            out[i, 1] = rec[sel[1]]
            out[i, 2] = rec[sel[2]]
        return out


def write_ply(path, points: np.ndarray, binary: bool = True) -> None:
    """Write points as a PLY vertex cloud (float32 positions)."""
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float32))
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    fmt = "binary_little_endian" if binary else "ascii"
    header = (
        f"ply\nformat {fmt} 1.0\n"
        f"comment written by repro (RTNN reproduction)\n"
        f"element vertex {len(points)}\n"
        "property float x\nproperty float y\nproperty float z\n"
        "end_header\n"
    )
    with open(path, "wb") as fh:
        fh.write(header.encode("ascii"))
        if binary:
            fh.write(points.astype("<f4").tobytes())
        else:
            np.savetxt(fh, points, fmt="%.7g")
