"""RTNN's intersection shaders (Listing 1 / Listing 2 / Section 5.1).

Each shader receives batches of (ray, primitive) pairs from the
traversal engine, converts launch-order ray ids to user query ids via
the launch's ``query_ids`` map, and updates its accumulator. Distances
are always *computed* here for result reporting; whether they *cost*
anything is decided by the launch's :class:`~repro.gpu.costmodel.IsKind`
(the partitioned range fast path models the sphere test as elided).
"""

from __future__ import annotations

import numpy as np

from repro.backend import NUMPY_BACKEND, Backend
from repro.core.queues import KnnQueueBatch, RangeAccumulator


def _pair_sq_dist(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    d = a - b
    return np.einsum("ij,ij->i", d, d)


class _PairDistance:
    """Squared (ray, primitive) distances through reusable scratch.

    A shader computes distances once per traversal round; allocating
    three fresh arrays each call dominates its cost for small batches.
    This helper gathers both operands with ``np.take(..., out=)`` into
    per-instance buffers (grown geometrically, never shrunk), subtracts
    in place, and reduces with ``einsum(..., out=)`` — the identical
    float64 operations as :func:`_pair_sq_dist`, so results stay
    bit-identical (asserted in ``tests/test_core_shaders_results.py``).

    The returned distance array is a view of instance scratch, valid
    until the next call; both accumulators copy on insert. Buffers are
    per shader instance, so concurrent bundle launches (each with its
    own shader) never share scratch.
    """

    __slots__ = ("_a", "_b", "_d2", "_backend")

    def __init__(self, backend: Backend | None = None):
        self._a = np.empty((0, 3), dtype=np.float64)
        self._b = np.empty((0, 3), dtype=np.float64)
        self._d2 = np.empty(0, dtype=np.float64)
        self._backend = NUMPY_BACKEND if backend is None else backend

    def __call__(
        self,
        a: np.ndarray,
        a_ids: np.ndarray,
        b: np.ndarray,
        b_ids: np.ndarray,
    ) -> np.ndarray:
        if a.dtype != np.float64 or b.dtype != np.float64:
            return _pair_sq_dist(a[a_ids], b[b_ids])
        n = len(a_ids)
        if n > len(self._d2):
            cap = max(2 * len(self._d2), n)
            self._a = np.empty((cap, 3), dtype=np.float64)
            self._b = np.empty((cap, 3), dtype=np.float64)
            self._d2 = np.empty(cap, dtype=np.float64)
        ga = self._a[:n]
        gb = self._b[:n]
        np.take(a, a_ids, axis=0, out=ga)
        np.take(b, b_ids, axis=0, out=gb)
        np.subtract(ga, gb, out=ga)
        return self._backend.sq_dist(ga, out=self._d2[:n])


class RangeShader:
    """Range-search IS: record neighbors within r, terminate at K.

    ``sphere_test=False`` is the Section-5.1 fast path: every point
    whose AABB encloses the query is accepted without the distance
    check (valid when the AABB is inscribed in the r-sphere).
    """

    def __init__(
        self,
        points: np.ndarray,
        origins: np.ndarray,
        query_ids: np.ndarray,
        accumulator: RangeAccumulator,
        radius: float,
        sphere_test: bool = True,
        backend: Backend | None = None,
    ):
        self.points = points
        self.origins = origins
        self.query_ids = query_ids
        self.acc = accumulator
        self.r2 = float(radius) * float(radius)
        self.sphere_test = sphere_test
        self._ray_of_q = np.full(accumulator.n_queries, -1, dtype=np.int64)
        self._dist = _PairDistance(backend)

    def __call__(self, ray_ids: np.ndarray, prim_ids: np.ndarray):
        d2 = self._dist(self.origins, ray_ids, self.points, prim_ids)
        if self.sphere_test:
            keep = d2 <= self.r2
            if not keep.any():
                return None
            ray_ids, prim_ids, d2 = ray_ids[keep], prim_ids[keep], d2[keep]
        qids = self.query_ids[ray_ids]
        self._ray_of_q[qids] = ray_ids
        full_q = self.acc.insert(qids, prim_ids, d2)
        if len(full_q):
            return self._ray_of_q[full_q]
        return None


class KnnShader:
    """KNN IS: operate the bounded priority queue; never terminate early.

    Finding the K *nearest* requires visiting every enclosing AABB, so
    unlike range search there is no Any-Hit termination (Section 2.1).
    """

    def __init__(
        self,
        points: np.ndarray,
        origins: np.ndarray,
        query_ids: np.ndarray,
        queue: KnnQueueBatch,
        backend: Backend | None = None,
    ):
        self.points = points
        self.origins = origins
        self.query_ids = query_ids
        self.queue = queue
        self._dist = _PairDistance(backend)

    def __call__(self, ray_ids: np.ndarray, prim_ids: np.ndarray):
        d2 = self._dist(self.origins, ray_ids, self.points, prim_ids)
        self.queue.insert(self.query_ids[ray_ids], prim_ids, d2)
        return None

    def flat_hits(self, ray_ids: np.ndarray, prim_ids: np.ndarray) -> None:
        """Consume one traversal round's pairs in a single call.

        ``ray_ids`` is ray-major: each ray's candidates form one
        contiguous run, in leaf order (the traversal's flat gather
        produces exactly this). Distances are evaluated once for the
        whole round, candidates beyond the queue radius are dropped up
        front (the queue would drop them anyway), and the survivors are
        re-batched by *per-ray rank* — a ray's i-th surviving candidate
        goes into batch i. Each batch therefore holds at most one
        candidate per query, and every query still receives its
        candidates in the original order, so the queue passes through
        the identical sequence of states as the per-slot loop: results
        are bit-identical, with far fewer insert calls (the batch count
        is the *max* surviving candidates of any one ray, not the leaf
        size).

        Exposing this method is also the traversal's cue that the
        shader never issues Any-Hit terminations, which is what makes
        batching a whole round sound.
        """
        d2 = self._dist(self.origins, ray_ids, self.points, prim_ids)
        keep = d2 <= self.queue.r2
        if not keep.all():
            if not keep.any():
                return
            ray_ids = ray_ids[keep]
            prim_ids = prim_ids[keep]
            d2 = d2[keep]
        qids = self.query_ids[ray_ids]
        n = len(ray_ids)
        run_head = np.empty(n, dtype=bool)
        run_head[0] = True
        np.not_equal(ray_ids[1:], ray_ids[:-1], out=run_head[1:])
        if run_head.all():  # every ray kept a single candidate
            self.queue.insert(qids, prim_ids, d2)
            return
        run_starts = np.flatnonzero(run_head)
        run_lens = np.empty(len(run_starts), dtype=np.int64)
        np.subtract(run_starts[1:], run_starts[:-1], out=run_lens[:-1])
        run_lens[-1] = n - run_starts[-1]
        rank = np.arange(n, dtype=np.int64)
        rank -= np.repeat(run_starts, run_lens)
        order = rank.argsort(kind="stable")
        sorted_rank = rank[order]
        bounds = sorted_rank.searchsorted(
            np.arange(int(sorted_rank[-1]) + 2)
        )
        for a, b in zip(bounds[:-1], bounds[1:]):
            sel = order[a:b]
            self.queue.insert(qids[sel], prim_ids[sel], d2[sel])


class FirstHitShader:
    """Scheduling pre-pass IS (Listing 2, K = 1).

    Records the first leaf AABB (primitive) each ray lands in and
    terminates the ray immediately — the "truncated ray tracing" that
    makes query grouping nearly free.
    """

    def __init__(self, n_queries: int, query_ids: np.ndarray):
        self.query_ids = query_ids
        self.first_hit = np.full(n_queries, -1, dtype=np.int64)

    def __call__(self, ray_ids: np.ndarray, prim_ids: np.ndarray):
        self.first_hit[self.query_ids[ray_ids]] = prim_ids
        return ray_ids
