"""The end-to-end RTNN engine.

Orchestrates the whole paper pipeline —

  data transfer -> [grid + megacells -> partitions -> bundling]
                -> per-bundle BVH build -> [per-bundle scheduling]
                -> per-bundle search launch -> result merge

— while accounting every stage into the Fig. 12 breakdown categories
(``data``, ``opt``, ``bvh``, ``fs``, ``search``). The three
optimizations toggle independently, which is exactly the ablation of
Fig. 13 (NoOpt / Sched / +Partition / +Bundle).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, fields, replace

import numpy as np

from repro.backend import resolve_backend
from repro.core.bundling import Bundle, bundle_partitions
from repro.core.cache import GASCache, GASKey, fingerprint_array, quantize_half_width
from repro.core.expansion import (
    DEFAULT_POLICY,
    ExpansionPolicy,
    cover_radius,
    run_expansion,
    seed_radius,
)
from repro.core.parallel import BundleJob, execute_bundles, graft_spans
from repro.core.partition import compute_megacells, default_cell_size, make_partitions
from repro.core.queues import CountAccumulator, KnnQueueBatch, RangeAccumulator
from repro.core.results import RunReport, SearchResults
from repro.core.scheduling import schedule_queries
from repro.core.shaders import KnnShader, RangeShader
from repro.geometry.morton import morton_order
from repro.geometry.ray import RayBatch, DEFAULT_DIRECTION, SHORT_RAY_TMAX
from repro.gpu.costmodel import IsKind
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.obs.tracer import NULL_TRACER, RecordingTracer, Tracer
from repro.optix.gas import build_gas, refit_gas
from repro.optix.pipeline import Pipeline
from repro.utils.validate import as_points, check_positive, check_positive_int

#: modeled bytes per point shipped over PCIe (float32 x, y, z)
POINT_BYTES = 12


@dataclass(frozen=True)
class RTNNConfig:
    """Feature switches and tuning knobs of the engine.

    Attributes
    ----------
    schedule:
        Spatially-ordered query scheduling (Section 4).
    partition:
        Megacell-based query partitioning (Section 5.1).
    bundle:
        Cost-model partition bundling (Section 5.2); only meaningful
        when ``partition`` is on.
    knn_aabb:
        ``"conservative"`` (exact) or ``"equiv_volume"`` (the paper's
        density heuristic) AABB sizing for uncapped KNN partitions.
    approx_elide_sphere_test:
        Section-8 approximation: skip Step 2 everywhere; returned range
        neighbors are then only guaranteed within ``sqrt(3) * r``.
    cell_div:
        Megacell grid granularity: ~``cell_div`` growth levels fit in
        the sphere bound.
    max_grid_cells:
        Memory cap for the partitioning grid.
    cache_sim:
        Run the sampled cache simulation on every launch.
    t_max:
        Short-ray segment end (Section 3.1).
    leaf_size:
        Primitives per BVH leaf. IS-call counts are identical for any
        value (per-primitive AABB tests gate the shader); larger leaves
        trade per-node pops for in-leaf tests, like hardware wide nodes.
    aabb_shrink:
        Section-8 approximation: scale uncapped partitions' AABB widths
        below the exact requirement (< 1 trades recall for speed).
    parallel_bundles:
        Fan independent per-bundle launches out over this many worker
        threads (``None`` = serial, the default). Bundles own disjoint
        query ids and GASes are resolved serially up front, so results,
        counters, breakdown charges, and recorded spans are identical
        to serial execution — only wall time changes.
    leaf_prune:
        Leaf MBR distance pruning (on by default): skip hit leaves the
        query provably cannot accept points from, bulk-accept leaves
        provably inside the acceptance sphere. Results are bit-identical
        either way; only work counters and wall time change.
    step_budget:
        Cap on traversal node pops per ray. ``None`` (default) is the
        exact mode; a positive budget returns approximate answers with
        an explicit recall lower bound in ``report.extras["budget"]``.
        Rejected for ``true_knn`` (its termination test needs exact
        bounded rounds).
    backend:
        Hot-path kernel provider: ``"numpy"`` (reference) or
        ``"numba"`` (JIT-compiled; falls back to the reference kernels
        with a warning when numba is not installed). All backends are
        bit-identical.
    """

    schedule: bool = True
    partition: bool = True
    bundle: bool = True
    knn_aabb: str = "conservative"
    approx_elide_sphere_test: bool = False
    cell_div: int = 16
    max_grid_cells: int = 1 << 24
    cache_sim: bool = True
    t_max: float = SHORT_RAY_TMAX
    leaf_size: int = 4
    aabb_shrink: float = 1.0
    parallel_bundles: int | None = None
    leaf_prune: bool = True
    step_budget: int | None = None
    backend: str = "numpy"


#: named ablation variants of Fig. 13
VARIANTS: dict[str, RTNNConfig] = {
    "noopt": RTNNConfig(schedule=False, partition=False, bundle=False),
    "sched": RTNNConfig(schedule=True, partition=False, bundle=False),
    "sched+part": RTNNConfig(schedule=True, partition=True, bundle=False),
    "sched+part+bundle": RTNNConfig(schedule=True, partition=True, bundle=True),
}


class RTNNEngine:
    """RTNN neighbor search over a fixed point set on one device.

    A held engine amortizes structure work across searches: the GAS
    cache (:class:`~repro.core.cache.GASCache`) persists every built
    acceleration structure, so repeat batches skip the BVH builds (and
    their ``breakdown.bvh`` charge) entirely — the Fig. 12/15
    amortization the paper assumes. ``update_points`` moves the point
    set while keeping the cache warm via refits.
    """

    def __init__(
        self,
        points,
        device: DeviceSpec = RTX_2080,
        config: RTNNConfig | None = None,
        tracer: Tracer | None = None,
        cache_capacity: int | None = None,
    ):
        self.points = as_points(points, "points")
        self.device = device
        self.config = config or RTNNConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.backend = resolve_backend(self.config.backend)
        self.pipeline = Pipeline(
            device=device,
            cache_sim=self.config.cache_sim,
            tracer=self.tracer,
            prune_leaves=self.config.leaf_prune,
            backend=self.backend,
        )
        self.cost_model = self.pipeline.cost_model
        # All per-partition BVHs share the same Morton order (the AABB
        # centers are always the points); computing it once makes the
        # repeated builds cheap in the simulator too.
        self._point_order = morton_order(self.points)
        self.gas_cache = (
            GASCache() if cache_capacity is None else GASCache(cache_capacity)
        )
        self._points_fp = fingerprint_array(self.points)
        self._order_fp = fingerprint_array(self._point_order)
        # structure-update cost (refits) owed to the next run's bvh slot
        self._pending_bvh_time = 0.0
        # memoized true-kNN seed radii, keyed on (points_fp, k, policy);
        # invalidated whenever the point set moves (update_points)
        self._seed_cache: dict = {}

    def _gas_key(self, half_width: float) -> GASKey:
        return GASKey(
            points_fp=self._points_fp,
            width_bits=quantize_half_width(half_width),
            leaf_size=int(self.config.leaf_size),
            order_fp=self._order_fp,
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def range_search(
        self, queries, radius: float, k: int, budget: int | None = None
    ) -> SearchResults:
        """All neighbors within ``radius``, at most ``k`` per query.

        ``budget`` overrides ``config.step_budget`` for this call (see
        :class:`RTNNConfig`); it is per-call state, so concurrent
        callers sharing one engine cannot observe each other's budgets.
        """
        return self._run("range", queries, radius, k, budget=budget)

    def knn_search(
        self, queries, k: int, radius: float, budget: int | None = None
    ) -> SearchResults:
        """The ``k`` nearest neighbors within ``radius`` per query.

        ``budget`` overrides ``config.step_budget`` for this call.
        """
        return self._run("knn", queries, radius, k, budget=budget)

    def count_in_radius(self, queries, radius: float) -> SearchResults:
        """Exact per-query neighbor counts within ``radius``.

        The aggregate-only fast path: traversal, partitioning, and
        sphere testing are identical to :meth:`range_search`, but no
        neighbor indices or distances are materialized and rays never
        Any-Hit terminate — so ``results.counts`` is the exact
        within-radius population (never k-capped) while
        ``results.indices``/``results.sq_distances`` are zero-width.
        Counts are bit-checked against k-escalated ``range`` counts in
        the test suite. The Section-8 ``approx_elide_sphere_test``
        approximation applies exactly as it does to range search.
        """
        return self._run("count", queries, radius, 1)

    def true_knn_search(
        self,
        queries,
        k: int,
        radius: float | None = None,
        policy: ExpansionPolicy | None = None,
    ) -> SearchResults:
        """The exact ``k`` nearest neighbors per query, no radius bound.

        Runs bounded kNN rounds under a geometric radius schedule
        (*RT-kNNS Unbound*), re-launching only the queries whose row is
        still under-filled (``counts < k``). ``radius`` overrides the
        round-0 radius; by default it is seeded from the point cloud's
        grid density (:meth:`seed_radius`). A query returns
        ``counts < k`` only when the whole cloud holds fewer than ``k``
        points. Convergence telemetry (rounds, per-round radii,
        re-launched fractions) rides in
        ``results.report.extras["true_knn"]``.
        """
        return self._true_knn_groups([queries], radius, k, policy)[0]

    def seed_radius(
        self, k: int, policy: ExpansionPolicy | None = None
    ) -> float:
        """Round-0 radius of the true-kNN schedule for this point set.

        Memoized per ``(points, k, policy)``; the cache is dropped when
        ``update_points`` moves the cloud (density changes with the
        positions, and a stale seed would silently change the radius
        schedule — and with it the round-by-round telemetry — after a
        refit).
        """
        policy = policy or DEFAULT_POLICY
        key = (self._points_fp, int(k), policy)
        r0 = self._seed_cache.get(key)
        if r0 is None:
            r0 = seed_radius(self.points, k, policy)
            self._seed_cache[key] = r0
        return r0

    def search_fused(
        self,
        kind: str,
        query_groups,
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> list[SearchResults]:
        """One pipeline pass over several independent query groups.

        Coalesces compatible requests (same point set, mode, ``k`` and
        ``radius``) into a single run: the data transfer is charged
        once for the point set, scheduling runs one first-hit pass over
        the union, and every GAS is resolved through the shared
        run-local memo and persistent cache. Partitioning and bundling,
        however, are computed **per group**: each group's queries land
        in exactly the partitions and bundles a solo call would give
        them, so each returned :class:`SearchResults` is bit-identical
        (indices, counts, squared distances) to calling
        :meth:`knn_search` / :meth:`range_search` with that group
        alone. The groups share one fused :class:`RunReport` (attached
        to every result).

        ``kind="true_knn"`` runs the adaptive-radius loop over the
        fused groups: every round re-launches only the still
        unsatisfied queries of every group through one fused bounded
        pass, so the per-group solo bit-identity guarantee carries over
        round by round. For that kind ``radius`` is the round-0 radius
        and may be ``None`` (density-seeded).
        """
        if kind not in ("range", "knn", "true_knn"):
            raise ValueError(
                f"kind must be 'range', 'knn' or 'true_knn', got {kind!r}"
            )
        if kind == "true_knn":
            if budget is not None:
                raise ValueError(
                    "true_knn is incompatible with a step budget: its "
                    "termination test requires exact bounded rounds"
                )
            return self._true_knn_groups(list(query_groups), radius, k)
        return self._run_groups(
            kind, list(query_groups), radius, k, budget=budget
        )

    # ------------------------------------------------------------------
    # pipeline
    # ------------------------------------------------------------------
    def _make_bundles(self, kind, queries, radius, k, breakdown):
        cfg = self.config
        n_q = len(queries)
        # Megacell partitioning exploits the k cap (growth retires a
        # query once >= k points are guaranteed); counting has no cap,
        # so its only exact AABB is the full 2r with the sphere test —
        # every count query takes the single capped-style bundle.
        if cfg.partition and kind != "count":
            with self.tracer.span("partition", phase="partition") as sp:
                mc = compute_megacells(
                    self.points,
                    queries,
                    radius,
                    k,
                    cell_size=default_cell_size(radius, cfg.cell_div),
                    max_grid_cells=cfg.max_grid_cells,
                )
                grid_time = self.cost_model.grid_build_time(len(self.points))
                megacell_time = self.cost_model.megacell_time(
                    mc.total_growth_steps
                )
                breakdown.opt += grid_time
                breakdown.opt += megacell_time
                partitions = make_partitions(
                    mc, kind, radius, k, knn_aabb=cfg.knn_aabb,
                    shrink=cfg.aabb_shrink,
                )
                decision = bundle_partitions(
                    partitions,
                    n_points=len(self.points),
                    k=k,
                    kind=kind,
                    cost_model=self.cost_model,
                    enable=cfg.bundle,
                )
                sp.add(
                    modeled_s=grid_time + megacell_time,
                    growth_steps=int(mc.total_growth_steps),
                    partitions=decision.n_partitions,
                    bundles=len(decision.bundles),
                )
            return decision.bundles, decision.n_partitions, mc
        single = Bundle(
            query_ids=np.arange(n_q, dtype=np.int64),
            aabb_width=2.0 * radius,
            sphere_test=True,
            capped=True,
            members=[],
        )
        return [single], 1, None

    def _launch_args(self, kind, queries, bundle, global_rank, acc, radius):
        """Resolve one bundle into (launch_ids, rays, shader, is_kind)."""
        cfg = self.config
        if global_rank is not None:
            launch_ids = bundle.query_ids[
                np.argsort(global_rank[bundle.query_ids], kind="stable")
            ]
        else:
            launch_ids = bundle.query_ids
        origins = queries[launch_ids]
        rays = RayBatch(
            origins=origins,
            directions=np.broadcast_to(
                np.asarray(DEFAULT_DIRECTION), origins.shape
            ).copy(),
            t_min=0.0,
            t_max=cfg.t_max,
            query_ids=launch_ids,
        )
        if kind == "knn":
            shader = KnnShader(
                self.points, origins, launch_ids, acc, backend=self.backend
            )
            is_kind = IsKind.KNN
        else:
            sphere_test = bundle.sphere_test and not cfg.approx_elide_sphere_test
            shader = RangeShader(
                self.points, origins, launch_ids, acc, radius,
                sphere_test=sphere_test, backend=self.backend,
            )
            is_kind = IsKind.RANGE_TEST if sphere_test else IsKind.RANGE_FAST
        return launch_ids, rays, shader, is_kind

    def _run(
        self,
        kind: str,
        queries,
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> SearchResults:
        return self._run_groups(kind, [queries], radius, k, budget=budget)[0]

    def _run_groups(
        self,
        kind: str,
        groups: list,
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> list[SearchResults]:
        """Execute one pipeline pass over one or more query groups.

        With a single group this is exactly the classic ``_run`` —
        same spans, same counter and breakdown accounting (the bench
        baselines pin that). With several groups, partition/bundle
        decisions are made per group (see :meth:`search_fused`) while
        everything else — transfer, scheduling, GAS resolution, the
        launch loop, the report — runs once over the union.
        """
        groups = [as_points(g, "queries") for g in groups]
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        cfg = self.config
        if cfg.parallel_bundles is not None:
            check_positive_int(cfg.parallel_bundles, "parallel_bundles")
        step_budget = budget if budget is not None else cfg.step_budget
        if step_budget is not None:
            step_budget = check_positive_int(step_budget, "step_budget")
        sizes = [len(g) for g in groups]
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        n_q = int(offsets[-1])
        if len(groups) == 1:
            queries = groups[0]
        elif n_q:
            queries = np.concatenate([g for g in groups if len(g)])
        else:
            queries = np.empty((0, self.points.shape[1]), dtype=np.float64)

        breakdown = Breakdown()
        if self._pending_bvh_time:
            # structure updates (refits) performed since the last run
            breakdown.bvh += self._pending_bvh_time
            self._pending_bvh_time = 0.0
        with self.tracer.span("transfer", phase="data") as sp:
            n_bytes = (len(self.points) + n_q) * POINT_BYTES
            transfer_time = self.cost_model.transfer_time(n_bytes)
            breakdown.data += transfer_time
            sp.add(modeled_s=transfer_time, transfer_bytes=n_bytes)

        if kind == "knn":
            acc = KnnQueueBatch(n_q, k, radius)
        elif kind == "count":
            acc = CountAccumulator(n_q)
        else:
            acc = RangeAccumulator(n_q, k)

        bundles: list[Bundle] = []
        n_partitions = 0
        if len(groups) == 1:
            if n_q:
                bundles, n_partitions, _ = self._make_bundles(
                    kind, queries, radius, k, breakdown
                )
        else:
            # Per-group partitioning/bundling: each group gets exactly
            # the decision a solo run would, with query ids shifted
            # into the fused index space.
            for group, off in zip(groups, offsets):
                if not len(group):
                    continue
                group_bundles, group_parts, _ = self._make_bundles(
                    kind, group, radius, k, breakdown
                )
                n_partitions += group_parts
                for b in group_bundles:
                    bundles.append(
                        Bundle(
                            query_ids=b.query_ids + int(off),
                            aabb_width=b.aabb_width,
                            sphere_test=b.sphere_test,
                            capped=b.capped,
                            members=b.members,
                        )
                    )

        # One GAS per distinct (quantized) AABB width across bundles.
        # The run-local memo keeps within-run reuse free of cache
        # bookkeeping; the persistent cache serves cross-run hits.
        gases: dict[GASKey, object] = {}
        cache_hits = 0
        cache_misses = 0

        def gas_for(width: float, tracer: Tracer | None = None):
            nonlocal cache_hits, cache_misses
            key = self._gas_key(width / 2.0)
            gas = gases.get(key)
            if gas is not None:
                return gas
            gas = self.gas_cache.lookup(key)
            if gas is None:
                cache_misses += 1
                gas = build_gas(
                    self.points,
                    width / 2.0,
                    self.cost_model,
                    leaf_size=cfg.leaf_size,
                    order=self._point_order,
                    tracer=tracer if tracer is not None else self.tracer,
                )
                self.gas_cache.insert(key, gas)
                breakdown.bvh += gas.build_time
            else:
                cache_hits += 1
            gases[key] = gas
            return gas

        # Scheduling is global (Listing 2): one truncated FS launch over
        # all queries against the largest bundle's BVH and one Morton
        # sort; every bundle then launches its queries in that order.
        global_rank = None
        if cfg.schedule and n_q:
            # The widest bundle's BVH gives the cheapest first-hit
            # pass: the truncated ray terminates at its first leaf hit,
            # which arrives soonest when leaves are fat, and any
            # enclosing AABB works as a spatial hint (Section 4's
            # "loose definition of proximity").
            widest = max(bundles, key=lambda b: b.aabb_width)
            with self.tracer.span("schedule", phase="schedule") as sp:
                sched = schedule_queries(
                    self.pipeline, gas_for(widest.aabb_width), queries
                )
                breakdown.fs += sched.fs_time
                breakdown.opt += sched.sort_time
                # The FS launch's counters and cost live on its own
                # (child) launch span; this span carries only the sort.
                sp.add(modeled_s=sched.sort_time, sorted_queries=n_q)
            global_rank = np.empty(n_q, dtype=np.int64)
            global_rank[sched.order] = np.arange(n_q)

        total_is = 0
        total_steps = 0
        hit_w = 0.0
        l1_acc = 0.0
        l2_acc = 0.0
        occ_w = 0.0
        occ_acc = 0.0
        leaves_pruned = 0
        leaves_bulk = 0
        # Queries with at least one budget-truncated ray: their rows may
        # be missing neighbors, everyone else's are provably exact.
        exhausted_q = np.zeros(n_q, dtype=bool)
        launches = []

        def absorb(launch):
            """Fold one launch into the run totals (always bundle order)."""
            nonlocal total_is, total_steps, hit_w, l1_acc, l2_acc
            nonlocal occ_w, occ_acc, leaves_pruned, leaves_bulk
            leaves_pruned += launch.trace.leaves_pruned
            leaves_bulk += launch.trace.leaves_bulk_accepted
            launches.append(launch)
            breakdown.search += launch.modeled_time
            total_is += launch.trace.total_is_calls
            total_steps += launch.trace.total_steps
            tx = (
                launch.trace.node_transactions
                + launch.trace.prim_transactions
            )
            if launch.l1_hit_rate is not None and tx:
                hit_w += tx
                l1_acc += launch.l1_hit_rate * tx
                l2_acc += launch.l2_hit_rate * tx
            occ = self.cost_model.occupancy(launch.trace)
            occ_w += launch.modeled_time
            occ_acc += occ * launch.modeled_time

        workers = cfg.parallel_bundles or 0
        if workers > 1 and len(bundles) > 1:
            # Fan-out: resolve every GAS serially in bundle order (build
            # spans and breakdown.bvh charges land exactly as in serial
            # execution), then launch the bundles concurrently and merge
            # outcomes back in bundle order.
            jobs = []
            for i, bundle in enumerate(bundles):
                build_rec = RecordingTracer() if self.tracer.enabled else None
                gas = gas_for(
                    bundle.aabb_width,
                    tracer=build_rec if build_rec is not None else NULL_TRACER,
                )
                launch_ids, rays, shader, is_kind = self._launch_args(
                    kind, queries, bundle, global_rank, acc, radius
                )
                jobs.append(
                    BundleJob(
                        index=i,
                        gas=gas,
                        rays=rays,
                        shader=shader,
                        is_kind=is_kind,
                        aabb_width=float(bundle.aabb_width),
                        prelude_spans=(
                            build_rec.spans if build_rec is not None else []
                        ),
                        step_budget=step_budget,
                    )
                )
            for outcome in execute_bundles(self.pipeline, jobs, workers):
                graft_spans(self.tracer, outcome.spans)
                absorb(outcome.launch)
                if step_budget is not None:
                    be = outcome.launch.trace.budget_exhausted
                    if be is not None and be.any():
                        qids = jobs[outcome.index].rays.query_ids
                        exhausted_q[qids[be]] = True
        else:
            for i, bundle in enumerate(bundles):
                with self.tracer.span(f"bundle[{i}]", phase="traverse") as sp:
                    gas = gas_for(bundle.aabb_width)
                    launch_ids, rays, shader, is_kind = self._launch_args(
                        kind, queries, bundle, global_rank, acc, radius
                    )
                    launch = self.pipeline.launch(
                        gas, rays, shader, is_kind, step_budget=step_budget
                    )
                    # Launch counters/cost live on the child launch span.
                    sp.add(bundle_queries=len(launch_ids))
                    sp.note(aabb_width=float(bundle.aabb_width))
                    absorb(launch)
                    if step_budget is not None:
                        be = launch.trace.budget_exhausted
                        if be is not None and be.any():
                            exhausted_q[rays.query_ids[be]] = True

        if kind == "knn":
            idx, counts, d2 = acc.finalize()
        else:
            idx, counts, d2 = acc.idx, acc.count, acc.d2

        # Warm runs surface the amortization through the tracer. A cold
        # run (no hits) emits nothing, so pre-cache trace baselines stay
        # byte-identical; its misses are already visible as build spans.
        if cache_hits:
            with self.tracer.span("gas_cache", phase="build") as sp:
                sp.add(gas_cache_hits=cache_hits, gas_cache_misses=cache_misses)

        extras = {
            "launch_costs": [lc.cost.total for lc in launches],
            "aabb_widths": [b.aabb_width for b in bundles],
            "bundle_sizes": [b.n_queries for b in bundles],
            "gas_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "entries": len(self.gas_cache),
            },
            "prune": {
                "enabled": bool(cfg.leaf_prune),
                "leaves_pruned": int(leaves_pruned),
                "leaves_bulk_accepted": int(leaves_bulk),
            },
        }
        if step_budget is not None:
            n_ex = int(exhausted_q.sum())
            extras["budget"] = {
                "step_budget": int(step_budget),
                "budget_exhausted": bool(n_ex),
                "exhausted_queries": n_ex,
                "total_queries": int(n_q),
                # A query whose rays all ran to completion got the exact
                # answer; the bound counts only truncated queries wrong.
                "recall_lower_bound": (
                    1.0 if n_q == 0 else max(0.0, 1.0 - n_ex / n_q)
                ),
                "group_exhausted": [
                    int(exhausted_q[off : off + n].sum())
                    for off, n in zip(offsets, sizes)
                ],
            }
        if len(groups) > 1:
            extras["fused"] = {"n_groups": len(groups), "group_sizes": sizes}
        report = RunReport(
            breakdown=breakdown,
            is_calls=total_is,
            traversal_steps=total_steps,
            n_partitions=n_partitions,
            n_bundles=len(bundles),
            n_bvh_builds=cache_misses,
            l1_hit_rate=(l1_acc / hit_w) if hit_w else None,
            l2_hit_rate=(l2_acc / hit_w) if hit_w else None,
            sm_occupancy=(occ_acc / occ_w) if occ_w else None,
            device=self.device.name,
            extras=extras,
        )
        if len(groups) == 1:
            return [SearchResults(idx, counts, d2, report)]
        return [
            SearchResults(
                idx[off : off + n].copy(),
                counts[off : off + n].copy(),
                d2[off : off + n].copy(),
                report,
            )
            for off, n in zip(offsets, sizes)
        ]

    # ------------------------------------------------------------------
    # true kNN (adaptive radius expansion)
    # ------------------------------------------------------------------
    def _true_knn_groups(
        self,
        groups: list,
        radius: float | None,
        k: int,
        policy: ExpansionPolicy | None = None,
    ) -> list[SearchResults]:
        """Adaptive-radius exact kNN over one or more query groups.

        Round ``j`` runs one bounded kNN pass at ``r0 * growth**j``
        over only the queries still holding fewer than ``k`` neighbors,
        through the ordinary :meth:`_run_groups` machinery — so every
        re-launch reuses the partition/bundle pipeline and the GAS
        cache stays warm across rounds (round ``j+1`` rebuilds only the
        widths it has not seen). A round whose radius reaches the
        group's cover bound (joint AABB diagonal, with
        :data:`COVER_SLACK` headroom for shader rounding) is
        exhaustive: its bounded answer is exact even for queries with
        fewer than ``k`` points in the whole cloud, which terminate
        there with ``counts < k``.

        Rows finalized in different rounds are stitched into one
        result per group; all groups share one merged
        :class:`RunReport` whose ``extras["true_knn"]`` records the
        convergence trace (per-round radii, re-launch counts and
        fractions, the seed, and whether the run converged before
        ``policy.max_rounds``).
        """
        policy = policy or DEFAULT_POLICY
        if self.config.step_budget is not None:
            raise ValueError(
                "true_knn is incompatible with a step budget: the "
                "expansion loop's termination test (counts == k after "
                "an exhaustive round) requires exact bounded rounds"
            )
        groups = [as_points(g, "queries") for g in groups]
        k = check_positive_int(k, "k")
        if radius is None:
            r0 = self.seed_radius(k, policy)
        else:
            r0 = check_positive(radius, "radius")

        if sum(len(g) for g in groups) == 0:
            # Delegate to one bounded pass so the canonical empty-run
            # report tail (zero partitions/bundles, same extras shape)
            # is preserved; all results share that report.
            results = self._run_groups("knn", groups, r0, k)
            results[0].report.extras["true_knn"] = {
                "seed_radius": r0,
                "growth": policy.growth,
                "rounds": 0,
                "round_radii": [],
                "relaunched": [],
                "satisfied": [],
                "relaunched_fraction": [],
                "converged": True,
            }
            return results

        covers = [cover_radius(self.points, g) for g in groups]
        finals, rounds_info, conv = run_expansion(
            lambda subs, r: self._run_groups("knn", subs, r, k),
            groups,
            k,
            r0,
            covers,
            policy,
            self.tracer,
        )
        report = self._merge_round_reports(
            [ri["report"] for ri in rounds_info]
        )
        report.extras["true_knn"] = {
            "seed_radius": r0,
            "growth": policy.growth,
            **conv,
        }
        return [
            SearchResults(idx, cnt, d2, report)
            for idx, cnt, d2 in finals
        ]

    @staticmethod
    def _merge_round_reports(reports: list[RunReport]) -> RunReport:
        """Fold per-round fused reports into one run-level report.

        Additive fields (breakdown, IS calls, traversal steps,
        partition/bundle/build tallies, launch extras, cache hit
        tallies) sum across rounds. The transaction weights behind the
        hit-rate and occupancy averages are not retained per round, so
        multi-round reports leave them ``None``; a single-round run
        passes its report's values through unchanged.
        """
        first = reports[0]
        if len(reports) == 1:
            return first
        breakdown = Breakdown()
        launch_costs: list = []
        aabb_widths: list = []
        bundle_sizes: list = []
        hits = misses = 0
        is_calls = steps = parts = bundles = builds = 0
        pruned = bulk = 0
        for rep in reports:
            breakdown = breakdown + rep.breakdown
            is_calls += rep.is_calls
            steps += rep.traversal_steps
            parts += rep.n_partitions
            bundles += rep.n_bundles
            builds += rep.n_bvh_builds
            launch_costs.extend(rep.extras.get("launch_costs", []))
            aabb_widths.extend(rep.extras.get("aabb_widths", []))
            bundle_sizes.extend(rep.extras.get("bundle_sizes", []))
            cache = rep.extras.get("gas_cache", {})
            hits += cache.get("hits", 0)
            misses += cache.get("misses", 0)
            prune = rep.extras.get("prune", {})
            pruned += prune.get("leaves_pruned", 0)
            bulk += prune.get("leaves_bulk_accepted", 0)
        extras = {
            "launch_costs": launch_costs,
            "aabb_widths": aabb_widths,
            "bundle_sizes": bundle_sizes,
            "gas_cache": {
                "hits": hits,
                "misses": misses,
                "entries": reports[-1].extras.get("gas_cache", {}).get(
                    "entries", 0
                ),
            },
            "prune": {
                "enabled": reports[-1]
                .extras.get("prune", {})
                .get("enabled", False),
                "leaves_pruned": pruned,
                "leaves_bulk_accepted": bulk,
            },
        }
        return RunReport(
            breakdown=breakdown,
            is_calls=is_calls,
            traversal_steps=steps,
            n_partitions=parts,
            n_bundles=bundles,
            n_bvh_builds=builds,
            l1_hit_rate=None,
            l2_hit_rate=None,
            sm_occupancy=None,
            device=first.device,
            extras=extras,
        )

    # ------------------------------------------------------------------
    # structure lifecycle
    # ------------------------------------------------------------------
    def update_points(self, points) -> float:
        """Replace the point set, keeping cached structures warm.

        When the point count is unchanged every cached GAS is *refit*
        in place (:func:`repro.optix.gas.refit_gas`): bounds stay exact
        over the frozen topology, so subsequent searches remain exact
        while skipping full rebuilds. A changed count invalidates the
        cache and recomputes the Morton order. Returns the modeled
        structure-update seconds, which are also charged to the next
        run's ``bvh`` category.
        """
        pts = as_points(points, "points")
        # Seed radii are density-derived: any movement of the cloud
        # invalidates them, or a post-refit true_knn run would walk a
        # radius schedule seeded from the old positions.
        self._seed_cache.clear()
        if pts.shape == self.points.shape:
            self.points = pts
            self._points_fp = fingerprint_array(pts)
            refit_time = 0.0
            for key, gas in self.gas_cache.take_all():
                refit_time += refit_gas(
                    gas, pts, self.cost_model, tracer=self.tracer
                )
                self.gas_cache.insert(
                    replace(key, points_fp=self._points_fp), gas
                )
            self._pending_bvh_time += refit_time
            return refit_time
        self.points = pts
        self._point_order = morton_order(pts)
        self._points_fp = fingerprint_array(pts)
        self._order_fp = fingerprint_array(self._point_order)
        self.gas_cache.clear()
        return 0.0

    def with_config(self, **changes) -> "RTNNEngine":
        """A copy of this engine with config fields replaced.

        Unknown field names raise :exc:`ValueError` (with a
        nearest-match hint) rather than the bare ``TypeError`` a
        ``dataclasses.replace`` would emit — the CLI maps ``ValueError``
        to a one-line message and exit code 2, so a typo'd knob fails
        loudly instead of surfacing as a traceback.

        The copy starts with a cold GAS cache: config changes
        invalidate cached structures (``leaf_size`` feeds the build,
        and a fresh cache keeps the semantics obvious for the rest).
        """
        valid = sorted(f.name for f in fields(RTNNConfig))
        unknown = sorted(set(changes) - set(valid))
        if unknown:
            hints = []
            for name in unknown:
                close = difflib.get_close_matches(name, valid, n=1)
                hint = f" (did you mean {close[0]!r}?)" if close else ""
                hints.append(f"{name!r}{hint}")
            raise ValueError(
                "unknown config field(s): "
                + ", ".join(hints)
                + "; valid fields: "
                + ", ".join(valid)
            )
        return RTNNEngine(
            self.points,
            device=self.device,
            config=replace(self.config, **changes),
            tracer=self.tracer,
            cache_capacity=self.gas_cache.capacity,
        )
