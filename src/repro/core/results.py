"""Search results and run reports returned by the public API."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.metrics.breakdown import Breakdown


@dataclass
class RunReport:
    """Modeled-performance record of one end-to-end search.

    Attributes
    ----------
    breakdown:
        Modeled time split into the Fig. 12 categories.
    is_calls:
        Total intersection-shader calls of the actual search.
    traversal_steps:
        Total BVH node pops of the actual search.
    n_partitions:
        Partitions produced by megacell computation (1 if disabled).
    n_bundles:
        Launch groups after bundling (== n_partitions if bundling off).
    n_bvh_builds:
        Acceleration structures constructed.
    l1_hit_rate, l2_hit_rate:
        Cache hit rates of the actual search (sampled simulation), or
        ``None`` when cache simulation was disabled.
    sm_occupancy:
        Modeled achieved occupancy of the actual search.
    device:
        Device name the run was modeled on.
    extras:
        Free-form diagnostic numbers (per-launch details etc.).
    """

    breakdown: Breakdown
    is_calls: int = 0
    traversal_steps: int = 0
    n_partitions: int = 1
    n_bundles: int = 1
    n_bvh_builds: int = 1
    l1_hit_rate: float | None = None
    l2_hit_rate: float | None = None
    sm_occupancy: float | None = None
    device: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def modeled_time(self) -> float:
        return self.breakdown.total


@dataclass
class SearchResults:
    """Neighbors found for a batch of queries.

    Attributes
    ----------
    indices:
        ``(Q, K)`` int64 point indices, ``-1``-padded. KNN results are
        sorted ascending by distance; range results are in discovery
        order (a set, not a ranking).
    counts:
        ``(Q,)`` number of valid entries per row.
    sq_distances:
        ``(Q, K)`` squared distances aligned with ``indices``
        (``inf`` in padding slots).
    report:
        The modeled-performance record, or ``None`` for searchers that
        do not model hardware (e.g. the brute-force oracle).
    """

    indices: np.ndarray
    counts: np.ndarray
    sq_distances: np.ndarray
    report: RunReport | None = None

    @property
    def n_queries(self) -> int:
        return len(self.indices)

    @property
    def k(self) -> int:
        return self.indices.shape[1]

    def neighbor_sets(self) -> list[set[int]]:
        """Per-query neighbor id sets (order-insensitive comparison)."""
        return [
            set(row[:c].tolist())
            for row, c in zip(self.indices, self.counts)
        ]

    def canonical(self) -> "SearchResults":
        """Rows reordered into canonical ``(sq_distance, index)`` order.

        The canonical order is topology-independent: it depends only on
        the neighbor *set*, never on traversal or discovery order. The
        sharded serving tier emits it natively; applying it to a
        single-engine result makes the two bit-comparable (KNN results
        are already distance-sorted, so for them this is the identity
        whenever no two distinct neighbors tie exactly).
        """
        rows = np.arange(len(self.indices))[:, None]
        by_idx = np.argsort(self.indices, axis=1, kind="stable")
        idx = self.indices[rows, by_idx]
        d2 = self.sq_distances[rows, by_idx]
        by_d2 = np.argsort(d2, axis=1, kind="stable")
        return SearchResults(
            indices=idx[rows, by_d2],
            counts=self.counts.copy(),
            sq_distances=d2[rows, by_d2],
            report=self.report,
        )

    def sorted_by_distance(self) -> "SearchResults":
        """Return a copy with each row sorted ascending by distance."""
        order = np.argsort(self.sq_distances, axis=1, kind="stable")
        rows = np.arange(len(self.indices))[:, None]
        return SearchResults(
            indices=self.indices[rows, order],
            counts=self.counts.copy(),
            sq_distances=self.sq_distances[rows, order],
            report=self.report,
        )


def empty_results(n_queries: int, k: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Allocate the (indices, counts, sq_distances) triple."""
    indices = np.full((n_queries, k), -1, dtype=np.int64)
    counts = np.zeros(n_queries, dtype=np.int64)
    sq_d = np.full((n_queries, k), np.inf, dtype=np.float64)
    return indices, counts, sq_d
