"""Parallel fan-out of independent per-bundle search launches.

Partitioned search issues one launch per bundle, and bundles own
*disjoint* ``query_ids`` — RT-kNNS-style "many small independent
launches". Each launch only reads shared structures (points, GAS,
pipeline) and writes accumulator rows belonging to its own queries, so
the launches are embarrassingly parallel.

Determinism is preserved by construction:

* GASes are resolved (and their builds charged) *serially in bundle
  order* before any job starts — the fan-out never builds.
* Each job records its spans into a private
  :class:`~repro.obs.tracer.RecordingTracer`; after the pool drains,
  the caller grafts them into the shared tracer **in bundle order**, so
  the span tree is identical to serial execution.
* ``ThreadPoolExecutor.map`` returns outcomes in submission order, so
  every float accumulation (breakdown charges, hit-rate weights) runs
  in bundle order and stays bit-identical to the serial path.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs.tracer import RecordingTracer, Span, Tracer


@dataclass
class BundleJob:
    """One bundle launch, fully resolved and ready to trace.

    ``prelude_spans`` carries spans recorded while resolving the job's
    GAS (cache-miss builds); they are grafted into the job's bundle
    span ahead of the launch span, matching the serial nesting.
    """

    index: int
    gas: object
    rays: object           # RayBatch
    shader: object
    is_kind: object        # IsKind
    aabb_width: float
    prelude_spans: list[Span] = field(default_factory=list)
    step_budget: int | None = None


@dataclass
class BundleOutcome:
    """What one job produced: the launch result and its span subtree."""

    index: int
    launch: object         # optix.pipeline.LaunchResult
    spans: list[Span]


def run_bundle(pipeline, job: BundleJob) -> BundleOutcome:
    """Execute one bundle launch against a private span recorder."""
    local = RecordingTracer()
    with local.span(f"bundle[{job.index}]", phase="traverse") as sp:
        sp.children.extend(job.prelude_spans)
        launch = pipeline.launch(
            job.gas, job.rays, job.shader, job.is_kind, tracer=local,
            step_budget=job.step_budget,
        )
        sp.add(bundle_queries=len(job.rays.query_ids))
        sp.note(aabb_width=float(job.aabb_width))
    return BundleOutcome(index=job.index, launch=launch, spans=local.spans)


def execute_bundles(
    pipeline, jobs: list[BundleJob], max_workers: int
) -> list[BundleOutcome]:
    """Run every job, fanning out over a thread pool.

    Outcomes come back in job (= bundle) order regardless of completion
    order. ``max_workers <= 1`` or a single job degenerates to the
    plain serial loop.

    Failure is deterministic: when any job raises, the exception of the
    *lowest-index* failing job propagates (the same one the serial loop
    would hit first), not-yet-started jobs are cancelled, and the pool
    is fully drained before the exception leaves — no launches keep
    running behind the caller's back, regardless of which worker failed
    first in wall-clock terms.
    """
    if max_workers <= 1 or len(jobs) <= 1:
        return [run_bundle(pipeline, job) for job in jobs]
    workers = min(max_workers, len(jobs))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(run_bundle, pipeline, job) for job in jobs]
        try:
            # Collecting in submission order makes error propagation
            # deterministic: earlier jobs' results (or exceptions) are
            # always observed before later ones.
            return [f.result() for f in futures]
        except BaseException:
            for f in futures:
                f.cancel()
            raise


def graft_spans(tracer: Tracer, spans: list[Span]) -> None:
    """Splice privately recorded spans into ``tracer`` at its cursor.

    Spans land under the currently open span (or at top level), exactly
    where they would have been recorded serially. No-op for disabled
    tracers.
    """
    if not spans or not getattr(tracer, "enabled", False):
        return
    target = tracer._stack[-1].children if tracer._stack else tracer.spans
    target.extend(spans)
