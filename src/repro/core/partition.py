"""Query partitioning via megacells (Section 5.1, Fig. 10).

For each query we find the smallest box of grid cells (the *megacell*)
that either contains at least K points or has grown as large as the
r-sphere allows. Queries with the same growth level share an AABB size
and form a partition; each partition later gets its own specialized BVH.

Correctness conditions (slightly more conservative than the paper's
prose, which speaks of the sphere-inscribed cube):

* a query may sit anywhere inside its center cell, so the worst-case
  distance from the query to a corner of a level-``g`` megacell is
  ``sqrt(3) * (g + 1) * cell``. Growth to level ``g`` is allowed only
  while that bound stays within ``r``; this guarantees every point in
  the megacell is a true ``r``-neighbor *and* that the query-centered
  Chebyshev box of width ``2 * (g + 1) * cell`` — the smallest box
  guaranteed to recover every counted megacell point from any query
  position in the center cell, and therefore the uncapped range
  partitions' AABB width — is inscribed in the sphere (so range search
  may skip the sphere test — Section 5.1's "significant performance
  gain").
* queries whose megacell hits the sphere bound before reaching K points
  are *capped*: they fall back to the full ``2r`` AABB with the sphere
  test enabled, because valid neighbors may lie between the inscribed
  cube and the sphere.

Box point-counts use the grid's 3-D summed-area table, so each growth
iteration is O(active queries) regardless of megacell volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import UniformGrid
from repro.geometry.morton import morton_order

#: KNN equi-volume heuristic coefficient: w = 2 * (3/(4*pi))^(1/3) * a
EQUIV_VOLUME_COEFF = 2.0 * (3.0 / (4.0 * np.pi)) ** (1.0 / 3.0)

SQRT3 = float(np.sqrt(3.0))


@dataclass
class MegacellResult:
    """Per-query megacell description plus the growth-cost record."""

    level: np.ndarray           # (Q,) growth level g (box spans 2g+1 cells)
    capped: np.ndarray          # (Q,) True if growth hit the sphere bound
    count: np.ndarray           # (Q,) points inside the final megacell
    cell_size: float
    max_level: int              # largest level the sphere bound allows
    total_growth_steps: int     # Σ box-count evaluations (Opt cost driver)
    grid: UniformGrid

    @property
    def width(self) -> np.ndarray:
        """Megacell width per query: (2g + 1) * cell."""
        return (2 * self.level + 1) * self.cell_size


def default_cell_size(radius: float, cell_div: int = 8) -> float:
    """Cell size giving ~``cell_div`` growth levels inside the sphere bound."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    return radius / (SQRT3 * max(int(cell_div), 1))


def compute_megacells(
    points: np.ndarray,
    queries: np.ndarray,
    radius: float,
    k: int,
    cell_size: float | None = None,
    max_grid_cells: int = 1 << 22,
) -> MegacellResult:
    """Grow a megacell around every query (Fig. 10a), vectorized.

    All active queries expand one cell ring per iteration; a query
    retires when its box holds >= k points or the next ring would break
    the sphere bound.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    n_q = len(queries)
    if cell_size is None:
        cell_size = default_cell_size(radius)
    grid = UniformGrid(points, cell_size, max_cells=max_grid_cells)
    cell = grid.cell_size  # may be coarser than requested (memory cap)

    # Largest level g with sqrt(3) * (g + 1) * cell <= r.
    max_level = int(np.floor(radius / (SQRT3 * cell))) - 1

    level = np.zeros(n_q, dtype=np.int64)
    capped = np.zeros(n_q, dtype=bool)
    counts = np.zeros(n_q, dtype=np.int64)
    total_steps = 0

    if n_q == 0:
        return MegacellResult(level, capped, counts, cell, max_level, 0, grid)

    centers = grid.cell_coords(queries)
    if max_level < 0:
        # Even a single cell can poke outside the sphere: everything is
        # capped and searched with the full 2r AABB + sphere test.
        capped[:] = True
        return MegacellResult(level, capped, counts, cell, max_level, n_q, grid)

    # The worst-case corner-distance bound assumes the query sits inside
    # its center cell. A query outside the grid (clamped into a boundary
    # cell) voids that assumption, so it is capped outright.
    grid_hi = grid.lo + grid.res * grid.cell_size
    outside = np.logical_or(queries < grid.lo, queries > grid_hi).any(axis=1)
    capped[outside] = True

    active = np.flatnonzero(~outside).astype(np.int64)
    g = 0
    while len(active):
        c = grid.count_in_boxes(centers[active] - g, centers[active] + g)
        total_steps += len(active)
        counts[active] = c
        level[active] = g
        found = c >= k
        active = active[~found]
        if g + 1 > max_level:
            capped[active] = True
            break
        g += 1

    return MegacellResult(
        level=level,
        capped=capped,
        count=counts,
        cell_size=cell,
        max_level=max_level,
        total_growth_steps=total_steps,
        grid=grid,
    )


@dataclass
class Partition:
    """A group of queries sharing one specialized AABB size."""

    query_ids: np.ndarray
    aabb_width: float        # S: width of the per-point AABBs in this BVH
    megacell_width: float    # C: nominal megacell width of the partition
    capped: bool
    sphere_test: bool        # must the IS shader run the sphere test?
    density: float           # rho = K / C^3 (paper's estimate)

    @property
    def n_queries(self) -> int:
        return len(self.query_ids)


def knn_aabb_width(megacell_width: float, mode: str, level: int, cell: float) -> float:
    """AABB width for an uncapped KNN partition (Fig. 10c).

    ``equiv_volume`` is the paper's density heuristic; ``conservative``
    guarantees exactness by circumscribing the worst-case circumsphere.
    """
    if mode == "equiv_volume":
        return EQUIV_VOLUME_COEFF * megacell_width
    if mode == "conservative":
        return 2.0 * SQRT3 * (level + 1) * cell
    raise ValueError(f"unknown knn_aabb mode: {mode!r}")


def make_partitions(
    mc: MegacellResult,
    kind: str,
    radius: float,
    k: int,
    knn_aabb: str = "conservative",
    shrink: float = 1.0,
) -> list[Partition]:
    """Split queries into partitions keyed by (capped, growth level).

    ``shrink < 1`` scales the uncapped partitions' AABB widths below
    what exactness requires — the Section-8 approximate-search knob
    (fewer neighbors returned, faster search). Returned partitions are
    sorted ascending by AABB width.
    """
    if kind not in ("range", "knn"):
        raise ValueError(f"kind must be 'range' or 'knn', got {kind!r}")
    if not (0.0 < shrink <= 1.0):
        raise ValueError(f"shrink must be in (0, 1], got {shrink}")
    parts: list[Partition] = []
    cell = mc.cell_size

    uncapped = ~mc.capped
    for g in np.unique(mc.level[uncapped]):
        ids = np.flatnonzero(uncapped & (mc.level == g))
        c_width = (2 * int(g) + 1) * cell
        if kind == "range":
            # The retirement count was taken over the grid-aligned
            # megacell, whose points sit up to Chebyshev (g + 1) * cell
            # from a query anywhere in its center cell — a width of
            # 2 * (g + 1) * cell is the smallest query-centered box
            # guaranteed to recover all >= k counted points. It still
            # inscribes the r-sphere (the growth bound is exactly
            # sqrt(3) * (g + 1) * cell <= r), so the sphere-test skip
            # stays sound.
            s = 2.0 * (int(g) + 1) * cell * shrink
            test = False
        else:
            s = knn_aabb_width(c_width, knn_aabb, int(g), cell) * shrink
            test = True  # KNN always computes distances (queue)
        parts.append(
            Partition(
                query_ids=ids,
                aabb_width=float(s),
                megacell_width=float(c_width),
                capped=False,
                sphere_test=test,
                density=float(k) / float(c_width) ** 3,
            )
        )

    capped_ids = np.flatnonzero(mc.capped)
    if len(capped_ids):
        c_width = (2 * max(mc.max_level, 0) + 1) * cell
        parts.append(
            Partition(
                query_ids=capped_ids,
                aabb_width=2.0 * radius,
                megacell_width=float(c_width),
                capped=True,
                sphere_test=True,
                density=float(k) / float(c_width) ** 3,
            )
        )

    parts.sort(key=lambda p: p.aabb_width)
    return parts


@dataclass(frozen=True)
class SpatialShard:
    """One spatial shard of a point cloud.

    ``point_ids`` are **global** indices into the original point array,
    sorted ascending (so a 1-shard plan is the identity and a shard
    engine over ``points[point_ids]`` maps local index ``i`` back to
    global index ``point_ids[i]``). ``lo``/``hi`` bound the member
    points tightly; a query can only have ``r``-neighbors in this shard
    if its distance to the ``[lo, hi]`` box is at most ``r``.
    """

    shard_id: int
    point_ids: np.ndarray    # (M,) int64, ascending global indices
    lo: np.ndarray           # (d,) float64 tight lower corner
    hi: np.ndarray           # (d,) float64 tight upper corner

    @property
    def n_points(self) -> int:
        return len(self.point_ids)


def make_spatial_shards(points: np.ndarray, n_shards: int) -> list[SpatialShard]:
    """Split a point cloud into ``n_shards`` spatially coherent shards.

    Reuses the partitioning machinery's spatial-ordering primitive: the
    points are walked in Morton (Z) order — the same order the engine
    uses for its BVH builds — and cut into ``n_shards`` contiguous runs
    of near-equal size. Contiguity on the Z-curve keeps each shard
    spatially compact, so shard AABBs overlap little and boundary
    queries fan out to few shards.

    Every point lands in exactly one shard (shards partition the index
    set), empty shards never occur for ``n_shards <= len(points)``, and
    the split is deterministic for a given point array.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n_shards = int(n_shards)
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    n = len(points)
    if n == 0:
        raise ValueError("cannot shard an empty point cloud")
    n_shards = min(n_shards, n)
    order = morton_order(points)
    # Near-equal contiguous runs along the Z-curve: the first
    # ``n % n_shards`` shards take one extra point.
    bounds = np.linspace(0, n, n_shards + 1).round().astype(np.int64)
    shards: list[SpatialShard] = []
    for sid in range(n_shards):
        ids = np.sort(order[bounds[sid]:bounds[sid + 1]])
        member = points[ids]
        shards.append(
            SpatialShard(
                shard_id=sid,
                point_ids=ids,
                lo=member.min(axis=0),
                hi=member.max(axis=0),
            )
        )
    return shards
