"""2-D neighbor search (the paper's "three or lower" dimensionality).

The paper's formulation covers 2-D search as well (Fig. 10c derives the
sqrt(2)a AABB width for the planar case; Zellmann et al. use RT cores
for 2-D range search). Rather than duplicating the whole pipeline, 2-D
inputs are embedded in the z = 0 plane and searched with the 3-D
engine: Euclidean distances are preserved exactly, point-in-AABB tests
restrict to the slab containing the plane, and every optimization
(scheduling, partitioning, bundling) applies unchanged.

The embedding is exact, not approximate — a 2-D r-ball is precisely the
z = 0 slice of the 3-D r-ball.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.core.results import SearchResults
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.utils.validate import as_points


def _lift(points2d: np.ndarray) -> np.ndarray:
    out = np.zeros((len(points2d), 3), dtype=np.float64)
    out[:, :2] = points2d
    return out


class PlanarRTNN:
    """RTNN over 2-D point sets via exact planar embedding."""

    def __init__(
        self,
        points,
        device: DeviceSpec = RTX_2080,
        config: RTNNConfig | None = None,
    ):
        points = as_points(points, "points", dims=2)
        self._engine = RTNNEngine(_lift(points), device=device, config=config)
        self.points = points

    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """All 2-D neighbors within ``radius``, at most ``k`` per query."""
        queries = as_points(queries, "queries", dims=2)
        return self._engine.range_search(_lift(queries), radius, k)

    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """The ``k`` nearest 2-D neighbors within ``radius``."""
        queries = as_points(queries, "queries", dims=2)
        return self._engine.knn_search(_lift(queries), k, radius)
