"""RTNN core: neighbor search formulated as hardware ray tracing.

Public surface:

* :class:`RTNNEngine` / :class:`RTNNConfig` — the full pipeline with
  query scheduling, partitioning and bundling;
* :data:`VARIANTS` — the named ablation configurations of Fig. 13;
* the building blocks (:mod:`scheduling`, :mod:`partition`,
  :mod:`bundling`, :mod:`queues`, :mod:`shaders`) for users composing
  their own pipelines.
"""

from repro.core.engine import RTNNEngine, RTNNConfig, VARIANTS
from repro.core.results import SearchResults, RunReport
from repro.core.partition import (
    compute_megacells,
    make_partitions,
    MegacellResult,
    Partition,
    default_cell_size,
    knn_aabb_width,
    EQUIV_VOLUME_COEFF,
)
from repro.core.bundling import bundle_partitions, Bundle, BundlingDecision
from repro.core.scheduling import schedule_queries, ScheduleOutcome
from repro.core.dynamic import DynamicRTNN, FrameReport
from repro.core.planar import PlanarRTNN
from repro.core.queues import KnnQueueBatch, RangeAccumulator

__all__ = [
    "RTNNEngine",
    "RTNNConfig",
    "VARIANTS",
    "SearchResults",
    "RunReport",
    "compute_megacells",
    "make_partitions",
    "MegacellResult",
    "Partition",
    "default_cell_size",
    "knn_aabb_width",
    "EQUIV_VOLUME_COEFF",
    "bundle_partitions",
    "Bundle",
    "BundlingDecision",
    "schedule_queries",
    "ScheduleOutcome",
    "PlanarRTNN",
    "DynamicRTNN",
    "FrameReport",
    "KnnQueueBatch",
    "RangeAccumulator",
]
