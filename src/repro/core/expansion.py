"""Adaptive radius expansion for unbounded ("true") kNN.

RTNN's native kNN is radius-bounded: a query silently returns fewer
than ``k`` neighbors when the ball is too small. *RT-kNNS Unbound*
(Nagarajan et al., ICS 2023) removes the bound by launching bounded
searches under a geometric radius schedule and re-launching only the
queries that are still unsatisfied. This module holds the pieces of
that schedule shared by every searcher — the single engine, the
sharded scatter-gather topology, and the serving tier — so all of them
walk *bit-identical* radius sequences:

* :func:`seed_radius` — the round-0 radius, estimated from a coarse
  grid-density histogram of the **point set** (never the queries):
  the radius of a ball expected to hold ``oversample * k`` points at
  the cloud's median occupied-cell density. Depending only on
  ``(points, k, policy)`` is what makes solo, fused, sharded and
  served runs share one schedule, which the bit-identity tests and the
  bench baselines pin.
* :func:`cover_radius` — the per-group termination bound: the diagonal
  of the joint AABB of points and queries. A round whose radius
  reaches it has every point in range of every query, so the round's
  bounded answer *is* the exact kNN answer (``counts < k`` only when
  the whole cloud holds fewer than ``k`` points).
* :class:`ExpansionPolicy` — the knobs: an explicit round-0 override,
  the geometric growth factor, the density oversampling, and a hard
  round cap.

Everything here is host-side scalar/grid arithmetic — no pair
distances (the COST rules forbid distance math outside the shaders),
no RNG, no clocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import empty_results
from repro.geometry.grid import UniformGrid
from repro.obs.tracer import NULL_TRACER
from repro.utils.validate import as_points, check_positive, check_positive_int

#: smallest usable round-0 radius: degenerate clouds (all points
#: coincident) still need a strictly positive bounded-search radius
_MIN_SEED = 1e-12

#: relative slack applied to the cover bound before declaring a round
#: exhaustive: the shader's squared distances can round a few ulps past
#: the exact value, so requiring the radius to exceed the AABB diagonal
#: by one part in 1e9 guarantees no true neighbor is dropped at the
#: boundary, while changing the round count on no realistic schedule
#: (growth >= 2 overshoots the bound by far more per round)
COVER_SLACK = 1.0 + 1e-9


@dataclass(frozen=True)
class ExpansionPolicy:
    """Knobs of the true-kNN radius expansion schedule.

    Attributes
    ----------
    init_radius:
        Explicit round-0 radius; ``None`` (the default) derives it from
        the grid-density estimate of :func:`seed_radius`.
    growth:
        Geometric factor between rounds: round ``j`` searches at
        ``r0 * growth**j``. Must exceed 1 or the schedule never covers
        the scene.
    oversample:
        Density safety factor: the seed ball is sized to hold
        ``oversample * k`` points at the estimated density, so
        typical queries finish in round 0 and only tail queries
        (sparse regions, boundary) re-launch.
    max_rounds:
        Hard cap on rounds. The geometric schedule reaches any scene's
        cover bound in a few dozen rounds, so the cap only matters as a
        backstop; a run that hits it reports ``converged=False`` and
        returns the best bounded answer of the final round.
    max_grid_cells:
        Memory cap forwarded to the density grid.
    """

    init_radius: float | None = None
    growth: float = 2.0
    oversample: float = 2.0
    max_rounds: int = 64
    max_grid_cells: int = 1 << 22

    def __post_init__(self):
        if self.init_radius is not None:
            check_positive(self.init_radius, "init_radius")
        if not np.isfinite(self.growth) or self.growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {self.growth}")
        check_positive(self.oversample, "oversample")
        check_positive_int(self.max_rounds, "max_rounds")


#: the schedule every searcher uses unless a caller overrides it
DEFAULT_POLICY = ExpansionPolicy()


def seed_radius(points, k: int, policy: ExpansionPolicy | None = None) -> float:
    """The round-0 radius of the expansion schedule.

    A coarse uniform grid (~1 cell per point over the bounding box)
    bins the cloud; the median count over *occupied* cells estimates
    the local density ``rho`` where points actually live — far more
    robust on clustered clouds than the bounding-box average, which
    the empty space between clusters dilutes. The seed is the radius
    of a ball expected to hold ``policy.oversample * k`` points at
    that density::

        r0 = cbrt(3 * oversample * k / (4 * pi * rho))

    Deterministic in ``(points, k, policy)`` — the queries never
    participate, so every topology serving the same cloud derives the
    same schedule.
    """
    policy = policy or DEFAULT_POLICY
    k = check_positive_int(k, "k")
    if policy.init_radius is not None:
        return float(policy.init_radius)
    points = as_points(points, "points", dims=None)
    n = len(points)
    if n == 0:
        raise ValueError("cannot seed a radius from an empty point set")
    lo = points.min(axis=0)
    hi = points.max(axis=0)
    extent = np.maximum(hi - lo, _MIN_SEED)
    dims = points.shape[1]
    # ~1 point per cell on average over the bounding volume
    cell = float(np.prod(extent)) ** (1.0 / dims) / max(n, 1) ** (1.0 / dims)
    cell = max(cell, _MIN_SEED)
    if dims == 3:
        grid = UniformGrid(points, cell, max_cells=policy.max_grid_cells)
        counts = grid.cell_count
        occupied = counts[counts > 0]
        per_cell = float(np.median(occupied))
        rho = per_cell / grid.cell_size**3
        want = policy.oversample * k
        r0 = (3.0 * want / (4.0 * np.pi * rho)) ** (1.0 / 3.0)
    else:
        # 2-D clouds: area density over the bounding box (the uniform
        # grid substrate is 3-D only; 2-D inputs are rare and small).
        area = float(np.prod(extent))
        rho = n / area
        want = policy.oversample * k
        r0 = (want / (np.pi * rho)) ** 0.5
    return float(max(r0, _MIN_SEED))


def cover_radius(points, queries) -> float:
    """Radius at which a bounded search over ``points`` is exhaustive.

    The diagonal of the joint AABB of points and queries bounds every
    query-to-point distance, so a bounded kNN round at ``r >= cover``
    sees the whole cloud as candidates: its answer is the exact
    (unbounded) kNN answer, and any query still holding fewer than
    ``k`` neighbors simply lives in a cloud with fewer than ``k``
    points. ``0.0`` for empty query sets (nothing left to cover).

    No pair distances are computed — only the two AABBs (the COST
    rules keep distance math inside the shaders).
    """
    points = np.asarray(points, dtype=np.float64)
    queries = np.asarray(queries, dtype=np.float64)
    if len(queries) == 0 or len(points) == 0:
        return 0.0
    lo = np.minimum(points.min(axis=0), queries.min(axis=0))
    hi = np.maximum(points.max(axis=0), queries.max(axis=0))
    span = hi - lo
    return float(np.sqrt(np.sum(span * span)))


def run_expansion(
    bounded_pass,
    groups: list,
    k: int,
    r0: float,
    covers: list,
    policy: ExpansionPolicy | None = None,
    tracer=None,
):
    """Drive the shared adaptive-expansion loop over query groups.

    Round ``j`` calls ``bounded_pass(subs, r0 * growth**j)`` with the
    still-unsatisfied queries of every live group (``subs`` is one
    array per live group, in group order) and folds the rows that
    finished — ``counts >= k``, or any row once the radius clears the
    group's cover bound (times :data:`COVER_SLACK`) — into the final
    per-group result triples. Both the single engine and the sharded
    scatter-gather topology run *this* loop with their own bounded
    searcher; since a bounded pass is bit-identical across the two, the
    round structure (and therefore every per-round radius and re-launch
    set) is too.

    Each round is wrapped in a ``true_knn.round[j]`` span with phase
    ``"expand"`` carrying the integer convergence counters
    (``true_knn_rounds`` / ``relaunched_queries`` /
    ``satisfied_queries``) and the round radius as a note.

    Returns ``(finals, rounds_info, convergence)``: per-group
    ``(indices, counts, sq_distances)`` triples; one record per round
    with the round's shared report, the live global group indices, and
    the launch tallies; and the convergence telemetry dict destined for
    ``extras["true_knn"]``.
    """
    policy = policy or DEFAULT_POLICY
    tracer = tracer if tracer is not None else NULL_TRACER
    sizes = [len(g) for g in groups]
    n_total = sum(sizes)
    finals = [empty_results(n, k) for n in sizes]
    active = [np.arange(n, dtype=np.int64) for n in sizes]
    slacked = [c * COVER_SLACK for c in covers]
    rounds_info: list[dict] = []
    forced = False
    rounds = 0
    while rounds < policy.max_rounds:
        live = [gi for gi in range(len(groups)) if len(active[gi])]
        if not live:
            break
        last = rounds == policy.max_rounds - 1
        r = r0 * policy.growth**rounds
        subs = [groups[gi][active[gi]] for gi in live]
        n_launched = int(sum(len(s) for s in subs))
        with tracer.span(f"true_knn.round[{rounds}]", phase="expand") as sp:
            round_res = bounded_pass(subs, r)
            n_done = 0
            for sub_i, gi in enumerate(live):
                res = round_res[sub_i]
                rows = active[gi]
                if r >= slacked[gi]:
                    # exhaustive: every point was a candidate, so the
                    # bounded answer is the exact answer even for
                    # under-filled rows
                    done = np.ones(len(rows), dtype=bool)
                elif last:
                    # round budget exhausted: flush the best bounded
                    # answer and report non-convergence
                    done = np.ones(len(rows), dtype=bool)
                    forced = forced or bool((res.counts < k).any())
                else:
                    done = res.counts >= k
                take = rows[done]
                idx, cnt, d2 = finals[gi]
                idx[take] = res.indices[done]
                cnt[take] = res.counts[done]
                d2[take] = res.sq_distances[done]
                active[gi] = rows[~done]
                n_done += int(done.sum())
            sp.add(
                true_knn_rounds=1,
                relaunched_queries=n_launched,
                satisfied_queries=n_done,
            )
            sp.note(radius=float(r))
        rounds_info.append(
            {
                "report": round_res[0].report,
                "live": live,
                "radius": float(r),
                "relaunched": n_launched,
                "satisfied": n_done,
            }
        )
        rounds += 1
    convergence = {
        "rounds": rounds,
        "round_radii": [ri["radius"] for ri in rounds_info],
        "relaunched": [ri["relaunched"] for ri in rounds_info],
        "satisfied": [ri["satisfied"] for ri in rounds_info],
        "relaunched_fraction": [
            (ri["relaunched"] / n_total) if n_total else 0.0
            for ri in rounds_info
        ],
        "converged": not forced,
    }
    return finals, rounds_info, convergence
