"""Partition bundling (Section 5.2, Appendices A & C).

Each partition needs its own BVH; when a partition is small, the build
cost outweighs the traversal savings, so partitions should be merged
("bundled"). The paper's cost model:

* ``T_build = k1 * M``               (Eq. 3; M = AABBs per BVH)
* KNN:   ``T_search = k2 * N * rho * S^3``  (Eq. 4; rho ≈ K / C^3)
* range: ``T_search = k3 * N * K``          (Eq. 6; k3 depends on
  whether the sphere test runs — Appendix A)

The ``k`` constants are obtained by "offline profiling" — here by
asking the simulated device's cost model directly, which mirrors the
paper's profiling-based calibration and keeps the optimizer honest with
respect to whatever constants the substrate uses.

Optimal strategy (Appendix C theorem): with partitions sorted ascending
by query count, the best ``M_o``-bundle strategy keeps the ``M_o - 1``
partitions with the *most* queries unbundled and merges the rest into
one bundle (whose AABB width is the max over its members). Scanning all
``M_o`` is linear time. (The paper's prose description of the scan
direction conflicts with its own theorem; we implement the theorem.)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.partition import Partition
from repro.gpu.costmodel import CostModel, IsKind


@dataclass
class Bundle:
    """One launch group: queries searched against one shared BVH."""

    query_ids: np.ndarray
    aabb_width: float
    sphere_test: bool
    capped: bool
    members: list[Partition] = field(default_factory=list)

    @property
    def n_queries(self) -> int:
        return len(self.query_ids)


@dataclass
class BundlingDecision:
    """Chosen strategy plus the cost estimates that justified it."""

    bundles: list[Bundle]
    n_partitions: int
    predicted_costs: list[float]   # predicted total cost per M_o (1-based)
    chosen_m: int


def _search_cost(
    p: Partition,
    width: float,
    sphere_test: bool,
    kind: str,
    k: int,
    cm: CostModel,
    n_points: int,
) -> float:
    """Paper cost model for one partition launched at ``width``.

    The per-query IS-call estimate ``rho * S^3`` (Eq. 4) extrapolates
    the megacell-local density to the whole AABB; for a dense-spot
    query merged into a wide bundle that extrapolation can exceed the
    entire point set, so it is capped at ``n_points`` (a query cannot
    trigger more IS calls than there are primitives).
    """
    n = p.n_queries
    if kind == "knn":
        k2 = cm.is_cost_per_call(IsKind.KNN)
        per_query = min(p.density * width**3, float(n_points))
        return k2 * n * per_query
    # Range search terminates once K sphere hits are recorded, but on
    # the sphere-testing path the AABB (a cube circumscribing the
    # sphere) also triggers IS calls for the false-positive shell —
    # cube/sphere volume ratio 6/pi more calls per query.
    if sphere_test:
        k3 = cm.is_cost_per_call(IsKind.RANGE_TEST)
        calls = k * (6.0 / np.pi)
    else:
        k3 = cm.is_cost_per_call(IsKind.RANGE_FAST)
        calls = float(k)
    return k3 * n * calls


def _merge(parts: list[Partition]) -> Bundle:
    width = max(p.aabb_width for p in parts)
    sphere_test = any(p.sphere_test for p in parts)
    capped = any(p.capped for p in parts)
    ids = np.concatenate([p.query_ids for p in parts])
    return Bundle(
        query_ids=ids,
        aabb_width=width,
        sphere_test=sphere_test,
        capped=capped,
        members=list(parts),
    )


def bundle_partitions(
    partitions: list[Partition],
    n_points: int,
    k: int,
    kind: str,
    cost_model: CostModel,
    enable: bool = True,
) -> BundlingDecision:
    """Choose the launch grouping minimizing modeled total time.

    With ``enable=False`` every partition becomes its own bundle
    (Listing 3's default strategy).
    """
    if not partitions:
        raise ValueError("bundle_partitions needs at least one partition")
    m = len(partitions)
    if not enable or m == 1:
        bundles = [_merge([p]) for p in partitions]
        return BundlingDecision(
            bundles=bundles, n_partitions=m, predicted_costs=[], chosen_m=m
        )

    k1 = cost_model.build_cost_per_aabb()
    build_one = k1 * n_points

    # The theorem sorts by query count; under the Fig. 16 inverse
    # correlation that equals sorting by AABB width (Fig. 17 merges the
    # *widest* partitions). We sort by width, which stays robust when
    # the correlation is imperfect (e.g. a tiny ultra-dense partition
    # with few queries must not be dragged into a wide bundle, where
    # the Eq.-4 density extrapolation would explode its search cost).
    by_width = sorted(partitions, key=lambda p: p.aabb_width)
    costs: list[float] = []
    for m_o in range(1, m + 1):
        singles = by_width[: m_o - 1]
        merged = by_width[m_o - 1 :]
        width = max(p.aabb_width for p in merged)
        test = any(p.sphere_test for p in merged)
        total = m_o * build_one
        total += sum(
            _search_cost(p, width, test, kind, k, cost_model, n_points)
            for p in merged
        )
        total += sum(
            _search_cost(p, p.aabb_width, p.sphere_test, kind, k, cost_model, n_points)
            for p in singles
        )
        costs.append(total)

    chosen = int(np.argmin(costs)) + 1
    singles = by_width[: chosen - 1]
    merged = by_width[chosen - 1 :]
    bundles = [_merge(merged)] + [_merge([p]) for p in singles]
    bundles.sort(key=lambda b: b.aabb_width)
    return BundlingDecision(
        bundles=bundles,
        n_partitions=m,
        predicted_costs=costs,
        chosen_m=chosen,
    )


def _set_partitions(items: list):
    """Yield every partition of ``items`` into non-empty groups."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for smaller in _set_partitions(rest):
        for i in range(len(smaller)):
            yield smaller[:i] + [[first] + smaller[i]] + smaller[i + 1 :]
        yield [[first]] + smaller


def exhaustive_bundle(
    partitions: list[Partition],
    n_points: int,
    k: int,
    kind: str,
    cost_model: CostModel,
) -> tuple[list[Bundle], float]:
    """True optimal bundling by enumerating *every* grouping.

    Exponential (Bell number) — usable only for small partition counts;
    exists to validate that the Appendix-C linear-scan strategy lands on
    (or near) the optimum under the paper's cost model. Returns the best
    grouping and its predicted cost.
    """
    if not partitions:
        raise ValueError("exhaustive_bundle needs at least one partition")
    if len(partitions) > 10:
        raise ValueError("exhaustive enumeration is limited to <= 10 partitions")
    k1 = cost_model.build_cost_per_aabb()
    best_cost = np.inf
    best_groups: list[list[Partition]] = [list(partitions)]
    for grouping in _set_partitions(list(range(len(partitions)))):
        total = len(grouping) * k1 * n_points
        for group in grouping:
            members = [partitions[i] for i in group]
            width = max(p.aabb_width for p in members)
            test = any(p.sphere_test for p in members)
            total += sum(
                _search_cost(p, width, test, kind, k, cost_model, n_points)
                for p in members
            )
        if total < best_cost:
            best_cost = total
            best_groups = [[partitions[i] for i in g] for g in grouping]
    bundles = [_merge(g) for g in best_groups]
    bundles.sort(key=lambda b: b.aabb_width)
    return bundles, float(best_cost)
