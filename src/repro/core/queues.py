"""Vectorized per-query neighbor accumulators.

Three flavors, matching the paper's two search types plus the
aggregate-only count query built on top of them:

* :class:`KnnQueueBatch` — a bounded priority queue per query (the KNN
  IS shader "operates a priority queue"); keeps the K smallest
  distances seen, radius-bounded.
* :class:`RangeAccumulator` — an append-only bounded list per query
  (range search records any neighbor within r until K are found, then
  terminates the ray via Any-Hit).
* :class:`CountAccumulator` — a bare tally per query (aggregate-only
  ``count_in_radius``): no neighbor indices or distances are ever
  materialized, and no ray terminates early, so counts are exact and
  never k-capped.

Both process *batches* of (query, candidate) pairs; within one batch a
query may appear at most once (the lockstep traversal guarantees this:
one IS call per ray per iteration), which keeps all updates free of
scatter conflicts.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import empty_results


class KnnQueueBatch:
    """K-bounded max-queues over squared distance, one per query."""

    def __init__(self, n_queries: int, k: int, radius: float):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n_queries = n_queries
        self.k = int(k)
        self.r2 = float(radius) * float(radius)
        self.idx, self.count, self.d2 = empty_results(n_queries, self.k)
        # Worst (largest) distance currently held; only meaningful once a
        # queue is full, +inf until then so any candidate is accepted.
        self.worst = np.full(n_queries, np.inf, dtype=np.float64)

    def insert(self, qids: np.ndarray, pids: np.ndarray, d2: np.ndarray) -> None:
        """Offer one candidate per (unique) query id.

        Candidates beyond the radius bound or not improving a full queue
        are dropped; otherwise they displace the current worst entry.
        """
        keep = d2 <= self.r2
        if not keep.all():  # callers that pre-filter skip three copies
            if not keep.any():
                return
            qids = qids[keep]
            pids = pids[keep]
            d2 = d2[keep]

        counts = self.count[qids]
        not_full = counts < self.k
        if not_full.all():  # filling phase: every offered queue has room
            self.idx[qids, counts] = pids
            self.d2[qids, counts] = d2
            self.count[qids] = counts + 1
            newly_full = qids[counts + 1 == self.k]
            if len(newly_full):
                self.worst[newly_full] = self.d2[newly_full].max(axis=1)
            return
        if not_full.any():
            q = qids[not_full]
            slots = counts[not_full]
            self.idx[q, slots] = pids[not_full]
            self.d2[q, slots] = d2[not_full]
            self.count[q] = slots + 1
            newly_full = q[slots + 1 == self.k]
            if len(newly_full):
                self.worst[newly_full] = self.d2[newly_full].max(axis=1)

        improving = (~not_full) & (d2 < self.worst[qids])
        if improving.any():
            q = qids[improving]
            d2_new = d2[improving]
            rows = self.d2[q]  # one gathered copy serves argmax and max
            victim = rows.argmax(axis=1)
            arange = np.arange(len(q))
            rows[arange, victim] = d2_new
            self.idx[q, victim] = pids[improving]
            self.d2[q, victim] = d2_new
            self.worst[q] = rows.max(axis=1)

    def finalize(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (indices, counts, sq_distances) sorted by distance."""
        order = np.argsort(self.d2, axis=1, kind="stable")
        rows = np.arange(self.n_queries)[:, None]
        return self.idx[rows, order], self.count.copy(), self.d2[rows, order]


class RangeAccumulator:
    """Append-only bounded neighbor lists, one per query.

    Radius filtering is the *shader's* job (it may be elided on the
    partitioned fast path); the accumulator stores whatever it is
    offered.
    """

    def __init__(self, n_queries: int, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.n_queries = n_queries
        self.k = int(k)
        self.idx, self.count, self.d2 = empty_results(n_queries, self.k)

    def insert(self, qids: np.ndarray, pids: np.ndarray, d2: np.ndarray) -> np.ndarray:
        """Offer one candidate per (unique) query id.

        Returns the query ids whose lists just filled up — their rays
        should terminate (Any-Hit).
        """
        if len(qids) == 0:
            return qids
        counts = self.count[qids]
        open_slot = counts < self.k
        q = qids[open_slot]
        slots = counts[open_slot]
        self.idx[q, slots] = pids[open_slot]
        self.d2[q, slots] = d2[open_slot]
        self.count[q] = slots + 1
        return q[slots + 1 == self.k]


class CountAccumulator:
    """Aggregate-only tallies, one per query (``count_in_radius``).

    Shares the :class:`RangeAccumulator` insert protocol so the range
    IS shader drives it unchanged: radius filtering stays the shader's
    job, but nothing is materialized — ``idx``/``d2`` are zero-width
    and ``insert`` only bumps the tally. It never reports a full query,
    so no ray Any-Hit terminates and the final counts are the *exact*
    within-radius population (range counts saturate at ``k``).
    """

    def __init__(self, n_queries: int):
        self.n_queries = n_queries
        self.k = 0
        self.idx, self.count, self.d2 = empty_results(n_queries, 0)
        self._no_full = np.empty(0, dtype=np.int64)

    def insert(self, qids: np.ndarray, pids: np.ndarray, d2: np.ndarray) -> np.ndarray:
        """Tally one candidate per (unique) query id; terminate nothing."""
        if len(qids):
            np.add.at(self.count, qids, 1)
        return self._no_full
