"""Persistent, content-addressed GAS cache — the engine's warm path.

RTNN amortizes BVH construction across query batches: the Fig. 12/15
breakdown assumes the GAS is built once and reused, and the paper's
speedups on repeated batches only materialize if a held engine does
not rebuild every structure per call. A GAS depends on exactly four
inputs — the point set, the primitive AABB half-width, the leaf size,
and the primitive (Morton) order — none of which change between
searches on a held :class:`~repro.core.engine.RTNNEngine`. The cache
keys on that content:

* ``points_fp`` / ``order_fp`` — SHA-1 fingerprints of the arrays
  (content-addressed: two engines over equal points share keys);
* ``width_bits`` — the half-width's float64 bit pattern with the low
  :data:`WIDTH_DROP_BITS` mantissa bits truncated, so widths that
  differ only in last-bit float noise (e.g. from partition growth
  math) resolve to one entry instead of duplicate builds;
* ``leaf_size`` — the build-time leaves-per-node knob.

Capacity is LRU-bounded: a lookup refreshes recency, an insert beyond
capacity evicts the least-recently-used entry. :class:`CacheStats`
counts hits/misses/evictions cumulatively; the engine additionally
reports per-run tallies through the observability tracer.

The cache is thread-safe: a single lock guards every entry/LRU/stats
mutation, because a held engine is now reachable concurrently from the
:mod:`repro.serve` worker thread and direct callers. Individual
operations are atomic; the engine's lookup-then-insert on a miss is
*not* one atomic action, so two racing threads may both build the same
GAS — both builds are identical and the second insert just refreshes
the entry, costing a duplicate build but never corrupting state.

This module is host-side bookkeeping only: nothing here traverses,
intersects, or computes distances. The modeled build cost of a *miss*
is charged by the caller when it builds; a *hit* is the amortization
the paper assumes and costs nothing — which is the point.
"""

from __future__ import annotations

import hashlib
import struct
import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

#: low float64-mantissa bits truncated by :func:`quantize_half_width`.
#: 8 bits tolerate ~256 ULPs of noise — a relative slack of ~6e-14,
#: far below any geometric significance — while keeping genuinely
#: different widths (distinct partition levels) apart.
WIDTH_DROP_BITS = 8

#: default LRU capacity; one entry per distinct bundle AABB width, so
#: this comfortably covers every width a partitioned run produces.
DEFAULT_CAPACITY = 32


def fingerprint_array(arr) -> str:
    """A content fingerprint of ``arr`` (dtype, shape, and bytes)."""
    a = np.ascontiguousarray(arr)
    h = hashlib.sha1()
    h.update(str(a.dtype).encode())
    h.update(str(a.shape).encode())
    h.update(a.tobytes())
    return h.hexdigest()


def quantize_half_width(half_width: float, drop_bits: int = WIDTH_DROP_BITS) -> int:
    """The half-width's float64 bits with the low mantissa bits dropped.

    Truncation buckets the real line into runs of ``2**drop_bits``
    adjacent floats: two widths within 1 ULP of each other land in the
    same bucket unless they straddle a bucket boundary (a 1-in-256
    coincidence at the default), while widths from different partition
    growth levels — separated by many orders of magnitude more — never
    collide.
    """
    (bits,) = struct.unpack("<q", struct.pack("<d", float(half_width)))
    return bits >> drop_bits


@dataclass(frozen=True)
class GASKey:
    """Content address of one acceleration structure."""

    points_fp: str
    width_bits: int
    leaf_size: int
    order_fp: str


@dataclass
class CacheStats:
    """Cumulative cache activity (never reset by ``clear``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


@dataclass
class GASCache:
    """LRU-bounded mapping of :class:`GASKey` to built GAS objects."""

    capacity: int = DEFAULT_CAPACITY
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        self._entries: OrderedDict[GASKey, object] = OrderedDict()
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    def lookup(self, key: GASKey):
        """The cached GAS for ``key`` or ``None``; counts hit/miss."""
        with self._lock:
            gas = self._entries.get(key)
            if gas is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return gas

    def insert(self, key: GASKey, gas) -> None:
        """Add (or refresh) an entry, evicting LRU past capacity."""
        with self._lock:
            self._entries[key] = gas
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def take_all(self) -> list[tuple[GASKey, object]]:
        """Remove and return every entry, LRU-first (for re-keying
        after an in-place point update)."""
        with self._lock:
            out = list(self._entries.items())
            self._entries.clear()
            return out

    def clear(self) -> None:
        """Invalidate every entry (stats stay cumulative)."""
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: GASKey) -> bool:
        with self._lock:
            return key in self._entries
