"""Spatially-ordered query scheduling (Section 4, Listing 2).

Direct query-to-ray mapping follows input order, which can be
arbitrary, producing incoherent warps. The fix is a two-step pre-pass:

1. trace the queries with ``K = 1`` and a first-hit shader that records
   the first enclosing leaf AABB of each query, terminating each ray at
   its first IS call (cheap: one IS call per ray, truncated traversal);
2. sort queries by the Morton code of that AABB's center (the search
   point itself), so queries sharing or neighboring a leaf become
   adjacent rays.

Queries that hit nothing (no enclosing AABB anywhere) are appended at
the end, ordered by the Morton code of their own position — they miss
quickly either way, and this keeps even the miss tail coherent.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.shaders import FirstHitShader
from repro.geometry.morton import morton_encode_3d
from repro.geometry.ray import short_rays_from_queries
from repro.gpu.costmodel import IsKind
from repro.optix.gas import GeometryAS
from repro.optix.pipeline import LaunchResult, Pipeline


@dataclass
class ScheduleOutcome:
    """Result of the scheduling pre-pass."""

    order: np.ndarray          # permutation: launch position -> query index
    first_hit: np.ndarray      # (Q,) first-hit primitive id per query, -1 = miss
    fs_launch: LaunchResult    # hardware record of the first search
    fs_time: float             # modeled time of the first search
    sort_time: float           # modeled time of the Morton sort kernel


def schedule_queries(
    pipeline: Pipeline,
    gas: GeometryAS,
    queries: np.ndarray,
    query_ids: np.ndarray | None = None,
) -> ScheduleOutcome:
    """Compute the spatially-ordered query permutation.

    ``query_ids`` restricts scheduling to a subset of queries (used per
    partition); the returned ``order`` then permutes that subset.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if query_ids is None:
        query_ids = np.arange(len(queries), dtype=np.int64)
    sub = queries[query_ids]

    rays = short_rays_from_queries(sub)
    shader = FirstHitShader(n_queries=len(sub), query_ids=np.arange(len(sub)))
    launch = pipeline.launch(gas, rays, shader, IsKind.FIRST_HIT)

    first_hit = shader.first_hit
    lo = gas.points.min(axis=0)
    hi = gas.points.max(axis=0)
    # Key by the first-hit AABB center (== its search point); misses key
    # by their own position and sort after all hits.
    key_points = np.where(
        (first_hit >= 0)[:, None], gas.points[np.clip(first_hit, 0, None)], sub
    )
    codes = morton_encode_3d(key_points, lo=np.minimum(lo, sub.min(axis=0)),
                             hi=np.maximum(hi, sub.max(axis=0)))
    miss = first_hit < 0
    # Stable sort on (miss, code): hits first in Morton order, then misses.
    order = np.lexsort((codes, miss.astype(np.uint8)))

    sort_time = pipeline.cost_model.sort_time(len(sub))
    return ScheduleOutcome(
        order=order.astype(np.int64),
        first_hit=first_hit,
        fs_launch=launch,
        fs_time=launch.modeled_time,
        sort_time=sort_time,
    )
