"""Dynamic neighbor search for streaming point sets (SPH, LiDAR).

Per-frame workloads move every point a little each step. Rebuilding the
BVH costs ``k1 * M`` per frame; *refitting* (updating bounds over the
frozen topology — OptiX's acceleration-structure update) costs a
fraction of that, at the price of gradually decaying tree quality as
points drift from their build-time Morton order.

:class:`DynamicRTNN` implements the standard refit-with-rebuild-policy
loop on top of the unpartitioned RTNN formulation (fixed AABB width
2r — the natural choice when the radius is a simulation constant):

* ``update(points)`` refits by default, and rebuilds when either the
  SAH cost has degraded past ``quality_factor`` x the build-time cost
  or ``rebuild_every`` frames have passed;
* searches launch against the current structure, with optional query
  scheduling, exactly like the static engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh import refit_bvh, tree_stats
from repro.core.queues import KnnQueueBatch, RangeAccumulator
from repro.core.results import RunReport, SearchResults
from repro.core.scheduling import schedule_queries
from repro.core.shaders import KnnShader, RangeShader
from repro.geometry.aabb import aabbs_from_points
from repro.geometry.ray import DEFAULT_DIRECTION, RayBatch
from repro.gpu.costmodel import BUILD_CYCLES_PER_AABB, IsKind
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.optix.gas import REFIT_COST_FRACTION, GeometryAS, build_gas
from repro.optix.pipeline import Pipeline
from repro.utils.validate import as_points, check_positive, check_positive_int


@dataclass
class FrameReport:
    """What one ``update`` call did and what it cost (modeled)."""

    rebuilt: bool
    structure_time: float     # modeled refit or rebuild time
    sah_cost: float
    frames_since_rebuild: int


class DynamicRTNN:
    """Refit-based RTNN over a moving point set with a fixed radius."""

    def __init__(
        self,
        points,
        radius: float,
        device: DeviceSpec = RTX_2080,
        schedule: bool = True,
        leaf_size: int = 4,
        cache_sim: bool = False,
        rebuild_every: int = 8,
        quality_factor: float = 2.0,
    ):
        self.radius = check_positive(radius, "radius")
        self.device = device
        self.schedule = schedule
        self.leaf_size = check_positive_int(leaf_size, "leaf_size")
        self.rebuild_every = check_positive_int(rebuild_every, "rebuild_every")
        self.quality_factor = check_positive(quality_factor, "quality_factor")
        self.pipeline = Pipeline(device=device, cache_sim=cache_sim)
        self.cost_model = self.pipeline.cost_model
        self._frames_since_rebuild = 0
        self._rebuild(as_points(points, "points"))

    # ------------------------------------------------------------------
    def _rebuild(self, points: np.ndarray) -> float:
        self.points = points
        self.gas = build_gas(
            points, self.radius, self.cost_model, leaf_size=self.leaf_size
        )
        self._base_sah = tree_stats(self.gas.bvh).sah_cost
        self._frames_since_rebuild = 0
        return self.gas.build_time

    def refit_time(self) -> float:
        """Modeled cost of one hardware AS update."""
        return self.cost_model.sm_time(
            float(len(self.points)), BUILD_CYCLES_PER_AABB * REFIT_COST_FRACTION
        )

    def update(self, points) -> FrameReport:
        """Advance to a new frame of (moved) points.

        The point count must stay fixed for a refit; a changed count
        forces a rebuild.
        """
        points = as_points(points, "points")
        force = len(points) != len(self.points)
        self._frames_since_rebuild += 1

        if not force:
            lo, hi = aabbs_from_points(points, self.radius)
            refit_bvh(self.gas.bvh, lo, hi)
            self.points = points
            self.gas = GeometryAS(
                bvh=self.gas.bvh,
                points=points,
                half_width=self.radius,
                build_time=self.gas.build_time,
            )
            sah = tree_stats(self.gas.bvh).sah_cost
            degraded = sah > self.quality_factor * self._base_sah
            due = self._frames_since_rebuild >= self.rebuild_every
            if not (degraded or due):
                return FrameReport(
                    rebuilt=False,
                    structure_time=self.refit_time(),
                    sah_cost=sah,
                    frames_since_rebuild=self._frames_since_rebuild,
                )

        t = self._rebuild(points)
        return FrameReport(
            rebuilt=True,
            structure_time=t,
            sah_cost=self._base_sah,
            frames_since_rebuild=0,
        )

    # ------------------------------------------------------------------
    def _launch(self, kind: str, queries, k: int):
        queries = as_points(queries, "queries")
        n_q = len(queries)
        breakdown = Breakdown()

        if self.schedule and n_q:
            sched = schedule_queries(self.pipeline, self.gas, queries)
            breakdown.fs += sched.fs_time
            breakdown.opt += sched.sort_time
            launch_ids = sched.order
        else:
            launch_ids = np.arange(n_q, dtype=np.int64)

        origins = queries[launch_ids]
        rays = RayBatch(
            origins,
            np.broadcast_to(np.asarray(DEFAULT_DIRECTION), origins.shape).copy(),
            query_ids=launch_ids,
        )
        if kind == "knn":
            acc = KnnQueueBatch(n_q, k, self.radius)
            shader = KnnShader(self.points, origins, launch_ids, acc)
            is_kind = IsKind.KNN
        else:
            acc = RangeAccumulator(n_q, k)
            shader = RangeShader(
                self.points, origins, launch_ids, acc, self.radius
            )
            is_kind = IsKind.RANGE_TEST
        launch = self.pipeline.launch(self.gas, rays, shader, is_kind)
        breakdown.search += launch.modeled_time

        if kind == "knn":
            idx, counts, d2 = acc.finalize()
        else:
            idx, counts, d2 = acc.idx, acc.count, acc.d2
        report = RunReport(
            breakdown=breakdown,
            is_calls=launch.trace.total_is_calls,
            traversal_steps=launch.trace.total_steps,
            device=self.device.name,
        )
        return SearchResults(idx, counts, d2, report)

    def knn_search(self, queries, k: int) -> SearchResults:
        """The ``k`` nearest neighbors within the fixed radius."""
        return self._launch("knn", queries, check_positive_int(k, "k"))

    def range_search(self, queries, k: int) -> SearchResults:
        """Up to ``k`` neighbors within the fixed radius."""
        return self._launch("range", queries, check_positive_int(k, "k"))
