"""Command-line interface.

Subcommands::

    repro search      --dataset KITTI-12M --mode knn -k 8        # or --points file.ply
    repro serve       --dataset uniform-1M --rps 200 --duration 2  # micro-batching service
    repro serve       --dataset uniform-1M --shards 4 --shard-smoke  # sharded scale gate
    repro workload    --check                                    # workloads smoke gate
    repro workload    --dataset uniform-1M --workload dbscan -r 0.05  # downstream pipeline
    repro trace       --dataset uniform-1M --scale 0.01          # span tree + counters
    repro datasets    [--generate NAME --out cloud.ply]
    repro experiments [--only fig11] [--scale 0.25]
    repro analyze     [paths...] [--format json]    # static analysis

Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.datasets import DATASETS, load, read_ply, read_xyz, write_ply
from repro.gpu.device import KNOWN_DEVICES, RTX_2080


def _cli_error(msg: str) -> SystemExit:
    """One-line usage error: print to stderr, exit with code 2."""
    print(f"repro: error: {msg}", file=sys.stderr)
    return SystemExit(2)


def _load_points(arg: str) -> np.ndarray:
    if arg.endswith(".ply"):
        return read_ply(arg)
    if arg.endswith((".xyz", ".txt")):
        return read_xyz(arg)
    raise _cli_error(f"unsupported point file (use .ply/.xyz/.txt): {arg}")


def _validate_point_args(args) -> None:
    """Fail fast (exit 2, one line) on bad inputs, before any loading."""
    for attr in ("points", "queries"):
        path = getattr(args, attr, None)
        if path and not os.path.isfile(path):
            raise _cli_error(f"--{attr}: no such file: {path}")
    if getattr(args, "k", 1) < 1:
        raise _cli_error(f"-k must be >= 1, got {args.k}")
    radius = getattr(args, "radius", None)
    if radius is not None and radius <= 0:
        raise _cli_error(f"--radius must be positive, got {radius:g}")
    if getattr(args, "repeat", 1) < 1:
        raise _cli_error(f"--repeat must be >= 1, got {args.repeat}")
    budget = getattr(args, "budget", None)
    if budget is not None and budget < 1:
        raise _cli_error(f"--budget must be >= 1, got {budget}")


def _add_search(sub):
    p = sub.add_parser("search", help="run a neighbor search")
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--points", help="point cloud file (.ply/.xyz)")
    src.add_argument("--dataset", choices=sorted(DATASETS), help="registry dataset")
    p.add_argument("--scale", type=float, default=1.0, help="registry dataset scale")
    p.add_argument("--queries", help="query file (default: self-search)")
    p.add_argument("--mode", choices=("knn", "range", "true-knn"), default="knn")
    p.add_argument("-k", type=int, default=8, help="neighbor bound K")
    p.add_argument("-r", "--radius", type=float, help="search radius "
                   "(default: registry radius or scene-extent/100; for "
                   "true-knn: density-seeded initial radius)")
    p.add_argument("--device", choices=sorted(KNOWN_DEVICES), default=RTX_2080.name)
    p.add_argument("--no-schedule", action="store_true")
    p.add_argument("--no-partition", action="store_true")
    p.add_argument("--no-bundle", action="store_true")
    p.add_argument("--knn-aabb", choices=("conservative", "equiv_volume"),
                   default="conservative")
    p.add_argument("--backend", choices=("numpy", "numba"), default="numpy",
                   help="hot-path kernel backend; 'numba' falls back to the "
                        "NumPy reference kernels (bit-identical) when numba "
                        "is not installed (default numpy)")
    p.add_argument("--budget", type=int, default=None, metavar="STEPS",
                   help="per-query traversal step budget: deterministic "
                        "approximate answers with a reported recall lower "
                        "bound (default: exact, no budget; rejected for "
                        "true-knn)")
    p.add_argument("--no-prune", action="store_true",
                   help="disable leaf MBR distance pruning (results are "
                        "bit-identical either way; for perf comparison)")
    p.add_argument("--profile", action="store_true",
                   help="report pruning counters and per-backend wall time "
                        "after the search")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="run the search N times on the held engine; warm "
                        "batches reuse the GAS cache (default 1)")
    p.add_argument("--out", help="write results to an .npz file")


def _cmd_search(args) -> int:
    _validate_point_args(args)
    mode = args.mode.replace("-", "_")
    if args.dataset:
        points, spec = load(args.dataset, scale=args.scale)
        radius = args.radius if args.radius else spec.radius
    else:
        points = _load_points(args.points)
        radius = args.radius
        if radius is None:
            extent = float((points.max(axis=0) - points.min(axis=0)).max())
            radius = extent / 100.0
    if mode == "true_knn" and args.radius is None:
        radius = None  # density-seeded initial radius (engine default)
    queries = _load_points(args.queries) if args.queries else points

    config = RTNNConfig(
        schedule=not args.no_schedule,
        partition=not args.no_partition,
        bundle=not args.no_bundle,
        knn_aabb=args.knn_aabb,
        backend=args.backend,
        step_budget=args.budget,
        leaf_prune=not args.no_prune,
    )
    engine = RTNNEngine(points, device=KNOWN_DEVICES[args.device], config=config)

    repeat = max(1, args.repeat)
    walls = []
    for _ in range(repeat):
        t0 = time.perf_counter()
        if mode == "knn":
            res = engine.knn_search(queries, k=args.k, radius=radius)
        elif mode == "true_knn":
            res = engine.true_knn_search(queries, k=args.k, radius=radius)
        else:
            res = engine.range_search(queries, radius=radius, k=args.k)
        walls.append(time.perf_counter() - t0)
    wall = walls[0]

    rep = res.report
    tk = rep.extras.get("true_knn")
    rdesc = (f"r0={tk['seed_radius']:g} (seeded)" if tk and radius is None
             else f"r={radius:g}")
    print(f"{args.mode} search: {len(points)} points, {len(queries)} queries, "
          f"{rdesc}, k={args.k}")
    print(f"neighbors found: total {int(res.counts.sum())}, "
          f"mean {res.counts.mean():.2f}/query")
    if tk:
        radii = ", ".join(f"{r:g}" for r in tk["round_radii"])
        print(f"expansion: {tk['rounds']} rounds (radii [{radii}]), "
              f"growth {tk['growth']:g}, relaunched {tk['relaunched']}, "
              f"{'converged' if tk['converged'] else 'ROUND BUDGET HIT'}")
    print(f"modeled GPU time on {rep.device}: {rep.modeled_time * 1e3:.4f} ms "
          f"(simulator wall: {wall:.2f} s)")
    for cat, sec in rep.breakdown.as_dict().items():
        print(f"  {cat:>7}: {sec * 1e6:10.2f} us")
    print(f"partitions: {rep.n_partitions}, bundles: {rep.n_bundles}, "
          f"IS calls: {rep.is_calls}")
    bud = rep.extras.get("budget")
    if bud:
        print(f"budget: {bud['step_budget']} steps/query, exhausted "
              f"{bud['exhausted_queries']}/{bud['total_queries']} queries, "
              f"recall >= {bud['recall_lower_bound']:.3f} "
              f"({'APPROXIMATE' if bud['budget_exhausted'] else 'exact: budget never fired'})")
    if args.profile:
        _print_search_profile(args, points, queries, mode, radius, rep, wall)
    if repeat > 1:
        warm = sum(walls[1:]) / (repeat - 1)
        stats = engine.gas_cache.stats
        print(f"batches: {repeat} (cold {walls[0]:.2f} s, warm mean "
              f"{warm:.2f} s, {walls[0] / warm:.2f}x)" if warm > 0 else
              f"batches: {repeat}")
        print(f"gas cache: {stats.hits} hits, {stats.misses} misses, "
              f"{stats.evictions} evictions")
    if args.out:
        np.savez_compressed(
            args.out,
            indices=res.indices,
            counts=res.counts,
            sq_distances=res.sq_distances,
        )
        print(f"results written to {args.out}")
    return 0


def _print_search_profile(args, points, queries, mode, radius, rep, wall):
    """The ``search --profile`` report: pruning counters + per-backend
    wall time (the configured backend's run is reused; the others are
    re-run once each on a fresh engine)."""
    from dataclasses import replace as dc_replace

    from repro.backend import BACKEND_NAMES, resolve_backend

    pr = rep.extras.get("prune", {})
    state = "on" if pr.get("enabled") else "off"
    print(f"profile: leaf MBR pruning {state}: "
          f"{pr.get('leaves_pruned', 0):,} leaf pairs pruned, "
          f"{pr.get('leaves_bulk_accepted', 0):,} bulk-accepted")
    base_config = RTNNConfig(
        schedule=not args.no_schedule,
        partition=not args.no_partition,
        bundle=not args.no_bundle,
        knn_aabb=args.knn_aabb,
        step_budget=args.budget,
        leaf_prune=not args.no_prune,
    )
    for bname in BACKEND_NAMES:
        backend = resolve_backend(bname)
        tag = " [fallback: numba not installed]" if backend.is_fallback else ""
        if bname == args.backend:
            print(f"profile: backend {bname:>6}{tag} wall {wall:7.3f} s "
                  f"(this run)")
            continue
        eng = RTNNEngine(
            points,
            device=KNOWN_DEVICES[args.device],
            config=dc_replace(base_config, backend=bname),
        )
        t0 = time.perf_counter()
        if mode == "knn":
            eng.knn_search(queries, k=args.k, radius=radius)
        elif mode == "true_knn":
            eng.true_knn_search(queries, k=args.k, radius=radius)
        else:
            eng.range_search(queries, radius=radius, k=args.k)
        print(f"profile: backend {bname:>6}{tag} wall "
              f"{time.perf_counter() - t0:7.3f} s")


def _add_serve(sub):
    p = sub.add_parser(
        "serve",
        help="run the micro-batching search service under synthetic load",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--points", help="point cloud file (.ply/.xyz)")
    src.add_argument("--dataset", choices=sorted(DATASETS), help="registry dataset")
    p.add_argument("--scale", type=float, default=1.0, help="registry dataset scale")
    p.add_argument("--mode", choices=("knn", "range", "true-knn"), default="knn")
    p.add_argument("-k", type=int, default=8, help="neighbor bound K")
    p.add_argument("-r", "--radius", type=float, help="search radius "
                   "(default: registry radius or scene-extent/100; for "
                   "true-knn this is the round-0 radius)")
    p.add_argument("--device", choices=sorted(KNOWN_DEVICES), default=RTX_2080.name)
    p.add_argument("--rps", type=float, default=200.0,
                   help="aggregate open-loop arrival rate (default 200)")
    p.add_argument("--clients", type=int, default=4,
                   help="concurrent open-loop clients (default 4)")
    p.add_argument("--duration", type=float, default=2.0,
                   help="seconds of offered load (default 2)")
    p.add_argument("--queries-per-request", type=int, default=8, metavar="N",
                   help="queries per synthetic request (default 8)")
    p.add_argument("--window-ms", type=float, default=5.0,
                   help="batching window in milliseconds (default 5)")
    p.add_argument("--depth", type=int, default=256,
                   help="admission queue depth bound (default 256)")
    p.add_argument("--deadline-ms", type=float, default=None,
                   help="per-request deadline in milliseconds (default: none)")
    p.add_argument("--seed", type=int, default=0, help="load-generator seed")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="serve from a sharded topology: N spatial shards on "
                        "N engine workers behind the same front door "
                        "(default: single engine)")
    p.add_argument("--workers", type=int, default=None, metavar="W",
                   help="engine workers for --shards (default: one per shard)")
    p.add_argument("--replication", type=int, default=2,
                   help="workers eligible per shard, primary + failover "
                        "replicas (default 2)")
    p.add_argument("--shard-smoke", action="store_true",
                   help="gate mode: run the load against 1-shard and "
                        "--shards topologies, assert zero errors, "
                        "bit-identical results (knn/range x full/noopt), and "
                        "modeled-clock throughput scaling >= --min-scaling")
    p.add_argument("--min-scaling", type=float, default=2.5,
                   help="modeled throughput scaling the --shard-smoke gate "
                        "requires at --shards shards (default 2.5)")
    p.add_argument("--true-knn-smoke", action="store_true",
                   help="gate mode: serve true-knn traffic on 1-shard and "
                        "--shards topologies and assert bit-identity vs the "
                        "solo engine AND the brute-force exact-kNN oracle, "
                        "matching radius schedules, coherent relaunch "
                        "counters, and round counts <= --max-rounds")
    p.add_argument("--max-rounds", type=int, default=12,
                   help="expansion-round bound the --true-knn-smoke gate "
                        "enforces (default 12)")
    p.add_argument("--check", action="store_true",
                   help="smoke assertions: zero errors, occupancy > 1, and a "
                        "bit-identical spot-check vs direct engine calls")
    p.add_argument("--json", dest="json_out", metavar="PATH",
                   help="also write the service RunReport as JSON ('-' for stdout)")


def _cmd_serve(args) -> int:
    import asyncio
    import json

    from repro.api import SearchSession
    from repro.serve import (
        LoadSpec,
        ServiceConfig,
        run_load,
        shard_smoke,
        shard_spot_check,
        spot_check,
        true_knn_smoke,
    )

    _validate_point_args(args)
    if args.rps <= 0 or args.duration <= 0 or args.clients < 1:
        raise _cli_error("--rps/--duration must be positive, --clients >= 1")
    if args.shards is not None and args.shards < 1:
        raise _cli_error(f"--shards must be >= 1, got {args.shards}")
    if args.shard_smoke and (args.shards is None or args.shards < 2):
        raise _cli_error("--shard-smoke needs --shards >= 2")
    if args.true_knn_smoke and (args.shards is None or args.shards < 2):
        raise _cli_error("--true-knn-smoke needs --shards >= 2")
    if args.max_rounds < 1:
        raise _cli_error(f"--max-rounds must be >= 1, got {args.max_rounds}")
    if args.dataset:
        points, spec = load(args.dataset, scale=args.scale)
        radius = args.radius if args.radius else spec.radius
    else:
        points = _load_points(args.points)
        radius = args.radius
        if radius is None:
            extent = float((points.max(axis=0) - points.min(axis=0)).max())
            radius = extent / 100.0

    mode = args.mode.replace("-", "_")
    session = SearchSession(points, device=KNOWN_DEVICES[args.device])
    config = ServiceConfig(
        max_queue_depth=args.depth,
        batch_window_s=args.window_ms / 1e3,
    )
    load_spec = LoadSpec(
        rps=args.rps,
        clients=args.clients,
        duration_s=args.duration,
        queries_per_request=args.queries_per_request,
        mode=mode,
        k=args.k,
        radius=radius,
        deadline_s=None if args.deadline_ms is None else args.deadline_ms / 1e3,
        seed=args.seed,
    )

    if args.true_knn_smoke:
        # Gate mode: true-knn traffic on 1-shard vs N-shard topologies,
        # bit-identical to the solo engine and the brute-force oracle,
        # bounded round count, coherent relaunch counters.
        try:
            summary = asyncio.run(
                true_knn_smoke(
                    points,
                    load_spec,
                    shards=args.shards,
                    max_rounds=args.max_rounds,
                    replication=args.replication,
                )
            )
        except AssertionError as exc:
            print(f"true-knn-smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"true-knn-smoke ok: {summary['shards']} shards, k="
              f"{summary['k']}, {summary['identity_cells_checked']} identity "
              f"cells bit-identical vs solo engine and brute oracle "
              f"(full/noopt x 1/{summary['shards']} shards), max "
              f"{summary['max_rounds_seen']} expansion rounds "
              f"(gate {summary['max_rounds_gate']})")
        if args.json_out == "-":
            print(json.dumps(summary, indent=2))
        elif args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(summary, fh, indent=2)
                fh.write("\n")
            print(f"summary written to {args.json_out}")
        return 0

    if args.shard_smoke:
        # Gate mode: 1-shard vs N-shard topologies, zero errors,
        # bit-identical results, modeled-clock scaling >= --min-scaling.
        try:
            summary = asyncio.run(
                shard_smoke(
                    points,
                    load_spec,
                    shards=args.shards,
                    min_scaling=args.min_scaling,
                    replication=args.replication,
                    service_config=config,
                )
            )
        except AssertionError as exc:
            print(f"serve-shard-smoke FAILED: {exc}", file=sys.stderr)
            return 1
        print(f"serve-shard-smoke ok: {args.shards} shards, modeled "
              f"throughput scaling {summary['scaling_modeled']:.2f}x "
              f"(gate {args.min_scaling:g}x), "
              f"{summary['identity_cells_checked']} identity cells "
              f"bit-identical across knn/range x full/noopt")
        for n, s in summary["topologies"].items():
            o = s["outcome"]
            print(f"  {n} shard(s): {o['completed']} completed / "
                  f"{o['submitted']} submitted, 0 errors, fan-out mean "
                  f"{s['fanout_mean']:.2f}, modeled makespan "
                  f"{s['modeled_makespan_s'] * 1e3:.3f} ms")
        if args.json_out == "-":
            print(json.dumps(summary, indent=2))
        elif args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(summary, fh, indent=2)
                fh.write("\n")
            print(f"summary written to {args.json_out}")
        return 0

    async def drive():
        service = session.serve(
            config=config,
            shards=args.shards,
            workers=args.workers,
            replication=args.replication,
        )
        async with service:
            outcome = await run_load(service, points, load_spec)
            checked = 0
            if args.check and args.shards:
                checked = await shard_spot_check(
                    points,
                    load_spec,
                    shards=args.shards,
                    replication=args.replication,
                )
            elif args.check:
                checked = await spot_check(
                    service, session.engine, points, load_spec
                )
        return service, outcome, checked

    service, outcome, checked = asyncio.run(drive())
    roll = service.metrics.rollup()

    print(f"serve: {mode} over {len(points)} points, r={radius:g}, "
          f"k={args.k} on {args.device}")
    print(f"offered load: {args.rps:g} rps x {args.duration:g}s "
          f"({args.clients} clients, {args.queries_per_request} queries/req, "
          f"window {args.window_ms:g} ms)")
    req = roll["requests"]
    print(f"requests: {req['submitted']} admitted, {req['completed']} completed, "
          f"{req['rejected']} rejected, {req['expired']} expired, "
          f"{req['degraded']} degraded, {req['retries']} retries")
    bat = roll["batches"]
    occ_mean = bat["occupancy_mean"] or 0.0
    print(f"batches: {bat['count']} (fallback {bat['fallback']}), occupancy "
          f"mean {occ_mean:.2f} max {bat['occupancy_max'] or 0}")
    lat = roll["latency_s"]
    if lat["p50"] is not None:
        print(f"latency: p50 {lat['p50'] * 1e3:.1f} ms, "
              f"p99 {lat['p99'] * 1e3:.1f} ms, max {lat['max'] * 1e3:.1f} ms")
    print(f"queue: depth max {roll['queue']['depth_max']}, "
          f"mean {roll['queue']['depth_mean']:.1f}")
    if args.shards:
        sh = service.engine.shard_rollup()
        fan = sh["fanout"]["mean"]
        print(f"shards: {sh['n_shards']} on {sh['n_workers']} workers "
              f"(replication {sh['replication']}), fan-out mean "
              f"{fan:.2f}" if fan is not None else
              f"shards: {sh['n_shards']} on {sh['n_workers']} workers")
        print(f"  failovers {sh['failovers']}, brute fallbacks "
              f"{sh['brute_fallbacks']}, modeled makespan "
              f"{sh['makespan_s'] * 1e3:.3f} ms")

    report = service.report(
        "repro serve",
        scenario={
            "n_points": len(points),
            "mode": mode,
            "k": args.k,
            "radius": radius,
            "rps": args.rps,
            "clients": args.clients,
            "duration_s": args.duration,
            "seed": args.seed,
        },
    )
    if args.json_out == "-":
        print(report.to_json())
    elif args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report written to {args.json_out}")

    if args.check:
        failures = []
        if outcome.errored:
            failures.append(f"{outcome.errored} errored requests "
                            f"({outcome.errors[:3]})")
        if (bat["occupancy_max"] or 0) <= 1:
            failures.append("no coalescing observed (batch occupancy never > 1)")
        if failures:
            for f in failures:
                print(f"serve check FAILED: {f}", file=sys.stderr)
            return 1
        print(f"serve check ok: zero errors, occupancy max "
              f"{bat['occupancy_max']}, {checked} requests spot-checked "
              f"bit-identical vs direct engine calls")
    return 0


def _add_workload(sub):
    p = sub.add_parser(
        "workload",
        help="run a downstream workload pipeline (dbscan/hausdorff/sph)",
    )
    p.add_argument("--check", action="store_true",
                   help="gate mode: small DBSCAN + Hausdorff + 5-step SPH vs "
                        "brute oracles, asserted bit-identical across the "
                        "solo / fused-serve / --shards paths")
    src = p.add_mutually_exclusive_group()
    src.add_argument("--points", help="point cloud file (.ply/.xyz)")
    src.add_argument("--dataset", choices=sorted(DATASETS), help="registry dataset")
    p.add_argument("--scale", type=float, default=1.0, help="registry dataset scale")
    p.add_argument("--workload", choices=("dbscan", "hausdorff", "sph"),
                   default="dbscan", help="pipeline to run (default dbscan)")
    p.add_argument("--queries", help="Hausdorff A set file (default: a "
                   "seeded uniform cloud over the point extent)")
    p.add_argument("-r", "--radius", type=float,
                   help="eps (dbscan) / interaction radius (sph); default "
                        "registry radius or scene-extent/100")
    p.add_argument("--min-pts", type=int, default=4,
                   help="dbscan core threshold, self-inclusive (default 4)")
    p.add_argument("--batch-size", type=int, default=256,
                   help="dbscan frontier batch size (default 256)")
    p.add_argument("--chunk-size", type=int, default=256,
                   help="hausdorff A-chunk size (default 256)")
    p.add_argument("--steps", type=int, default=5,
                   help="sph step count (default 5; also the --check "
                        "trajectory length)")
    p.add_argument("--dt", type=float, default=1e-3, help="sph step size")
    p.add_argument("--shards", type=int, default=None, metavar="N",
                   help="drive a sharded SearchService instead of the solo "
                        "session (default: solo; --check default 4)")
    p.add_argument("--fan", type=int, default=2,
                   help="concurrent submit chunks per serve batch (default 2)")
    p.add_argument("--seed", type=int, default=7,
                   help="seed for generated clouds (default 7)")
    p.add_argument("--oracle", action="store_true",
                   help="also run the brute oracle and assert exact equality")
    p.add_argument("--json", dest="json_out", metavar="PATH",
                   help="write the workload RunReport as JSON ('-' for stdout)")


def _cmd_workload(args) -> int:
    import contextlib
    import json

    from repro.api import SearchSession
    from repro.obs import RecordingTracer, RunReport
    from repro.workloads import (
        DBSCANConfig,
        HausdorffConfig,
        SPHConfig,
        SessionClient,
        brute_dbscan,
        brute_hausdorff,
        brute_sph,
        run_dbscan,
        run_hausdorff,
        run_sph,
        service_client,
    )

    if args.check:
        from repro.workloads.check import workloads_smoke

        shards = args.shards if args.shards is not None else 4
        if shards < 2:
            raise _cli_error(f"--check needs --shards >= 2, got {shards}")
        try:
            summary = workloads_smoke(
                shards=shards,
                seed=args.seed,
                fan=args.fan,
                sph_steps=args.steps,
            )
        except AssertionError as exc:
            print(f"workloads-smoke FAILED: {exc}", file=sys.stderr)
            return 1
        d, h, s = summary["dbscan"], summary["hausdorff"], summary["sph"]
        print(f"workloads-smoke ok: paths {'/'.join(summary['paths'])} "
              f"bit-identical and oracle-exact")
        print(f"  dbscan: {d['clusters']} clusters, {d['noise']} noise, "
              f"{d['rounds']} frontier rounds")
        print(f"  hausdorff: h={h['distance']:.6g}, witness "
              f"({h['witness'][0]}, {h['witness'][1]}), {h['pruned']} pruned")
        print(f"  sph: {s['steps']} steps, {s['neighbor_pairs']} neighbor "
              f"pairs, trajectories bit-identical vs brute stepper")
        return 0

    if not (args.points or args.dataset):
        raise _cli_error("--points or --dataset is required (or --check)")
    _validate_point_args(args)
    if args.dataset:
        points, spec = load(args.dataset, scale=args.scale)
        radius = args.radius if args.radius else spec.radius
    else:
        points = _load_points(args.points)
        radius = args.radius
        if radius is None:
            extent = float((points.max(axis=0) - points.min(axis=0)).max())
            radius = extent / 100.0

    tracer = RecordingTracer()
    session = SearchSession(points, tracer=tracer)
    if args.shards is not None:
        client_ctx = service_client(session, shards=args.shards, fan=args.fan)
    else:
        client_ctx = contextlib.nullcontext(SessionClient(session))

    with client_ctx as client:
        if args.workload == "dbscan":
            cfg = DBSCANConfig(eps=radius, min_pts=args.min_pts,
                               batch_size=args.batch_size)
            res = run_dbscan(client, cfg, tracer)
            stats = res.stats
            print(f"dbscan: {len(points)} points, eps={radius:g}, "
                  f"min_pts={args.min_pts}")
            print(f"  {res.n_clusters} clusters, {stats['core_points']} core, "
                  f"{stats['border_points']} border, "
                  f"{stats['noise_points']} noise "
                  f"({stats['rounds']} frontier rounds, "
                  f"{stats['edges']} edges)")
            if args.oracle:
                labels, _, counts, _ = brute_dbscan(points, cfg)
                assert np.array_equal(res.labels, labels), "labels != oracle"
                assert np.array_equal(res.counts, counts), "counts != oracle"
                print("  oracle: labels exactly equal")
        elif args.workload == "hausdorff":
            if args.queries:
                queries = _load_points(args.queries)
            else:
                from repro.utils.rng import default_rng

                rng = default_rng(args.seed)
                lo, hi = points.min(axis=0), points.max(axis=0)
                queries = lo + rng.random(points.shape) * (hi - lo)
            cfg = HausdorffConfig(chunk_size=args.chunk_size)
            res = run_hausdorff(client, queries, cfg, tracer)
            stats = res.stats
            print(f"hausdorff: |A|={len(queries)}, |B|={len(points)}")
            print(f"  h(A,B) = {res.distance:.6g} at A[{res.index_a}] -> "
                  f"B[{res.index_b}] ({stats['chunks']} chunks, "
                  f"{stats['rounds']} rounds, {stats['pruned']} pruned)")
            if args.oracle:
                hd2, ia, ib = brute_hausdorff(queries, points)
                assert (res.sq_distance, res.index_a, res.index_b) == (
                    hd2, ia, ib), "hausdorff != oracle"
                print("  oracle: distance and witness exactly equal")
        else:
            cfg = SPHConfig(radius=radius, dt=args.dt, n_steps=args.steps)
            res = run_sph(client, cfg, tracer=tracer)
            stats = res.stats
            drift = float(np.abs(res.positions - points).max())
            print(f"sph: {len(points)} points, h={radius:g}, dt={args.dt:g}, "
                  f"{args.steps} steps")
            print(f"  {stats['neighbor_pairs']} neighbor pairs, k per step "
                  f"{stats['k_per_step']}, refit {stats['refit_s']:.3g} "
                  f"modeled s, max |dx| {drift:.3g}")
            if args.oracle:
                x, v = brute_sph(points, cfg)
                assert np.array_equal(res.positions, x), "positions != oracle"
                assert np.array_equal(res.velocities, v), "velocities != oracle"
                print("  oracle: trajectory bit-identical")

    if args.json_out:
        report = RunReport.from_run(
            f"workload {args.workload}",
            tracer,
            scenario={
                "workload": args.workload,
                "n_points": len(points),
                "radius": radius,
                "shards": args.shards,
            },
            extras={"workload": stats},
        )
        if args.json_out == "-":
            print(report.to_json())
        else:
            with open(args.json_out, "w") as fh:
                fh.write(report.to_json())
                fh.write("\n")
            print(f"report written to {args.json_out}")
    return 0


def _add_trace(sub):
    p = sub.add_parser(
        "trace",
        help="run a search under the observability tracer and render it",
    )
    src = p.add_mutually_exclusive_group(required=True)
    src.add_argument("--points", help="point cloud file (.ply/.xyz)")
    src.add_argument("--dataset", choices=sorted(DATASETS), help="registry dataset")
    p.add_argument("--scale", type=float, default=1.0, help="registry dataset scale")
    p.add_argument("--queries", help="query file (default: self-search)")
    p.add_argument("--mode", choices=("knn", "range", "true-knn"), default="knn")
    p.add_argument("-k", type=int, default=8, help="neighbor bound K")
    p.add_argument("-r", "--radius", type=float, help="search radius "
                   "(default: registry radius or scene-extent/100; for "
                   "true-knn: density-seeded initial radius)")
    p.add_argument("--device", choices=sorted(KNOWN_DEVICES), default=RTX_2080.name)
    p.add_argument("--no-schedule", action="store_true")
    p.add_argument("--no-partition", action="store_true")
    p.add_argument("--no-bundle", action="store_true")
    p.add_argument("--json", dest="json_out", metavar="PATH",
                   help="also write the RunReport as JSON ('-' for stdout)")


def _cmd_trace(args) -> int:
    from repro.obs import RecordingTracer, RunReport, render_report

    mode = args.mode.replace("-", "_")
    if args.dataset:
        points, spec = load(args.dataset, scale=args.scale)
        radius = args.radius if args.radius else spec.radius
        source = f"{args.dataset} x{args.scale:g}"
    else:
        points = _load_points(args.points)
        radius = args.radius
        if radius is None:
            extent = float((points.max(axis=0) - points.min(axis=0)).max())
            radius = extent / 100.0
        source = args.points
    if mode == "true_knn" and args.radius is None:
        radius = None  # density-seeded initial radius (engine default)
    queries = _load_points(args.queries) if args.queries else points

    config = RTNNConfig(
        schedule=not args.no_schedule,
        partition=not args.no_partition,
        bundle=not args.no_bundle,
    )
    tracer = RecordingTracer()
    engine = RTNNEngine(
        points,
        device=KNOWN_DEVICES[args.device],
        config=config,
        tracer=tracer,
    )
    if mode == "knn":
        res = engine.knn_search(queries, k=args.k, radius=radius)
    elif mode == "true_knn":
        res = engine.true_knn_search(queries, k=args.k, radius=radius)
    else:
        res = engine.range_search(queries, radius=radius, k=args.k)

    report = RunReport.from_run(
        f"{mode} search",
        tracer,
        result=res,
        scenario={
            "source": source,
            "n_points": len(points),
            "n_queries": len(queries),
            "mode": mode,
            "k": args.k,
            "radius": radius,
        },
    )
    print(render_report(report))
    if args.json_out == "-":
        print(report.to_json())
    elif args.json_out:
        with open(args.json_out, "w") as fh:
            fh.write(report.to_json())
            fh.write("\n")
        print(f"report written to {args.json_out}")
    return 0


def _add_datasets(sub):
    p = sub.add_parser("datasets", help="list or generate registry datasets")
    p.add_argument("--generate", choices=sorted(DATASETS), help="dataset to write")
    p.add_argument("--scale", type=float, default=1.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", help="output .ply path (required with --generate)")


def _cmd_datasets(args) -> int:
    if args.generate:
        if not args.out:
            raise SystemExit("--generate requires --out")
        pts, spec = load(args.generate, scale=args.scale, seed=args.seed)
        write_ply(args.out, pts)
        print(f"wrote {len(pts)} points ({spec.family}) to {args.out}")
        return 0
    print(f"{'name':14s} {'family':7s} {'n_points':>9s} {'paper_n':>11s} {'radius':>8s}")
    for spec in DATASETS.values():
        print(
            f"{spec.name:14s} {spec.family:7s} {spec.n_points:9d} "
            f"{spec.paper_n_points:11d} {spec.radius:8g}"
        )
    return 0


def _add_experiments(sub):
    p = sub.add_parser("experiments", help="regenerate the paper's figures")
    p.add_argument("--only", help="run one section, e.g. fig11 or fig05")
    p.add_argument("--scale", type=float, help="dataset scale (sets REPRO_SCALE)")


def _cmd_experiments(args) -> int:
    import os

    if args.scale is not None:
        os.environ["REPRO_SCALE"] = str(args.scale)
    from repro.experiments.__main__ import SECTIONS, main as run_all

    if args.only:
        matched = [
            (title, fn) for title, fn in SECTIONS if args.only.lower() in title.lower()
            or args.only.lower().replace("fig", "fig. ").replace("fig. .", "fig.")
            in title.lower()
        ]
        if not matched:
            names = ", ".join(t.split(" — ")[0] for t, _ in SECTIONS)
            raise SystemExit(f"no section matches {args.only!r}; sections: {names}")
        for title, fn in matched:
            print(title)
            fn()
        return 0
    run_all()
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="RTNN reproduction: neighbor search as hardware ray tracing",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    _add_search(sub)
    _add_serve(sub)
    _add_workload(sub)
    _add_trace(sub)
    _add_datasets(sub)
    _add_experiments(sub)
    # `repro analyze ...` forwards everything after the subcommand to the
    # static-analysis CLI (see repro.analysis.cli for its options).
    sub.add_parser(
        "analyze",
        help="run the execution-model static analysis",
        add_help=False,
    )
    argv = sys.argv[1:] if argv is None else list(argv)
    if argv[:1] == ["analyze"]:
        from repro.analysis.cli import main as analysis_main

        return analysis_main(argv[1:])
    args = parser.parse_args(argv)
    # One validation contract across every entry point (satellite of the
    # true-knn PR): bad scalars the arg pre-checks cannot see (e.g. a
    # degenerate cloud, a policy rejected by ExpansionPolicy) surface
    # from repro.api / the engine as ValueError; map them to the same
    # one-line-stderr exit 2 as _validate_point_args.
    try:
        if args.command == "search":
            return _cmd_search(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "workload":
            return _cmd_workload(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "datasets":
            return _cmd_datasets(args)
        return _cmd_experiments(args)
    except ValueError as exc:
        raise _cli_error(str(exc))


if __name__ == "__main__":
    sys.exit(main())
