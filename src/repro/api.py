"""Convenience API: one-shot helpers and the reusable search session.

For repeated query batches over one point set, hold a
:class:`SearchSession`: the underlying engine keeps its Morton order
*and* its GAS cache across calls, so second-and-later batches skip
every BVH build (``breakdown.bvh`` is charged only on cache misses)::

    from repro.api import SearchSession

    session = SearchSession(points)
    first = session.knn_search(queries, k=8, radius=0.1)   # builds
    warm = session.knn_search(queries, k=8, radius=0.1)    # cache hits
    session.cache_stats                                     # {"hits": ...}

:func:`knn_search` / :func:`range_search` remain for callers who do
not reuse anything; each call constructs a fresh engine (Morton
ordering plus every BVH build is repeated).
"""

from __future__ import annotations

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.core.results import SearchResults
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.obs.tracer import Tracer


class SearchSession:
    """A held engine: query batches share cached acceleration structures.

    Thin, stable wrapper over :class:`~repro.core.engine.RTNNEngine`
    exposing exactly the batch-serving surface: the two searches, warm
    point updates, config derivation, and the cache counters.
    """

    def __init__(
        self,
        points,
        device: DeviceSpec = RTX_2080,
        config: RTNNConfig | None = None,
        tracer: Tracer | None = None,
        cache_capacity: int | None = None,
    ):
        self.engine = RTNNEngine(
            points,
            device=device,
            config=config,
            tracer=tracer,
            cache_capacity=cache_capacity,
        )

    # ------------------------------------------------------------------
    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """The ``k`` nearest neighbors within ``radius`` per query."""
        return self.engine.knn_search(queries, k=k, radius=radius)

    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """All neighbors within ``radius``, at most ``k`` per query."""
        return self.engine.range_search(queries, radius=radius, k=k)

    def true_knn_search(
        self, queries, k: int, radius: float | None = None, policy=None
    ) -> SearchResults:
        """The exact ``k`` nearest neighbors per query, no radius bound.

        Adaptive radius expansion over the bounded engine: rounds grow
        geometrically from a density-seeded radius (override with
        ``radius`` or a full
        :class:`~repro.core.expansion.ExpansionPolicy`), re-launching
        only still-unsatisfied queries; ``counts < k`` only when the
        whole cloud holds fewer than ``k`` points. Convergence
        telemetry rides in ``results.report.extras["true_knn"]``.
        """
        return self.engine.true_knn_search(
            queries, k=k, radius=radius, policy=policy
        )

    def count_in_radius(self, queries, radius: float) -> SearchResults:
        """Exact per-query neighbor counts within ``radius``.

        Aggregate-only fast path: identical traversal and sphere tests
        as :meth:`range_search`, but no neighbor rows are materialized
        and counts never saturate at a ``k`` cap —
        ``results.indices``/``results.sq_distances`` are zero-width and
        ``results.counts`` is the exact within-radius population.
        """
        return self.engine.count_in_radius(queries, radius=radius)

    def update_points(self, points) -> float:
        """Move the point set; cached structures are refit when the
        count is unchanged (see :meth:`RTNNEngine.update_points`)."""
        return self.engine.update_points(points)

    def with_config(self, **changes) -> "SearchSession":
        """A new session with config fields replaced (cold cache).

        Unknown field names raise :exc:`ValueError` with a
        nearest-match hint (exit code 2 through the CLI contract).
        """
        session = SearchSession.__new__(SearchSession)
        session.engine = self.engine.with_config(**changes)
        return session

    def serve(
        self,
        config=None,
        faults=None,
        tracer=None,
        shards: int | None = None,
        workers: int | None = None,
        replication: int = 2,
        shard_faults=None,
    ):
        """A micro-batching async service over this session's engine.

        Returns an *unstarted* :class:`~repro.serve.service.SearchService`;
        use it as an async context manager (or call ``await start()``)::

            async with session.serve() as svc:
                res = await svc.submit("knn", queries, k=8, radius=0.1)

        Concurrent compatible submissions are fused into single engine
        launches that share this session's GAS cache; per-request
        results stay bit-identical to direct :meth:`knn_search` /
        :meth:`range_search` calls. See ``docs/serving.md``.

        With ``shards``, the front door instead holds a
        :class:`~repro.serve.shard.ShardedEngine` over this session's
        points and config: ``workers`` engine workers (default one per
        shard) serve spatial shards placed by consistent hashing with
        ``replication``-way failover; results remain bit-identical to
        the single-engine path (canonical row order). ``shard_faults``
        is a separate :class:`~repro.serve.faults.FaultInjector`
        consulted per shard routing attempt.
        """
        from repro.serve.service import SearchService

        held = self.engine
        if shards is not None:
            from repro.serve.shard import ShardedEngine

            held = ShardedEngine(
                self.engine.points,
                n_shards=shards,
                n_workers=workers,
                replication=replication,
                device=self.engine.device,
                config=self.engine.config,
                faults=shard_faults,
            )
        return SearchService(
            held, config=config, faults=faults, tracer=tracer
        )

    # ------------------------------------------------------------------
    @property
    def points(self):
        return self.engine.points

    @property
    def config(self) -> RTNNConfig:
        return self.engine.config

    @property
    def cache_stats(self) -> dict:
        """Cumulative GAS-cache counters: hits, misses, evictions."""
        return self.engine.gas_cache.stats.as_dict()


def knn_search(
    points,
    queries,
    k: int,
    radius: float,
    device: DeviceSpec = RTX_2080,
    config: RTNNConfig | None = None,
) -> SearchResults:
    """The ``k`` nearest neighbors of each query within ``radius``."""
    return RTNNEngine(points, device=device, config=config).knn_search(
        queries, k=k, radius=radius
    )


def range_search(
    points,
    queries,
    radius: float,
    k: int,
    device: DeviceSpec = RTX_2080,
    config: RTNNConfig | None = None,
) -> SearchResults:
    """Up to ``k`` neighbors of each query within ``radius``."""
    return RTNNEngine(points, device=device, config=config).range_search(
        queries, radius=radius, k=k
    )


def true_knn_search(
    points,
    queries,
    k: int,
    radius: float | None = None,
    device: DeviceSpec = RTX_2080,
    config: RTNNConfig | None = None,
) -> SearchResults:
    """The exact ``k`` nearest neighbors of each query (unbounded)."""
    return RTNNEngine(points, device=device, config=config).true_knn_search(
        queries, k=k, radius=radius
    )
