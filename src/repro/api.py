"""One-shot convenience API.

For callers who do not reuse the engine across query batches::

    from repro.api import knn_search, range_search

    res = knn_search(points, queries, k=8, radius=0.1)

Engine construction (Morton ordering of the points) is the only work
these helpers repeat versus holding an :class:`~repro.RTNNEngine`.
"""

from __future__ import annotations

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.core.results import SearchResults
from repro.gpu.device import DeviceSpec, RTX_2080


def knn_search(
    points,
    queries,
    k: int,
    radius: float,
    device: DeviceSpec = RTX_2080,
    config: RTNNConfig | None = None,
) -> SearchResults:
    """The ``k`` nearest neighbors of each query within ``radius``."""
    return RTNNEngine(points, device=device, config=config).knn_search(
        queries, k=k, radius=radius
    )


def range_search(
    points,
    queries,
    radius: float,
    k: int,
    device: DeviceSpec = RTX_2080,
    config: RTNNConfig | None = None,
) -> SearchResults:
    """Up to ``k`` neighbors of each query within ``radius``."""
    return RTNNEngine(points, device=device, config=config).range_search(
        queries, radius=radius, k=k
    )
