"""The pinned perf-regression bench suite (``python -m repro.obs.bench``).

Runs a fixed set of small scenarios — KITTI-like, uniform and clustered
clouds, each as the un-optimized baseline, scheduled, and
scheduled+partitioned engine — records per-phase counters and timings
into ``BENCH_<date>.json``, and compares against the most recent
committed bench file:

* **counters are exact**: the simulator is deterministic, so any drift
  in IS calls, warp steps, cache hits, AABB tests, or result checksums
  is a real behavior change and fails the run;
* **modeled time** must match to a tight relative tolerance (it is pure
  float arithmetic over the counters);
* **wall-clock** (simulator speed) may regress up to ``--wall-tol``
  (default 20%) before failing. Wall checks compare different machines
  meaninglessly, so ``--smoke`` — the CI entry point — skips them (and
  skips writing a new bench file) unless overridden.

The smoke suite is a strict subset of the full suite (same names, same
sizes), so a smoke run diffs cleanly against a committed full bench
file.

Exit codes: 0 clean, 1 regression/mismatch, 2 usage error.
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import json
import platform
import pstats
import re
import sys
import time
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.datasets.kitti import kitti_like
from repro.obs.report import RunReport
from repro.obs.tracer import RecordingTracer
from repro.utils.rng import default_rng

SCHEMA_VERSION = 1

#: relative tolerance for modeled seconds (pure float-over-counters)
MODELED_RTOL = 1e-9
#: default wall-clock regression tolerance (+20%)
WALL_TOL = 0.20


# ----------------------------------------------------------------------
# scenario definitions
# ----------------------------------------------------------------------
def _uniform(n: int, seed: int) -> np.ndarray:
    return default_rng(seed).random((n, 3))


def _clustered(n: int, seed: int) -> np.ndarray:
    rng = default_rng(seed)
    centers = rng.random((12, 3))
    which = rng.integers(0, len(centers), n)
    pts = centers[which] + rng.normal(0.0, 0.01, (n, 3))
    return np.clip(pts, 0.0, 1.0)


def _kitti(n: int, seed: int) -> np.ndarray:
    return kitti_like(n, seed=seed)


#: generator + (radius, mode, k) per dataset family; radii are sized so
#: an r-ball holds a meaningful neighbor population at bench scale.
#: The ``*-tight`` families are the repeat-batch shapes: many points
#: (heavy builds) and a tight radius (short traversals), so structure
#: amortization — the quantity those scenarios pin — dominates.
#: The ``*-tknn`` families run the unbounded exact-kNN expansion loop
#: (radius ``None`` = density-seeded r0); their records additionally
#: carry the expansion round count and a bit-identity verdict against
#: the brute-force exact-kNN oracle, gated by
#: :func:`check_true_knn_oracle`.
#: The ``dbscan-*``/``hausdorff-*``/``sph-*`` families run the
#: downstream workload pipelines (repro.workloads) end to end through a
#: SearchSession; ``radius`` is the workload's eps/interaction radius
#: and ``k`` its remaining knob (min_pts, chunk size, or step count).
#: Their records carry the workload span counters plus a
#: ``workload_oracle_ok`` verdict against the brute oracle, gated by
#: :func:`check_workload_oracle`.
_FAMILIES = {
    "kitti": (_kitti, 4.0, "range", 32),
    "uniform": (_uniform, 0.15, "knn", 8),
    "clustered": (_clustered, 0.05, "knn", 16),
    "kitti-tight": (_kitti, 0.4, "range", 8),
    "uniform-tight": (_uniform, 0.02, "knn", 4),
    "clustered-tight": (_clustered, 0.002, "knn", 4),
    "uniform-tknn": (_uniform, None, "true_knn", 16),
    "clustered-tknn": (_clustered, None, "true_knn", 12),
    "dbscan-clustered": (_clustered, 0.03, "dbscan", 5),
    "dbscan-uniform": (_uniform, 0.12, "dbscan", 4),
    "hausdorff-uniform": (_uniform, None, "hausdorff", 64),
    "sph-clustered": (_clustered, 0.05, "sph", 3),
}

_WORKLOAD_MODES = ("dbscan", "hausdorff", "sph")


@dataclass(frozen=True)
class Scenario:
    """One pinned bench configuration.

    ``repeat`` runs the scenario's search that many times on one held
    engine: batch 1 is cold, later batches hit the engine's GAS cache.
    Counters accumulate over every batch (warm batches are bit-identical
    re-runs, so totals stay deterministic); the record additionally
    carries cold/warm wall times and their ratio.
    """

    family: str          # key into _FAMILIES
    n_points: int
    n_queries: int       # self-search over the first n_queries points
    variant: str         # key into repro.core.engine.VARIANTS
    seed: int = 7
    repeat: int = 1      # query batches served by one held engine
    parallel: int = 0    # parallel_bundles workers (0 = serial config)
    shards: int = 0      # sharded topology workers (0 = single engine)
    backend: str = ""    # "" = numpy reference; "numba" = compiled twin (/nb)
    budget: int = 0      # per-query traversal step budget (0 = exact)

    @property
    def name(self) -> str:
        mode = _FAMILIES[self.family][2]
        base = f"{self.family}-{self.n_points}/{self.variant}/{mode}"
        if self.repeat > 1:
            base = f"{base}/x{self.repeat}"
        if self.parallel:
            base = f"{base}/par{self.parallel}"
        if self.shards:
            base = f"{base}/sh{self.shards}"
        if self.backend == "numba":
            base = f"{base}/nb"
        if self.budget:
            base = f"{base}/b{self.budget}"
        return base

    def config(self) -> RTNNConfig:
        cfg = VARIANTS[self.variant]
        if self.parallel:
            cfg = replace(cfg, parallel_bundles=self.parallel)
        if self.backend:
            cfg = replace(cfg, backend=self.backend)
        if self.budget:
            cfg = replace(cfg, step_budget=self.budget)
        return cfg


def repeat_scenarios() -> list[Scenario]:
    """The repeat-batch family: held-engine amortization per dataset."""
    return [
        Scenario(family=f, n_points=50000, n_queries=32, variant="noopt",
                 repeat=3)
        for f in ("kitti-tight", "uniform-tight", "clustered-tight")
    ]


def smoke_suite() -> list[Scenario]:
    """The CI smoke subset: every base family baseline vs fully
    optimized, the repeat-batch amortization scenarios, one parallel
    fan-out twin (asserted bit-identical to its serial scenario by
    :func:`check_parallel_consistency`), and one sharded-topology twin
    (result-identical to its single-engine scenario, checked by
    :func:`check_shard_consistency`)."""
    return [
        Scenario(family=f, n_points=400, n_queries=160, variant=v)
        for f in ("kitti", "uniform", "clustered")
        for v in ("noopt", "sched+part")
    ] + repeat_scenarios() + [
        Scenario(family="clustered", n_points=400, n_queries=160,
                 variant="sched+part", parallel=4),
        Scenario(family="uniform", n_points=400, n_queries=160,
                 variant="sched+part", shards=4),
    ] + [
        # The unbounded exact-kNN expansion loop: baseline and optimized
        # single-engine runs plus a sharded twin, every one gated
        # bit-identical to the brute oracle by check_true_knn_oracle.
        Scenario(family="uniform-tknn", n_points=400, n_queries=160,
                 variant="noopt"),
        Scenario(family="uniform-tknn", n_points=400, n_queries=160,
                 variant="sched+part"),
        Scenario(family="uniform-tknn", n_points=400, n_queries=160,
                 variant="sched+part", shards=4),
        Scenario(family="clustered-tknn", n_points=400, n_queries=160,
                 variant="sched+part"),
    ] + [
        # The backend seam and the step budget: a compiled-backend twin
        # (``/nb``, gated bit-identical to its reference scenario by
        # :func:`check_backend_consistency` — on machines without numba
        # the graceful fallback makes it a self-check of the seam) and
        # a budgeted twin (``/bN``, gated approximate-but-honest: a
        # subset of the exact answer plus a sane recall bound).
        Scenario(family="clustered", n_points=400, n_queries=160,
                 variant="sched+part", backend="numba"),
        Scenario(family="uniform", n_points=400, n_queries=160,
                 variant="sched+part", budget=12),
    ] + [
        # Downstream workload pipelines driven end to end through a
        # SearchSession; every record pins the workload span counters
        # and check_workload_oracle gates the brute-oracle verdicts.
        Scenario(family="dbscan-clustered", n_points=300, n_queries=300,
                 variant="sched+part"),
        Scenario(family="hausdorff-uniform", n_points=300, n_queries=120,
                 variant="sched+part"),
        Scenario(family="sph-clustered", n_points=240, n_queries=240,
                 variant="sched+part"),
    ]


def full_suite() -> list[Scenario]:
    """Smoke scenarios plus larger three-variant sweeps per family and
    their parallel fan-out twins."""
    return smoke_suite() + [
        Scenario(family=f, n_points=2000, n_queries=700, variant=v)
        for f in ("kitti", "uniform", "clustered")
        for v in ("noopt", "sched", "sched+part")
    ] + [
        Scenario(family=f, n_points=2000, n_queries=700,
                 variant="sched+part", parallel=4)
        for f in ("clustered", "uniform")
    ] + [
        Scenario(family=f, n_points=2000, n_queries=700,
                 variant="sched+part")
        for f in ("uniform-tknn", "clustered-tknn")
    ] + [
        Scenario(family="clustered", n_points=2000, n_queries=700,
                 variant="sched+part", backend="numba"),
    ] + [
        # Larger workload sweeps: the baseline-variant DBSCAN twin pins
        # variant-independence of the labels, the uniform family a
        # second density regime.
        Scenario(family="dbscan-clustered", n_points=300, n_queries=300,
                 variant="noopt"),
        Scenario(family="dbscan-uniform", n_points=600, n_queries=600,
                 variant="sched+part"),
        Scenario(family="hausdorff-uniform", n_points=800, n_queries=300,
                 variant="sched+part"),
        Scenario(family="sph-clustered", n_points=400, n_queries=400,
                 variant="sched+part"),
    ]


def backend_suite() -> list[Scenario]:
    """The ``--backend-check`` gate suite: reference scenarios plus
    their compiled-backend and budgeted twins, nothing else.

    Small enough to run in the CI backend matrix (with and without
    numba installed); :func:`check_backend_consistency` gates it."""
    base = [
        Scenario(family=f, n_points=400, n_queries=160, variant="sched+part")
        for f in ("uniform", "clustered", "kitti")
    ]
    return (
        base
        + [replace(sc, backend="numba") for sc in base]
        + [replace(base[0], budget=12)]
    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _int_counters(counters: dict) -> dict:
    """Only the exactly-comparable (integer) counters, as plain ints."""
    return {
        k: int(v)
        for k, v in counters.items()
        if isinstance(v, (int, np.integer))
    }


def _run_workload_scenario(
    scenario: Scenario, gen, points, mode: str, radius, k: int
) -> dict:
    """Execute one downstream-workload scenario end to end.

    The pipeline drives a solo :class:`~repro.api.SearchSession` (the
    bench pins the session path; cross-path bit-identity is the
    ``workloads-smoke`` gate's job) and the record carries the workload
    span counters, a deterministic result checksum, and a
    ``workload_oracle_ok`` verdict against the brute-force oracle.
    """
    # Imported lazily: the classic engine scenarios never need the
    # workload pipelines.
    from repro.api import SearchSession
    from repro.workloads import (
        DBSCANConfig,
        HausdorffConfig,
        SessionClient,
        SPHConfig,
        brute_dbscan,
        brute_hausdorff,
        brute_sph,
        run_dbscan,
        run_hausdorff,
        run_sph,
    )

    tracer = RecordingTracer()
    session = SearchSession(points, config=scenario.config(), tracer=tracer)
    client = SessionClient(session)
    t0 = time.perf_counter()
    if mode == "dbscan":
        cfg = DBSCANConfig(eps=radius, min_pts=k, batch_size=64)
        out = run_dbscan(client, cfg, tracer=tracer)
        wall = time.perf_counter() - t0
        o_labels, _o_core, o_counts, o_clusters = brute_dbscan(points, cfg)
        oracle_ok = (
            np.array_equal(out.labels, o_labels)
            and np.array_equal(out.counts, o_counts)
            and out.n_clusters == o_clusters
        )
        neighbors = int(out.counts.sum())
        checksum = int(out.labels.sum())
        workload = dict(out.stats)
    elif mode == "hausdorff":
        cfg = HausdorffConfig(chunk_size=k)
        queries_a = gen(scenario.n_queries, scenario.seed + 1)
        out = run_hausdorff(client, queries_a, cfg, tracer=tracer)
        wall = time.perf_counter() - t0
        o_hd2, o_ia, o_ib = brute_hausdorff(queries_a, points)
        oracle_ok = out.sq_distance == o_hd2 and (
            (out.index_a, out.index_b) == (o_ia, o_ib)
        )
        neighbors = int(out.stats["relaunched"])
        checksum = int(out.index_a) * len(points) + int(out.index_b)
        workload = dict(out.stats, sq_distance=out.sq_distance)
    else:  # sph
        cfg = SPHConfig(radius=radius, n_steps=k)
        out = run_sph(client, cfg, tracer=tracer)
        wall = time.perf_counter() - t0
        o_x, o_v = brute_sph(points, cfg)
        oracle_ok = np.array_equal(out.positions, o_x) and np.array_equal(
            out.velocities, o_v
        )
        neighbors = int(out.stats["neighbor_pairs"])
        # Bit-exact trajectory fingerprint: the raw float64 words summed
        # as int64 (wraps mod 2**64 — deterministic).
        checksum = int(out.positions.view(np.int64).sum())
        workload = dict(out.stats)

    report = RunReport.from_run(
        scenario.name, tracer, extras={"workload": workload}
    )
    return {
        "counters": _int_counters(report.counters),
        "phases": {
            phase: {
                "modeled_s": stats.modeled_s,
                "counters": _int_counters(stats.counters),
            }
            for phase, stats in report.phases.items()
        },
        "breakdown": report.breakdown,
        # No single SearchResults carries a whole-pipeline breakdown;
        # the modeled time is the sum over the traced engine phases.
        "modeled_s": sum(s.modeled_s for s in report.phases.values()),
        "wall_s": wall,
        "neighbors": neighbors,
        "checksum": checksum,
        "workload": workload,
        "workload_oracle_ok": bool(oracle_ok),
    }


def run_scenario(scenario: Scenario) -> dict:
    """Execute one scenario and return its bench record."""
    gen, radius, mode, k = _FAMILIES[scenario.family]
    points = gen(scenario.n_points, scenario.seed)
    if mode in _WORKLOAD_MODES:
        return _run_workload_scenario(scenario, gen, points, mode, radius, k)
    queries = points[: scenario.n_queries]

    tracer = RecordingTracer()
    if scenario.shards:
        # Imported lazily: repro.serve pulls in asyncio machinery the
        # single-engine bench path never needs.
        from repro.serve.shard import ShardedEngine

        engine = ShardedEngine(
            points,
            n_shards=scenario.shards,
            config=scenario.config(),
            tracer=tracer,
        )
    else:
        engine = RTNNEngine(points, config=scenario.config(), tracer=tracer)
    walls = []
    for _ in range(scenario.repeat):
        t0 = time.perf_counter()
        if mode == "knn":
            res = engine.knn_search(queries, k=k, radius=radius)
        elif mode == "true_knn":
            res = engine.true_knn_search(queries, k=k, radius=radius)
        else:
            res = engine.range_search(queries, radius=radius, k=k)
        walls.append(time.perf_counter() - t0)

    cache = (
        engine.cache_stats()
        if scenario.shards
        else engine.gas_cache.stats.as_dict()
    )
    report = RunReport.from_run(
        scenario.name,
        tracer,
        result=res,
        extras={"gas_cache": cache},
    )
    valid = res.indices >= 0
    record = {
        "counters": _int_counters(report.counters),
        "phases": {
            phase: {
                "modeled_s": stats.modeled_s,
                "counters": _int_counters(stats.counters),
            }
            for phase, stats in report.phases.items()
        },
        "breakdown": report.breakdown,
        "modeled_s": report.modeled_s,
        "wall_s": sum(walls),
        "neighbors": int(res.counts.sum()),
        "checksum": int(res.indices[valid].sum()),
    }
    if scenario.repeat > 1:
        warm = sum(walls[1:]) / (scenario.repeat - 1)
        record["wall_first_s"] = walls[0]
        record["wall_warm_s"] = warm
        record["warm_speedup"] = (walls[0] / warm) if warm > 0 else float("inf")
        record["gas_cache"] = cache
    if scenario.backend and not scenario.shards:
        record["backend"] = {
            "requested": engine.backend.name,
            "is_fallback": bool(engine.backend.is_fallback),
        }
    if scenario.budget:
        bud = res.report.extras.get("budget", {})
        record["budget"] = {
            key: bud[key]
            for key in (
                "step_budget",
                "budget_exhausted",
                "exhausted_queries",
                "total_queries",
                "recall_lower_bound",
            )
            if key in bud
        }
    if mode == "true_knn":
        # The expansion loop must land on the exact answer: pin the
        # round count and compare every cell against the brute-force
        # exact-kNN oracle (bench clouds are in generic position, so
        # raw bit-identity holds — no k-boundary distance ties).
        from repro.baselines.brute import brute_force_true_knn

        oracle = brute_force_true_knn(points, queries, k=k)
        tk = res.report.extras["true_knn"]
        record["true_knn_rounds"] = int(tk["rounds"])
        record["true_knn_converged"] = bool(tk["converged"])
        record["oracle_identical"] = bool(
            np.array_equal(res.indices, oracle.indices)
            and np.array_equal(res.counts, oracle.counts)
            and np.array_equal(res.sq_distances, oracle.sq_distances)
        )
    return record


def serial_twin(name: str) -> str | None:
    """Name of the serial scenario a ``/parN`` scenario mirrors."""
    if "/par" not in name:
        return None
    return name.rsplit("/par", 1)[0]


_SHARD_SUFFIX = re.compile(r"/sh\d+$")


def shard_twin(name: str) -> str | None:
    """Name of the single-engine scenario a ``/shN`` scenario mirrors."""
    if not _SHARD_SUFFIX.search(name):
        return None
    return _SHARD_SUFFIX.sub("", name)


_BACKEND_SUFFIX = re.compile(r"/nb$")
_BUDGET_SUFFIX = re.compile(r"/b\d+$")


def backend_twin(name: str) -> str | None:
    """Name of the reference scenario a ``/nb`` scenario mirrors."""
    if not _BACKEND_SUFFIX.search(name):
        return None
    return _BACKEND_SUFFIX.sub("", name)


def budget_twin(name: str) -> str | None:
    """Name of the exact scenario a ``/bN`` scenario mirrors."""
    if not _BUDGET_SUFFIX.search(name):
        return None
    return _BUDGET_SUFFIX.sub("", name)


def run_suite(scenarios: list[Scenario], verbose: bool = True) -> dict:
    """Run every scenario; returns the bench-file payload."""
    records = {}
    for sc in scenarios:
        rec = run_scenario(sc)
        if sc.parallel:
            rec["wall_parallel_s"] = rec["wall_s"]
            twin = serial_twin(sc.name)
            if twin in records:
                rec["wall_serial_s"] = records[twin]["wall_s"]
                if rec["wall_s"] > 0:
                    rec["parallel_speedup"] = rec["wall_serial_s"] / rec["wall_s"]
        records[sc.name] = rec
        if verbose:
            c = rec["counters"]
            warm = (
                f"  warm x{rec['warm_speedup']:.2f}"
                if "warm_speedup" in rec
                else ""
            )
            print(
                f"  {sc.name:<38} modeled {rec['modeled_s'] * 1e6:9.2f} us  "
                f"wall {rec['wall_s']:6.2f} s  "
                f"is={c.get('is_calls', 0):>8,} "
                f"steps={c.get('traversal_steps', 0):>9,}"
                f"{warm}"
            )
    return {
        "schema": SCHEMA_VERSION,
        "created": datetime.date.today().isoformat(),
        "python": platform.python_version(),
        "scenarios": records,
    }


# ----------------------------------------------------------------------
# comparison
# ----------------------------------------------------------------------
def check_parallel_consistency(payload: dict) -> list[str]:
    """Assert every ``/parN`` scenario matches its serial twin exactly.

    Parallel fan-out is constructed to be deterministic (bundle-order
    merging), so counters, results and even modeled seconds must be
    *bit-identical* to the serial run — any drift is a real
    synchronization bug, not noise.
    """
    failures: list[str] = []
    scenarios = payload.get("scenarios", {})
    for name, rec in sorted(scenarios.items()):
        twin = serial_twin(name)
        if twin is None:
            continue
        if twin not in scenarios:
            failures.append(f"{name}: serial twin {twin!r} missing from suite")
            continue
        ref = scenarios[twin]
        for key in ("neighbors", "checksum", "modeled_s"):
            if rec.get(key) != ref.get(key):
                failures.append(
                    f"{name}: {key} diverged from serial twin "
                    f"({ref.get(key)!r} -> {rec.get(key)!r})"
                )
        for key in sorted(set(rec["counters"]) | set(ref["counters"])):
            a, b = rec["counters"].get(key), ref["counters"].get(key)
            if a != b:
                failures.append(
                    f"{name}: counter {key!r} diverged from serial twin "
                    f"({b!r} -> {a!r})"
                )
    return failures


def check_shard_consistency(payload: dict) -> list[str]:
    """Assert every ``/shN`` scenario returns the single-engine answer.

    The sharded scatter-gather merge is value-deterministic, so the
    neighbor population and the index checksum must match the
    single-engine twin exactly. Counters and modeled seconds are *not*
    compared: a sharded topology legitimately builds smaller per-shard
    BVHs and traverses them independently, so its work profile differs
    by construction.
    """
    failures: list[str] = []
    scenarios = payload.get("scenarios", {})
    for name, rec in sorted(scenarios.items()):
        twin = shard_twin(name)
        if twin is None:
            continue
        if twin not in scenarios:
            failures.append(
                f"{name}: single-engine twin {twin!r} missing from suite"
            )
            continue
        ref = scenarios[twin]
        for key in ("neighbors", "checksum"):
            if rec.get(key) != ref.get(key):
                failures.append(
                    f"{name}: {key} diverged from single-engine twin "
                    f"({ref.get(key)!r} -> {rec.get(key)!r})"
                )
    return failures


def check_backend_consistency(payload: dict) -> list[str]:
    """Gate the backend seam and the step budget against their twins.

    ``/nb`` scenarios must be **bit-identical** to their reference
    twin — results, counters *and* modeled seconds: every backend
    performs the same float64 operations in the same order, so the
    compiled kernels (or, without numba, the graceful fallback) may
    change wall-clock only. ``/bN`` scenarios are approximate by
    contract, but honestly so: the neighbor population must be a
    subset of the exact twin's (never more work reported than the
    exact answer), the recorded recall lower bound must be sane, and
    a budgeted run whose budget never fired must be bit-identical.
    """
    failures: list[str] = []
    scenarios = payload.get("scenarios", {})
    for name, rec in sorted(scenarios.items()):
        twin = backend_twin(name)
        if twin is not None:
            if twin not in scenarios:
                failures.append(
                    f"{name}: reference twin {twin!r} missing from suite"
                )
                continue
            ref = scenarios[twin]
            for key in ("neighbors", "checksum", "modeled_s"):
                if rec.get(key) != ref.get(key):
                    failures.append(
                        f"{name}: {key} diverged from reference twin "
                        f"({ref.get(key)!r} -> {rec.get(key)!r})"
                    )
            for key in sorted(set(rec["counters"]) | set(ref["counters"])):
                a, b = rec["counters"].get(key), ref["counters"].get(key)
                if a != b:
                    failures.append(
                        f"{name}: counter {key!r} diverged from reference "
                        f"twin ({b!r} -> {a!r})"
                    )
            continue
        twin = budget_twin(name)
        if twin is None:
            continue
        if twin not in scenarios:
            failures.append(f"{name}: exact twin {twin!r} missing from suite")
            continue
        ref = scenarios[twin]
        bud = rec.get("budget")
        if not bud:
            failures.append(f"{name}: budgeted record carries no budget stats")
            continue
        if rec.get("neighbors", 0) > ref.get("neighbors", 0):
            failures.append(
                f"{name}: budgeted run reports MORE neighbors than its "
                f"exact twin ({ref.get('neighbors')!r} -> "
                f"{rec.get('neighbors')!r})"
            )
        bound = bud.get("recall_lower_bound")
        if bound is None or not (0.0 <= bound <= 1.0):
            failures.append(
                f"{name}: recall_lower_bound {bound!r} outside [0, 1]"
            )
        if not bud.get("budget_exhausted", False):
            for key in ("neighbors", "checksum"):
                if rec.get(key) != ref.get(key):
                    failures.append(
                        f"{name}: budget never fired yet {key} diverged "
                        f"from the exact twin ({ref.get(key)!r} -> "
                        f"{rec.get(key)!r})"
                    )
    return failures


def check_true_knn_oracle(payload: dict) -> list[str]:
    """Assert every true-knn scenario matched the brute exact oracle.

    :func:`run_scenario` stamps ``oracle_identical`` (bit-identity of
    indices, counts and squared distances against
    :func:`~repro.baselines.brute.brute_force_true_knn`) and
    ``true_knn_converged`` on every expansion scenario; a ``False``
    either way is a correctness bug in the expansion loop, never noise.
    """
    failures: list[str] = []
    for name, rec in sorted(payload.get("scenarios", {}).items()):
        if "oracle_identical" not in rec:
            continue
        if not rec["oracle_identical"]:
            failures.append(
                f"{name}: true-knn result diverged from the brute-force "
                f"exact-kNN oracle"
            )
        if not rec.get("true_knn_converged", True):
            failures.append(
                f"{name}: expansion hit the round budget without "
                f"satisfying every query "
                f"(rounds={rec.get('true_knn_rounds')!r})"
            )
    return failures


def check_workload_oracle(payload: dict) -> list[str]:
    """Assert every workload scenario matched its brute oracle.

    :func:`_run_workload_scenario` stamps ``workload_oracle_ok`` —
    exact equality of DBSCAN labels/counts, the Hausdorff distance and
    witness pair, or the full SPH trajectory against the brute-force
    recomputation. A ``False`` is a correctness bug in the pipeline or
    the engine, never noise.
    """
    failures: list[str] = []
    for name, rec in sorted(payload.get("scenarios", {}).items()):
        if "workload_oracle_ok" not in rec:
            continue
        if not rec["workload_oracle_ok"]:
            failures.append(
                f"{name}: workload result diverged from its brute-force "
                f"oracle"
            )
    return failures


def compare_records(
    current: dict,
    baseline: dict,
    wall_tol: float = WALL_TOL,
    check_wall: bool = True,
    modeled_rtol: float = MODELED_RTOL,
) -> list[str]:
    """Diff two bench payloads; returns failure descriptions.

    Only scenarios present in *both* files are compared (a smoke run
    against a full baseline compares the smoke subset). Counter and
    checksum drift fails in either direction; wall-clock fails only
    when the current run is slower than ``baseline * (1 + wall_tol)``.
    """
    failures: list[str] = []
    cur = current.get("scenarios", {})
    base = baseline.get("scenarios", {})
    shared = sorted(set(cur) & set(base))
    if not shared:
        return failures

    def diff_counters(name, where, now, then):
        for key in sorted(set(now) | set(then)):
            a, b = now.get(key), then.get(key)
            if a != b:
                failures.append(
                    f"{name}: {where} counter {key!r} changed "
                    f"{b!r} -> {a!r} (counters must match exactly)"
                )

    for name in shared:
        c, b = cur[name], base[name]
        diff_counters(name, "total", c["counters"], b["counters"])
        for phase in sorted(set(c.get("phases", {})) | set(b.get("phases", {}))):
            pc = c.get("phases", {}).get(phase, {}).get("counters", {})
            pb = b.get("phases", {}).get(phase, {}).get("counters", {})
            diff_counters(name, f"phase {phase!r}", pc, pb)
        for key in ("neighbors", "checksum"):
            if c.get(key) != b.get(key):
                failures.append(
                    f"{name}: result {key} changed {b.get(key)!r} -> "
                    f"{c.get(key)!r} (results must be reproducible)"
                )
        bm, cm = b.get("modeled_s", 0.0), c.get("modeled_s", 0.0)
        if abs(cm - bm) > modeled_rtol * max(abs(bm), abs(cm), 1e-300):
            failures.append(
                f"{name}: modeled_s drifted {bm!r} -> {cm!r} "
                f"(tolerance {modeled_rtol:g} relative)"
            )
        if check_wall:
            bw, cw = b.get("wall_s", 0.0), c.get("wall_s", 0.0)
            if bw > 0 and cw > bw * (1.0 + wall_tol):
                failures.append(
                    f"{name}: wall-clock regressed {bw:.3f}s -> {cw:.3f}s "
                    f"(> +{wall_tol:.0%} tolerance)"
                )
    return failures


def find_baseline(directory: Path, exclude: Path | None = None) -> Path | None:
    """The most recent ``BENCH_*.json`` in ``directory``, if any."""
    candidates = sorted(
        p
        for p in directory.glob("BENCH_*.json")
        if exclude is None or p.resolve() != exclude.resolve()
    )
    return candidates[-1] if candidates else None


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
#: scenario profiled by ``--profile`` / ``make profile`` when none is
#: named: the fully-optimized large scenario, the one the replay and
#: fan-out work target
_PROFILE_DEFAULT = "clustered-2000/sched+part/knn"


def profile_scenario(name: str, top: int = 15) -> int:
    """cProfile one suite scenario and print the hottest functions."""
    matches = [sc for sc in full_suite() if sc.name == name]
    if not matches:
        print(f"bench: no scenario named {name!r}; choices:", file=sys.stderr)
        for sc in full_suite():
            print(f"  {sc.name}", file=sys.stderr)
        return 2
    scenario = matches[0]
    print(f"bench: profiling {scenario.name}")
    profiler = cProfile.Profile()
    profiler.enable()
    run_scenario(scenario)
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative").print_stats(top)

    # Hot-path summary: MBR pruning effectiveness and the wall-clock of
    # each registered backend on this scenario (outside the profiler —
    # cProfile overhead would drown the comparison). A numba fallback
    # runs the NumPy kernels, so its timing is a seam-overhead check.
    from repro.backend import BACKEND_NAMES, resolve_backend

    print("bench: hot-path summary")
    for bname in BACKEND_NAMES:
        backend = resolve_backend(bname)
        rec = run_scenario(
            replace(scenario, backend="" if bname == "numpy" else bname)
        )
        c = rec["counters"]
        tag = " [fallback: numba not installed]" if backend.is_fallback else ""
        print(
            f"  backend {bname:>6}{tag}: wall {rec['wall_s']:6.2f} s, "
            f"leaf pairs pruned {c.get('leaves_pruned', 0):,}, "
            f"bulk-accepted {c.get('leaves_bulk_accepted', 0):,}, "
            f"prim transactions {c.get('prim_transactions', 0):,}"
        )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.bench",
        description="run the pinned perf-regression bench suite",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the small CI subset; implies --no-wall and --no-write",
    )
    parser.add_argument(
        "--dir",
        default=".",
        help="directory holding BENCH_*.json files (default: cwd)",
    )
    parser.add_argument("--out", help="output path (default: <dir>/BENCH_<date>.json)")
    parser.add_argument(
        "--baseline",
        help="baseline file to diff against (default: newest BENCH_*.json in --dir)",
    )
    parser.add_argument(
        "--wall-tol",
        type=float,
        default=WALL_TOL,
        help="wall-clock regression tolerance (default 0.20 = +20%%)",
    )
    wall = parser.add_mutually_exclusive_group()
    wall.add_argument(
        "--check-wall", dest="check_wall", action="store_true", default=None
    )
    wall.add_argument("--no-wall", dest="check_wall", action="store_false")
    write = parser.add_mutually_exclusive_group()
    write.add_argument(
        "--write", dest="write", action="store_true", default=None,
        help="write the BENCH_<date>.json artifact",
    )
    write.add_argument("--no-write", dest="write", action="store_false")
    parser.add_argument(
        "--profile",
        nargs="?",
        const=_PROFILE_DEFAULT,
        metavar="SCENARIO",
        help="cProfile one scenario (default: %(const)s) and print the "
        "top functions by cumulative time instead of running the suite",
    )
    parser.add_argument(
        "--backend-check",
        action="store_true",
        help="run only the backend gate suite: compiled-backend twins "
        "must be bit-identical to the NumPy reference, budgeted twins "
        "bounded; writes and compares nothing",
    )
    args = parser.parse_args(argv)

    if args.profile:
        return profile_scenario(args.profile)

    if args.backend_check:
        from repro.backend import available_backends

        suite = backend_suite()
        print(
            f"bench: backend gate ({len(suite)} scenarios; native "
            f"backends: {', '.join(available_backends())})"
        )
        payload = run_suite(suite)
        failures = check_backend_consistency(payload)
        if failures:
            print(
                f"bench: {len(failures)} backend/budget divergence(s):",
                file=sys.stderr,
            )
            for failure in failures:
                print(f"  FAIL {failure}", file=sys.stderr)
            return 1
        print(
            "bench: backend twins bit-identical to the NumPy reference, "
            "budgeted twins bounded by their exact twins"
        )
        return 0

    check_wall = args.check_wall if args.check_wall is not None else not args.smoke
    do_write = args.write if args.write is not None else not args.smoke

    directory = Path(args.dir)
    today = datetime.date.today().isoformat()
    out_path = Path(args.out) if args.out else directory / f"BENCH_{today}.json"

    suite = smoke_suite() if args.smoke else full_suite()
    label = "smoke" if args.smoke else "full"
    print(f"bench: running the {label} suite ({len(suite)} scenarios)")
    payload = run_suite(suite)

    status = 0
    par_failures = check_parallel_consistency(payload)
    if par_failures:
        print(
            f"bench: {len(par_failures)} parallel/serial divergence(s):",
            file=sys.stderr,
        )
        for failure in par_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        status = 1
    else:
        print("bench: parallel scenarios match their serial twins exactly")

    shard_failures = check_shard_consistency(payload)
    if shard_failures:
        print(
            f"bench: {len(shard_failures)} sharded/single divergence(s):",
            file=sys.stderr,
        )
        for failure in shard_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        status = 1
    else:
        print("bench: sharded scenarios match their single-engine twins")

    backend_failures = check_backend_consistency(payload)
    if backend_failures:
        print(
            f"bench: {len(backend_failures)} backend/budget divergence(s):",
            file=sys.stderr,
        )
        for failure in backend_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        status = 1
    else:
        print("bench: backend twins bit-identical, budgeted twins bounded")

    tknn_failures = check_true_knn_oracle(payload)
    if tknn_failures:
        print(
            f"bench: {len(tknn_failures)} true-knn oracle divergence(s):",
            file=sys.stderr,
        )
        for failure in tknn_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        status = 1
    else:
        print("bench: true-knn scenarios match the brute exact-kNN oracle")

    wl_failures = check_workload_oracle(payload)
    if wl_failures:
        print(
            f"bench: {len(wl_failures)} workload oracle divergence(s):",
            file=sys.stderr,
        )
        for failure in wl_failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        status = 1
    else:
        print("bench: workload scenarios match their brute oracles")

    if args.baseline:
        baseline_path = Path(args.baseline)
        if not baseline_path.is_file():
            print(f"bench: baseline {baseline_path} not found", file=sys.stderr)
            return 2
    else:
        baseline_path = find_baseline(directory, exclude=out_path if do_write else None)

    if baseline_path is None:
        print("bench: no baseline BENCH_*.json found; nothing to compare")
    else:
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        failures = compare_records(
            payload, baseline, wall_tol=args.wall_tol, check_wall=check_wall
        )
        compared = sorted(
            set(payload["scenarios"]) & set(baseline.get("scenarios", {}))
        )
        print(
            f"bench: compared {len(compared)} scenario(s) against "
            f"{baseline_path.name}"
            + ("" if check_wall else " (wall-clock checks skipped)")
        )
        if failures:
            print(f"bench: {len(failures)} regression(s):", file=sys.stderr)
            for failure in failures:
                print(f"  FAIL {failure}", file=sys.stderr)
            status = 1
        else:
            print("bench: no regressions")

    if do_write:
        with open(out_path, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench: wrote {out_path}")
    return status


if __name__ == "__main__":
    sys.exit(main())
