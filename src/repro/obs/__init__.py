"""Observability: structured run tracing and perf-regression benching.

The subsystem has three layers:

* :mod:`repro.obs.tracer` — cheap, nestable spans (wall time + model
  counter deltas) that the engine, pipeline and GAS builds emit into.
  The default :data:`~repro.obs.tracer.NULL_TRACER` records nothing and
  costs nothing; pass a :class:`~repro.obs.tracer.RecordingTracer` to
  capture a full span tree.
* :mod:`repro.obs.report` — :class:`~repro.obs.report.RunReport`, the
  JSON-serializable record of one run: Fig. 12 breakdown, per-phase
  rollups (data / partition / build / schedule / traverse), total
  counters, and the span tree.
* :mod:`repro.obs.bench` — the pinned perf-regression suite
  (``python -m repro.obs.bench``) that emits ``BENCH_<date>.json`` and
  compares against the last committed bench file (counters exact,
  wall-clock within tolerance), exiting nonzero on regression.

``repro trace`` (the CLI verb) renders a recorded run via
:mod:`repro.obs.render`.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    PHASES,
    RecordingTracer,
    Span,
    Tracer,
)
from repro.obs.report import PhaseStats, RunReport
from repro.obs.render import render_counter_table, render_report, render_spans

__all__ = [
    "NULL_TRACER",
    "PHASES",
    "RecordingTracer",
    "Span",
    "Tracer",
    "PhaseStats",
    "RunReport",
    "render_counter_table",
    "render_report",
    "render_spans",
]
