"""The structured record of one observed run (dataclass -> JSON).

:class:`RunReport` unifies what :mod:`repro.metrics.breakdown` and the
per-launch counters each half-provide: the Fig. 12 time breakdown, the
per-phase rollups (data / partition / build / schedule / traverse),
the run-wide counter totals, and the full span tree — all in one
JSON-round-trippable object. The bench harness persists these records
into ``BENCH_<date>.json`` and diffs them across commits.

Note the engine's :class:`repro.core.results.RunReport` is the
*modeled-performance* summary attached to every search result; this
class is the *observability* record built from a recording tracer and
is deliberately a superset (it embeds the breakdown dict).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.tracer import PHASES, RecordingTracer, Span


@dataclass
class PhaseStats:
    """Aggregate of every span attributed to one phase."""

    wall_s: float = 0.0
    counters: dict = field(default_factory=dict)

    @property
    def modeled_s(self) -> float:
        return float(self.counters.get("modeled_s", 0.0))

    def to_dict(self) -> dict:
        return {"wall_s": self.wall_s, "counters": dict(self.counters)}

    @classmethod
    def from_dict(cls, data: dict) -> "PhaseStats":
        return cls(
            wall_s=data.get("wall_s", 0.0),
            counters=dict(data.get("counters", {})),
        )


@dataclass
class RunReport:
    """Everything one traced run produced, ready for JSON.

    Attributes
    ----------
    name:
        Scenario or run label.
    device:
        Simulated device name.
    scenario:
        Free-form inputs record (dataset, sizes, mode, k, radius,
        config variant, seed ...).
    breakdown:
        The engine's Fig. 12 category dict (``data/opt/bvh/fs/search``
        plus ``total``), in modeled seconds.
    phases:
        Phase -> :class:`PhaseStats` rollup from the span tree.
    counters:
        Run-wide counter totals (sum over every span).
    spans:
        The recorded span tree (top-level spans).
    wall_s:
        Total simulator wall seconds (sum of top-level span walls).
    extras:
        Anything else worth persisting (result checksums etc.).
    """

    name: str
    device: str = ""
    scenario: dict = field(default_factory=dict)
    breakdown: dict = field(default_factory=dict)
    phases: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    wall_s: float = 0.0
    extras: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_run(
        cls,
        name: str,
        tracer: RecordingTracer,
        result=None,
        scenario: dict | None = None,
        extras: dict | None = None,
    ) -> "RunReport":
        """Build the record from a recording tracer and, optionally, the
        :class:`~repro.core.results.SearchResults` the run returned."""
        rollup = tracer.phase_rollup()
        phases = {
            phase: PhaseStats(
                wall_s=stats["wall_s"], counters=dict(stats["counters"])
            )
            for phase, stats in rollup.items()
        }
        breakdown: dict = {}
        device = ""
        if result is not None and getattr(result, "report", None) is not None:
            breakdown = result.report.breakdown.as_dict()
            device = result.report.device
        return cls(
            name=name,
            device=device,
            scenario=dict(scenario or {}),
            breakdown=breakdown,
            phases=phases,
            counters=tracer.total_counters(),
            spans=list(tracer.spans),
            wall_s=sum(s.wall_s for s in tracer.spans),
            extras=dict(extras or {}),
        )

    @property
    def modeled_s(self) -> float:
        return float(self.breakdown.get("total", 0.0))

    def phase_order(self) -> list[str]:
        """Known phases in canonical order, then any others."""
        known = [p for p in PHASES if p in self.phases]
        return known + sorted(set(self.phases) - set(known))

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "device": self.device,
            "scenario": dict(self.scenario),
            "breakdown": dict(self.breakdown),
            "phases": {p: s.to_dict() for p, s in self.phases.items()},
            "counters": dict(self.counters),
            "spans": [s.to_dict() for s in self.spans],
            "wall_s": self.wall_s,
            "extras": dict(self.extras),
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            name=data["name"],
            device=data.get("device", ""),
            scenario=dict(data.get("scenario", {})),
            breakdown=dict(data.get("breakdown", {})),
            phases={
                p: PhaseStats.from_dict(s)
                for p, s in data.get("phases", {}).items()
            },
            counters=dict(data.get("counters", {})),
            spans=[Span.from_dict(s) for s in data.get("spans", ())],
            wall_s=data.get("wall_s", 0.0),
            extras=dict(data.get("extras", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunReport":
        return cls.from_dict(json.loads(text))
