"""Text rendering of traced runs (the ``repro trace`` CLI verb).

Renders a :class:`~repro.obs.report.RunReport` as three blocks: the
per-phase table (modeled vs wall time, headline counters), the run-wide
counter table, and the indented span tree.
"""

from __future__ import annotations

from repro.obs.report import RunReport
from repro.obs.tracer import Span

#: counters surfaced as columns of the phase table, in display order
_PHASE_COLUMNS = ("traversal_steps", "is_calls", "aabb_tests")


def _fmt_count(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return f"{value:,}"


def render_spans(spans: list[Span], indent: int = 0) -> str:
    """The span tree, one line per span, depth-indented."""
    lines: list[str] = []
    for span in spans:
        phase = f" [{span.phase}]" if span.phase else ""
        keys = ", ".join(
            f"{k}={_fmt_count(v)}"
            for k, v in sorted(span.counters.items())
            if k != "modeled_s"
        )
        modeled = span.counters.get("modeled_s")
        timing = f"wall {span.wall_s * 1e3:.2f} ms"
        if modeled is not None:
            timing = f"modeled {modeled * 1e6:.2f} us, " + timing
        lines.append(
            "  " * indent
            + f"{span.name}{phase} | {timing}"
            + (f" | {keys}" if keys else "")
        )
        if span.children:
            lines.append(render_spans(span.children, indent + 1))
    return "\n".join(lines)


def render_counter_table(counters: dict, title: str = "counters") -> str:
    """An aligned two-column name/value table."""
    if not counters:
        return f"{title}: (none)"
    width = max(len(k) for k in counters)
    lines = [f"{title}:"]
    for key in sorted(counters):
        lines.append(f"  {key:<{width}} {_fmt_count(counters[key]):>16}")
    return "\n".join(lines)


def render_report(report: RunReport) -> str:
    """The full ``repro trace`` output for one run."""
    lines: list[str] = []
    head = f"run: {report.name}"
    if report.device:
        head += f"  (device: {report.device})"
    lines.append(head)
    if report.scenario:
        pairs = ", ".join(f"{k}={v}" for k, v in sorted(report.scenario.items()))
        lines.append(f"scenario: {pairs}")
    lines.append(
        f"modeled {report.modeled_s * 1e3:.4f} ms, "
        f"simulator wall {report.wall_s:.3f} s"
    )
    lines.append("")

    if report.phases:
        header = (
            f"{'phase':<10} {'modeled us':>12} {'wall ms':>10} "
            + " ".join(f"{c:>16}" for c in _PHASE_COLUMNS)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for phase in report.phase_order():
            stats = report.phases[phase]
            row = (
                f"{phase:<10} {stats.modeled_s * 1e6:>12.2f} "
                f"{stats.wall_s * 1e3:>10.2f} "
            )
            row += " ".join(
                f"{_fmt_count(stats.counters.get(c, 0)):>16}"
                for c in _PHASE_COLUMNS
            )
            lines.append(row)
        lines.append("")

    lines.append(render_counter_table(report.counters, title="total counters"))
    if report.spans:
        lines.append("")
        lines.append("span tree:")
        lines.append(render_spans(report.spans, indent=1))
    return "\n".join(lines)
