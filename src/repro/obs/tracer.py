"""Nestable tracing spans with model-counter deltas.

The instrumented layers (:mod:`repro.core.engine`,
:mod:`repro.optix.pipeline`, :mod:`repro.optix.gas`) open a span around
each unit of work and attach whatever the simulated hardware counted
there — warp steps, IS/AH invocations, cache hits/misses, AABB tests —
plus the modeled seconds the cost model charged (the ``modeled_s``
counter). Wall time is recorded per span too, but only as simulator
diagnostics: modeled time remains the scientific output.

Two tracers exist:

* :data:`NULL_TRACER` (the default everywhere) — a shared no-op whose
  ``span()`` returns one reusable null context manager. Instrumented
  code pays a single attribute lookup and method call per span, nothing
  else, and the engine's numeric results are bit-identical with or
  without it (asserted in ``tests/test_obs_tracing.py``).
* :class:`RecordingTracer` — records a tree of :class:`Span` objects
  and can roll them up per phase.

Phases are the report's rollup axis: a span either names its phase or
inherits the nearest ancestor's, so e.g. the pipeline's ``launch`` span
(phase-less) lands in ``schedule`` when opened under the scheduling
pre-pass and in ``traverse`` when opened under a bundle launch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

#: canonical phase order of one end-to-end run (cf. Fig. 12: data ->
#: data, partition -> opt, build -> bvh, schedule -> fs + sort,
#: traverse -> search)
PHASES = ("data", "partition", "build", "schedule", "traverse")


@dataclass
class Span:
    """One traced unit of work.

    Attributes
    ----------
    name:
        Human-readable label (``"launch"``, ``"build_gas"``, ...).
    phase:
        Rollup phase, or ``None`` to inherit the enclosing span's.
    wall_s:
        Simulator wall seconds spent inside the span.
    counters:
        Numeric deltas attached via :meth:`add`. ``modeled_s`` is the
        conventional key for modeled GPU seconds.
    extras:
        Free-form non-numeric annotations attached via :meth:`note`.
    children:
        Spans opened while this one was current.
    """

    name: str
    phase: str | None = None
    wall_s: float = 0.0
    counters: dict = field(default_factory=dict)
    extras: dict = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    def add(self, **deltas) -> None:
        """Accumulate numeric counter deltas onto this span."""
        for key, value in deltas.items():
            self.counters[key] = self.counters.get(key, 0) + value

    def note(self, **extras) -> None:
        """Attach non-numeric annotations (labels, widths, ...)."""
        self.extras.update(extras)

    def walk(self):
        """This span, then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "phase": self.phase,
            "wall_s": self.wall_s,
            "counters": dict(self.counters),
            "extras": dict(self.extras),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            name=data["name"],
            phase=data.get("phase"),
            wall_s=data.get("wall_s", 0.0),
            counters=dict(data.get("counters", {})),
            extras=dict(data.get("extras", {})),
            children=[cls.from_dict(c) for c in data.get("children", ())],
        )


class _NullSpan:
    """The reusable do-nothing span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def add(self, **deltas) -> None:
        pass

    def note(self, **extras) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """The no-op tracer base; also the default behavior everywhere."""

    enabled: bool = False

    def span(self, name: str, phase: str | None = None):
        """Open a span; use as ``with tracer.span(...) as sp``."""
        return _NULL_SPAN


#: the shared default tracer: records nothing, costs (almost) nothing
NULL_TRACER = Tracer()


class _SpanHandle:
    """Context manager pushing/popping one recorded span."""

    __slots__ = ("_tracer", "span", "_t0")

    def __init__(self, tracer: "RecordingTracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        t = self._tracer
        parent = t._stack[-1] if t._stack else None
        (parent.children if parent is not None else t.spans).append(self.span)
        t._stack.append(self.span)
        self._t0 = time.perf_counter()
        return self.span

    def __exit__(self, *exc) -> bool:
        self.span.wall_s = time.perf_counter() - self._t0
        self._tracer._stack.pop()
        return False


class RecordingTracer(Tracer):
    """Records every span into a tree rooted at :attr:`spans`."""

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, phase: str | None = None) -> _SpanHandle:
        return _SpanHandle(self, Span(name=name, phase=phase))

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def total_counters(self) -> dict:
        """Sum of every span's counters across the whole tree."""
        out: dict = {}
        for root in self.spans:
            for span in root.walk():
                for key, value in span.counters.items():
                    out[key] = out.get(key, 0) + value
        return out

    def phase_rollup(self) -> dict:
        """Per-phase ``{"wall_s": ..., "counters": {...}}`` aggregates.

        A span contributes its counters to its *effective* phase — its
        own ``phase`` or the nearest ancestor's (``"other"`` when no
        ancestor names one). Wall time is attributed only at the
        outermost span of each phase so nested spans are not counted
        twice.
        """
        rollup: dict = {}

        def bucket(phase: str) -> dict:
            if phase not in rollup:
                rollup[phase] = {"wall_s": 0.0, "counters": {}}
            return rollup[phase]

        def visit(span: Span, inherited: str | None):
            eff = span.phase or inherited
            b = bucket(eff or "other")
            for key, value in span.counters.items():
                b["counters"][key] = b["counters"].get(key, 0) + value
            if eff != inherited:
                b["wall_s"] += span.wall_s
            for child in span.children:
                visit(child, eff)

        for root in self.spans:
            visit(root, None)
        return rollup

    def find(self, name: str) -> list[Span]:
        """Every span named ``name``, in tree order."""
        return [
            span
            for root in self.spans
            for span in root.walk()
            if span.name == name
        ]
