"""Bounded admission queue of the micro-batching search service.

The queue is the service's backpressure boundary: ``offer`` either
accepts a request or rejects it *immediately* with a retry hint
(:class:`AdmissionError`), so overload never manifests as unbounded
memory or silently growing latency. Dequeue is batch-shaped:
:meth:`RequestQueue.pop_batch` pulls the oldest live request plus every
*compatible* pending request (same point-set fingerprint, mode, ``k``
and ``radius`` — the precondition for fusing them into one
:meth:`~repro.core.engine.RTNNEngine.search_fused` launch), culling
cancelled and deadline-expired requests along the way.

This module is plain synchronous bookkeeping — no asyncio, no threads —
so it is trivially testable; :mod:`repro.serve.service` owns the event
loop and the locking discipline (a single worker task).
"""

from __future__ import annotations

from dataclasses import dataclass


class ServeError(RuntimeError):
    """Base class of every service-level failure."""


class AdmissionError(ServeError):
    """The queue is full; retry after ``retry_after_s`` seconds."""

    def __init__(self, depth: int, retry_after_s: float):
        super().__init__(
            f"queue full ({depth} pending); retry in {retry_after_s:.3f}s"
        )
        self.depth = depth
        self.retry_after_s = retry_after_s


class DeadlineExpired(ServeError):
    """The request's deadline passed before it could be served."""


class ServiceStopped(ServeError):
    """The service shut down before the request completed."""


@dataclass
class SearchRequest:
    """One client request plus its service-side bookkeeping.

    ``deadline_at`` is an *absolute* monotonic timestamp (or ``None``
    for no deadline); ``future`` is resolved by the worker with a
    :class:`~repro.serve.service.ServeResult` or a
    :class:`ServeError`. ``cancelled`` requests are dropped at the next
    dequeue without being served.
    """

    rid: int
    kind: str                   # "knn" | "range" | "true_knn"
    queries: object             # (N, d) float64 array
    k: int
    radius: float
    submitted_at: float
    deadline_at: float | None = None
    points_fp: str = ""         # engine point-set fingerprint
    future: object = None
    attempts: int = 0
    cancelled: bool = False
    budget: int | None = None   # per-request traversal step budget

    @property
    def n_queries(self) -> int:
        return len(self.queries)

    def compat_key(self) -> tuple:
        """Requests with equal keys may share one fused launch.

        The budget participates: a budgeted request must never ride in
        (or degrade) an exact request's launch, and vice versa.
        """
        return (
            self.points_fp,
            self.kind,
            int(self.k),
            float(self.radius),
            self.budget,
        )

    def expired(self, now: float) -> bool:
        return self.deadline_at is not None and now >= self.deadline_at


class RequestQueue:
    """FIFO request buffer with a hard depth bound.

    Admission control is depth-based: past ``max_depth`` pending
    requests, :meth:`offer` raises :class:`AdmissionError` carrying a
    retry hint (the caller-supplied ``retry_after_s``, typically a
    small multiple of the batching window scaled by how full the queue
    is). Rejected work costs the service nothing.
    """

    def __init__(self, max_depth: int, retry_after_s: float = 0.05):
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = int(max_depth)
        self.retry_after_s = float(retry_after_s)
        self._items: list[SearchRequest] = []
        self.rejected = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    # ------------------------------------------------------------------
    def offer(self, req: SearchRequest) -> None:
        """Admit ``req`` or raise :class:`AdmissionError` when full."""
        if len(self._items) >= self.max_depth:
            self.rejected += 1
            # Scale the hint with occupancy past the bound: a queue
            # rejected at exactly-full suggests one window; a deeply
            # contended one (many rejects) still gives a finite hint.
            raise AdmissionError(len(self._items), self.retry_after_s)
        self._items.append(req)

    def pop_batch(
        self,
        now: float,
        max_requests: int,
        max_queries: int,
    ) -> tuple[list[SearchRequest], list[SearchRequest]]:
        """Pull one compatible batch; cull dead requests on the way.

        Returns ``(batch, expired)``: ``batch`` is the oldest live
        request plus up to ``max_requests - 1`` compatible followers
        (bounded also by ``max_queries`` total fused queries, though
        the seed request is always taken), in arrival order; ``expired``
        are requests whose deadline passed while queued — the caller
        must fail their futures. Cancelled requests are dropped
        silently. Incompatible requests keep their queue position.
        """
        batch: list[SearchRequest] = []
        expired: list[SearchRequest] = []
        keep: list[SearchRequest] = []
        key = None
        n_queries = 0
        for req in self._items:
            if req.cancelled:
                continue
            if req.expired(now):
                expired.append(req)
                continue
            if key is None:
                key = req.compat_key()
                batch.append(req)
                n_queries += req.n_queries
                continue
            if (
                len(batch) < max_requests
                and req.compat_key() == key
                and n_queries + req.n_queries <= max_queries
            ):
                batch.append(req)
                n_queries += req.n_queries
            else:
                keep.append(req)
        self._items = keep
        return batch, expired

    def drain(self) -> list[SearchRequest]:
        """Remove and return every pending request (for shutdown)."""
        items, self._items = self._items, []
        return [r for r in items if not r.cancelled]
