"""The asyncio micro-batching neighbor-search service.

:class:`SearchService` turns the blocking one-shot
:meth:`RTNNEngine.knn_search` / :meth:`RTNNEngine.range_search` calls
into a served primitive with production-shaped semantics:

* ``submit()`` returns an awaitable that resolves to a
  :class:`ServeResult`; admission control rejects immediately with a
  retry hint when the queue is full (:class:`AdmissionError`);
* a single worker task gathers arrivals for one *batching window*,
  fuses compatible requests into a single
  :meth:`RTNNEngine.search_fused` launch (bit-identical per-request
  results — see :mod:`repro.serve.batcher`), and runs it on a worker
  thread so the event loop stays responsive;
* transient launch failures are retried with exponential backoff up to
  ``max_attempts``; exhaustion falls back to the exact brute baseline
  with results marked ``degraded=True``, and repeated failures (or a
  queue past the overload watermark) put the whole service into a
  degraded cooldown during which batches skip the engine entirely —
  load is shed, answers keep flowing;
* per-request deadlines are enforced at dequeue and at every retry
  boundary (:class:`DeadlineExpired`); cancelling the ``submit``
  awaitable marks the request so the worker drops it.

The front door is deliberately in-process and single-loop: the engine
it holds is the serialized resource, exactly like one model replica in
an inference-serving stack. To scale past one simulated device, hand
it a :class:`~repro.serve.shard.ShardedEngine` — same ``submit()``
surface, same batching/retry/degradation machinery, but each fused
launch scatter-gathers across N spatially sharded engine workers with
bit-identical results (see :mod:`repro.serve.shard`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.baselines.brute import (
    brute_force_knn,
    brute_force_range,
    brute_force_true_knn,
)
from repro.core.results import SearchResults
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.batcher import MicroBatch, execute_batch
from repro.serve.faults import FaultInjector
from repro.serve.metrics import ServiceMetrics
from repro.serve.queue import (
    AdmissionError,
    DeadlineExpired,
    RequestQueue,
    SearchRequest,
    ServeError,
    ServiceStopped,
)
from repro.utils.validate import as_points, check_positive, check_positive_int


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of the serving tier.

    Attributes
    ----------
    max_queue_depth:
        Admission bound: pending requests past this are rejected.
    batch_window_s:
        How long the worker waits after seeing work before dequeuing,
        letting concurrent arrivals coalesce into one launch.
    max_batch_requests / max_batch_queries:
        Caps on batch occupancy and total fused queries per launch.
    max_attempts:
        Launch attempts per batch before degrading (1 = no retry).
    backoff_base_s / backoff_cap_s:
        Exponential backoff between attempts: ``base * 2**(n-1)``,
        capped.
    degrade_after:
        Consecutive retry-exhausted batches that trip the service into
        degraded mode.
    degrade_cooldown_s:
        How long degraded mode lasts once tripped; during it every
        batch goes straight to the fallback path.
    degrade_queue_depth:
        Overload watermark: a queue at/above this depth at dequeue
        sends the batch down the fallback path (load shedding).
        ``None`` disables depth-based degradation.
    retry_hint_s:
        Retry-after hint attached to admission rejects; ``None``
        derives ``2 * batch_window_s + 0.01``.
    """

    max_queue_depth: int = 64
    batch_window_s: float = 0.005
    max_batch_requests: int = 16
    max_batch_queries: int = 8192
    max_attempts: int = 3
    backoff_base_s: float = 0.01
    backoff_cap_s: float = 0.25
    degrade_after: int = 2
    degrade_cooldown_s: float = 1.0
    degrade_queue_depth: int | None = None
    retry_hint_s: float | None = None

    @property
    def effective_retry_hint_s(self) -> float:
        if self.retry_hint_s is not None:
            return self.retry_hint_s
        return 2.0 * self.batch_window_s + 0.01


@dataclass
class ServeResult:
    """What ``submit`` resolves to: results plus serving metadata."""

    results: SearchResults
    rid: int
    degraded: bool = False
    attempts: int = 1
    batch_occupancy: int = 1
    latency_s: float = 0.0
    queue_wait_s: float = 0.0

    #: convenience pass-throughs
    @property
    def indices(self):
        return self.results.indices

    @property
    def counts(self):
        return self.results.counts

    @property
    def sq_distances(self):
        return self.results.sq_distances


class SearchService:
    """In-process async serving front end over one held engine."""

    def __init__(
        self,
        engine,
        config: ServiceConfig | None = None,
        faults: FaultInjector | None = None,
        tracer: Tracer | None = None,
    ):
        # Accept a SearchSession (has .engine) or a bare RTNNEngine.
        self.engine = getattr(engine, "engine", engine)
        self.config = config or ServiceConfig()
        self.faults = faults if faults is not None else FaultInjector()
        self.tracer = (
            tracer
            if tracer is not None
            else getattr(self.engine, "tracer", NULL_TRACER)
        )
        self.metrics = ServiceMetrics()
        self._queue = RequestQueue(
            self.config.max_queue_depth,
            retry_after_s=self.config.effective_retry_hint_s,
        )
        self._points_fp = getattr(self.engine, "_points_fp", "")
        self._clock = time.monotonic
        self._wake: asyncio.Event | None = None
        self._worker_task: asyncio.Task | None = None
        self._stopping = False
        self._running = False
        self._next_rid = 0
        self._batch_seq = 0
        self._consecutive_failures = 0
        self._degraded_until = 0.0
        self.last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SearchService":
        """Spawn the worker loop (idempotent)."""
        if self._running:
            return self
        self._stopping = False
        self._running = True
        self._wake = asyncio.Event()
        self._worker_task = asyncio.create_task(self._worker())
        return self

    async def stop(self, drain: bool = True) -> None:
        """Shut down the worker.

        ``drain=True`` serves everything already queued first;
        ``drain=False`` fails pending requests with
        :class:`ServiceStopped`.
        """
        if not self._running:
            return
        self._stopping = True
        if not drain:
            for req in self._queue.drain():
                self._resolve_error(req, ServiceStopped("service stopped"))
        self._wake.set()
        await self._worker_task
        self._running = False
        self._worker_task = None

    async def __aenter__(self) -> "SearchService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    @property
    def queue_depth(self) -> int:
        return self._queue.depth

    @property
    def degraded_mode(self) -> bool:
        """Is the service currently inside a degradation cooldown?"""
        return self._clock() < self._degraded_until

    def report(self, name: str = "serve", scenario: dict | None = None):
        """The service rollup as an observability RunReport.

        When the held engine is a sharded topology, its
        ``shard_rollup()`` (placement, per-worker modeled busy time,
        fan-out) rides along under ``extras["service"]["shards"]``.
        """
        tracer = self.tracer if getattr(self.tracer, "enabled", False) else None
        shard_rollup = getattr(self.engine, "shard_rollup", None)
        return self.metrics.to_report(
            name,
            tracer=tracer,
            scenario=scenario,
            shards=shard_rollup() if callable(shard_rollup) else None,
        )

    def update_points(self, points) -> float:
        """Move the held engine's point set between requests.

        Delegates to the engine's ``update_points`` (solo engines refit
        cached GASes in place; a sharded topology re-shards), then
        refreshes the service's point-set fingerprint so subsequent
        micro-batches group under the new compat key. The caller must
        ensure no requests are in flight — the service does not fence
        the worker loop around structure updates; workload steppers
        drive it strictly between settled rounds.
        """
        refit_s = self.engine.update_points(points)
        self._points_fp = getattr(self.engine, "_points_fp", "")
        return refit_s

    # ------------------------------------------------------------------
    # client surface
    # ------------------------------------------------------------------
    async def submit(
        self,
        kind: str,
        queries,
        *,
        k: int,
        radius: float | None = None,
        deadline_s: float | None = None,
        budget: int | None = None,
    ) -> ServeResult:
        """Enqueue one search request; resolves when it is served.

        ``kind="true_knn"`` serves exact unbounded kNN; its ``radius``
        is the round-0 radius of the expansion schedule and may be
        omitted (density-seeded). For ``knn``/``range`` the radius is
        required.

        ``budget`` caps traversal node pops per ray (approximate mode);
        the result's ``report.extras["budget"]`` then carries an
        explicit recall lower bound. Budgeted requests only fuse with
        equally-budgeted ones, so exact requests are never degraded.
        Rejected for ``true_knn``.

        Raises :class:`AdmissionError` immediately when the queue is
        full, :class:`DeadlineExpired` if ``deadline_s`` elapses before
        the request is launched, and :class:`ServiceStopped` if the
        service shuts down without draining. Cancelling the awaitable
        withdraws the request.
        """
        if kind not in ("knn", "range", "true_knn"):
            raise ValueError(
                f"kind must be 'knn', 'range' or 'true_knn', got {kind!r}"
            )
        queries = as_points(queries, "queries")
        k = check_positive_int(k, "k")
        if radius is None:
            if kind != "true_knn":
                raise ValueError(f"radius is required for kind {kind!r}")
            # Resolve the density seed up front so the compatibility
            # key stays a concrete float: equal-k true-kNN requests
            # land on the same key and keep fusing, and the batcher
            # never has to reason about a None radius.
            radius = self.engine.seed_radius(k)
        else:
            radius = check_positive(radius, "radius")
        if budget is not None:
            if kind == "true_knn":
                raise ValueError(
                    "true_knn is incompatible with a step budget"
                )
            budget = check_positive_int(budget, "budget")
        if not self._running or self._stopping:
            raise ServiceStopped("service is not running")
        now = self._clock()
        req = SearchRequest(
            rid=self._next_rid,
            kind=kind,
            queries=queries,
            k=k,
            radius=radius,
            submitted_at=now,
            deadline_at=None if deadline_s is None else now + float(deadline_s),
            points_fp=self._points_fp,
            future=asyncio.get_running_loop().create_future(),
            budget=budget,
        )
        self._next_rid += 1
        try:
            self._queue.offer(req)
        except AdmissionError:
            self.metrics.rejected += 1
            raise
        self.metrics.submitted += 1
        self._wake.set()
        try:
            return await req.future
        except asyncio.CancelledError:
            req.cancelled = True
            self.metrics.cancelled += 1
            raise

    # ------------------------------------------------------------------
    # worker loop
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        cfg = self.config
        while True:
            if not self._queue.depth:
                if self._stopping:
                    return
                self._wake.clear()
                await self._wake.wait()
                continue
            # The batching window: let concurrent arrivals coalesce.
            # Skipped while draining a shutdown — latency no longer
            # buys occupancy then.
            if cfg.batch_window_s > 0.0 and not self._stopping:
                await asyncio.sleep(cfg.batch_window_s)
            stall = self.faults.on_dequeue()
            if stall > 0.0:
                await asyncio.sleep(stall)
            batch_reqs, expired = self._queue.pop_batch(
                self._clock(), cfg.max_batch_requests, cfg.max_batch_queries
            )
            for req in expired:
                self.metrics.expired += 1
                self._resolve_error(
                    req, DeadlineExpired(f"request {req.rid}: deadline at dequeue")
                )
            if batch_reqs:
                try:
                    await self._serve_batch(MicroBatch(batch_reqs))
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # never let a bug hang clients
                    self.last_error = exc
                    for req in batch_reqs:
                        self._resolve_error(
                            req, ServeError(f"internal service error: {exc}")
                        )

    async def _serve_batch(self, batch: MicroBatch) -> None:
        cfg = self.config
        loop = asyncio.get_running_loop()
        seq = self._batch_seq
        self._batch_seq += 1
        started_at = self._clock()
        degraded = self.degraded_mode or (
            cfg.degrade_queue_depth is not None
            and self._queue.depth >= cfg.degrade_queue_depth
        )
        attempts = 0
        results = None
        with self.tracer.span(f"serve.batch[{seq}]", phase="serve") as sp:
            while not degraded:
                attempts += 1
                for req in batch.requests:
                    req.attempts = attempts
                try:
                    spike = self.faults.on_launch()
                    if spike > 0.0:
                        await asyncio.sleep(spike)
                    results = await loop.run_in_executor(
                        None, execute_batch, self.engine, batch
                    )
                    self._consecutive_failures = 0
                    break
                except Exception as exc:  # injected or real engine failure
                    self.last_error = exc
                self.metrics.retries += 1
                if attempts >= cfg.max_attempts:
                    # Retry exhaustion: degrade this batch, and trip
                    # the service-wide cooldown after enough of them.
                    self._consecutive_failures += 1
                    if self._consecutive_failures >= cfg.degrade_after:
                        self._degraded_until = (
                            self._clock() + cfg.degrade_cooldown_s
                        )
                    degraded = True
                    break
                backoff = min(
                    cfg.backoff_base_s * 2.0 ** (attempts - 1),
                    cfg.backoff_cap_s,
                )
                if backoff > 0.0:
                    await asyncio.sleep(backoff)
                batch = self._cull_expired(batch)
                if batch is None:
                    return
            if results is None:
                # Degraded path: exact answers from the brute baseline,
                # no engine involvement, flagged so clients know.
                attempts = max(attempts, 1)
                results = await loop.run_in_executor(
                    None, self._fallback, batch
                )
            # A sharded engine reports shard-level degradation (brute
            # fallback on dead shards, replica failovers) per fused
            # group — i.e. per request — in the launch report.
            shard_extra = None
            if results and results[0].report is not None:
                shard_extra = results[0].report.extras.get("shard")
            if shard_extra is not None:
                self.metrics.observe_shard_batch(shard_extra)
            group_degraded = (shard_extra or {}).get("degraded_groups") or []
            sp.add(
                occupancy=batch.occupancy,
                batch_queries=batch.n_queries,
                attempts=attempts,
                degraded=int(degraded),
                shard_failovers=(shard_extra or {}).get("failovers", 0),
            )
            self.metrics.observe_batch(
                batch.occupancy, batch.n_queries, self._queue.depth, degraded
            )
            done_at = self._clock()
            for pos, (req, res) in enumerate(zip(batch.requests, results)):
                latency = done_at - req.submitted_at
                queue_wait = started_at - req.submitted_at
                req_degraded = degraded or (
                    pos < len(group_degraded) and bool(group_degraded[pos])
                )
                with self.tracer.span("serve.request", phase="serve") as rp:
                    rp.add(
                        latency_s=latency,
                        queue_wait_s=queue_wait,
                        request_queries=req.n_queries,
                        attempts=attempts,
                        degraded=int(req_degraded),
                    )
                    rp.note(rid=req.rid, kind=req.kind)
                self._resolve(
                    req,
                    ServeResult(
                        results=res,
                        rid=req.rid,
                        degraded=req_degraded,
                        attempts=attempts,
                        batch_occupancy=batch.occupancy,
                        latency_s=latency,
                        queue_wait_s=queue_wait,
                    ),
                )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _cull_expired(self, batch: MicroBatch) -> MicroBatch | None:
        """Drop requests that died during backoff; None if all did."""
        now = self._clock()
        alive: list[SearchRequest] = []
        for req in batch.requests:
            if req.cancelled:
                continue
            if req.expired(now):
                self.metrics.expired += 1
                self._resolve_error(
                    req,
                    DeadlineExpired(f"request {req.rid}: deadline during retry"),
                )
            else:
                alive.append(req)
        return MicroBatch(alive) if alive else None

    def _fallback(self, batch: MicroBatch) -> list[SearchResults]:
        """The degraded path: exact brute-force, one request at a time."""
        points = self.engine.points
        out = []
        for req in batch.requests:
            if req.kind == "knn":
                out.append(
                    brute_force_knn(points, req.queries, k=req.k, radius=req.radius)
                )
            elif req.kind == "true_knn":
                # unbounded: the request's radius is only the round-0
                # seed, irrelevant to the exact answer
                out.append(
                    brute_force_true_knn(points, req.queries, k=req.k)
                )
            else:
                out.append(
                    brute_force_range(
                        points, req.queries, radius=req.radius, k=req.k
                    )
                )
        return out

    def _resolve(self, req: SearchRequest, result: ServeResult) -> None:
        if req.future is not None and not req.future.done():
            req.future.set_result(result)
            self.metrics.observe_request(
                result.latency_s, result.queue_wait_s, result.degraded
            )

    def _resolve_error(self, req: SearchRequest, exc: ServeError) -> None:
        if req.future is not None and not req.future.done():
            self.metrics.failed += 1
            req.future.set_exception(exc)
