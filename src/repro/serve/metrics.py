"""Service-level metrics: rollups and `repro.obs` export.

Two granularities, both cheap enough to be always on:

* **per-request spans** — the service grafts a ``serve.request`` span
  (queue wait, attempts, batch occupancy) under each batch's
  ``serve.batch[n]`` span on whatever tracer it was given, so a
  :class:`~repro.obs.tracer.RecordingTracer` sees the serving tier
  nested exactly like the engine tiers below it;
* **service rollups** — :class:`ServiceMetrics` accumulates counters
  (admits, rejects, completions, failures, degradations, expiries,
  cancellations, retries, batches) plus latency and occupancy samples,
  and summarizes them (p50/p99 latency, mean/max occupancy, queue
  depth) into a dict that rides in
  :class:`~repro.obs.report.RunReport` ``extras`` — the same artifact
  the bench harness persists, so service behavior regresses loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.report import RunReport
from repro.obs.tracer import RecordingTracer


@dataclass
class ServiceMetrics:
    """Cumulative counters and samples for one service lifetime."""

    submitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    degraded: int = 0
    expired: int = 0
    cancelled: int = 0
    batches: int = 0
    retries: int = 0
    fallback_batches: int = 0
    shard_batches: int = 0
    shard_failovers: int = 0
    shard_brute: int = 0
    latencies_s: list = field(default_factory=list)
    queue_waits_s: list = field(default_factory=list)
    occupancies: list = field(default_factory=list)
    batch_queries: list = field(default_factory=list)
    depth_samples: list = field(default_factory=list)

    # ------------------------------------------------------------------
    def observe_batch(
        self, occupancy: int, n_queries: int, depth_after: int, degraded: bool
    ) -> None:
        self.batches += 1
        self.occupancies.append(int(occupancy))
        self.batch_queries.append(int(n_queries))
        self.depth_samples.append(int(depth_after))
        if degraded:
            self.fallback_batches += 1

    def observe_shard_batch(self, extra: dict) -> None:
        """Fold one sharded batch's scatter record into the counters.

        ``extra`` is the ``RunReport.extras["shard"]`` dict a
        :class:`~repro.serve.shard.ShardedEngine` attaches to every
        fused launch (failovers, brute-degraded shards, fan-out).
        """
        self.shard_batches += 1
        self.shard_failovers += int(extra.get("failovers", 0))
        self.shard_brute += int(extra.get("brute_shards", 0))

    def observe_request(
        self, latency_s: float, queue_wait_s: float, degraded: bool
    ) -> None:
        self.completed += 1
        self.latencies_s.append(float(latency_s))
        self.queue_waits_s.append(float(queue_wait_s))
        if degraded:
            self.degraded += 1

    # ------------------------------------------------------------------
    @staticmethod
    def _pct(samples: list, q: float) -> float | None:
        if not samples:
            return None
        return float(np.percentile(np.asarray(samples, dtype=np.float64), q))

    @property
    def mean_occupancy(self) -> float | None:
        if not self.occupancies:
            return None
        return float(np.mean(self.occupancies))

    def rollup(self) -> dict:
        """The service-level summary exported via RunReport extras."""
        return {
            "requests": {
                "submitted": self.submitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "degraded": self.degraded,
                "expired": self.expired,
                "cancelled": self.cancelled,
                "retries": self.retries,
            },
            "batches": {
                "count": self.batches,
                "fallback": self.fallback_batches,
                "occupancy_mean": self.mean_occupancy,
                "occupancy_max": max(self.occupancies) if self.occupancies else None,
                "queries_mean": (
                    float(np.mean(self.batch_queries)) if self.batch_queries else None
                ),
            },
            "latency_s": {
                "p50": self._pct(self.latencies_s, 50),
                "p99": self._pct(self.latencies_s, 99),
                "max": max(self.latencies_s) if self.latencies_s else None,
                "queue_wait_p50": self._pct(self.queue_waits_s, 50),
            },
            "queue": {
                "depth_max": max(self.depth_samples) if self.depth_samples else 0,
                "depth_mean": (
                    float(np.mean(self.depth_samples)) if self.depth_samples else 0.0
                ),
            },
            "shard": {
                "batches": self.shard_batches,
                "failovers": self.shard_failovers,
                "brute_shards": self.shard_brute,
            },
        }

    def to_report(
        self,
        name: str = "serve",
        tracer: RecordingTracer | None = None,
        scenario: dict | None = None,
        shards: dict | None = None,
    ) -> RunReport:
        """Package the rollup (and span tree, if traced) as a RunReport.

        ``shards`` — a :meth:`ShardedEngine.shard_rollup` dict — rides
        along as ``extras["service"]["shards"]`` so topology state
        (per-worker busy time, placement, fan-out) persists next to the
        request counters.
        """
        if tracer is not None:
            report = RunReport.from_run(name, tracer, scenario=scenario)
        else:
            report = RunReport(name=name, scenario=dict(scenario or {}))
        report.extras["service"] = self.rollup()
        if shards is not None:
            report.extras["service"]["shards"] = shards
        return report
