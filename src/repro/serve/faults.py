"""Deterministic, seedable fault injection for the search service.

The service's resilience paths — bounded retry with backoff, retry
exhaustion falling back to the degraded baseline, deadline expiry under
latency spikes — are only trustworthy if tests can *provoke* them on
demand and reproducibly. :class:`FaultInjector` sits between the worker
loop and the engine and injects three fault classes:

* **engine exceptions** — :class:`TransientFault` raised instead of the
  launch (a flaky device, an OOM, a poisoned structure);
* **latency spikes** — extra seconds the worker must sleep before the
  launch (slow device, contended executor);
* **queue stalls** — extra seconds added before dequeue (a wedged
  worker), which is how tests force deadlines to expire *while queued*.

Two driving modes compose:

* a **script** — an explicit per-launch list of :class:`Fault` entries
  consumed in order (index ``i`` applies to the ``i``-th launch
  attempt); fully deterministic, no randomness involved;
* **rates** — per-launch Bernoulli draws from a
  :func:`repro.utils.rng.default_rng` stream, so a fixed seed yields
  the exact same fault sequence on every run.

The injector never touches results: a launch either happens exactly as
it would have, or raises/waits first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.queue import ServeError
from repro.utils.rng import default_rng


class TransientFault(ServeError):
    """An injected engine failure the service should retry."""


@dataclass(frozen=True)
class Fault:
    """What happens to one launch attempt: raise and/or delay."""

    error: bool = False
    latency_s: float = 0.0

    @classmethod
    def ok(cls) -> "Fault":
        return cls()

    @classmethod
    def fail(cls) -> "Fault":
        return cls(error=True)

    @classmethod
    def slow(cls, latency_s: float) -> "Fault":
        return cls(latency_s=latency_s)


class FaultInjector:
    """Injects faults into the worker loop, deterministically.

    Parameters
    ----------
    script:
        Explicit per-launch faults, consumed in order; launches past
        the end of the script are clean. Overrides the rate draws for
        the launches it covers.
    error_rate, latency_rate, latency_s:
        Bernoulli fault rates applied to launches beyond the script,
        drawn from a stream seeded with ``seed``.
    stall_s:
        Fixed stall injected before every dequeue (0 = none).
    seed:
        Seed for the rate draws; the same seed replays the same fault
        sequence.
    """

    def __init__(
        self,
        script: list[Fault] | None = None,
        error_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency_s: float = 0.0,
        stall_s: float = 0.0,
        seed: int = 0,
    ):
        self.script = list(script or [])
        self.error_rate = float(error_rate)
        self.latency_rate = float(latency_rate)
        self.latency_s = float(latency_s)
        self.stall_s = float(stall_s)
        self._rng = default_rng(seed)
        self.launches = 0
        self.injected_errors = 0
        self.injected_latency_s = 0.0

    # ------------------------------------------------------------------
    def on_dequeue(self) -> float:
        """Seconds the worker must stall before pulling a batch."""
        return self.stall_s

    def on_launch(self) -> float:
        """Decide the current launch attempt's fate.

        Returns the latency spike (seconds the worker must wait before
        launching) and raises :class:`TransientFault` if the attempt is
        to fail. Either way the attempt counter advances, so scripted
        sequences progress across retries.
        """
        i = self.launches
        self.launches += 1
        if i < len(self.script):
            fault = self.script[i]
        else:
            error = self.error_rate > 0.0 and (
                float(self._rng.random()) < self.error_rate
            )
            spike = self.latency_rate > 0.0 and (
                float(self._rng.random()) < self.latency_rate
            )
            fault = Fault(error=error, latency_s=self.latency_s if spike else 0.0)
        self.injected_latency_s += fault.latency_s
        if fault.error:
            self.injected_errors += 1
            raise TransientFault(
                f"injected engine fault on launch {i}"
            )
        return fault.latency_s
