"""Micro-batching: fuse compatible requests into one engine launch.

The batcher is the serving-side incarnation of the paper's core move —
turning an incoherent stream of small query sets into one coherent,
cache-friendly launch. A :class:`MicroBatch` holds requests that share
a compatibility key (point-set fingerprint, mode, ``k``, ``radius``);
:func:`execute_batch` hands their query groups to
:meth:`RTNNEngine.search_fused`, which charges the point transfer once,
schedules once over the union, resolves every GAS through the shared
cache — and still partitions/bundles *per request*, so each request's
rows come back bit-identical to a solo engine call (asserted in
``tests/test_serve_batcher.py`` and the serve-smoke CI job).

``batch occupancy`` (requests per launch) is the service's headline
coalescing metric: occupancy 1 means the window never caught two
compatible requests in flight; sustained occupancy > 1 is amortization
working.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.queue import SearchRequest
from repro.utils.validate import as_points


@dataclass
class MicroBatch:
    """Compatible requests fused into one engine launch."""

    requests: list[SearchRequest]

    def __post_init__(self):
        if not self.requests:
            raise ValueError("a MicroBatch needs at least one request")
        # The padding/bit-identity contract is stated over float64
        # C-contiguous queries. The service front door normalizes at
        # submit(), but a batch can also be built directly — coerce
        # here so two requests differing only in query dtype (float32
        # vs float64) can never ride one fused pass un-normalized: the
        # upcast happens explicitly, per request, exactly as a solo
        # call's own as_points would do it (float32 -> float64 is
        # value-exact, so solo bit-identity is preserved).
        for req in self.requests:
            req.queries = as_points(req.queries, "queries")
        key = self.requests[0].compat_key()
        for req in self.requests[1:]:
            if req.compat_key() != key:
                raise ValueError(
                    f"incompatible request in batch: {req.compat_key()} != {key}"
                )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.requests[0].kind

    @property
    def k(self) -> int:
        return self.requests[0].k

    @property
    def radius(self) -> float:
        return self.requests[0].radius

    @property
    def budget(self) -> int | None:
        return self.requests[0].budget

    @property
    def occupancy(self) -> int:
        """Requests fused into this launch."""
        return len(self.requests)

    @property
    def n_queries(self) -> int:
        return sum(r.n_queries for r in self.requests)

    def query_groups(self) -> list:
        return [r.queries for r in self.requests]


def execute_batch(engine, batch: MicroBatch) -> list:
    """Run ``batch`` as one fused engine pass.

    Returns one :class:`~repro.core.results.SearchResults` per request,
    aligned with ``batch.requests``. Runs on the service's worker
    thread; everything it touches on the engine (notably the GAS
    cache) must be thread-safe against direct engine callers.
    """
    return engine.search_fused(
        batch.kind, batch.query_groups(), radius=batch.radius, k=batch.k,
        budget=batch.budget,
    )
