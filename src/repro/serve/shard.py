"""Sharded multi-worker serving: scatter-gather over spatial shards.

The single-engine service tier funnels every request through one
:class:`~repro.core.engine.RTNNEngine` — one simulated device, one GAS
cache, one modeled clock. This module scales past that engine the way
the paper itself scales past oversized scenes: **spatial
decomposition**. The point cloud is split into spatially coherent
shards (:func:`repro.core.partition.make_spatial_shards`, a Morton-walk
reuse of the partitioning machinery), each shard is owned by an engine
worker with its own :class:`RTNNEngine` and GAS cache, and shards are
placed onto workers with bounded-load **consistent hashing** keyed on
the dataset fingerprint plus the shard AABB.

:class:`ShardedEngine` presents the same engine surface the serving
front door already consumes (``search_fused`` / ``knn_search`` /
``range_search`` / ``points`` / ``_points_fp``), so the existing
:class:`~repro.serve.service.SearchService` — admission queue,
batching window, deadlines, retries, degradation — works unchanged on
top of N workers.

**Scatter.** Each query fans out only to the shards whose tight AABB,
inflated by the search radius, can contain an ``r``-neighbor (the
point-to-box distance bound). Interior queries visit one shard;
boundary queries visit the few they overlap.

**Gather.** Per-shard rows (local indices remapped through the shard's
global ``point_ids``) are concatenated in ascending shard order and
reduced to the ``k`` best by a row-wise stable lexicographic sort on
``(sq_distance, global index)`` — the *canonical order* of
:meth:`repro.core.results.SearchResults.canonical`. The merge depends
only on candidate values, never on completion or traversal order, so
any topology (1 shard, 4 shards, degraded replicas) produces
bit-identical rows; against the raw single-engine path, KNN rows are
bit-identical outright (they are already distance-sorted) and range
rows are bit-identical after canonicalizing the single-engine answer
(range discovery order is traversal-dependent even on one engine). The
guarantee assumes generic position — no two distinct points at exactly
equal distance from a query — which seeded float64 scenes satisfy.

**Failover.** Routing walks each shard's consistent-hash preference
list past dead workers; an injected :class:`TransientFault` (from the
deterministic :class:`~repro.serve.faults.FaultInjector`, consulted
serially in shard order so scripts replay exactly) crashes the chosen
worker and the walk continues to the replica. A shard with no live
owner degrades to the exact brute baseline over the shard's own
points — answers stay bit-identical, the affected requests are flagged
``degraded`` and the event is counted in the service metrics.

**Modeled clock.** Workers are independent devices: each accumulates
the modeled seconds of the sub-launches it executed, and the
topology's *makespan* is the busiest worker's total. Throughput on the
modeled clock is queries served per makespan second — the quantity the
``serve-shard-smoke`` gate requires to scale ≥ 2.5x from 1 to 4
shards.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import fingerprint_array
from repro.core.engine import RTNNConfig, RTNNEngine
from repro.core.expansion import (
    DEFAULT_POLICY,
    ExpansionPolicy,
    cover_radius,
    run_expansion,
    seed_radius,
)
from repro.core.partition import SpatialShard, make_spatial_shards
from repro.core.results import RunReport, SearchResults, empty_results
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.serve.faults import FaultInjector, TransientFault
from repro.utils.validate import as_points, check_positive, check_positive_int


def _ring_hash(key: str) -> int:
    """64-bit position on the ring (stable across processes/platforms)."""
    return int.from_bytes(hashlib.sha1(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent hashing of shard keys onto workers, load-bounded.

    Every worker contributes ``vnodes`` virtual points to a 64-bit
    ring; a key's preference order is the sequence of *distinct*
    workers encountered walking clockwise from the key's own hash.
    Plain consistent hashing balances poorly for a handful of keys
    (four shards often collide on one worker), so primary placement
    uses the bounded-loads variant: :meth:`assign` walks each shard's
    preference order but skips workers already holding
    ``ceil(n_shards / n_workers)`` primaries. The assignment stays
    deterministic, consistent (removing a worker only moves its own
    shards), and perfectly balanced.
    """

    def __init__(self, worker_ids, vnodes: int = 64):
        self.worker_ids = [int(w) for w in worker_ids]
        if not self.worker_ids:
            raise ValueError("HashRing needs at least one worker")
        self.vnodes = int(vnodes)
        pts = [
            (_ring_hash(f"worker:{wid}:{v}"), wid)
            for wid in self.worker_ids
            for v in range(self.vnodes)
        ]
        pts.sort()
        self._hashes = [h for h, _ in pts]
        self._owners = [w for _, w in pts]

    def preference(self, key: str) -> list[int]:
        """All workers, deduplicated, in clockwise order from ``key``."""
        start = bisect_left(self._hashes, _ring_hash(key))
        seen: list[int] = []
        n = len(self._owners)
        for i in range(n):
            wid = self._owners[(start + i) % n]
            if wid not in seen:
                seen.append(wid)
                if len(seen) == len(self.worker_ids):
                    break
        return seen

    def assign(self, keys: list[str]) -> list[list[int]]:
        """Bounded-load preference list per key (primary first).

        Keys are processed in the given (shard-id) order; each key's
        primary is the first worker on its clockwise walk with spare
        primary capacity, and the remaining workers follow in walk
        order as replica candidates.
        """
        cap = -(-len(keys) // len(self.worker_ids))  # ceil
        load = {wid: 0 for wid in self.worker_ids}
        out: list[list[int]] = []
        for key in keys:
            walk = self.preference(key)
            primary = next(w for w in walk if load[w] < cap)
            load[primary] += 1
            out.append([primary] + [w for w in walk if w != primary])
        return out


class ShardWorker:
    """One engine worker: a private :class:`RTNNEngine` per owned shard.

    Engines (and therefore GAS caches) are built lazily on first use
    and are touched only from the worker's own execution slot — the
    scatter loop serializes all of a worker's sub-launches onto one
    thread per batch — so the class needs no locking. ``busy_s``
    accumulates the modeled seconds of every sub-launch this worker
    executed: the worker's position on the modeled clock.
    """

    def __init__(
        self,
        worker_id: int,
        points: np.ndarray,
        device: DeviceSpec,
        config: RTNNConfig,
        cache_capacity: int | None = None,
    ):
        self.worker_id = int(worker_id)
        self.alive = True
        self.busy_s = 0.0
        self.launches = 0
        self._points = points
        self._device = device
        self._config = config
        self._cache_capacity = cache_capacity
        self._engines: dict[int, RTNNEngine] = {}

    def engine_for(self, shard: SpatialShard) -> RTNNEngine:
        """The (lazily built) engine over ``shard``'s points."""
        engine = self._engines.get(shard.shard_id)
        if engine is None:
            engine = RTNNEngine(
                self._points[shard.point_ids],
                device=self._device,
                config=self._config,
                tracer=NULL_TRACER,
                cache_capacity=self._cache_capacity,
            )
            self._engines[shard.shard_id] = engine
        return engine

    def reset(self, points: np.ndarray) -> None:
        """Drop every engine (topology rebuilt over a new point set)."""
        self._points = points
        self._engines = {}

    def rollup(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "alive": self.alive,
            "busy_s": self.busy_s,
            "launches": self.launches,
            "engines": sorted(self._engines),
        }


@dataclass
class _ShardCall:
    """One shard's flat sub-request for a fused batch."""

    shard_id: int
    queries: np.ndarray
    # (group index, group-local row ids, start offset in `queries`)
    segments: list[tuple[int, np.ndarray, int]] = field(default_factory=list)


class ShardedEngine:
    """N spatial shards behind the single-engine serving surface.

    Parameters
    ----------
    points:
        The full point cloud; sharded on construction.
    n_shards:
        Spatial shards to split into (clamped to ``len(points)``).
    n_workers:
        Engine workers to place shards on (default: one per shard).
    replication:
        Workers eligible to serve each shard (primary + replicas);
        clamped to ``n_workers``. Replicas build their engines lazily
        on first failover.
    device / config / cache_capacity:
        Forwarded to every per-shard engine.
    faults:
        Deterministic injector consulted once per routing attempt, in
        ascending shard order: an injected error crashes the attempted
        worker (failover), scripted latency is charged to the worker's
        modeled busy time.
    tracer:
        Span sink for the per-batch ``shard.batch`` summary span.
    """

    def __init__(
        self,
        points,
        n_shards: int,
        n_workers: int | None = None,
        replication: int = 2,
        device: DeviceSpec = RTX_2080,
        config: RTNNConfig | None = None,
        cache_capacity: int | None = None,
        faults: FaultInjector | None = None,
        tracer: Tracer | None = None,
        vnodes: int = 64,
    ):
        self.points = as_points(points, "points")
        self.device = device
        self.config = config or RTNNConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.faults = faults if faults is not None else FaultInjector()
        self._requested_shards = check_positive_int(n_shards, "n_shards")
        self._cache_capacity = cache_capacity
        self._vnodes = int(vnodes)
        self.shards: list[SpatialShard] = make_spatial_shards(
            self.points, self._requested_shards
        )
        self.n_workers = (
            len(self.shards) if n_workers is None
            else check_positive_int(n_workers, "n_workers")
        )
        self.replication = min(max(int(replication), 1), self.n_workers)
        self._points_fp = fingerprint_array(self.points)
        self.ring = HashRing(range(self.n_workers), vnodes=self._vnodes)
        self.preference = self._assign_shards()
        self.workers = [
            ShardWorker(
                wid, self.points, device, self.config, cache_capacity
            )
            for wid in range(self.n_workers)
        ]
        # memoized true-kNN seed radii (same contract as the engine's)
        self._seed_cache: dict = {}
        # scatter-gather tallies (mutated only on the calling thread)
        self.failovers = 0
        self.brute_fallbacks = 0
        self.fanout_queries = 0
        self.fanout_visits = 0
        self.batches = 0

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def _shard_key(self, shard: SpatialShard) -> str:
        """Routing key: dataset fingerprint + the shard's AABB."""
        box = shard.lo.tobytes() + shard.hi.tobytes()
        return f"{self._points_fp}:{shard.shard_id}:{box.hex()}"

    def _assign_shards(self) -> list[list[int]]:
        keys = [self._shard_key(s) for s in self.shards]
        pref = self.ring.assign(keys)
        return [p[: self.replication] for p in pref]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def modeled_makespan_s(self) -> float:
        """Busiest worker's modeled seconds — the parallel completion
        time of everything served so far (workers are independent
        devices)."""
        return max(w.busy_s for w in self.workers)

    def kill_worker(self, worker_id: int) -> None:
        """Mark a worker dead; its shards fail over on the next batch."""
        self.workers[worker_id].alive = False

    def revive_worker(self, worker_id: int) -> None:
        self.workers[worker_id].alive = True

    def update_points(self, points) -> float:
        """Replace the point set: reshard and drop every worker engine.

        Unlike the single engine there is no refit warm path across a
        reshard (a ROADMAP follow-up); returns 0.0 modeled seconds.
        """
        self.points = as_points(points, "points")
        self._points_fp = fingerprint_array(self.points)
        self._seed_cache.clear()
        self.shards = make_spatial_shards(self.points, self._requested_shards)
        self.preference = self._assign_shards()
        for worker in self.workers:
            worker.reset(self.points)
        return 0.0

    def cache_stats(self) -> dict:
        """GAS-cache counters summed over every worker engine.

        The single-engine surface exposes ``engine.gas_cache.stats``;
        a sharded topology has one cache per worker engine, so callers
        (the bench suite, dashboards) get the aggregate instead.
        """
        totals: dict[str, int] = {}
        for worker in self.workers:
            for shard_id in sorted(worker._engines):
                stats = worker._engines[shard_id].gas_cache.stats.as_dict()
                for key in sorted(stats):
                    totals[key] = totals.get(key, 0) + int(stats[key])
        return totals

    def shard_rollup(self) -> dict:
        """Per-shard/per-worker rollup for ``extras["service"]["shards"]``."""
        visits = self.fanout_visits
        queries = self.fanout_queries
        return {
            "n_shards": self.n_shards,
            "n_workers": self.n_workers,
            "replication": self.replication,
            "failovers": self.failovers,
            "brute_fallbacks": self.brute_fallbacks,
            "batches": self.batches,
            "makespan_s": self.modeled_makespan_s,
            "fanout": {
                "queries": queries,
                "shard_visits": visits,
                "mean": (visits / queries) if queries else None,
            },
            "shard_sizes": [s.n_points for s in self.shards],
            "primaries": [p[0] for p in self.preference],
            "workers": [w.rollup() for w in self.workers],
        }

    # ------------------------------------------------------------------
    # engine surface (what SearchService consumes)
    # ------------------------------------------------------------------
    def knn_search(
        self, queries, k: int, radius: float, budget: int | None = None
    ) -> SearchResults:
        """The ``k`` nearest within ``radius``, scatter-gathered."""
        return self.search_fused(
            "knn", [queries], radius=radius, k=k, budget=budget
        )[0]

    def range_search(
        self, queries, radius: float, k: int, budget: int | None = None
    ) -> SearchResults:
        """Up to ``k`` within ``radius`` (canonical order), scatter-gathered."""
        return self.search_fused(
            "range", [queries], radius=radius, k=k, budget=budget
        )[0]

    def true_knn_search(
        self,
        queries,
        k: int,
        radius: float | None = None,
        policy: ExpansionPolicy | None = None,
    ) -> SearchResults:
        """Exact unbounded kNN, scatter-gathered round by round."""
        return self._true_knn_fused([queries], radius, k, policy)[0]

    def seed_radius(
        self, k: int, policy: ExpansionPolicy | None = None
    ) -> float:
        """Round-0 radius of the true-kNN schedule for the full cloud.

        Computed over the *unsharded* point set with the same shared
        estimator the single engine uses, so the sharded topology walks
        the identical radius schedule — the basis of its bit-identity
        with one engine. Memoized; invalidated on ``update_points``.
        """
        policy = policy or DEFAULT_POLICY
        key = (self._points_fp, int(k), policy)
        r0 = self._seed_cache.get(key)
        if r0 is None:
            r0 = seed_radius(self.points, k, policy)
            self._seed_cache[key] = r0
        return r0

    def search_fused(
        self,
        kind: str,
        query_groups,
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> list[SearchResults]:
        """One scatter-gather pass over several query groups.

        Returns one :class:`SearchResults` per group, rows in canonical
        ``(sq_distance, index)`` order, all sharing one fused
        :class:`RunReport` whose ``extras["shard"]`` records the
        scatter (fan-out, failovers, per-group degradation flags).

        ``kind="true_knn"`` runs the adaptive-expansion loop with one
        scatter-gather pass per round; the per-shard AABB pruning of
        every round's scatter is recomputed at that round's expanded
        radius, so boundary queries fan out to exactly the shards the
        grown ball can reach. ``radius`` is then the round-0 radius and
        may be ``None`` (density-seeded from the full cloud).
        """
        if kind not in ("range", "knn", "true_knn"):
            raise ValueError(
                f"kind must be 'range', 'knn' or 'true_knn', got {kind!r}"
            )
        if kind == "true_knn":
            if budget is not None:
                raise ValueError(
                    "true_knn is incompatible with a step budget: its "
                    "termination test requires exact bounded rounds"
                )
            return self._true_knn_fused(list(query_groups), radius, k)
        groups = [as_points(g, "queries") for g in query_groups]
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        if budget is not None:
            budget = check_positive_int(budget, "budget")
        return self._fused_pass(kind, groups, radius, k, budget=budget)

    def _fused_pass(
        self,
        kind: str,
        groups: list,
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> list[SearchResults]:
        """One validated bounded scatter-gather pass (``knn``/``range``)."""
        plans = self._scatter_plans(groups, radius)
        calls = self._build_calls(groups, plans)
        routes, failover_delta = self._route(calls)
        outcomes = self._execute(kind, calls, routes, radius, k, budget)

        brute_shards = sorted(
            sid for sid, wid in zip([c.shard_id for c in calls], routes)
            if wid is None
        )
        degraded_groups = [
            any(len(plans[gi][sid]) for sid in brute_shards)
            for gi in range(len(groups))
        ]
        results = self._gather(groups, plans, calls, outcomes, k)

        report = self._fused_report(
            groups, calls, outcomes, failover_delta, brute_shards,
            degraded_groups, budget,
        )
        self.batches += 1
        with self.tracer.span("shard.batch", phase="serve") as sp:
            sp.add(
                sub_launches=len(calls) - len(brute_shards),
                brute_shards=len(brute_shards),
                failovers=failover_delta,
                fanout_visits=sum(len(c.queries) for c in calls),
                makespan_s=self.modeled_makespan_s,
            )
        for res in results:
            res.report = report
        return results

    # ------------------------------------------------------------------
    # true kNN (adaptive radius expansion over the shards)
    # ------------------------------------------------------------------
    def _true_knn_fused(
        self,
        groups: list,
        radius: float | None,
        k: int,
        policy: ExpansionPolicy | None = None,
    ) -> list[SearchResults]:
        """The shared expansion loop with scatter-gather bounded rounds.

        Identical control flow to the single engine's
        (:func:`repro.core.expansion.run_expansion` drives both): the
        seed comes from the full unsharded cloud, the cover bounds from
        the same joint AABBs, and each round's bounded pass is the
        scatter-gather ``knn`` — which PR 7 pinned bit-identical to the
        single engine. The per-round scatter calls
        :meth:`overlap_mask` at that round's radius, so AABB pruning
        re-expands with the ball.
        """
        policy = policy or DEFAULT_POLICY
        groups = [as_points(g, "queries") for g in groups]
        k = check_positive_int(k, "k")
        if radius is None:
            r0 = self.seed_radius(k, policy)
        else:
            r0 = check_positive(radius, "radius")
        if sum(len(g) for g in groups) == 0:
            results = self._fused_pass("knn", groups, r0, k)
            results[0].report.extras["true_knn"] = {
                "seed_radius": r0,
                "growth": policy.growth,
                "rounds": 0,
                "round_radii": [],
                "relaunched": [],
                "satisfied": [],
                "relaunched_fraction": [],
                "converged": True,
            }
            return results
        covers = [cover_radius(self.points, g) for g in groups]
        finals, rounds_info, conv = run_expansion(
            lambda subs, r: self._fused_pass("knn", subs, r, k),
            groups,
            k,
            r0,
            covers,
            policy,
            self.tracer,
        )
        report = self._merge_round_reports(groups, rounds_info)
        report.extras["true_knn"] = {
            "seed_radius": r0,
            "growth": policy.growth,
            **conv,
        }
        return [
            SearchResults(idx, cnt, d2, report)
            for idx, cnt, d2 in finals
        ]

    def _merge_round_reports(
        self, groups: list, rounds_info: list[dict]
    ) -> RunReport:
        """Fold per-round scatter-gather reports into one run report.

        Additive fields and shard tallies sum across rounds; the
        per-group ``degraded_groups`` flags are mapped from each
        round's live-group indexing back to the global group order and
        OR-ed (a group is degraded if any of its rounds touched a
        brute-served shard).
        """
        n_groups = len(groups)
        if len(rounds_info) == 1 and rounds_info[0]["live"] == list(
            range(n_groups)
        ):
            return rounds_info[0]["report"]
        breakdown = Breakdown()
        is_calls = steps = parts = bundles = builds = 0
        sub_launches = brute_shards = failovers = 0
        degraded = [False] * n_groups
        for ri in rounds_info:
            rep = ri["report"]
            breakdown = breakdown + rep.breakdown
            is_calls += rep.is_calls
            steps += rep.traversal_steps
            parts += rep.n_partitions
            bundles += rep.n_bundles
            builds += rep.n_bvh_builds
            sh = rep.extras["shard"]
            sub_launches += sh["sub_launches"]
            brute_shards += sh["brute_shards"]
            failovers += sh["failovers"]
            for li, gi in enumerate(ri["live"]):
                degraded[gi] = degraded[gi] or sh["degraded_groups"][li]
        return RunReport(
            breakdown=breakdown,
            is_calls=is_calls,
            traversal_steps=steps,
            n_partitions=parts,
            n_bundles=bundles,
            n_bvh_builds=builds,
            device=self.device.name,
            extras={
                "shard": {
                    "n_shards": self.n_shards,
                    "n_workers": self.n_workers,
                    "sub_launches": sub_launches,
                    "brute_shards": brute_shards,
                    "failovers": failovers,
                    "degraded_groups": degraded,
                    "group_sizes": [len(g) for g in groups],
                    "makespan_s": self.modeled_makespan_s,
                },
            },
        )

    # ------------------------------------------------------------------
    # scatter
    # ------------------------------------------------------------------
    def overlap_mask(self, queries: np.ndarray, radius: float) -> np.ndarray:
        """Boolean ``(Q, S)``: may query ``q`` have neighbors in shard ``s``?

        True iff the query's distance to the shard's tight AABB is at
        most ``radius`` — a False entry proves no member point can be
        an ``r``-neighbor, so fan-out skips the shard entirely.
        """
        queries = np.asarray(queries, dtype=np.float64)
        mask = np.zeros((len(queries), self.n_shards), dtype=bool)
        if not len(queries):
            return mask
        r2 = float(radius) * float(radius)
        for sid, shard in enumerate(self.shards):
            d = queries - np.clip(queries, shard.lo, shard.hi)
            mask[:, sid] = np.einsum("ij,ij->i", d, d) <= r2
        return mask

    def _scatter_plans(
        self, groups: list[np.ndarray], radius: float
    ) -> list[list[np.ndarray]]:
        """Per group, per shard: the group-local row ids that fan out."""
        plans: list[list[np.ndarray]] = []
        for g in groups:
            mask = self.overlap_mask(g, radius)
            plans.append([np.flatnonzero(mask[:, sid]) for sid in range(self.n_shards)])
            self.fanout_queries += len(g)
            self.fanout_visits += int(mask.sum())
        return plans

    def _build_calls(
        self, groups: list[np.ndarray], plans: list[list[np.ndarray]]
    ) -> list[_ShardCall]:
        """Coalesce every group's fan-out rows into one flat sub-request
        per shard (ascending shard order, groups in submission order)."""
        calls: list[_ShardCall] = []
        for sid in range(self.n_shards):
            segments = []
            chunks = []
            start = 0
            for gi, g in enumerate(groups):
                rows = plans[gi][sid]
                if not len(rows):
                    continue
                segments.append((gi, rows, start))
                chunks.append(g[rows])
                start += len(rows)
            if segments:
                calls.append(
                    _ShardCall(
                        shard_id=sid,
                        queries=np.concatenate(chunks),
                        segments=segments,
                    )
                )
        return calls

    # ------------------------------------------------------------------
    # routing + failover
    # ------------------------------------------------------------------
    def _route(self, calls: list[_ShardCall]) -> tuple[list[int | None], int]:
        """Pick a live worker per sub-call (or None for brute fallback).

        The fault injector is consulted once per *attempt* on a live
        worker, serially in ascending shard order, so scripted fault
        sequences replay identically run over run. An injected error
        crashes the attempted worker; the walk then continues down the
        shard's consistent-hash preference list.
        """
        routes: list[int | None] = []
        failover_delta = 0
        for call in calls:
            pref = self.preference[call.shard_id]
            chosen: int | None = None
            for wid in pref:
                worker = self.workers[wid]
                if not worker.alive:
                    continue
                try:
                    spike = self.faults.on_launch()
                except TransientFault:
                    worker.alive = False
                    continue
                if spike > 0.0:
                    worker.busy_s += spike
                chosen = wid
                break
            if chosen is None:
                self.brute_fallbacks += 1
            elif chosen != pref[0]:
                failover_delta += 1
            routes.append(chosen)
        self.failovers += failover_delta
        return routes, failover_delta

    # ------------------------------------------------------------------
    # execute
    # ------------------------------------------------------------------
    def _execute(
        self,
        kind: str,
        calls: list[_ShardCall],
        routes: list[int | None],
        radius: float,
        k: int,
        budget: int | None = None,
    ) -> dict[int, SearchResults]:
        """Run every sub-call; one thread per worker, brute inline.

        A worker's sub-calls run serially in shard order on its thread
        (one simulated device each); distinct workers run concurrently.
        Outcomes are collected by shard id, so downstream merging never
        observes completion order.
        """
        jobs: dict[int, list[_ShardCall]] = {}
        brute: list[_ShardCall] = []
        for call, wid in zip(calls, routes):
            if wid is None:
                brute.append(call)
            else:
                jobs.setdefault(wid, []).append(call)

        outcomes: dict[int, SearchResults] = {}

        def run_worker(wid: int) -> list[tuple[int, SearchResults]]:
            worker = self.workers[wid]
            out = []
            for call in jobs[wid]:
                engine = worker.engine_for(self.shards[call.shard_id])
                if kind == "knn":
                    res = engine.knn_search(
                        call.queries, k=k, radius=radius, budget=budget
                    )
                else:
                    res = engine.range_search(
                        call.queries, radius=radius, k=k, budget=budget
                    )
                worker.busy_s += res.report.modeled_time
                worker.launches += 1
                out.append((call.shard_id, res))
            return out

        worker_ids = sorted(jobs)
        if len(worker_ids) <= 1:
            batches = [run_worker(wid) for wid in worker_ids]
        else:
            with ThreadPoolExecutor(max_workers=len(worker_ids)) as pool:
                futures = [pool.submit(run_worker, wid) for wid in worker_ids]
                # Collected in submission (worker-id) order: failures
                # propagate deterministically, results never depend on
                # completion order.
                batches = [f.result() for f in futures]
        for batch in batches:
            for sid, res in batch:
                outcomes[sid] = res

        for call in brute:
            shard = self.shards[call.shard_id]
            pts = self.points[shard.point_ids]
            outcomes[call.shard_id] = self._exact_fallback(
                pts, call.queries, radius, k
            )
        return outcomes

    @staticmethod
    def _exact_fallback(
        pts: np.ndarray, queries: np.ndarray, radius: float, k: int
    ) -> SearchResults:
        """Exact search over one dead shard's points (degraded path).

        Deliberately *not* the brute-force oracle: the oracle's GEMM
        expansion rounds differently (1 ulp) than the IS shader's
        subtract-then-``einsum``, which would break the bit-identity
        contract. This mirrors the shader arithmetic exactly — same
        subtraction, same reduction order — so a degraded shard's
        candidates carry the very same float64 distances the healthy
        engine would have produced. Semantics match both request kinds:
        the nearest ``<= k`` neighbors within ``radius``.
        """
        diff = queries[:, None, :] - pts[None, :, :]
        d2 = np.einsum("qnd,qnd->qn", diff, diff)
        r2 = float(radius) * float(radius)
        d2 = np.where(d2 <= r2, d2, np.inf)
        idx = np.broadcast_to(
            np.arange(len(pts), dtype=np.int64), d2.shape
        ).copy()
        if d2.shape[1] < k:
            pad = k - d2.shape[1]
            d2 = np.pad(d2, ((0, 0), (0, pad)), constant_values=np.inf)
            idx = np.pad(idx, ((0, 0), (0, pad)), constant_values=-1)
        idx, counts, d2 = ShardedEngine._merge_rows(idx, d2, k)
        return SearchResults(
            indices=idx, counts=counts, sq_distances=d2, report=None
        )

    # ------------------------------------------------------------------
    # gather
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_rows(
        idx_mat: np.ndarray, d2_mat: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Reduce shard-order candidate blocks to the k canonical best.

        Two stable row-wise argsorts implement a lexicographic
        ``(sq_distance, index)`` sort: sorting by index first, then
        stably by distance, leaves equal-distance candidates in index
        order. Padding (``-1``/``inf``) sinks to the end because every
        real candidate has finite distance.
        """
        rows = np.arange(len(idx_mat))[:, None]
        by_idx = np.argsort(idx_mat, axis=1, kind="stable")
        idx = idx_mat[rows, by_idx]
        d2 = d2_mat[rows, by_idx]
        by_d2 = np.argsort(d2, axis=1, kind="stable")
        idx = idx[rows, by_d2][:, :k]
        d2 = d2[rows, by_d2][:, :k]
        counts = np.minimum(
            np.isfinite(d2).sum(axis=1), k
        ).astype(np.int64)
        pad = np.arange(k)[None, :] >= counts[:, None]
        idx = np.where(pad, np.int64(-1), idx)
        d2 = np.where(pad, np.inf, d2)
        return np.ascontiguousarray(idx), counts, np.ascontiguousarray(d2)

    def _gather(
        self,
        groups: list[np.ndarray],
        plans: list[list[np.ndarray]],
        calls: list[_ShardCall],
        outcomes: dict[int, SearchResults],
        k: int,
    ) -> list[SearchResults]:
        """Merge per-shard rows back into per-group canonical results."""
        S = self.n_shards
        mats: list[tuple[np.ndarray, np.ndarray]] = []
        for g in groups:
            idx_mat = np.full((len(g), S * k), -1, dtype=np.int64)
            d2_mat = np.full((len(g), S * k), np.inf, dtype=np.float64)
            mats.append((idx_mat, d2_mat))
        for call in calls:
            res = outcomes[call.shard_id]
            point_ids = self.shards[call.shard_id].point_ids
            local_idx = res.indices
            valid = local_idx >= 0
            global_idx = np.where(
                valid, point_ids[np.clip(local_idx, 0, None)], np.int64(-1)
            )
            col = call.shard_id * k
            for gi, rows, start in call.segments:
                idx_mat, d2_mat = mats[gi]
                seg = slice(start, start + len(rows))
                idx_mat[rows, col:col + k] = global_idx[seg]
                d2_mat[rows, col:col + k] = res.sq_distances[seg]
        results = []
        for gi, g in enumerate(groups):
            if not len(g):
                idx, counts, d2 = empty_results(0, k)
                results.append(SearchResults(idx, counts, d2))
                continue
            idx, counts, d2 = self._merge_rows(*mats[gi], k)
            results.append(SearchResults(idx, counts, d2))
        return results

    # ------------------------------------------------------------------
    def _fused_report(
        self,
        groups: list[np.ndarray],
        calls: list[_ShardCall],
        outcomes: dict[int, SearchResults],
        failover_delta: int,
        brute_shards: list[int],
        degraded_groups: list[bool],
        budget: int | None = None,
    ) -> RunReport:
        breakdown = Breakdown()
        is_calls = 0
        steps = 0
        builds = 0
        exhausted = 0
        for call in calls:
            rep = outcomes[call.shard_id].report
            if rep is None:          # brute fallback: unmodeled, exact
                continue
            breakdown = breakdown + rep.breakdown
            is_calls += rep.is_calls
            steps += rep.traversal_steps
            builds += rep.n_bvh_builds
            exhausted += rep.extras.get("budget", {}).get(
                "exhausted_queries", 0
            )
        extras: dict = {}
        if budget is not None:
            # A boundary query fanned out to several shards may be
            # counted exhausted once per shard; dividing by the true
            # group-query count therefore only *understates* recall —
            # the bound stays a valid lower bound (clamped at 0).
            n_q = sum(len(g) for g in groups)
            extras["budget"] = {
                "step_budget": int(budget),
                "budget_exhausted": bool(exhausted),
                "exhausted_queries": int(exhausted),
                "total_queries": int(n_q),
                "recall_lower_bound": (
                    1.0 if n_q == 0
                    else max(0.0, 1.0 - exhausted / n_q)
                ),
            }
        return RunReport(
            breakdown=breakdown,
            is_calls=is_calls,
            traversal_steps=steps,
            n_partitions=len(calls),
            n_bundles=len(calls),
            n_bvh_builds=builds,
            device=self.device.name,
            extras={
                "shard": {
                    "n_shards": self.n_shards,
                    "n_workers": self.n_workers,
                    "sub_launches": len(calls) - len(brute_shards),
                    "brute_shards": len(brute_shards),
                    "failovers": failover_delta,
                    "degraded_groups": degraded_groups,
                    "group_sizes": [len(g) for g in groups],
                    "makespan_s": self.modeled_makespan_s,
                },
                **extras,
            },
        )
