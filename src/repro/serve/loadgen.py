"""Synthetic open-loop load generation and the serve smoke check.

The generator models the ROADMAP's "heavy traffic" scenario in
miniature: ``clients`` independent open-loop arrival processes submit
requests at an aggregate ``rps`` for ``duration_s`` seconds, with
exponential inter-arrivals drawn from seeded
:func:`repro.utils.rng.default_rng` streams (one per client, so a
fixed seed replays the same offered load). Open-loop means arrivals do
*not* wait for completions — exactly the regime where admission
control and micro-batching earn their keep.

:func:`run_load` drives a started :class:`SearchService` and returns
an outcome tally; :func:`spot_check` independently verifies a handful
of concurrent submissions against direct engine calls (bit-identical
results), which is what the ``serve-smoke`` CI job gates on.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import RTNNEngine
from repro.serve.queue import AdmissionError, DeadlineExpired, ServeError
from repro.serve.service import SearchService
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class LoadSpec:
    """Shape of the synthetic offered load."""

    rps: float = 200.0
    clients: int = 4
    duration_s: float = 2.0
    queries_per_request: int = 8
    mode: str = "knn"
    k: int = 8
    radius: float = 0.1
    deadline_s: float | None = None
    seed: int = 0


@dataclass
class LoadOutcome:
    """Tally of one load run, from the clients' point of view."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    errored: int = 0
    degraded: int = 0
    occupancy_max: int = 0
    errors: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "errored": self.errored,
            "degraded": self.degraded,
            "occupancy_max": self.occupancy_max,
        }


async def _client(
    service: SearchService,
    points: np.ndarray,
    spec: LoadSpec,
    client_id: int,
    outcome: LoadOutcome,
) -> None:
    """One open-loop arrival process (its share of the total rps)."""
    rng = default_rng(spec.seed * 10_007 + client_id)
    rate = spec.rps / max(spec.clients, 1)
    loop = asyncio.get_running_loop()
    t_end = loop.time() + spec.duration_s
    pending: list[asyncio.Task] = []

    async def one_request() -> None:
        # Queries are jittered samples of the point set: realistic
        # density, still well inside the scene.
        ids = rng.integers(0, len(points), spec.queries_per_request)
        jitter = rng.normal(0.0, spec.radius * 0.25, (spec.queries_per_request, points.shape[1]))
        queries = points[ids] + jitter
        try:
            res = await service.submit(
                spec.mode,
                queries,
                k=spec.k,
                radius=spec.radius,
                deadline_s=spec.deadline_s,
            )
            outcome.completed += 1
            if res.degraded:
                outcome.degraded += 1
            outcome.occupancy_max = max(outcome.occupancy_max, res.batch_occupancy)
        except AdmissionError:
            outcome.rejected += 1
        except DeadlineExpired:
            outcome.expired += 1
        except ServeError as exc:
            outcome.errored += 1
            outcome.errors.append(str(exc))

    while loop.time() < t_end:
        outcome.submitted += 1
        pending.append(asyncio.create_task(one_request()))
        # Exponential inter-arrival (Poisson process per client).
        await asyncio.sleep(float(rng.exponential(1.0 / rate)))
    if pending:
        await asyncio.gather(*pending)


async def run_load(
    service: SearchService, points: np.ndarray, spec: LoadSpec
) -> LoadOutcome:
    """Drive ``service`` with the offered load; returns the tally.

    The service must already be started; it is *not* stopped here, so
    callers can follow up with :func:`spot_check` on the same instance.
    """
    outcome = LoadOutcome()
    await asyncio.gather(
        *(
            _client(service, points, spec, c, outcome)
            for c in range(max(spec.clients, 1))
        )
    )
    return outcome


async def spot_check(
    service: SearchService,
    engine: RTNNEngine,
    points: np.ndarray,
    spec: LoadSpec,
    n_requests: int = 4,
) -> int:
    """Bit-identity audit: concurrent submissions vs direct engine calls.

    Submits ``n_requests`` known query sets concurrently (so they
    coalesce), then replays each through a *fresh* engine over the same
    points and asserts indices/counts/distances match exactly. Returns
    the number of requests checked. Raises ``AssertionError`` on any
    mismatch, or if a checked request came back degraded (the fallback
    path is exact but not the engine path, so it would make this check
    vacuous).
    """
    rng = default_rng(spec.seed + 777)
    groups = [
        np.clip(
            points[rng.integers(0, len(points), spec.queries_per_request)]
            + rng.normal(0.0, spec.radius * 0.25, (spec.queries_per_request, points.shape[1])),
            points.min(),
            points.max(),
        )
        for _ in range(n_requests)
    ]
    served = await asyncio.gather(
        *(
            service.submit(spec.mode, g, k=spec.k, radius=spec.radius)
            for g in groups
        )
    )
    for i, (g, res) in enumerate(zip(groups, served)):
        assert not res.degraded, f"spot-check request {i} was served degraded"
        solo = RTNNEngine(points, device=engine.device, config=engine.config)
        if spec.mode == "knn":
            direct = solo.knn_search(g, k=spec.k, radius=spec.radius)
        else:
            direct = solo.range_search(g, radius=spec.radius, k=spec.k)
        assert np.array_equal(res.indices, direct.indices), (
            f"spot-check {i}: indices diverge from direct engine call"
        )
        assert np.array_equal(res.counts, direct.counts), (
            f"spot-check {i}: counts diverge from direct engine call"
        )
        assert np.array_equal(res.sq_distances, direct.sq_distances), (
            f"spot-check {i}: distances diverge from direct engine call"
        )
    return len(served)
