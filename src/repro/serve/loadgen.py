"""Synthetic open-loop load generation and the serve smoke check.

The generator models the ROADMAP's "heavy traffic" scenario in
miniature: ``clients`` independent open-loop arrival processes submit
requests at an aggregate ``rps`` for ``duration_s`` seconds, with
exponential inter-arrivals drawn from seeded
:func:`repro.utils.rng.default_rng` streams (one per client, so a
fixed seed replays the same offered load). Open-loop means arrivals do
*not* wait for completions — exactly the regime where admission
control and micro-batching earn their keep.

:func:`run_load` drives a started :class:`SearchService` and returns
an outcome tally; :func:`spot_check` independently verifies a handful
of concurrent submissions against direct engine calls (bit-identical
results), which is what the ``serve-smoke`` CI job gates on.

The sharded topology gets the same treatment at scale:
:func:`shard_spot_check` audits a sharded service against both a
1-shard topology and the raw single engine across the knn/range ×
full/noopt request matrix, and :func:`shard_smoke` is the
``serve-shard-smoke`` CI gate — seeded traffic through 1-shard and
N-shard services, zero errors, bit-identical answers, and
modeled-clock throughput scaling at least ``min_scaling``.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

import numpy as np

from repro.core.engine import RTNNConfig, RTNNEngine, VARIANTS
from repro.serve.queue import AdmissionError, DeadlineExpired, ServeError
from repro.serve.service import SearchService, ServiceConfig
from repro.serve.shard import ShardedEngine
from repro.utils.rng import default_rng


@dataclass(frozen=True)
class LoadSpec:
    """Shape of the synthetic offered load."""

    rps: float = 200.0
    clients: int = 4
    duration_s: float = 2.0
    queries_per_request: int = 8
    mode: str = "knn"
    k: int = 8
    radius: float = 0.1
    deadline_s: float | None = None
    seed: int = 0


@dataclass
class LoadOutcome:
    """Tally of one load run, from the clients' point of view."""

    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    expired: int = 0
    errored: int = 0
    degraded: int = 0
    occupancy_max: int = 0
    errors: list = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "rejected": self.rejected,
            "expired": self.expired,
            "errored": self.errored,
            "degraded": self.degraded,
            "occupancy_max": self.occupancy_max,
        }


async def _client(
    service: SearchService,
    points: np.ndarray,
    spec: LoadSpec,
    client_id: int,
    outcome: LoadOutcome,
) -> None:
    """One open-loop arrival process (its share of the total rps)."""
    rng = default_rng(spec.seed * 10_007 + client_id)
    rate = spec.rps / max(spec.clients, 1)
    loop = asyncio.get_running_loop()
    t_end = loop.time() + spec.duration_s
    pending: list[asyncio.Task] = []

    async def one_request() -> None:
        # Queries are jittered samples of the point set: realistic
        # density, still well inside the scene.
        ids = rng.integers(0, len(points), spec.queries_per_request)
        jitter = rng.normal(0.0, spec.radius * 0.25, (spec.queries_per_request, points.shape[1]))
        queries = points[ids] + jitter
        try:
            res = await service.submit(
                spec.mode,
                queries,
                k=spec.k,
                radius=spec.radius,
                deadline_s=spec.deadline_s,
            )
            outcome.completed += 1
            if res.degraded:
                outcome.degraded += 1
            outcome.occupancy_max = max(outcome.occupancy_max, res.batch_occupancy)
        except AdmissionError:
            outcome.rejected += 1
        except DeadlineExpired:
            outcome.expired += 1
        except ServeError as exc:
            outcome.errored += 1
            outcome.errors.append(str(exc))

    while loop.time() < t_end:
        outcome.submitted += 1
        pending.append(asyncio.create_task(one_request()))
        # Exponential inter-arrival (Poisson process per client).
        await asyncio.sleep(float(rng.exponential(1.0 / rate)))
    if pending:
        await asyncio.gather(*pending)


async def run_load(
    service: SearchService, points: np.ndarray, spec: LoadSpec
) -> LoadOutcome:
    """Drive ``service`` with the offered load; returns the tally.

    The service must already be started; it is *not* stopped here, so
    callers can follow up with :func:`spot_check` on the same instance.
    """
    outcome = LoadOutcome()
    await asyncio.gather(
        *(
            _client(service, points, spec, c, outcome)
            for c in range(max(spec.clients, 1))
        )
    )
    return outcome


async def spot_check(
    service: SearchService,
    engine: RTNNEngine,
    points: np.ndarray,
    spec: LoadSpec,
    n_requests: int = 4,
) -> int:
    """Bit-identity audit: concurrent submissions vs direct engine calls.

    Submits ``n_requests`` known query sets concurrently (so they
    coalesce), then replays each through a *fresh* engine over the same
    points and asserts indices/counts/distances match exactly. Returns
    the number of requests checked. Raises ``AssertionError`` on any
    mismatch, or if a checked request came back degraded (the fallback
    path is exact but not the engine path, so it would make this check
    vacuous).
    """
    rng = default_rng(spec.seed + 777)
    groups = [
        np.clip(
            points[rng.integers(0, len(points), spec.queries_per_request)]
            + rng.normal(0.0, spec.radius * 0.25, (spec.queries_per_request, points.shape[1])),
            points.min(),
            points.max(),
        )
        for _ in range(n_requests)
    ]
    served = await asyncio.gather(
        *(
            service.submit(spec.mode, g, k=spec.k, radius=spec.radius)
            for g in groups
        )
    )
    for i, (g, res) in enumerate(zip(groups, served)):
        assert not res.degraded, f"spot-check request {i} was served degraded"
        solo = RTNNEngine(points, device=engine.device, config=engine.config)
        if spec.mode == "knn":
            direct = solo.knn_search(g, k=spec.k, radius=spec.radius)
        elif spec.mode == "true_knn":
            # The service used spec.radius as the round-0 radius, so
            # the direct run must seed the identical schedule.
            direct = solo.true_knn_search(g, k=spec.k, radius=spec.radius)
        else:
            direct = solo.range_search(g, radius=spec.radius, k=spec.k)
        assert np.array_equal(res.indices, direct.indices), (
            f"spot-check {i}: indices diverge from direct engine call"
        )
        assert np.array_equal(res.counts, direct.counts), (
            f"spot-check {i}: counts diverge from direct engine call"
        )
        assert np.array_equal(res.sq_distances, direct.sq_distances), (
            f"spot-check {i}: distances diverge from direct engine call"
        )
    return len(served)


def _probe_groups(
    points: np.ndarray, spec: LoadSpec, n_requests: int, salt: int
) -> list[np.ndarray]:
    """Seeded query groups reused verbatim across topologies."""
    rng = default_rng(spec.seed + salt)
    return [
        np.clip(
            points[rng.integers(0, len(points), spec.queries_per_request)]
            + rng.normal(
                0.0,
                spec.radius * 0.25,
                (spec.queries_per_request, points.shape[1]),
            ),
            points.min(),
            points.max(),
        )
        for _ in range(n_requests)
    ]


async def shard_spot_check(
    points: np.ndarray,
    spec: LoadSpec,
    shards: int = 4,
    n_requests: int = 4,
    replication: int = 2,
) -> int:
    """Bit-identity audit of the sharded topology, full request matrix.

    For every combination of ``kind`` in {knn, range} and engine config
    in {full, noopt}, the same seeded query groups are served by a
    1-shard service, an ``shards``-shard service, and the raw single
    engine. Asserts:

    * 1-shard and N-shard answers are bit-identical to each other
      (both emit the canonical ``(sq_distance, index)`` order);
    * both match the single engine exactly — raw for KNN (rows already
      distance-sorted), canonicalized for range (single-engine range
      rows are in traversal-dependent discovery order);
    * range probes run with a ``k`` escalated until no row overflows
      it (an overflowing bounded range result is a k-subset choice,
      not a set identity, so the check would be unsound at ``spec.k``).

    Returns the number of (kind, config, request) cells audited.
    """
    configs = {"full": RTNNConfig(), "noopt": VARIANTS["noopt"]}
    groups = _probe_groups(points, spec, n_requests, salt=555)
    # Escalate the range-probe k until it captures every in-radius
    # neighbor of every probe (counts are config-independent).
    k_range = spec.k
    probe = np.concatenate(groups)
    while True:
        counts = RTNNEngine(points).range_search(
            probe, radius=spec.radius, k=k_range
        ).counts
        if int(counts.max(initial=0)) < k_range or k_range >= len(points):
            break
        k_range *= 2
    checked = 0
    for kind in ("knn", "range"):
        k_kind = spec.k if kind == "knn" else k_range
        for cfg_name, cfg in configs.items():
            single = RTNNEngine(points, config=cfg)
            served: dict[int, list] = {}
            for n in (1, shards):
                service = SearchService(
                    ShardedEngine(
                        points, n_shards=n, replication=replication, config=cfg
                    )
                )
                async with service:
                    served[n] = await asyncio.gather(
                        *(
                            service.submit(
                                kind, g, k=k_kind, radius=spec.radius
                            )
                            for g in groups
                        )
                    )
            for i, g in enumerate(groups):
                tag = f"shard-spot {kind}/{cfg_name} request {i}"
                a, b = served[1][i], served[shards][i]
                assert not a.degraded and not b.degraded, f"{tag}: degraded"
                for fld in ("indices", "counts", "sq_distances"):
                    assert np.array_equal(
                        getattr(a, fld), getattr(b, fld)
                    ), f"{tag}: {fld} diverge between 1 and {shards} shards"
                if kind == "knn":
                    direct = single.knn_search(g, k=k_kind, radius=spec.radius)
                else:
                    direct = single.range_search(
                        g, radius=spec.radius, k=k_kind
                    ).canonical()
                    assert int(direct.counts.max(initial=0)) < k_kind, (
                        f"{tag}: range rows overflow k; raise k for a sound check"
                    )
                assert np.array_equal(b.indices, direct.indices), (
                    f"{tag}: indices diverge from single engine"
                )
                assert np.array_equal(b.counts, direct.counts), (
                    f"{tag}: counts diverge from single engine"
                )
                assert np.array_equal(b.sq_distances, direct.sq_distances), (
                    f"{tag}: distances diverge from single engine"
                )
                checked += 1
    return checked


async def true_knn_smoke(
    points: np.ndarray,
    spec: LoadSpec,
    shards: int = 4,
    n_requests: int = 4,
    max_rounds: int = 12,
    replication: int = 2,
) -> dict:
    """The ``true-knn-smoke`` gate: unbounded-kNN identity matrix.

    For each engine config in {full, noopt}, the same seeded query
    groups are served as ``true_knn`` (density-seeded radius) by a
    1-shard service and a ``shards``-shard service, and run directly
    through a solo engine. Asserts, per cell:

    * served answers (both topologies), the solo engine, and the
      brute-force unbounded oracle are all bit-identical
      (indices, counts, squared distances);
    * the expansion converged within ``max_rounds`` rounds, on the
      solo run and on every served batch;
    * only unsatisfied queries re-launch: each round's launch count
      equals the previous round's launches minus its satisfied count
      (asserted on the solo convergence counters and on the served
      batch counters — the recurrence holds for fused batches too);
    * solo and sharded runs walk the same radius schedule (the solo
      run's per-round radii are a prefix of any fused batch's).

    Returns the gate summary dict (what the CLI prints as JSON).
    """
    from repro.baselines.brute import brute_force_true_knn

    def check_relaunch_counters(tk: dict, tag: str) -> None:
        assert tk["converged"], f"{tag}: expansion did not converge"
        assert tk["rounds"] <= max_rounds, (
            f"{tag}: {tk['rounds']} rounds exceeds the {max_rounds} gate"
        )
        for j in range(1, tk["rounds"]):
            expect = tk["relaunched"][j - 1] - tk["satisfied"][j - 1]
            assert tk["relaunched"][j] == expect, (
                f"{tag}: round {j} launched {tk['relaunched'][j]} queries, "
                f"expected exactly the {expect} still unsatisfied"
            )
        assert sum(tk["satisfied"]) == tk["relaunched"][0], (
            f"{tag}: satisfied counts do not account for every query"
        )

    configs = {"full": RTNNConfig(), "noopt": VARIANTS["noopt"]}
    groups = _probe_groups(points, spec, n_requests, salt=999)
    oracles = [brute_force_true_knn(points, g, k=spec.k) for g in groups]
    cells = 0
    max_rounds_seen = 0
    for cfg_name, cfg in configs.items():
        solo = RTNNEngine(points, config=cfg)
        served: dict[int, list] = {}
        for n in (1, shards):
            service = SearchService(
                ShardedEngine(
                    points, n_shards=n, replication=replication, config=cfg
                )
            )
            async with service:
                served[n] = await asyncio.gather(
                    *(
                        service.submit("true_knn", g, k=spec.k)
                        for g in groups
                    )
                )
        for i, g in enumerate(groups):
            tag = f"true-knn-smoke {cfg_name} request {i}"
            direct = solo.true_knn_search(g, k=spec.k)
            tk = direct.report.extras["true_knn"]
            check_relaunch_counters(tk, f"{tag} (solo)")
            max_rounds_seen = max(max_rounds_seen, tk["rounds"])
            for n in (1, shards):
                res = served[n][i]
                assert not res.degraded, f"{tag}: served degraded ({n} shards)"
                for fld in ("indices", "counts", "sq_distances"):
                    got = getattr(res, fld)
                    assert np.array_equal(got, getattr(direct, fld)), (
                        f"{tag}: {fld} diverge from solo engine ({n} shards)"
                    )
                    assert np.array_equal(got, getattr(oracles[i], fld)), (
                        f"{tag}: {fld} diverge from brute oracle ({n} shards)"
                    )
                stk = res.results.report.extras["true_knn"]
                check_relaunch_counters(stk, f"{tag} ({n} shards, batch)")
                prefix = stk["round_radii"][: tk["rounds"]]
                assert prefix == tk["round_radii"], (
                    f"{tag}: radius schedule diverges at {n} shards"
                )
            cells += 1
    return {
        "shards": shards,
        "k": spec.k,
        "identity_cells_checked": cells,
        "max_rounds_seen": max_rounds_seen,
        "max_rounds_gate": max_rounds,
    }


async def shard_smoke(
    points: np.ndarray,
    spec: LoadSpec,
    shards: int = 4,
    min_scaling: float = 2.5,
    replication: int = 2,
    service_config: ServiceConfig | None = None,
) -> dict:
    """The ``serve-shard-smoke`` gate: load, identity, scaling.

    Runs the seeded open-loop load through a 1-shard and an
    ``shards``-shard topology behind identical service fronts, then:

    * asserts zero serve errors and zero deadline expiries on both;
    * runs :func:`shard_spot_check` (bit-identity across the
      knn/range × full/noopt matrix, including 1-vs-N agreement);
    * computes modeled-clock throughput (engine-side queries per
      modeled makespan second — the busiest worker defines completion
      on the modeled clock) and asserts the N-shard topology scales by
      at least ``min_scaling``.

    Returns the gate summary dict (also what the CLI prints as JSON).
    """
    service_config = service_config or ServiceConfig(max_queue_depth=4096)
    stats: dict[int, dict] = {}
    for n in (1, shards):
        engine = ShardedEngine(points, n_shards=n, replication=replication)
        service = SearchService(engine, config=service_config)
        async with service:
            outcome = await run_load(service, points, spec)
        assert outcome.errored == 0, (
            f"{n}-shard load: {outcome.errored} serve errors "
            f"({outcome.errors[:3]})"
        )
        assert outcome.expired == 0, (
            f"{n}-shard load: {outcome.expired} deadline expiries"
        )
        makespan = engine.modeled_makespan_s
        queries = engine.fanout_queries
        assert queries > 0 and makespan > 0.0, f"{n}-shard load served nothing"
        stats[n] = {
            "outcome": outcome.as_dict(),
            "modeled_makespan_s": makespan,
            "engine_queries": queries,
            "throughput_qps_modeled": queries / makespan,
            "fanout_mean": engine.fanout_visits / queries,
            "service": service.report().extras["service"],
        }
    checked = await shard_spot_check(
        points, spec, shards=shards, replication=replication
    )
    scaling = (
        stats[shards]["throughput_qps_modeled"]
        / stats[1]["throughput_qps_modeled"]
    )
    assert scaling >= min_scaling, (
        f"modeled-clock throughput scaling {scaling:.2f}x at {shards} shards "
        f"is below the {min_scaling:.2f}x gate"
    )
    return {
        "shards": shards,
        "scaling_modeled": scaling,
        "min_scaling": min_scaling,
        "identity_cells_checked": checked,
        "topologies": {str(n): s for n, s in stats.items()},
    }
