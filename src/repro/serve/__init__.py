"""repro.serve — the micro-batching neighbor-search service tier.

Turns the one-shot :class:`~repro.core.engine.RTNNEngine` call into a
served primitive: an asyncio :class:`SearchService` with a bounded
admission queue, a batching window that fuses compatible concurrent
requests into single :meth:`~repro.core.engine.RTNNEngine.search_fused`
launches (bit-identical per-request results), per-request deadlines,
bounded retry with exponential backoff, and graceful degradation to
the exact brute baseline under sustained failure or overload.

To scale past one engine, :class:`ShardedEngine` puts N spatially
sharded engine workers (consistent-hash placement, replica failover,
scatter-gather with a canonical deterministic merge — bit-identical to
the single-engine path) behind the very same front door; see
:mod:`repro.serve.shard` and the "Sharded topology" section of
``docs/serving.md``.

Quick start::

    import asyncio
    from repro import SearchSession

    async def main(points, queries):
        async with SearchSession(points).serve() as svc:
            res = await svc.submit("knn", queries, k=8, radius=0.1)
            return res.results, res.batch_occupancy, res.degraded

See ``docs/serving.md`` for the architecture and policies.
"""

from repro.serve.batcher import MicroBatch, execute_batch
from repro.serve.faults import Fault, FaultInjector, TransientFault
from repro.serve.loadgen import (
    LoadOutcome,
    LoadSpec,
    run_load,
    shard_smoke,
    shard_spot_check,
    spot_check,
    true_knn_smoke,
)
from repro.serve.metrics import ServiceMetrics
from repro.serve.shard import HashRing, ShardedEngine, ShardWorker
from repro.serve.queue import (
    AdmissionError,
    DeadlineExpired,
    RequestQueue,
    SearchRequest,
    ServeError,
    ServiceStopped,
)
from repro.serve.service import SearchService, ServeResult, ServiceConfig

__all__ = [
    "SearchService",
    "ServiceConfig",
    "ServeResult",
    "ServiceMetrics",
    "MicroBatch",
    "execute_batch",
    "RequestQueue",
    "SearchRequest",
    "ServeError",
    "AdmissionError",
    "DeadlineExpired",
    "ServiceStopped",
    "Fault",
    "FaultInjector",
    "TransientFault",
    "LoadSpec",
    "LoadOutcome",
    "run_load",
    "spot_check",
    "ShardedEngine",
    "ShardWorker",
    "HashRing",
    "shard_smoke",
    "shard_spot_check",
    "true_knn_smoke",
]
