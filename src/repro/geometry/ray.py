"""Ray batches.

RTNN casts *short rays*: ``t in [0, 1e-16]`` with a fixed, arbitrary
direction ``[1, 0, 0]`` (Section 3.1). The direction is irrelevant
because intersections are decided by Condition 2 (origin inside AABB);
the short segment suppresses Condition-1 false positives like the
``Q'`` example in Fig. 4c.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: The paper's default segment end for short rays.
SHORT_RAY_TMAX = 1e-16

#: The paper's fixed ray direction.
DEFAULT_DIRECTION = (1.0, 0.0, 0.0)


@dataclass
class RayBatch:
    """A batch of rays laid out as structure-of-arrays.

    Attributes
    ----------
    origins:
        ``(R, 3)`` float64 ray origins (query points in RTNN).
    directions:
        ``(R, 3)`` float64 directions.
    t_min, t_max:
        Shared scalar segment bounds for the whole batch (RTNN rays all
        share ``[0, 1e-16]``).
    query_ids:
        ``(R,)`` int64 mapping ray index -> original query index. After
        query scheduling the launch order differs from input order; this
        array lets shaders scatter results back to user order.
    """

    origins: np.ndarray
    directions: np.ndarray
    t_min: float = 0.0
    t_max: float = SHORT_RAY_TMAX
    query_ids: np.ndarray = field(default=None)

    def __post_init__(self):
        self.origins = np.ascontiguousarray(self.origins, dtype=np.float64)
        self.directions = np.ascontiguousarray(self.directions, dtype=np.float64)
        if self.origins.ndim != 2 or self.origins.shape[1] != 3:
            raise ValueError(f"origins must be (R, 3), got {self.origins.shape}")
        if self.directions.shape != self.origins.shape:
            raise ValueError("directions must match origins shape")
        if self.query_ids is None:
            self.query_ids = np.arange(len(self.origins), dtype=np.int64)
        else:
            self.query_ids = np.ascontiguousarray(self.query_ids, dtype=np.int64)
            if self.query_ids.shape != (len(self.origins),):
                raise ValueError("query_ids must be (R,)")
        if not (self.t_min <= self.t_max):
            raise ValueError(f"t_min ({self.t_min}) must be <= t_max ({self.t_max})")

    def __len__(self) -> int:
        return len(self.origins)

    def permuted(self, order: np.ndarray) -> "RayBatch":
        """Return a new batch with rays reordered by ``order``.

        ``query_ids`` follows the permutation, preserving result routing.
        """
        order = np.asarray(order, dtype=np.int64)
        return RayBatch(
            origins=self.origins[order],
            directions=self.directions[order],
            t_min=self.t_min,
            t_max=self.t_max,
            query_ids=self.query_ids[order],
        )


def short_rays_from_queries(queries: np.ndarray, t_max: float = SHORT_RAY_TMAX) -> RayBatch:
    """Build RTNN's short-ray batch: one ray per query, direction [1,0,0]."""
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    if queries.ndim != 2 or queries.shape[1] != 3:
        raise ValueError(f"queries must be (N, 3), got {queries.shape}")
    directions = np.broadcast_to(
        np.asarray(DEFAULT_DIRECTION, dtype=np.float64), queries.shape
    ).copy()
    return RayBatch(origins=queries, directions=directions, t_min=0.0, t_max=float(t_max))
