"""Sphere tests and distance kernels.

Step 2 of RTNN's algorithm (Section 3.1) is the *sphere test*: given
that a query point landed inside a primitive's AABB, check whether it
also lies inside the inscribed ``r``-sphere. These kernels implement
that test and the batched distance computations the baselines and the
brute-force oracle rely on.
"""

from __future__ import annotations

import numpy as np


def points_in_sphere(
    queries: np.ndarray, centers: np.ndarray, radius: float
) -> np.ndarray:
    """Pairwise test: is ``queries[i]`` within ``radius`` of ``centers[i]``?

    Both arrays are ``(M, d)``; the boundary counts as inside.
    """
    queries = np.asarray(queries, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    d2 = np.einsum("ij,ij->i", queries - centers, queries - centers)
    return d2 <= float(radius) * float(radius)


def pairwise_sq_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """All-pairs squared Euclidean distances, ``(len(a), len(b))``.

    Uses the expanded form ``|a|^2 - 2 a.b + |b|^2`` so the hot path is a
    single GEMM; negatives from floating-point cancellation are clamped.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    aa = np.einsum("ij,ij->i", a, a)[:, None]
    bb = np.einsum("ij,ij->i", b, b)[None, :]
    d2 = aa + bb - 2.0 * (a @ b.T)
    np.clip(d2, 0.0, None, out=d2)
    return d2
