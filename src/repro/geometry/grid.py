"""Uniform grids over 3-D point sets.

The uniform grid is the workhorse substrate for three distinct roles:

* the cuNSearch/FRNN baselines (grid-based exhaustive neighbor search);
* RTNN's megacell computation (Section 5.1), which iteratively grows a
  box of cells around each query;
* point-density estimation for the bundling cost model.

Binning uses a counting sort: points are bucketed by flattened cell id
and stored contiguously, with ``cell_start/cell_count`` CSR-style
offsets, so "all points in cell c" is a contiguous slice. The CSR
arrays (and the summed-area table) are O(total cells) to build, which
dwarfs O(points) work on fine grids — both are built lazily, and
box counting falls back to direct per-point dominance tests when the
grid is much finer than the point set, so megacell partitioning never
pays for cells nobody occupies.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.sat import SummedAreaTable3D

#: build the SAT only when the grid is at most this many cells per
#: point; finer grids answer box counts by direct dominance tests
_DIRECT_CELLS_PER_POINT = 64
#: cap on (boxes x points) comparison elements materialized at once
_DIRECT_CHUNK_ELEMS = 1 << 22


class UniformGrid:
    """A uniform 3-D grid binning a point set.

    Parameters
    ----------
    points:
        ``(N, 3)`` float64 point set.
    cell_size:
        Edge length of the (cubic) cells.
    bounds:
        Optional ``(lo, hi)`` pair; defaults to the tight scene bounds.
        Points outside the bounds are clamped into boundary cells.
    max_cells:
        Safety cap on total cell count; the cell size is grown (resolution
        shrunk) if the requested size would exceed it. This mirrors the
        paper's "smallest cell size allowed by the GPU memory capacity".
    """

    def __init__(self, points, cell_size: float, bounds=None, max_cells: int = 64_000_000):
        points = np.ascontiguousarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != 3:
            raise ValueError(f"points must be (N, 3), got {points.shape}")
        if len(points) == 0:
            raise ValueError("cannot grid an empty point set")
        cell_size = float(cell_size)
        if cell_size <= 0:
            raise ValueError(f"cell_size must be positive, got {cell_size}")

        if bounds is None:
            lo = points.min(axis=0)
            hi = points.max(axis=0)
        else:
            lo = np.asarray(bounds[0], dtype=np.float64)
            hi = np.asarray(bounds[1], dtype=np.float64)
        extent = np.maximum(hi - lo, 1e-12)

        res = np.maximum(np.ceil(extent / cell_size).astype(np.int64), 1)
        # Respect the memory cap by coarsening isotropically if needed.
        while int(np.prod(res)) > max_cells:
            cell_size *= 2.0
            res = np.maximum(np.ceil(extent / cell_size).astype(np.int64), 1)

        self.points = points
        self.lo = lo
        self.hi = hi
        self.cell_size = cell_size
        self.res = res  # (nx, ny, nz)
        self.n_cells = int(np.prod(res))

        self._point_cells = self.cell_coords(points)
        self._flat = self.flatten(self._point_cells)
        self._cells_t = None
        self._point_order = None
        self._sorted_flat = None
        self._cell_count = None
        self._cell_start = None
        self._sat = None

    # ------------------------------------------------------------------
    # lazy CSR binning (O(total cells) — only consumers that slice
    # cells pay for it; megacell partitioning never does)
    # ------------------------------------------------------------------
    @property
    def point_order(self) -> np.ndarray:
        """Grid-sorted original point indices (counting sort)."""
        if self._point_order is None:
            order = np.argsort(self._flat, kind="stable")
            self._point_order = order
            self._sorted_flat = self._flat[order]
        return self._point_order

    @property
    def sorted_flat(self) -> np.ndarray:
        """Flat cell id of each point, in ``point_order``."""
        self.point_order
        return self._sorted_flat

    @property
    def cell_count(self) -> np.ndarray:
        """Points binned into each cell, dense over all cells."""
        if self._cell_count is None:
            self._cell_count = np.bincount(self._flat, minlength=self.n_cells)
        return self._cell_count

    @property
    def cell_start(self) -> np.ndarray:
        """CSR offsets of each cell's slice of ``point_order``."""
        if self._cell_start is None:
            counts = self.cell_count
            self._cell_start = np.concatenate(([0], np.cumsum(counts)))[:-1]
        return self._cell_start

    # ------------------------------------------------------------------
    # coordinate transforms
    # ------------------------------------------------------------------
    def cell_coords(self, pts: np.ndarray) -> np.ndarray:
        """Integer cell coordinates ``(M, 3)``; clamped into the grid."""
        pts = np.asarray(pts, dtype=np.float64)
        raw = np.floor((pts - self.lo) / self.cell_size).astype(np.int64)
        return np.clip(raw, 0, self.res - 1)

    def flatten(self, idx3: np.ndarray) -> np.ndarray:
        """Flatten ``(M, 3)`` cell coordinates to linear cell ids."""
        nx, ny, nz = self.res
        return (idx3[:, 0] * ny + idx3[:, 1]) * nz + idx3[:, 2]

    def cell_center(self, idx3: np.ndarray) -> np.ndarray:
        """World-space centers of cells given integer coordinates."""
        return self.lo + (np.asarray(idx3, dtype=np.float64) + 0.5) * self.cell_size

    # ------------------------------------------------------------------
    # contents
    # ------------------------------------------------------------------
    def points_in_cell(self, flat_id: int) -> np.ndarray:
        """Original indices of the points binned into one cell."""
        s = self.cell_start[flat_id]
        return self.point_order[s : s + self.cell_count[flat_id]]

    def gather_cells(self, flat_ids: np.ndarray) -> np.ndarray:
        """Original point indices for a set of cells, concatenated."""
        flat_ids = np.asarray(flat_ids, dtype=np.int64)
        pieces = [self.points_in_cell(c) for c in flat_ids]
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def neighbor_cell_ids(self, center3: np.ndarray, reach: int = 1) -> np.ndarray:
        """Flat ids of the ``(2*reach+1)^3`` cells around ``center3``.

        Cells outside the grid are dropped (not wrapped).
        """
        center3 = np.asarray(center3, dtype=np.int64)
        offs = np.arange(-reach, reach + 1, dtype=np.int64)
        dx, dy, dz = np.meshgrid(offs, offs, offs, indexing="ij")
        block = center3 + np.stack([dx.ravel(), dy.ravel(), dz.ravel()], axis=1)
        ok = np.logical_and(block >= 0, block < self.res).all(axis=1)
        return self.flatten(block[ok])

    # ------------------------------------------------------------------
    # aggregate counts
    # ------------------------------------------------------------------
    @property
    def sat(self) -> SummedAreaTable3D:
        """Lazily-built summed-area table over per-cell point counts."""
        if self._sat is None:
            dense = self.cell_count.reshape(tuple(self.res))
            self._sat = SummedAreaTable3D(dense)
        return self._sat

    def count_in_boxes(self, lo3: np.ndarray, hi3: np.ndarray) -> np.ndarray:
        """Points contained in inclusive cell-coordinate boxes, batched.

        ``lo3``/``hi3`` are ``(M, 3)`` integer corner coordinates
        (inclusive on both ends) with the same clipping semantics as
        :meth:`SummedAreaTable3D.box_sums` — the kernel that makes
        megacell growth cheap. Grids much finer than the point set
        (where the O(total cells) table would dominate) are answered by
        direct per-point dominance tests instead; both paths return the
        exact same counts (asserted in ``tests/test_geometry_grid.py``).
        """
        if self._sat is None and (
            self.n_cells > _DIRECT_CELLS_PER_POINT * len(self.points)
        ):
            return self._count_in_boxes_direct(lo3, hi3)
        return self.sat.box_sums(lo3, hi3)

    def _count_in_boxes_direct(self, lo3: np.ndarray, hi3: np.ndarray) -> np.ndarray:
        """SAT-free box counts: test every point's cell against each box.

        O(boxes x points) comparisons, chunked to bound peak memory —
        cheap whenever points are scarce relative to cells. Clipping
        replicates :meth:`SummedAreaTable3D.box_sums` exactly (including
        boxes emptied or displaced by the clip).
        """
        lo3 = np.asarray(lo3, dtype=np.int64)
        hi3 = np.asarray(hi3, dtype=np.int64)
        single = lo3.ndim == 1
        if single:
            lo3 = lo3[None, :]
            hi3 = hi3[None, :]
        lo = np.clip(lo3, 0, self.res - 1).astype(np.int32)
        hi = np.clip(hi3, -1, self.res - 1).astype(np.int32)
        if self._cells_t is None:
            pc = self._point_cells.astype(np.int32)
            self._cells_t = tuple(
                np.ascontiguousarray(pc[:, axis]) for axis in range(3)
            )
        cx, cy, cz = self._cells_t
        m = len(lo)
        out = np.empty(m, dtype=np.int64)
        chunk = max(int(_DIRECT_CHUNK_ELEMS // max(len(cx), 1)), 1)
        for s in range(0, m, chunk):
            e = min(s + chunk, m)
            # per-axis column comparisons (no (chunk, N, 3) broadcast):
            # ~3x less element work, and int32 halves the traffic
            ok = (cx >= lo[s:e, 0, None]) & (cx <= hi[s:e, 0, None])
            ok &= cy >= lo[s:e, 1, None]
            ok &= cy <= hi[s:e, 1, None]
            ok &= cz >= lo[s:e, 2, None]
            ok &= cz <= hi[s:e, 2, None]
            out[s:e] = np.count_nonzero(ok, axis=1)
        out = np.where((hi < lo).any(axis=1), 0, out)
        return out[0] if single else out
