"""3-D summed-area tables (integral volumes).

Megacell growth (Section 5.1) repeatedly asks "how many points fall in
this axis-aligned box of grid cells?". Answering each such query from
raw cell counts costs O(box volume); with a summed-area table it is an
O(1) inclusion-exclusion over 8 corners, and the 8 gathers vectorize
across *all* queries simultaneously — the key to keeping partitioning
cheap ("lightweight" in the paper's words) on a Python substrate.
"""

from __future__ import annotations

import numpy as np


class SummedAreaTable3D:
    """Integral volume over a dense 3-D array of non-negative counts.

    The table is stored padded with a zero slab on the low side of each
    axis so corner lookups never need branch on boundaries.
    """

    def __init__(self, dense: np.ndarray):
        dense = np.asarray(dense)
        if dense.ndim != 3:
            raise ValueError(f"dense must be 3-D, got shape {dense.shape}")
        total = int(dense.sum()) if dense.size else 0
        # Non-negative counts keep every partial prefix sum in
        # [0, total], so the table narrows to int32 whenever the total
        # fits — halving the memory traffic of the three cumsum sweeps.
        # box_sums widens corner gathers back to int64.
        narrow = (
            dense.size > 0 and int(dense.min()) >= 0 and total < 2**31
        )
        dtype = np.int32 if narrow else np.int64
        table = np.zeros(tuple(np.array(dense.shape) + 1), dtype=dtype)
        acc = table[1:, 1:, 1:]
        acc[...] = dense
        np.cumsum(acc, axis=0, out=acc)
        np.cumsum(acc, axis=1, out=acc)
        np.cumsum(acc, axis=2, out=acc)
        self.table = table
        self.shape = dense.shape
        self.total = total

    def box_sums(self, lo3: np.ndarray, hi3: np.ndarray) -> np.ndarray:
        """Sum of counts in inclusive boxes ``[lo3, hi3]``, batched.

        Parameters
        ----------
        lo3, hi3:
            ``(M, 3)`` integer cell coordinates, inclusive on both ends.
            Boxes are clipped to the table extent; an empty (inverted)
            box sums to zero.

        Returns
        -------
        numpy.ndarray of int64, shape ``(M,)``
        """
        lo3 = np.asarray(lo3, dtype=np.int64)
        hi3 = np.asarray(hi3, dtype=np.int64)
        single = lo3.ndim == 1
        if single:
            lo3 = lo3[None, :]
            hi3 = hi3[None, :]
        shape = np.asarray(self.shape, dtype=np.int64)
        lo = np.clip(lo3, 0, shape - 1)
        hi = np.clip(hi3, -1, shape - 1)
        # In padded-table coordinates, the box [lo, hi] inclusive maps to
        # corners lo (exclusive low) and hi+1 (inclusive high).
        x0, y0, z0 = lo[:, 0], lo[:, 1], lo[:, 2]
        x1, y1, z1 = hi[:, 0] + 1, hi[:, 1] + 1, hi[:, 2] + 1
        t = self.table

        def corner(xi, yi, zi):
            # widen before arithmetic: the 8-term alternating sum can
            # overflow a narrowed (int32) table's dtype
            return t[xi, yi, zi].astype(np.int64, copy=False)

        s = (
            corner(x1, y1, z1)
            - corner(x0, y1, z1)
            - corner(x1, y0, z1)
            - corner(x1, y1, z0)
            + corner(x0, y0, z1)
            + corner(x0, y1, z0)
            + corner(x1, y0, z0)
            - corner(x0, y0, z0)
        )
        empty = (hi < lo).any(axis=1)
        s = np.where(empty, 0, s)
        return s[0] if single else s
