"""Morton (Z-order) codes, 2-D and 3-D, fully vectorized.

Morton codes serve two roles in this library, both from the paper:

* the LBVH builder sorts primitive AABBs by the Morton code of their
  centroid so spatially close primitives end up in nearby leaves;
* query scheduling (Section 4) sorts first-hit AABB centers in Morton
  order so adjacent rays represent spatially close queries.

Encoding uses the classic magic-number bit-spreading on ``uint64``:
21 bits per axis in 3-D (63-bit codes), 32 bits per axis in 2-D.
"""

from __future__ import annotations

import numpy as np

#: bits of quantization per axis for 3-D codes
MORTON_BITS_3D = 21
#: bits per axis for 2-D codes
MORTON_BITS_2D = 31


def _part1by2(x: np.ndarray) -> np.ndarray:
    """Spread the low 21 bits of each lane so they occupy every 3rd bit."""
    x = x.astype(np.uint64) & np.uint64(0x1FFFFF)
    x = (x | (x << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x << np.uint64(2))) & np.uint64(0x1249249249249249)
    return x


def _compact1by2(x: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_part1by2`."""
    x = x.astype(np.uint64) & np.uint64(0x1249249249249249)
    x = (x | (x >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    x = (x | (x >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    x = (x | (x >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    x = (x | (x >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    x = (x | (x >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return x


def _part1by1(x: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of each lane so they occupy every 2nd bit."""
    x = x.astype(np.uint64) & np.uint64(0x7FFFFFFF)
    x = (x | (x << np.uint64(16))) & np.uint64(0x0000FFFF0000FFFF)
    x = (x | (x << np.uint64(8))) & np.uint64(0x00FF00FF00FF00FF)
    x = (x | (x << np.uint64(4))) & np.uint64(0x0F0F0F0F0F0F0F0F)
    x = (x | (x << np.uint64(2))) & np.uint64(0x3333333333333333)
    x = (x | (x << np.uint64(1))) & np.uint64(0x5555555555555555)
    return x


def normalize_to_grid(points: np.ndarray, bits: int, lo=None, hi=None) -> np.ndarray:
    """Quantize points into integer grid coordinates ``[0, 2**bits - 1]``.

    Points are scaled into the (optionally supplied) bounds; degenerate
    axes (zero extent) map to coordinate 0.
    """
    points = np.asarray(points, dtype=np.float64)
    if lo is None:
        lo = points.min(axis=0)
    if hi is None:
        hi = points.max(axis=0)
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    extent = hi - lo
    extent = np.where(extent > 0.0, extent, 1.0)
    scale = (2**bits - 1) / extent
    coords = np.clip((points - lo) * scale, 0, 2**bits - 1)
    return coords.astype(np.uint64)


def morton_encode_3d(points: np.ndarray, lo=None, hi=None) -> np.ndarray:
    """63-bit Morton codes for 3-D points (21 bits per axis)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (N, 3), got {points.shape}")
    q = normalize_to_grid(points, MORTON_BITS_3D, lo, hi)
    return (
        _part1by2(q[:, 0])
        | (_part1by2(q[:, 1]) << np.uint64(1))
        | (_part1by2(q[:, 2]) << np.uint64(2))
    )


def morton_decode_3d(codes: np.ndarray) -> np.ndarray:
    """Recover quantized integer grid coordinates ``(N, 3)`` from codes."""
    codes = np.asarray(codes, dtype=np.uint64)
    x = _compact1by2(codes)
    y = _compact1by2(codes >> np.uint64(1))
    z = _compact1by2(codes >> np.uint64(2))
    return np.stack([x, y, z], axis=1)


def morton_encode_2d(points: np.ndarray, lo=None, hi=None) -> np.ndarray:
    """62-bit Morton codes for 2-D points (31 bits per axis)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (N, 2), got {points.shape}")
    q = normalize_to_grid(points, MORTON_BITS_2D, lo, hi)
    return _part1by1(q[:, 0]) | (_part1by1(q[:, 1]) << np.uint64(1))


def morton_order(points: np.ndarray, lo=None, hi=None) -> np.ndarray:
    """Indices that sort 2-D or 3-D points in Morton (Z) order.

    The sort is stable, so points with identical codes keep input order
    (this makes query scheduling deterministic).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.shape[1] == 3:
        codes = morton_encode_3d(points, lo, hi)
    elif points.shape[1] == 2:
        codes = morton_encode_2d(points, lo, hi)
    else:
        raise ValueError(f"points must be (N, 2) or (N, 3), got {points.shape}")
    return np.argsort(codes, kind="stable")
