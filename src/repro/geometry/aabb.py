"""Axis-aligned bounding boxes and ray-AABB intersection.

AABBs are stored as a pair of arrays ``(lo, hi)``, each ``(N, 3)``
float64, or interleaved as an ``(N, 6)`` array ``[lo | hi]`` when a
single buffer is convenient (the BVH node layout uses the latter).

The ray-AABB test implements the *two intersection conditions* from the
paper (Fig. 2):

1. the slab-test hit parameter ``t`` falls inside ``[t_min, t_max]``;
2. the ray *origin lies inside* the AABB, even if the slab-test ``t``
   is outside ``[t_min, t_max]``.

Condition 2 is what makes RTNN's "short ray" trick work: with
``t_max = 1e-16`` essentially every intersection is an origin-inside
event.
"""

from __future__ import annotations

import numpy as np


def aabbs_from_points(points: np.ndarray, half_width: float) -> tuple[np.ndarray, np.ndarray]:
    """Build one cubic AABB per point, centered on the point.

    This is ``buildBVH``'s AABB generation from Listing 1: each point
    becomes a box of width ``2 * half_width`` (the paper uses
    ``half_width = search radius r`` for the unpartitioned algorithm).

    Returns ``(lo, hi)`` arrays of shape ``(N, 3)``.
    """
    points = np.asarray(points, dtype=np.float64)
    hw = float(half_width)
    if hw <= 0.0:
        raise ValueError(f"half_width must be positive, got {hw}")
    return points - hw, points + hw


def aabb_union(lo: np.ndarray, hi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Union of a set of AABBs: elementwise min of ``lo``, max of ``hi``."""
    return lo.min(axis=0), hi.max(axis=0)


def aabb_contains(lo: np.ndarray, hi: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Test containment of ``points`` ``(M, 3)`` in AABBs ``(M, 3)`` pairwise.

    Boundary points count as inside (closed boxes), matching the
    conservative semantics hardware ray tracing uses for watertightness.
    """
    return np.logical_and(points >= lo, points <= hi).all(axis=-1)


def aabb_volume(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Volume of each AABB; zero for degenerate (inverted) boxes."""
    ext = np.clip(hi - lo, 0.0, None)
    return np.prod(ext, axis=-1)


def aabb_surface_area(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Surface area of each AABB (used by SAH-style tree quality stats)."""
    ext = np.clip(hi - lo, 0.0, None)
    x, y, z = ext[..., 0], ext[..., 1], ext[..., 2]
    return 2.0 * (x * y + y * z + z * x)


def scene_bounds(points: np.ndarray, pad: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Tight bounds of a point set, optionally padded on every side."""
    points = np.asarray(points, dtype=np.float64)
    if points.size == 0:
        raise ValueError("cannot compute bounds of an empty point set")
    return points.min(axis=0) - pad, points.max(axis=0) + pad


def ray_aabb_intersect(
    origins: np.ndarray,
    directions: np.ndarray,
    t_min: float,
    t_max: float,
    lo: np.ndarray,
    hi: np.ndarray,
) -> np.ndarray:
    """Vectorized ray-AABB intersection honoring both paper conditions.

    Parameters
    ----------
    origins, directions:
        ``(R, 3)`` ray batches (directions need not be normalized).
    t_min, t_max:
        The ray segment; RTNN uses ``[0, 1e-16]``.
    lo, hi:
        ``(R, 3)`` AABBs tested pairwise against the rays. (Broadcasting
        against a single box is also supported.)

    Returns
    -------
    numpy.ndarray of bool, shape ``(R,)``
        ``True`` where Condition 1 (slab hit within segment) *or*
        Condition 2 (origin inside the box) holds.
    """
    origins = np.asarray(origins, dtype=np.float64)
    directions = np.asarray(directions, dtype=np.float64)

    # Condition 2: origin inside the (closed) box.
    inside = np.logical_and(origins >= lo, origins <= hi).all(axis=-1)

    # Fast path for RTNN's degenerate short rays: a segment of length
    # <= 1e-12 can only produce Condition-1 hits when the origin sits
    # within 1e-12 of the box — measure-zero boundary cases the paper's
    # formulation deliberately ignores (Section 3.1's "only rays whose
    # origins reside in an AABB will trigger Step 2").
    if t_max - t_min <= 1e-12 and t_min >= 0.0:
        return inside

    # Condition 1: classic slab test with divide-by-zero handled via inf.
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / directions
        t0 = (lo - origins) * inv
        t1 = (hi - origins) * inv
    near = np.minimum(t0, t1)
    far = np.maximum(t0, t1)
    # A zero direction component yields nan when the origin sits exactly
    # on a slab; treat that axis as non-constraining.
    near = np.where(np.isnan(near), -np.inf, near)
    far = np.where(np.isnan(far), np.inf, far)
    t_enter = near.max(axis=-1)
    t_exit = far.min(axis=-1)
    slab_hit = (t_enter <= t_exit) & (t_exit >= t_min) & (t_enter <= t_max)

    return inside | slab_hit
