"""Geometry kernels: AABBs, rays, Morton codes, spheres, grids.

Everything here is vectorized NumPy operating on batches; these kernels
are the foundation for both the BVH substrate and the RTNN algorithms.
"""

from repro.geometry.aabb import (
    aabbs_from_points,
    aabb_union,
    aabb_contains,
    aabb_volume,
    aabb_surface_area,
    ray_aabb_intersect,
    scene_bounds,
)
from repro.geometry.ray import RayBatch, short_rays_from_queries
from repro.geometry.morton import (
    morton_encode_2d,
    morton_encode_3d,
    morton_decode_3d,
    morton_order,
    normalize_to_grid,
)
from repro.geometry.sphere import points_in_sphere, pairwise_sq_distances
from repro.geometry.grid import UniformGrid
from repro.geometry.sat import SummedAreaTable3D

__all__ = [
    "aabbs_from_points",
    "aabb_union",
    "aabb_contains",
    "aabb_volume",
    "aabb_surface_area",
    "ray_aabb_intersect",
    "scene_bounds",
    "RayBatch",
    "short_rays_from_queries",
    "morton_encode_2d",
    "morton_encode_3d",
    "morton_decode_3d",
    "morton_order",
    "normalize_to_grid",
    "points_in_sphere",
    "pairwise_sq_distances",
    "UniformGrid",
    "SummedAreaTable3D",
]
