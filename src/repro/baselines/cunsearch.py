"""cuNSearch-style uniform-grid fixed-radius search.

Recipe (Hoetzlein's fast fixed-radius NN): counting-sort points into a
grid with cell edge = r, process queries in cell-sorted order, test all
points in the 27 neighboring cells, keep up to K within r. Exhaustive
but perfectly regular — the work-inefficient / hardware-friendly end of
the paper's trade-off. Range search only, as in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import costs
from repro.baselines.gridcommon import segment_ranks, sweep_neighbors, warp_round_sum
from repro.core.engine import POINT_BYTES
from repro.core.results import RunReport, SearchResults, empty_results
from repro.geometry.grid import UniformGrid
from repro.gpu.costmodel import CostModel, LINE_BYTES
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.utils.validate import as_points, check_positive, check_positive_int


class CuNSearch:
    """Grid-based range search costed on the simulated device."""

    name = "cuNSearch"
    supports = ("range",)

    def __init__(self, points, device: DeviceSpec = RTX_2080, chunk_size: int = 8192):
        self.points = as_points(points, "points")
        self.device = device
        self.cost_model = CostModel(device)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)

    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """Up to ``k`` neighbors within ``radius`` per query."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        cm = self.cost_model

        breakdown = Breakdown()
        breakdown.data += cm.transfer_time((len(self.points) + n_q) * POINT_BYTES)

        grid = UniformGrid(self.points, cell_size=radius)
        breakdown.bvh += cm.grid_build_time(len(self.points)) + cm.sort_time(
            len(self.points)
        )

        # cuNSearch processes queries in input order (no reordering in
        # the library) — one of the reasons it trails FRNN.
        qorder = np.arange(n_q, dtype=np.int64)
        sorted_q = queries

        indices, counts, sq_d = empty_results(n_q, k)
        work_all = np.zeros(n_q, dtype=np.int64)
        fetch_lines = 0
        cell_lookups = 0
        # Chunked sweep keeps the candidate pair arrays bounded at any
        # input scale (full-scale inputs produce 10^8+ candidates).
        block = self.chunk_size
        for s in range(0, n_q, block):
            sub_q = sorted_q[s : s + block]
            sub_order = qorder[s : s + block]
            sweep = sweep_neighbors(grid, sub_q)
            work_all[s : s + block] = sweep.work_per_query
            fetch_lines += sweep.point_fetch_lines
            cell_lookups += sweep.cell_lookups
            if len(sweep.pair_q) == 0:
                continue
            diff = sub_q[sweep.pair_q] - self.points[sweep.pair_p]
            d2 = np.einsum("ij,ij->i", diff, diff)
            keep = d2 <= radius * radius
            pq, pp, d2 = sweep.pair_q[keep], sweep.pair_p[keep], d2[keep]
            ranks = segment_ranks(pq)
            sel = ranks < k
            rows = sub_order[pq[sel]]
            indices[rows, ranks[sel]] = pp[sel]
            sq_d[rows, ranks[sel]] = d2[sel]
            counts[sub_order] = np.minimum(
                np.bincount(pq, minlength=len(sub_q)), k
            )

        rounds = warp_round_sum(work_all, self.device.warp_size)
        lookup_rounds = warp_round_sum(
            np.full(n_q, 27, dtype=np.int64), self.device.warp_size
        )
        search_t = cm.sm_time(rounds, costs.CUNSEARCH_DIST_CYCLES)
        search_t += cm.sm_time(lookup_rounds, costs.CELL_LOOKUP_CYCLES)
        search_t += self._mem_time(fetch_lines)
        breakdown.search += search_t

        report = RunReport(
            breakdown=breakdown,
            is_calls=int(work_all.sum()),
            traversal_steps=cell_lookups,
            device=self.device.name,
            extras={"candidates": int(work_all.sum())},
        )
        return SearchResults(indices, counts, sq_d, report)

    def _mem_time(self, lines: int) -> float:
        d = self.device
        past_l1 = lines * LINE_BYTES * (1.0 - costs.CUNSEARCH_L1_HIT)
        past_l2 = past_l1 * (1.0 - costs.CUNSEARCH_L2_HIT)
        return past_l1 / d.l2_bw + past_l2 / d.dram_bw

    def modeled_memory_bytes(self, n_points: int, radius: float, extent: float) -> int:
        """Device-memory footprint at a hypothetical scale.

        A uniform grid with cell = r over a scene of edge ``extent``
        needs per-cell start/count arrays — the term that blows up for
        large scenes with small radii (the paper's OOM rows in Fig. 11).
        """
        n_cells = int(max(np.ceil(extent / radius), 1)) ** 3
        return n_cells * 8 + n_points * (POINT_BYTES + 8)
