"""PCL-Octree-style searcher.

PCL's GPU octree offers radius search (with a max-neighbor bound) and
nearest-neighbor search with K = 1 only — exactly the limitation noted
in the paper ("PCLOctree supports only K=1 for KNN search"). Both
searches run the batched software traversal of
:mod:`repro.baselines.octree`; the cost model charges software
tree-traversal rates (no RT-core assist), which is precisely what RTNN's
hardware traversal beats.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import costs
from repro.baselines.gridcommon import warp_round_sum
from repro.baselines.octree import build_octree, octree_traverse
from repro.core.engine import POINT_BYTES
from repro.core.results import RunReport, SearchResults, empty_results
from repro.gpu.costmodel import CostModel, LINE_BYTES
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.utils.validate import as_points, check_positive, check_positive_int


class PCLOctree:
    """Octree radius / nearest-neighbor search on the simulated device."""

    name = "PCL-Octree"
    supports = ("range", "knn1")

    def __init__(self, points, device: DeviceSpec = RTX_2080, leaf_size: int = 8):
        self.points = as_points(points, "points")
        self.device = device
        self.cost_model = CostModel(device)
        self.tree = build_octree(self.points, leaf_size=leaf_size)

    # ------------------------------------------------------------------
    def _build_time(self) -> float:
        cm = self.cost_model
        n = len(self.points)
        rounds = n * max(self.tree.depth, 1) / self.device.warp_size
        return cm.sort_time(n) + cm.sm_time(rounds, costs.OCTREE_BUILD_CYCLES_PER_POINT)

    def _mem_time(self, lines: float) -> float:
        d = self.device
        past_l1 = lines * LINE_BYTES * (1.0 - costs.OCTREE_L1_HIT)
        past_l2 = past_l1 * (1.0 - costs.OCTREE_L2_HIT)
        return past_l1 / d.l2_bw + past_l2 / d.dram_bw

    def _finish(self, stats, breakdown, n_q) -> RunReport:
        ws = self.device.warp_size
        search_t = self.cost_model.sm_time(
            warp_round_sum(stats.steps, ws), costs.OCTREE_STEP_CYCLES
        )
        search_t += self.cost_model.sm_time(
            warp_round_sum(stats.dist_tests, ws), costs.DIST_CYCLES
        )
        lines = stats.steps.sum() + stats.dist_tests.sum() / 4.0
        search_t += self._mem_time(float(lines))
        breakdown.search += search_t
        return RunReport(
            breakdown=breakdown,
            is_calls=int(stats.dist_tests.sum()),
            traversal_steps=int(stats.steps.sum()),
            device=self.device.name,
        )

    # ------------------------------------------------------------------
    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """Up to ``k`` neighbors within ``radius`` (traversal order)."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        cm = self.cost_model

        breakdown = Breakdown()
        breakdown.data += cm.transfer_time((len(self.points) + n_q) * POINT_BYTES)
        breakdown.bvh += self._build_time()

        indices, counts, sq_d = empty_results(n_q, k)
        r2 = radius * radius

        def on_leaf(qids, pids, d2):
            keep = d2 <= r2
            if not keep.any():
                return None
            q, p, dd = qids[keep], pids[keep], d2[keep]
            slots = counts[q]
            open_slot = slots < k
            q, p, dd, slots = q[open_slot], p[open_slot], dd[open_slot], slots[open_slot]
            indices[q, slots] = p
            sq_d[q, slots] = dd
            counts[q] = slots + 1
            return q[slots + 1 == k]

        prune2 = np.full(n_q, r2, dtype=np.float64)
        stats = octree_traverse(self.tree, queries, prune2, on_leaf)
        report = self._finish(stats, breakdown, n_q)
        return SearchResults(indices, counts, sq_d, report)

    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """Nearest neighbor within ``radius``; PCL supports only k = 1."""
        if int(k) != 1:
            raise ValueError("PCLOctree KNN supports only k=1 (as in the paper)")
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        n_q = len(queries)
        cm = self.cost_model

        breakdown = Breakdown()
        breakdown.data += cm.transfer_time((len(self.points) + n_q) * POINT_BYTES)
        breakdown.bvh += self._build_time()

        indices, counts, sq_d = empty_results(n_q, 1)
        prune2 = np.full(n_q, radius * radius, dtype=np.float64)

        def on_leaf(qids, pids, d2):
            better = d2 < prune2[qids]
            if not better.any():
                return None
            q, p, dd = qids[better], pids[better], d2[better]
            indices[q, 0] = p
            sq_d[q, 0] = dd
            counts[q] = 1
            prune2[q] = dd  # shrink the prune radius as we improve
            return None

        stats = octree_traverse(self.tree, queries, prune2, on_leaf)
        report = self._finish(stats, breakdown, n_q)
        return SearchResults(indices, counts, sq_d, report)

    def modeled_memory_bytes(self, n_points: int) -> int:
        """Octree nodes + sorted points at a hypothetical scale."""
        nodes = 2 * n_points // self.tree.leaf_size + 1
        return nodes * 48 + n_points * (POINT_BYTES + 8)
