"""Cost constants for the non-RT baselines.

The baselines execute regular, exhaustive work on the SMs, so their
modeled time uses straightforward warp-round accounting (Σ per-warp max
lane work — same convention as the traversal engine) with the cycle
costs below, plus bandwidth-bound memory traffic at documented default
hit rates. Grid methods stream cell-sorted data and enjoy high
locality; software octree traversal is pointer-chasing and does not.
"""

#: cycles per candidate distance test (load + fused multiply-adds + compare)
DIST_CYCLES = 24.0

#: cuNSearch's per-candidate cost is higher than FRNN's: AoS point
#: layout, atomics on the shared neighbor-list counters, no query
#: reordering (measured gap between the two libraries in the paper is
#: an order of magnitude)
CUNSEARCH_DIST_CYCLES = 64.0

#: cuNSearch cache behavior without query reordering
CUNSEARCH_L1_HIT = 0.40
CUNSEARCH_L2_HIT = 0.50

#: extra cycles per accepted KNN candidate: a bounded insertion sort
#: shifts up to K register entries, ~K/4 on average
def knn_insert_cycles(k: int) -> float:
    return 4.0 + 0.25 * k

#: cycles per query per cell lookup (index arithmetic + range fetch)
CELL_LOOKUP_CYCLES = 8.0

#: cycles per node pop for *software* tree traversal: fetch the node
#: (bounds + 8 child slots), compute a box distance, manage the
#: local-memory stack — with no RT-core assist every step runs as SM
#: instructions
OCTREE_STEP_CYCLES = 160.0

#: cycles per point per level for octree construction
OCTREE_BUILD_CYCLES_PER_POINT = 12.0

#: default cache hit rates: grid methods (streaming, cell-sorted)
GRID_L1_HIT = 0.70
GRID_L2_HIT = 0.80

#: default cache hit rates: software octree traversal (irregular)
OCTREE_L1_HIT = 0.35
OCTREE_L2_HIT = 0.45
