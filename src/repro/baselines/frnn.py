"""FRNN-style grid-based K-nearest-within-radius search.

FRNN (the PyTorch3D drop-in) also builds a radius-edge uniform grid but
keeps the K *nearest* candidates rather than the first K: every
candidate within r competes in a bounded insertion sort. Same regular,
exhaustive sweep as cuNSearch, with the extra per-accepted-candidate
insertion cost.
"""

from __future__ import annotations

import numpy as np

from repro.baselines import costs
from repro.baselines.gridcommon import segment_ranks, sweep_neighbors, warp_round_sum
from repro.core.engine import POINT_BYTES
from repro.core.results import RunReport, SearchResults, empty_results
from repro.geometry.grid import UniformGrid
from repro.geometry.morton import morton_order
from repro.gpu.costmodel import CostModel, LINE_BYTES
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.metrics.breakdown import Breakdown
from repro.utils.validate import as_points, check_positive, check_positive_int


class FRNN:
    """Grid-based KNN (bounded by radius) costed on the simulated device."""

    name = "FRNN"
    supports = ("knn",)

    def __init__(self, points, device: DeviceSpec = RTX_2080, chunk_size: int = 8192):
        self.points = as_points(points, "points")
        self.device = device
        self.cost_model = CostModel(device)
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)

    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """The ``k`` nearest neighbors within ``radius`` per query."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        cm = self.cost_model

        breakdown = Breakdown()
        breakdown.data += cm.transfer_time((len(self.points) + n_q) * POINT_BYTES)

        grid = UniformGrid(self.points, cell_size=radius)
        breakdown.bvh += cm.grid_build_time(len(self.points)) + cm.sort_time(
            len(self.points)
        )
        qorder = morton_order(queries) if n_q else np.arange(0, dtype=np.int64)
        breakdown.opt += cm.sort_time(n_q)
        sorted_q = queries[qorder]

        indices, counts, sq_d = empty_results(n_q, k)
        work_all = np.zeros(n_q, dtype=np.int64)
        fetch_lines = 0
        cell_lookups = 0
        accepted = 0
        # Chunked sweep bounds the candidate pair arrays at any scale.
        block = self.chunk_size
        for s in range(0, n_q, block):
            sub_q = sorted_q[s : s + block]
            sub_order = qorder[s : s + block]
            sweep = sweep_neighbors(grid, sub_q)
            work_all[s : s + block] = sweep.work_per_query
            fetch_lines += sweep.point_fetch_lines
            cell_lookups += sweep.cell_lookups
            if len(sweep.pair_q) == 0:
                continue
            diff = sub_q[sweep.pair_q] - self.points[sweep.pair_p]
            d2 = np.einsum("ij,ij->i", diff, diff)
            keep = d2 <= radius * radius
            pq, pp, d2 = sweep.pair_q[keep], sweep.pair_p[keep], d2[keep]
            accepted += len(pq)
            # Nearest-K per query: sort by (query, distance), keep ranks < k.
            order = np.lexsort((d2, pq))
            pq, pp, d2 = pq[order], pp[order], d2[order]
            ranks = segment_ranks(pq)
            sel = ranks < k
            rows = sub_order[pq[sel]]
            indices[rows, ranks[sel]] = pp[sel]
            sq_d[rows, ranks[sel]] = d2[sel]
            counts[sub_order] = np.minimum(
                np.bincount(pq, minlength=len(sub_q)), k
            )

        rounds = warp_round_sum(work_all, self.device.warp_size)
        lookup_rounds = warp_round_sum(
            np.full(n_q, 27, dtype=np.int64), self.device.warp_size
        )
        search_t = cm.sm_time(rounds, costs.DIST_CYCLES)
        search_t += cm.sm_time(lookup_rounds, costs.CELL_LOOKUP_CYCLES)
        search_t += cm.sm_time(
            accepted / self.device.warp_size, costs.knn_insert_cycles(k)
        )
        search_t += self._mem_time(fetch_lines)
        breakdown.search += search_t

        report = RunReport(
            breakdown=breakdown,
            is_calls=int(work_all.sum()),
            traversal_steps=cell_lookups,
            device=self.device.name,
            extras={"candidates": int(work_all.sum()), "accepted": accepted},
        )
        return SearchResults(indices, counts, sq_d, report)

    def _mem_time(self, lines: int) -> float:
        d = self.device
        past_l1 = lines * LINE_BYTES * (1.0 - costs.GRID_L1_HIT)
        past_l2 = past_l1 * (1.0 - costs.GRID_L2_HIT)
        return past_l1 / d.l2_bw + past_l2 / d.dram_bw

    def modeled_memory_bytes(self, n_points: int, radius: float, extent: float) -> int:
        """Grid + sorted points + per-query K-buffers at a given scale."""
        n_cells = int(max(np.ceil(extent / radius), 1)) ** 3
        return n_cells * 8 + n_points * (POINT_BYTES + 8)
