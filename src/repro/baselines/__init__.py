"""GPU baseline searchers the paper compares against (Section 6.1).

All baselines run functionally on the CPU but are *costed* on the same
simulated device as RTNN, so Fig. 11-style speedups are ratios of
modeled GPU time computed from mechanistic work/traffic counters:

* :mod:`brute` — exact reference oracle (correctness tests only; no
  cost model);
* :mod:`cunsearch` — uniform-grid fixed-radius search (cuNSearch);
* :mod:`frnn` — uniform-grid K-nearest-within-radius (FRNN);
* :mod:`pcl_octree` — adaptive linear octree radius/NN search
  (PCL-Octree; KNN supports K = 1 only, as in the paper);
* :mod:`fastrnn` — RT-core KNN *without* RTNN's optimizations
  (Evangelou et al.), i.e. Listing 1 verbatim.
"""

from repro.baselines.brute import brute_force_range, brute_force_knn
from repro.baselines.cunsearch import CuNSearch
from repro.baselines.frnn import FRNN
from repro.baselines.pcl_octree import PCLOctree
from repro.baselines.fastrnn import FastRNN
from repro.baselines.cpu import FlannKdTree, CompactNSearch, CpuSpec

__all__ = [
    "brute_force_range",
    "brute_force_knn",
    "CuNSearch",
    "FRNN",
    "PCLOctree",
    "FastRNN",
    "FlannKdTree",
    "CompactNSearch",
    "CpuSpec",
]
