"""CPU reference searchers (the paper's refs [17, 19, 25, 26]).

The paper's related work contrasts GPU neighbor search with the CPU
state of the art: FLANN's k-d trees and CompactNSearch's z-ordered
compact grid. Fig. 11 benchmarks GPUs only, but a credible neighbor-
search library ships CPU implementations too — and they double as
additional exact references for the test suite.

Both searchers report modeled *CPU* time through a small multicore
cost model (:class:`CpuSpec`), kept deliberately simple: work counters
x per-op cycles / (cores x clock). They are not part of the Fig. 11
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.gridcommon import segment_ranks, sweep_neighbors
from repro.core.results import RunReport, SearchResults, empty_results
from repro.geometry.grid import UniformGrid
from repro.geometry.morton import morton_order
from repro.metrics.breakdown import Breakdown
from repro.utils.validate import as_points, check_positive, check_positive_int


@dataclass(frozen=True)
class CpuSpec:
    """A simple multicore CPU for modeled-time accounting."""

    name: str = "8-core CPU"
    n_cores: int = 8
    clock_hz: float = 3.5e9
    #: cycles per k-d node visit (branch + compare + fetch)
    node_cycles: float = 12.0
    #: cycles per candidate distance test (SIMD-friendly)
    dist_cycles: float = 6.0

    def time(self, node_visits: float, dist_tests: float) -> float:
        cycles = node_visits * self.node_cycles + dist_tests * self.dist_cycles
        return cycles / (self.n_cores * self.clock_hz)


# ---------------------------------------------------------------------
# FLANN-style k-d tree
# ---------------------------------------------------------------------
@dataclass
class KdTree:
    """Flat median-split k-d tree over a point set."""

    axis: np.ndarray        # (M,) split axis; -1 for leaves
    split: np.ndarray       # (M,) split coordinate
    left: np.ndarray        # (M,) child ids; -1 for leaves
    right: np.ndarray
    start: np.ndarray       # (M,) leaf range into order
    end: np.ndarray
    order: np.ndarray       # (N,) point ids in tree order
    points: np.ndarray
    leaf_size: int

    @property
    def n_nodes(self) -> int:
        return len(self.axis)


def build_kdtree(points: np.ndarray, leaf_size: int = 16) -> KdTree:
    """Median-split k-d tree (widest-axis split, like FLANN's default)."""
    points = as_points(points, "points")
    n = len(points)
    leaf_size = int(leaf_size)
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    order = np.arange(n, dtype=np.int64)
    axis_l: list[int] = []
    split_l: list[float] = []
    left_l: list[int] = []
    right_l: list[int] = []
    start_l: list[int] = []
    end_l: list[int] = []

    def new_node(s, e):
        axis_l.append(-1)
        split_l.append(0.0)
        left_l.append(-1)
        right_l.append(-1)
        start_l.append(s)
        end_l.append(e)
        return len(axis_l) - 1

    root = new_node(0, n)
    stack = [(0, n, root)]
    while stack:
        s, e, nid = stack.pop()
        if e - s <= leaf_size:
            continue
        seg = order[s:e]
        lo = points[seg].min(axis=0)
        hi = points[seg].max(axis=0)
        ax = int(np.argmax(hi - lo))
        loc = np.argsort(points[seg, ax], kind="stable")
        order[s:e] = seg[loc]
        mid = s + (e - s) // 2
        axis_l[nid] = ax
        split_l[nid] = float(points[order[mid], ax])
        lid = new_node(s, mid)
        rid = new_node(mid, e)
        left_l[nid] = lid
        right_l[nid] = rid
        stack.append((s, mid, lid))
        stack.append((mid, e, rid))

    return KdTree(
        axis=np.asarray(axis_l, dtype=np.int64),
        split=np.asarray(split_l),
        left=np.asarray(left_l, dtype=np.int64),
        right=np.asarray(right_l, dtype=np.int64),
        start=np.asarray(start_l, dtype=np.int64),
        end=np.asarray(end_l, dtype=np.int64),
        order=order,
        points=points,
        leaf_size=leaf_size,
    )


class FlannKdTree:
    """Exact k-d tree search (KNN and radius), modeled on a CPU."""

    name = "FLANN-kdtree (CPU)"
    supports = ("knn", "range")

    def __init__(self, points, cpu: CpuSpec = CpuSpec(), leaf_size: int = 16):
        self.cpu = cpu
        self.tree = build_kdtree(points, leaf_size=leaf_size)
        self.points = self.tree.points

    # -- batched pruned traversal (shared by both query types) ---------
    def _traverse(self, queries, prune2, on_leaf):
        t = self.tree
        n_q = len(queries)
        visits = np.zeros(n_q, dtype=np.int64)
        tests = np.zeros(n_q, dtype=np.int64)
        if n_q == 0:
            return visits, tests
        depth = int(np.ceil(np.log2(max(len(t.points) / t.leaf_size, 2)))) + 3
        stack = np.zeros((n_q, 2 * depth + 2), dtype=np.int64)
        # parallel stack of accumulated off-split distances
        offd2 = np.zeros((n_q, 2 * depth + 2), dtype=np.float64)
        sp = np.ones(n_q, dtype=np.int64)
        act = np.arange(n_q, dtype=np.int64)
        while len(act):
            sp[act] -= 1
            nodes = stack[act, sp[act]]
            bound = offd2[act, sp[act]]
            visits[act] += 1
            ok = bound <= prune2[act]
            a = act[ok]
            nd = nodes[ok]
            b = bound[ok]
            is_leaf = t.axis[nd] < 0

            # leaves: test points
            lr = a[is_leaf]
            ln = nd[is_leaf]
            if len(lr):
                starts = t.start[ln]
                counts = t.end[ln] - starts
                for j in range(t.leaf_size):
                    sel = counts > j
                    if not sel.any():
                        break
                    r = lr[sel]
                    pid = t.order[starts[sel] + j]
                    diff = queries[r] - t.points[pid]
                    d2 = np.einsum("ij,ij->i", diff, diff)
                    tests[r] += 1
                    on_leaf(r, pid, d2)

            # internal: push far side (with added split distance), then near
            ir = a[~is_leaf]
            inn = nd[~is_leaf]
            if len(ir):
                ax = t.axis[inn]
                delta = queries[ir, ax] - t.split[inn]
                near = np.where(delta <= 0, t.left[inn], t.right[inn])
                far = np.where(delta <= 0, t.right[inn], t.left[inn])
                # Far side: at least the split-plane distance away
                # (simple single-axis bound — conservative, hence safe).
                stack[ir, sp[ir]] = far
                offd2[ir, sp[ir]] = np.maximum(b[~is_leaf], delta * delta)
                sp[ir] += 1
                stack[ir, sp[ir]] = near
                offd2[ir, sp[ir]] = b[~is_leaf]
                sp[ir] += 1

            act = act[sp[act] > 0]
        return visits, tests

    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """Exact ``k`` nearest within ``radius`` via pruned DFS."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        indices, counts, sq_d = empty_results(n_q, k)
        worst = np.full(n_q, radius * radius)

        def on_leaf(qids, pids, d2):
            better = d2 <= worst[qids]
            q, p, dd = qids[better], pids[better], d2[better]
            if not len(q):
                return
            slots = counts[q]
            open_slot = slots < k
            qq, pp2, dd2 = q[open_slot], p[open_slot], dd[open_slot]
            indices[qq, slots[open_slot]] = pp2
            sq_d[qq, slots[open_slot]] = dd2
            counts[qq] = slots[open_slot] + 1
            repl = ~open_slot
            if repl.any():
                qq = q[repl]
                victim = np.argmax(sq_d[qq], axis=1)
                indices[qq, victim] = p[repl]
                sq_d[qq, victim] = dd[repl]
            full = counts == k
            fq = np.unique(q[full[q]])
            if len(fq):
                worst[fq] = sq_d[fq].max(axis=1)

        visits, tests = self._traverse(queries, worst, on_leaf)
        report = self._report(visits, tests)
        # sort rows by distance
        rows = np.arange(n_q)[:, None]
        order = np.argsort(sq_d, axis=1, kind="stable")
        return SearchResults(indices[rows, order], counts, sq_d[rows, order], report)

    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """Up to ``k`` neighbors within ``radius`` (discovery order)."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        indices, counts, sq_d = empty_results(n_q, k)
        r2 = radius * radius

        def on_leaf(qids, pids, d2):
            keep = d2 <= r2
            q, p, dd = qids[keep], pids[keep], d2[keep]
            slots = counts[q]
            open_slot = slots < k
            q, p, dd, slots = q[open_slot], p[open_slot], dd[open_slot], slots[open_slot]
            indices[q, slots] = p
            sq_d[q, slots] = dd
            counts[q] = slots + 1

        prune2 = np.full(n_q, r2)
        visits, tests = self._traverse(queries, prune2, on_leaf)
        return SearchResults(indices, counts, sq_d, self._report(visits, tests))

    def _report(self, visits, tests) -> RunReport:
        bd = Breakdown(search=self.cpu.time(float(visits.sum()), float(tests.sum())))
        return RunReport(
            breakdown=bd,
            is_calls=int(tests.sum()),
            traversal_steps=int(visits.sum()),
            device=self.cpu.name,
        )


# ---------------------------------------------------------------------
# CompactNSearch-style CPU grid
# ---------------------------------------------------------------------
class CompactNSearch:
    """Z-ordered CPU grid range search (CompactNSearch's recipe)."""

    name = "CompactNSearch (CPU)"
    supports = ("range",)

    def __init__(self, points, cpu: CpuSpec = CpuSpec()):
        self.points = as_points(points, "points")
        self.cpu = cpu

    def range_search(self, queries, radius: float, k: int) -> SearchResults:
        """Up to ``k`` neighbors within ``radius`` per query."""
        queries = as_points(queries, "queries")
        radius = check_positive(radius, "radius")
        k = check_positive_int(k, "k")
        n_q = len(queries)
        grid = UniformGrid(self.points, cell_size=radius)
        qorder = morton_order(queries) if n_q else np.arange(0, dtype=np.int64)
        sorted_q = queries[qorder]

        indices, counts, sq_d = empty_results(n_q, k)
        total_candidates = 0
        lookups = 0
        block = 8192
        for s in range(0, n_q, block):
            sub_q = sorted_q[s : s + block]
            sub_order = qorder[s : s + block]
            sweep = sweep_neighbors(grid, sub_q)
            total_candidates += int(sweep.work_per_query.sum())
            lookups += sweep.cell_lookups
            if not len(sweep.pair_q):
                continue
            diff = sub_q[sweep.pair_q] - self.points[sweep.pair_p]
            d2 = np.einsum("ij,ij->i", diff, diff)
            keep = d2 <= radius * radius
            pq, pp, d2 = sweep.pair_q[keep], sweep.pair_p[keep], d2[keep]
            ranks = segment_ranks(pq)
            sel = ranks < k
            rows = sub_order[pq[sel]]
            indices[rows, ranks[sel]] = pp[sel]
            sq_d[rows, ranks[sel]] = d2[sel]
            counts[sub_order] = np.minimum(np.bincount(pq, minlength=len(sub_q)), k)

        bd = Breakdown(search=self.cpu.time(float(lookups), float(total_candidates)))
        report = RunReport(
            breakdown=bd,
            is_calls=total_candidates,
            traversal_steps=lookups,
            device=self.cpu.name,
        )
        return SearchResults(indices, counts, sq_d, report)
