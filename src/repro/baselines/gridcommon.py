"""Shared machinery for the uniform-grid baselines (cuNSearch, FRNN).

Both libraries follow the same GPU recipe: bin points into a uniform
grid with cell edge = search radius, sort points by cell (counting
sort), process queries in cell order, and exhaustively test the 27
neighboring cells of each query. The helpers here produce the candidate
(query, point) pair stream plus the work counters the cost model needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.grid import UniformGrid

#: the 27 neighbor-cell offsets
_OFFSETS = np.array(
    [[dx, dy, dz] for dx in (-1, 0, 1) for dy in (-1, 0, 1) for dz in (-1, 0, 1)],
    dtype=np.int64,
)


@dataclass
class CandidateSweep:
    """All candidates from one 27-cell sweep, plus work counters."""

    pair_q: np.ndarray       # candidate query indices (into the *query* array)
    pair_p: np.ndarray       # candidate point indices (original ids)
    work_per_query: np.ndarray   # candidates examined per query
    cell_lookups: int            # (query, cell) probes performed
    point_fetch_lines: int       # point-data cache lines streamed


def csr_expand(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Expand CSR (start, count) ranges into a flat index array.

    ``[s0, s0+1, .., s0+c0-1, s1, ...]`` — the standard trick for
    gathering variable-length cell contents without a Python loop.
    """
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    offsets = np.repeat(ends - counts, counts)
    return np.repeat(starts, counts) + (np.arange(total, dtype=np.int64) - offsets)


def sweep_neighbors(grid: UniformGrid, queries: np.ndarray) -> CandidateSweep:
    """Gather every point in the 27 cells around each query.

    Returns candidates ordered by (query, offset) so downstream bounded
    insertion can use segment ranks directly.
    """
    n_q = len(queries)
    qcells = grid.cell_coords(queries)
    work = np.zeros(n_q, dtype=np.int64)
    pair_q_parts: list[np.ndarray] = []
    pair_p_parts: list[np.ndarray] = []
    cell_lookups = 0
    fetch_lines = 0

    for off in _OFFSETS:
        target = qcells + off
        ok = np.logical_and(target >= 0, target < grid.res).all(axis=1)
        qi = np.flatnonzero(ok)
        if len(qi) == 0:
            continue
        flat = grid.flatten(target[qi])
        cell_lookups += len(qi)
        counts = grid.cell_count[flat]
        nonempty = counts > 0
        qi = qi[nonempty]
        flat = flat[nonempty]
        counts = counts[nonempty]
        if len(qi) == 0:
            continue
        work[qi] += counts
        starts = grid.cell_start[flat]
        slots = csr_expand(starts, counts)
        pair_q_parts.append(np.repeat(qi, counts))
        pair_p_parts.append(grid.point_order[slots])
        # Streaming one cell costs ceil(count / 4) lines; warps scanning
        # the same cell coalesce, approximated by charging per distinct
        # (query-warp, cell) pair.
        warp = qi // 32
        keys = warp * np.int64(grid.n_cells) + flat
        _, first = np.unique(keys, return_index=True)
        fetch_lines += int(np.ceil(counts[first] / 4.0).sum())

    if pair_q_parts:
        pair_q = np.concatenate(pair_q_parts)
        pair_p = np.concatenate(pair_p_parts)
        order = np.argsort(pair_q, kind="stable")
        pair_q = pair_q[order]
        pair_p = pair_p[order]
    else:
        pair_q = np.empty(0, dtype=np.int64)
        pair_p = np.empty(0, dtype=np.int64)
    return CandidateSweep(
        pair_q=pair_q,
        pair_p=pair_p,
        work_per_query=work,
        cell_lookups=int(cell_lookups),
        point_fetch_lines=int(fetch_lines),
    )


def segment_ranks(sorted_ids: np.ndarray) -> np.ndarray:
    """Rank of each element within its run of equal ids (ids sorted)."""
    n = len(sorted_ids)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_ids[1:] != sorted_ids[:-1]
    idx = np.arange(n, dtype=np.int64)
    seg_start = idx[boundary]
    return idx - np.repeat(seg_start, np.diff(seg_start, append=n))


def warp_round_sum(work: np.ndarray, warp_size: int = 32) -> int:
    """Σ over warps of the max lane work — SIMT rounds for regular loops."""
    n = len(work)
    if n == 0:
        return 0
    n_warps = (n + warp_size - 1) // warp_size
    padded = np.zeros(n_warps * warp_size, dtype=np.int64)
    padded[:n] = work
    return int(padded.reshape(n_warps, warp_size).max(axis=1).sum())
