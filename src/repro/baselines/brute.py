"""Exact brute-force neighbor search — the correctness oracle.

O(N·Q) chunked pairwise distances; no hardware modeling. Every other
searcher in the repository is validated against these two functions.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import SearchResults, empty_results
from repro.geometry.sphere import pairwise_sq_distances
from repro.utils.validate import as_points, check_positive, check_positive_int

#: queries per chunk, keeps the distance matrix ~tens of MB
_CHUNK = 2048

#: queries per chunk for the true-kNN oracle, whose (Q, N, 3) diff
#: tensor is 3x the distance matrix
_TRUE_CHUNK = 256


def brute_force_range(points, queries, radius: float, k: int) -> SearchResults:
    """All neighbors within ``radius`` (at most ``k``, nearest kept).

    Keeping the *nearest* k (rather than arbitrary k) makes the result
    deterministic and a superset-safe reference for bounded range
    search: any correct bounded implementation must return k neighbors
    all within radius whenever the oracle finds >= k.
    """
    points = as_points(points, "points")
    queries = as_points(queries, "queries")
    radius = check_positive(radius, "radius")
    k = check_positive_int(k, "k")
    return _brute(points, queries, radius, k)


def brute_force_knn(points, queries, k: int, radius: float) -> SearchResults:
    """The exact ``k`` nearest neighbors within ``radius``."""
    points = as_points(points, "points")
    queries = as_points(queries, "queries")
    radius = check_positive(radius, "radius")
    k = check_positive_int(k, "k")
    return _brute(points, queries, radius, k)


def brute_force_true_knn(points, queries, k: int) -> SearchResults:
    """The exact ``k`` nearest neighbors with **no** radius bound.

    Oracle for the engine's ``true_knn`` adaptive-expansion search.
    Distances are computed subtract-then-reduce (``(q - p)**2`` summed
    per pair), matching the IS shader's arithmetic bit for bit — the
    GEMM expansion behind :func:`pairwise_sq_distances` rounds some
    pairs 1 ulp differently, which would break the bit-identity gate.
    Ties broken toward the lower point index (stable sort); a cloud
    with fewer than ``k`` points yields ``counts < k`` with the usual
    ``-1`` / ``inf`` padding.
    """
    points = as_points(points, "points")
    queries = as_points(queries, "queries")
    k = check_positive_int(k, "k")
    n_q = len(queries)
    indices, counts, sq_d = empty_results(n_q, k)
    take = min(k, len(points))
    for s in range(0, n_q, _TRUE_CHUNK):
        block = queries[s : s + _TRUE_CHUNK]
        diff = block[:, None, :] - points[None, :, :]
        d2 = np.einsum("qnd,qnd->qn", diff, diff)
        order = np.argsort(d2, axis=1, kind="stable")[:, :take]
        rows = np.arange(len(block))[:, None]
        indices[s : s + _TRUE_CHUNK, :take] = order
        sq_d[s : s + _TRUE_CHUNK, :take] = d2[rows, order]
        counts[s : s + _TRUE_CHUNK] = take
    return SearchResults(indices=indices, counts=counts, sq_distances=sq_d, report=None)


def _brute(points, queries, radius, k) -> SearchResults:
    n_q = len(queries)
    indices, counts, sq_d = empty_results(n_q, k)
    r2 = radius * radius
    for s in range(0, n_q, _CHUNK):
        block = queries[s : s + _CHUNK]
        d2 = pairwise_sq_distances(block, points)
        d2_masked = np.where(d2 <= r2, d2, np.inf)
        take = min(k, d2.shape[1])
        part = np.argpartition(d2_masked, take - 1, axis=1)[:, :take]
        rows = np.arange(len(block))[:, None]
        pd2 = d2_masked[rows, part]
        order = np.argsort(pd2, axis=1, kind="stable")
        part = part[rows, order]
        pd2 = pd2[rows, order]
        valid = np.isfinite(pd2)
        indices[s : s + _CHUNK, :take] = np.where(valid, part, -1)
        sq_d[s : s + _CHUNK, :take] = pd2
        counts[s : s + _CHUNK] = valid.sum(axis=1)
    return SearchResults(indices=indices, counts=counts, sq_distances=sq_d, report=None)
