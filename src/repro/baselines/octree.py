"""Adaptive linear octree: construction and batched traversal.

The space-partitioning counterpart of the BVH (PCL's octree in the
paper). Construction is level-synchronous and fully vectorized: points
are sorted once by 63-bit Morton code; a node covering a contiguous
code range splits into (up to) eight children whose ranges are found
with a single ``searchsorted`` over the code array; bounds come from
``reduceat`` over the sorted coordinates.

Traversal is the software (SM-only) analogue of the RT-core engine:
batched DFS with per-query prune radii, pruning subtrees whose box
lies farther than the current prune distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.morton import morton_encode_3d, MORTON_BITS_3D


@dataclass
class Octree:
    """Flat adaptive octree over a point set."""

    node_lo: np.ndarray      # (M, 3)
    node_hi: np.ndarray      # (M, 3)
    node_start: np.ndarray   # (M,) range into point_order
    node_end: np.ndarray
    child_first: np.ndarray  # (M,) id of first child; -1 for leaves
    child_count: np.ndarray  # (M,) number of children (0 for leaves)
    point_order: np.ndarray  # (N,) Morton-sorted original point ids
    points: np.ndarray       # (N, 3) original points
    depth: int
    leaf_size: int
    max_leaf_count: int

    @property
    def n_nodes(self) -> int:
        return len(self.node_start)

    @property
    def n_points(self) -> int:
        return len(self.points)

    @property
    def is_leaf(self) -> np.ndarray:
        return self.child_first < 0


def _segment_minmax(coords: np.ndarray, starts: np.ndarray, ends: np.ndarray):
    n = len(coords)
    idx = np.empty(2 * len(starts), dtype=np.int64)
    idx[0::2] = starts
    idx[1::2] = ends
    if idx[-1] == n:
        idx = idx[:-1]
    lo = np.minimum.reduceat(coords, idx, axis=0)[0::2]
    hi = np.maximum.reduceat(coords, idx, axis=0)[0::2]
    return lo, hi


def build_octree(points: np.ndarray, leaf_size: int = 8) -> Octree:
    """Build an adaptive octree; nodes split while they exceed ``leaf_size``.

    Splitting stops at the Morton resolution limit (duplicate points can
    therefore produce oversized leaves, handled by ``max_leaf_count``).
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    n = len(points)
    if n == 0:
        raise ValueError("cannot build an octree over zero points")
    leaf_size = int(leaf_size)
    if leaf_size < 1:
        raise ValueError(f"leaf_size must be >= 1, got {leaf_size}")

    codes = morton_encode_3d(points)
    order = np.argsort(codes, kind="stable")
    scodes = codes[order]
    scoords = points[order]

    starts_all: list[np.ndarray] = []
    ends_all: list[np.ndarray] = []
    first_all: list[np.ndarray] = []
    count_all: list[np.ndarray] = []
    level_sizes: list[int] = []

    f_start = np.array([0], dtype=np.int64)
    f_end = np.array([n], dtype=np.int64)
    f_prefix = np.array([0], dtype=np.uint64)
    depth = 0
    d = 0
    nodes_so_far = 0
    while len(f_start):
        counts = f_end - f_start
        split = (counts > leaf_size) & (d < MORTON_BITS_3D)
        n_split = int(split.sum())

        child_first = np.full(len(f_start), -1, dtype=np.int64)
        child_count = np.zeros(len(f_start), dtype=np.int64)

        if n_split:
            sp = f_prefix[split]
            shift = np.uint64(3 * (MORTON_BITS_3D - d - 1))
            # 9 boundary code values per splitting node
            kids = (sp[:, None] * np.uint64(8)) + np.arange(9, dtype=np.uint64)[None, :]
            bounds = (kids << shift).ravel()
            pos = np.searchsorted(scodes, bounds).reshape(-1, 9)
            # clamp to the node's own range (prefix+8 may overflow into
            # the next sibling's codes only at exact boundaries)
            pos[:, 0] = f_start[split]
            pos[:, 8] = f_end[split]
            c_start = pos[:, :8].ravel()
            c_end = pos[:, 1:].ravel()
            c_prefix = kids[:, :8].ravel()
            nonempty = c_end > c_start
            c_start = c_start[nonempty]
            c_end = c_end[nonempty]
            c_prefix = c_prefix[nonempty]
            per_node = nonempty.reshape(-1, 8).sum(axis=1)
            base = nodes_so_far + len(f_start)
            offsets = np.concatenate(([0], np.cumsum(per_node)))[:-1]
            child_first[split] = base + offsets
            child_count[split] = per_node
        starts_all.append(f_start)
        ends_all.append(f_end)
        first_all.append(child_first)
        count_all.append(child_count)
        level_sizes.append(len(f_start))
        nodes_so_far += len(f_start)

        if n_split == 0:
            break
        f_start, f_end, f_prefix = c_start, c_end, c_prefix
        d += 1
        depth += 1

    node_start = np.concatenate(starts_all)
    node_end = np.concatenate(ends_all)
    child_first = np.concatenate(first_all)
    child_count = np.concatenate(count_all)

    m = len(node_start)
    node_lo = np.empty((m, 3), dtype=np.float64)
    node_hi = np.empty((m, 3), dtype=np.float64)
    off = 0
    for size, s, e in zip(level_sizes, starts_all, ends_all):
        lo, hi = _segment_minmax(scoords, s, e)
        node_lo[off : off + size] = lo
        node_hi[off : off + size] = hi
        off += size

    leaf = child_first < 0
    max_leaf_count = int((node_end - node_start)[leaf].max())
    return Octree(
        node_lo=node_lo,
        node_hi=node_hi,
        node_start=node_start,
        node_end=node_end,
        child_first=child_first,
        child_count=child_count,
        point_order=order,
        points=points,
        depth=depth,
        leaf_size=leaf_size,
        max_leaf_count=max_leaf_count,
    )


@dataclass
class OctreeTraceStats:
    """Work counters from one batched octree traversal."""

    steps: np.ndarray       # (Q,) node pops
    dist_tests: np.ndarray  # (Q,) leaf point distance tests


def octree_traverse(
    tree: Octree,
    queries: np.ndarray,
    prune2: np.ndarray,
    leaf_callback,
) -> OctreeTraceStats:
    """Batched DFS with per-query prune distances.

    A node is descended if the squared distance from the query to its
    box is <= the query's current ``prune2`` (which ``leaf_callback``
    may shrink — nearest-neighbor search does). ``leaf_callback(qids,
    pids, d2)`` receives every leaf point tested and returns query ids
    to terminate, or ``None``.
    """
    queries = np.ascontiguousarray(queries, dtype=np.float64)
    n_q = len(queries)
    steps = np.zeros(n_q, dtype=np.int64)
    tests = np.zeros(n_q, dtype=np.int64)
    if n_q == 0:
        return OctreeTraceStats(steps, tests)

    stack_width = 8 * (tree.depth + 1) + 2
    stack = np.zeros((n_q, stack_width), dtype=np.int64)
    sp = np.ones(n_q, dtype=np.int64)
    alive = np.ones(n_q, dtype=bool)
    act = np.arange(n_q, dtype=np.int64)

    while len(act):
        sp[act] -= 1
        nodes = stack[act, sp[act]]
        steps[act] += 1

        lo = tree.node_lo[nodes]
        hi = tree.node_hi[nodes]
        q = queries[act]
        d = np.maximum(np.maximum(lo - q, q - hi), 0.0)
        box_d2 = np.einsum("ij,ij->i", d, d)
        hit = box_d2 <= prune2[act]

        h_rays = act[hit]
        h_nodes = nodes[hit]
        internal = tree.child_first[h_nodes] >= 0

        pi = h_rays[internal]
        if len(pi):
            ni = h_nodes[internal]
            first = tree.child_first[ni]
            cnt = tree.child_count[ni]
            for j in range(8):
                sel = cnt > j
                if not sel.any():
                    break
                r = pi[sel]
                stack[r, sp[r]] = first[sel] + j
                sp[r] += 1

        l_rays = h_rays[~internal]
        l_nodes = h_nodes[~internal]
        if len(l_rays):
            starts = tree.node_start[l_nodes]
            cnt = tree.node_end[l_nodes] - starts
            for j in range(tree.max_leaf_count):
                sel = (cnt > j) & alive[l_rays]
                if not sel.any():
                    break
                r = l_rays[sel]
                pids = tree.point_order[starts[sel] + j]
                diff = queries[r] - tree.points[pids]
                d2 = np.einsum("ij,ij->i", diff, diff)
                tests[r] += 1
                term = leaf_callback(r, pids, d2)
                if term is not None and len(term):
                    alive[np.asarray(term, dtype=np.int64)] = False

        act = act[alive[act] & (sp[act] > 0)]

    return OctreeTraceStats(steps=steps, dist_tests=tests)
