"""FastRNN: RT-core KNN *without* RTNN's optimizations.

Evangelou et al. map KNN onto the ray-tracing hardware essentially as
Listing 1 of the paper: one monolithic BVH with AABB width 2r, queries
launched in input order, no scheduling, no partitioning. In this
repository that is exactly :class:`~repro.core.engine.RTNNEngine` with
every optimization disabled, so the baseline is a thin configuration
wrapper — the comparison against it isolates the paper's contribution.
"""

from __future__ import annotations

from repro.core.engine import RTNNConfig, RTNNEngine
from repro.core.results import SearchResults
from repro.gpu.device import DeviceSpec, RTX_2080


class FastRNN:
    """Naive RT-mapped KNN search (KNN only, as in the paper)."""

    name = "FastRNN"
    supports = ("knn",)

    def __init__(self, points, device: DeviceSpec = RTX_2080, cache_sim: bool = True):
        self._engine = RTNNEngine(
            points,
            device=device,
            config=RTNNConfig(
                schedule=False, partition=False, bundle=False, cache_sim=cache_sim
            ),
        )

    @property
    def points(self):
        return self._engine.points

    def knn_search(self, queries, k: int, radius: float) -> SearchResults:
        """The ``k`` nearest neighbors within ``radius`` per query."""
        return self._engine.knn_search(queries, k=k, radius=radius)

    def modeled_memory_bytes(self, n_points: int) -> int:
        """BVH (~2 nodes per primitive) + primitive AABBs + points."""
        return n_points * (2 * 32 + 32 + 12)
