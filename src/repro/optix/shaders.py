"""Shader interface for the simulated pipeline.

A shader is any callable ``(ray_ids, prim_ids) -> terminated | None``
invoked once per (ray, primitive-AABB-hit) pair batch. ``ray_ids`` are
launch-order indices; shaders translate them to user query ids through
the launch's ``query_ids`` mapping. Returning an array of ray ids
terminates those rays (Any-Hit termination).

The concrete neighbor-search shaders live in :mod:`repro.core.shaders`;
this module defines the protocol plus a trivial counting shader used by
characterization experiments (Figs. 7/8) and tests.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class IntersectionShader(Protocol):
    """Structural type every IS shader satisfies."""

    def __call__(self, ray_ids: np.ndarray, prim_ids: np.ndarray):
        """Process hit pairs; optionally return ray ids to terminate."""
        ...


class CountingShader:
    """IS shader that only counts calls (and optionally records pairs)."""

    def __init__(self, n_rays: int, record_pairs: bool = False):
        self.calls = np.zeros(n_rays, dtype=np.int64)
        self.record_pairs = record_pairs
        self.pairs: list[tuple[np.ndarray, np.ndarray]] = []

    def __call__(self, ray_ids: np.ndarray, prim_ids: np.ndarray):
        self.calls[ray_ids] += 1
        if self.record_pairs:
            self.pairs.append((ray_ids.copy(), prim_ids.copy()))
        return None

    @property
    def total_calls(self) -> int:
        return int(self.calls.sum())
