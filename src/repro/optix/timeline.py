"""Per-ray execution timelines (the paper's Fig. 1b, in ASCII).

Fig. 1b illustrates why incoherent rays hurt: two rays interleave RT
core traversal (TL) and SM shader work (IS) along different schedules.
This module records those events for selected rays during a launch and
renders them as compact text timelines — a debugging/teaching aid for
understanding what a query's ray actually did.

Example output::

    ray    0 | RG > TLx11 > IS > TLx3 > IS > TLx7 | 21 steps, 2 IS
    ray    1 | RG > TLx19 > IS | 20 steps, 1 IS (terminated)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.ray import RayBatch
from repro.gpu.costmodel import IsKind
from repro.optix.gas import GeometryAS
from repro.optix.pipeline import LaunchResult, Pipeline


@dataclass
class RayTimeline:
    """Event sequence of one ray: ('TL' | 'IS') per engine round."""

    ray_id: int
    events: list[str] = field(default_factory=list)
    terminated: bool = False

    def render(self) -> str:
        """Compact one-line rendering with run-length compressed TL."""
        parts: list[str] = ["RG"]
        run = 0
        for e in self.events:
            if e == "TL":
                run += 1
                continue
            if run:
                parts.append(f"TLx{run}" if run > 1 else "TL")
                run = 0
            parts.append(e)
        if run:
            parts.append(f"TLx{run}" if run > 1 else "TL")
        steps = sum(1 for e in self.events if e == "TL")
        is_calls = sum(1 for e in self.events if e == "IS")
        tail = f"{steps} steps, {is_calls} IS"
        if self.terminated:
            tail += " (terminated)"
        return f"ray {self.ray_id:4d} | " + " > ".join(parts) + f" | {tail}"


class TimelineRecorder:
    """Launch observer recording TL/IS events for a chosen set of rays.

    Attach to :meth:`repro.optix.pipeline.Pipeline.launch` via
    ``observers=(recorder,)``; after the launch, ``recorder.launch``
    holds the :class:`~repro.optix.pipeline.LaunchResult` so callers get
    the modeled counters/costs of the very trace that produced the
    timelines.
    """

    def __init__(self, watch):
        self.timelines = {int(r): RayTimeline(int(r)) for r in watch}
        self._watch = np.asarray(sorted(self.timelines), dtype=np.int64)
        self.launch: LaunchResult | None = None

    def _record(self, ray_ids: np.ndarray, event: str):
        # Filter the batch down to the watched set first; only the
        # (small, user-chosen) watch list is ever walked per element.
        watched = ray_ids[np.isin(ray_ids, self._watch)]
        for r in watched.tolist():
            self.timelines[r].events.append(event)

    def on_node_access(self, iteration, ray_ids, node_ids):
        self._record(ray_ids, "TL")

    def on_prim_access(self, iteration, ray_ids, prim_ids):
        self._record(ray_ids, "IS")


def record_timelines(
    gas: GeometryAS,
    rays: RayBatch,
    is_shader,
    watch=(0,),
    pipeline: Pipeline | None = None,
    kind: IsKind = IsKind.KNN,
) -> list[RayTimeline]:
    """Trace ``rays`` through ``gas`` recording timelines for ``watch``.

    The trace runs through ``Pipeline.launch`` with the recorder as an
    observer, so it is charged by the cost model like any other launch;
    the default throwaway pipeline skips cache simulation to keep the
    debug aid cheap. ``kind`` sets the launch's IS cost class.
    """
    recorder = TimelineRecorder(watch)
    if pipeline is None:
        pipeline = Pipeline(cache_sim=False)
    recorder.launch = pipeline.launch(
        gas, rays, is_shader, kind, observers=(recorder,)
    )
    return [recorder.timelines[r] for r in sorted(recorder.timelines)]


def render_timelines(timelines: list[RayTimeline]) -> str:
    """Render a list of timelines as a text block."""
    return "\n".join(t.render() for t in timelines)
