"""Geometry acceleration structures (the OptiX GAS).

A GAS is a BVH over custom primitives — here always the point-centered
cubic AABBs of Listing 1 — plus its modeled build cost. Building
executes on the SMs and is non-programmable, exactly as in OptiX; the
only knob the algorithm has is the AABB half-width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh import BVH, build_lbvh
from repro.geometry.aabb import aabbs_from_points
from repro.gpu.costmodel import CostModel
from repro.obs.tracer import NULL_TRACER, Tracer


@dataclass
class GeometryAS:
    """A built acceleration structure.

    Attributes
    ----------
    bvh: the underlying tree.
    points: ``(N, 3)`` the primitive centers (search points).
    half_width: AABB half-width used for every primitive.
    build_time: modeled construction time (k1 * M).
    """

    bvh: BVH
    points: np.ndarray
    half_width: float
    build_time: float

    @property
    def n_prims(self) -> int:
        return self.bvh.n_prims

    @property
    def aabb_width(self) -> float:
        return 2.0 * self.half_width


def build_gas(
    points: np.ndarray,
    half_width: float,
    cost_model: CostModel,
    leaf_size: int = 1,
    order: np.ndarray | None = None,
    tracer: Tracer | None = None,
) -> GeometryAS:
    """Build a GAS over point-centered cubic AABBs.

    ``half_width`` is the search radius for the unpartitioned algorithm
    (AABB width = 2r, Listing 1) or the per-partition ``AABBSize/2``
    (Listing 3). ``order`` optionally reuses a precomputed Morton order
    so repeated per-partition builds over the same points skip the sort.
    ``tracer`` receives a ``build_gas`` span (phase ``build``) with the
    structure counters and the modeled build cost.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("build_gas", phase="build") as sp:
        points = np.ascontiguousarray(points, dtype=np.float64)
        lo, hi = aabbs_from_points(points, half_width)
        bvh = build_lbvh(lo, hi, leaf_size=leaf_size, order=order)
        build_time = cost_model.bvh_build_time(len(points))
        sp.add(
            aabbs=len(points),
            bvh_nodes=bvh.n_nodes,
            bvh_depth=bvh.depth,
            modeled_s=build_time,
        )
        sp.note(aabb_width=2.0 * float(half_width))
    return GeometryAS(
        bvh=bvh,
        points=points,
        half_width=float(half_width),
        build_time=build_time,
    )
