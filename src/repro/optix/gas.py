"""Geometry acceleration structures (the OptiX GAS).

A GAS is a BVH over custom primitives — here always the point-centered
cubic AABBs of Listing 1 — plus its modeled build cost. Building
executes on the SMs and is non-programmable, exactly as in OptiX; the
only knob the algorithm has is the AABB half-width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh import BVH, build_lbvh
from repro.geometry.aabb import aabbs_from_points
from repro.gpu.costmodel import CostModel


@dataclass
class GeometryAS:
    """A built acceleration structure.

    Attributes
    ----------
    bvh: the underlying tree.
    points: ``(N, 3)`` the primitive centers (search points).
    half_width: AABB half-width used for every primitive.
    build_time: modeled construction time (k1 * M).
    """

    bvh: BVH
    points: np.ndarray
    half_width: float
    build_time: float

    @property
    def n_prims(self) -> int:
        return self.bvh.n_prims

    @property
    def aabb_width(self) -> float:
        return 2.0 * self.half_width


def build_gas(
    points: np.ndarray,
    half_width: float,
    cost_model: CostModel,
    leaf_size: int = 1,
    order: np.ndarray | None = None,
) -> GeometryAS:
    """Build a GAS over point-centered cubic AABBs.

    ``half_width`` is the search radius for the unpartitioned algorithm
    (AABB width = 2r, Listing 1) or the per-partition ``AABBSize/2``
    (Listing 3). ``order`` optionally reuses a precomputed Morton order
    so repeated per-partition builds over the same points skip the sort.
    """
    points = np.ascontiguousarray(points, dtype=np.float64)
    lo, hi = aabbs_from_points(points, half_width)
    bvh = build_lbvh(lo, hi, leaf_size=leaf_size, order=order)
    return GeometryAS(
        bvh=bvh,
        points=points,
        half_width=float(half_width),
        build_time=cost_model.bvh_build_time(len(points)),
    )
