"""Geometry acceleration structures (the OptiX GAS).

A GAS is a BVH over custom primitives — here always the point-centered
cubic AABBs of Listing 1 — plus its modeled build cost. Building
executes on the SMs and is non-programmable, exactly as in OptiX; the
only knob the algorithm has is the AABB half-width.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bvh import BVH, build_lbvh, refit_bvh
from repro.geometry.aabb import aabbs_from_points
from repro.gpu.costmodel import CostModel
from repro.obs.tracer import NULL_TRACER, Tracer

#: refit touches each node once with trivial math — a quarter of the
#: full build's per-AABB cycles is a conservative hardware-update cost
REFIT_COST_FRACTION = 0.25


@dataclass
class GeometryAS:
    """A built acceleration structure.

    Attributes
    ----------
    bvh: the underlying tree.
    points: ``(N, 3)`` the primitive centers (search points).
    half_width: AABB half-width used for every primitive.
    build_time: modeled construction time (k1 * M).
    """

    bvh: BVH
    points: np.ndarray
    half_width: float
    build_time: float

    @property
    def n_prims(self) -> int:
        return self.bvh.n_prims

    @property
    def aabb_width(self) -> float:
        return 2.0 * self.half_width


def build_gas(
    points: np.ndarray,
    half_width: float,
    cost_model: CostModel,
    leaf_size: int = 1,
    order: np.ndarray | None = None,
    tracer: Tracer | None = None,
) -> GeometryAS:
    """Build a GAS over point-centered cubic AABBs.

    ``half_width`` is the search radius for the unpartitioned algorithm
    (AABB width = 2r, Listing 1) or the per-partition ``AABBSize/2``
    (Listing 3). ``order`` optionally reuses a precomputed Morton order
    so repeated per-partition builds over the same points skip the sort.
    ``tracer`` receives a ``build_gas`` span (phase ``build``) with the
    structure counters and the modeled build cost.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("build_gas", phase="build") as sp:
        points = np.ascontiguousarray(points, dtype=np.float64)
        lo, hi = aabbs_from_points(points, half_width)
        bvh = build_lbvh(lo, hi, leaf_size=leaf_size, order=order)
        build_time = cost_model.bvh_build_time(len(points))
        sp.add(
            aabbs=len(points),
            bvh_nodes=bvh.n_nodes,
            bvh_depth=bvh.depth,
            modeled_s=build_time,
        )
        sp.note(aabb_width=2.0 * float(half_width))
    return GeometryAS(
        bvh=bvh,
        points=points,
        half_width=float(half_width),
        build_time=build_time,
    )


def refit_gas(
    gas: GeometryAS,
    points: np.ndarray,
    cost_model: CostModel,
    tracer: Tracer | None = None,
) -> float:
    """Warm-update ``gas`` in place for moved points; returns the cost.

    The acceleration-structure *update* of OptiX: primitive AABBs are
    recentered on the new points and node bounds are refit bottom-up
    over the frozen topology (:func:`repro.bvh.refit_bvh`). Bounds stay
    exact — searches against the refit structure return exact results —
    but tree quality decays as points drift from their build-time
    Morton order, so callers rebuild periodically. Requires the same
    point count as the build; the returned modeled seconds are
    ``REFIT_COST_FRACTION`` of a full build.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    with tracer.span("refit_gas", phase="build") as sp:
        points = np.ascontiguousarray(points, dtype=np.float64)
        lo, hi = aabbs_from_points(points, gas.half_width)
        refit_bvh(gas.bvh, lo, hi)  # also drops cached leaf point-MBRs
        gas.points = points
        refit_time = (
            cost_model.bvh_build_time(len(points)) * REFIT_COST_FRACTION
        )
        sp.add(aabbs=len(points), modeled_s=refit_time)
        sp.note(aabb_width=2.0 * float(gas.half_width))
    return refit_time
