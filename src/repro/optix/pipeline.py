"""The ray-tracing pipeline: launch rays through a GAS.

``Pipeline.launch`` is the moral equivalent of ``optixLaunch`` +
``optixTrace``: it maps the ray batch onto threads in launch order
(warp = 32 consecutive rays), runs the lockstep traversal on the
simulated RT cores, calls the intersection shader on the SMs, and
returns both the functional outcome (whatever the shader accumulated)
and the hardware picture: a :class:`~repro.bvh.traverse.TraceResult`
plus a :class:`~repro.gpu.costmodel.LaunchCost`.

This module is the *only* sanctioned caller of ``trace_batch``
(enforced by COST001): every traversal must flow through here so the
cost model charges it and the observability tracer sees it. Extra
per-ray observers (e.g. the Fig. 1b timeline recorder) attach to a
launch via ``observers=`` and receive the same node/primitive access
stream as the cache simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend import NUMPY_BACKEND, Backend
from repro.bvh.traverse import PruneSpec, TraceResult, trace_batch
from repro.geometry.ray import RayBatch
from repro.gpu.cache import SampledCacheTracer
from repro.gpu.costmodel import CostModel, IsKind, LaunchCost
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.optix.gas import GeometryAS


@dataclass
class LaunchResult:
    """Everything one launch produced besides the shader's own state."""

    trace: TraceResult
    cost: LaunchCost
    l1_hit_rate: float | None
    l2_hit_rate: float | None

    @property
    def modeled_time(self) -> float:
        return self.cost.total


class _FanoutTracer:
    """Broadcast the traversal's access stream to several tracers."""

    def __init__(self, tracers):
        self._tracers = tuple(tracers)

    def on_node_access(self, iteration, ray_ids, node_ids):
        for t in self._tracers:
            t.on_node_access(iteration, ray_ids, node_ids)

    def on_prim_access(self, iteration, ray_ids, prim_ids):
        for t in self._tracers:
            t.on_prim_access(iteration, ray_ids, prim_ids)

    def finalize(self):
        for t in self._tracers:
            fin = getattr(t, "finalize", None)
            if fin is not None:
                fin()


class Pipeline:
    """A configured ray-tracing pipeline bound to one simulated device."""

    def __init__(self, device: DeviceSpec = RTX_2080, cache_sim: bool = True,
                 cache_max_warps: int = 8, tracer: Tracer | None = None,
                 prune_leaves: bool = True, backend: Backend | None = None):
        self.device = device
        self.cost_model = CostModel(device)
        self.cache_sim = cache_sim
        self.cache_max_warps = cache_max_warps
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.prune_leaves = prune_leaves
        self.backend = NUMPY_BACKEND if backend is None else backend

    def _prune_spec(self, gas: GeometryAS, is_shader) -> PruneSpec | None:
        """Derive sound leaf-prune bounds for this launch, or ``None``.

        The bounds come from the shader's acceptance rules, discovered
        structurally: a KNN shader exposes its queue (radius bound +
        live per-query worst distances), a range shader its radius and
        whether the sphere test is active. Every accepted point also
        passed the primitive AABB test, so ``3·half_width²`` is always
        a sound launch-constant bound regardless of shader flavor.
        The first-hit scheduling pre-pass is left unpruned — it already
        terminates each ray at its first hit, and its result must
        reflect the raw traversal order.
        """
        if not self.prune_leaves:
            return None
        hw = gas.half_width
        t2 = 3.0 * hw * hw
        bulk_t2 = None
        worst = None
        query_ids = None
        queue = getattr(is_shader, "queue", None)
        if queue is not None:
            t2 = min(t2, float(queue.r2))
            worst = queue.worst
            query_ids = is_shader.query_ids
        elif getattr(is_shader, "sphere_test", None) is True:
            r2 = float(is_shader.r2)
            t2 = min(t2, r2)
            # Bulk acceptance needs every MBR member to pass the prim
            # AABB test too: d <= r <= half_width implies L-inf <= hw.
            if hw * hw >= r2:
                bulk_t2 = r2
        elif not hasattr(is_shader, "acc"):
            return None
        gas.bvh.ensure_leaf_mbrs(gas.points)
        return PruneSpec(
            leaf_lo=gas.bvh.leaf_lo,
            leaf_hi=gas.bvh.leaf_hi,
            static_t2=t2,
            bulk_t2=bulk_t2,
            worst=worst,
            query_ids=query_ids,
        )

    def launch(
        self,
        gas: GeometryAS,
        rays: RayBatch,
        is_shader,
        kind: IsKind,
        observers=(),
        tracer: Tracer | None = None,
        step_budget: int | None = None,
    ) -> LaunchResult:
        """Trace ``rays`` through ``gas`` invoking ``is_shader`` on hits.

        ``kind`` selects the IS cost class for the launch's modeled time
        (first-hit pre-pass, range with/without sphere test, or KNN).
        ``observers`` are extra access-stream tracers (``on_node_access``
        / ``on_prim_access``) run alongside the cache simulation; they
        never affect counters, costs, or shader results. ``tracer``
        overrides the pipeline's observability tracer for this launch —
        the parallel executor passes a per-job recorder here so each
        worker records spans without contending on the shared one.
        ``step_budget`` caps node pops per ray (approximate mode); it is
        per-launch state, never pipeline state, so concurrent callers of
        a shared engine cannot race on it.
        """
        obs_tracer = tracer if tracer is not None else self.tracer
        with obs_tracer.span("launch") as sp:
            cache = None
            if self.cache_sim and len(rays) > 0:
                cache = SampledCacheTracer(
                    n_rays=len(rays),
                    warp_size=self.device.warp_size,
                    max_warps=self.cache_max_warps,
                    l1_kb=self.device.l1_kb,
                    l2_kb=self.device.l2_kb,
                    l2_share=1.0 / self.device.n_sms,
                )
            hooks = ([cache] if cache is not None else []) + list(observers)
            if not hooks:
                stream = None
            elif len(hooks) == 1:
                stream = hooks[0]
            else:
                stream = _FanoutTracer(hooks)
            trace = trace_batch(
                gas.bvh,
                rays.origins,
                rays.directions,
                rays.t_min,
                rays.t_max,
                is_shader,
                warp_size=self.device.warp_size,
                tracer=stream,
                prune=self._prune_spec(gas, is_shader),
                step_budget=step_budget,
                backend=self.backend,
            )
            cost = self.cost_model.launch_cost(trace, kind, tracer=cache)
            l1 = cache.l1_hit_rate if cache is not None else None
            l2 = cache.l2_hit_rate if cache is not None else None
            sp.add(**trace.counters(), **cost.as_counters())
            if cache is not None:
                sp.add(**cache.counters())
            sp.note(kind=kind.value)
        return LaunchResult(trace=trace, cost=cost, l1_hit_rate=l1, l2_hit_rate=l2)
