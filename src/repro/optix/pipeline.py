"""The ray-tracing pipeline: launch rays through a GAS.

``Pipeline.launch`` is the moral equivalent of ``optixLaunch`` +
``optixTrace``: it maps the ray batch onto threads in launch order
(warp = 32 consecutive rays), runs the lockstep traversal on the
simulated RT cores, calls the intersection shader on the SMs, and
returns both the functional outcome (whatever the shader accumulated)
and the hardware picture: a :class:`~repro.bvh.traverse.TraceResult`
plus a :class:`~repro.gpu.costmodel.LaunchCost`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bvh.traverse import TraceResult, trace_batch
from repro.geometry.ray import RayBatch
from repro.gpu.cache import SampledCacheTracer
from repro.gpu.costmodel import CostModel, IsKind, LaunchCost
from repro.gpu.device import DeviceSpec, RTX_2080
from repro.optix.gas import GeometryAS


@dataclass
class LaunchResult:
    """Everything one launch produced besides the shader's own state."""

    trace: TraceResult
    cost: LaunchCost
    l1_hit_rate: float | None
    l2_hit_rate: float | None

    @property
    def modeled_time(self) -> float:
        return self.cost.total


class Pipeline:
    """A configured ray-tracing pipeline bound to one simulated device."""

    def __init__(self, device: DeviceSpec = RTX_2080, cache_sim: bool = True,
                 cache_max_warps: int = 8):
        self.device = device
        self.cost_model = CostModel(device)
        self.cache_sim = cache_sim
        self.cache_max_warps = cache_max_warps

    def launch(
        self,
        gas: GeometryAS,
        rays: RayBatch,
        is_shader,
        kind: IsKind,
    ) -> LaunchResult:
        """Trace ``rays`` through ``gas`` invoking ``is_shader`` on hits.

        ``kind`` selects the IS cost class for the launch's modeled time
        (first-hit pre-pass, range with/without sphere test, or KNN).
        """
        tracer = None
        if self.cache_sim and len(rays) > 0:
            tracer = SampledCacheTracer(
                n_rays=len(rays),
                warp_size=self.device.warp_size,
                max_warps=self.cache_max_warps,
                l1_kb=self.device.l1_kb,
                l2_kb=self.device.l2_kb,
                l2_share=1.0 / self.device.n_sms,
            )
        trace = trace_batch(
            gas.bvh,
            rays.origins,
            rays.directions,
            rays.t_min,
            rays.t_max,
            is_shader,
            warp_size=self.device.warp_size,
            tracer=tracer,
        )
        cost = self.cost_model.launch_cost(trace, kind, tracer=tracer)
        l1 = tracer.l1_hit_rate if tracer is not None else None
        l2 = tracer.l2_hit_rate if tracer is not None else None
        return LaunchResult(trace=trace, cost=cost, l1_hit_rate=l1, l2_hit_rate=l2)
