"""OptiX-like programming model over the simulated GPU.

Mirrors the (simplified) OptiX 7 surface the paper programs against:

* :func:`build_gas` — build a geometry acceleration structure from
  per-primitive AABBs (custom-primitive build input);
* :class:`Pipeline` / :meth:`Pipeline.launch` — launch a grid of rays
  through a GAS, invoking a programmable intersection shader; rays map
  to threads in launch order, 32 consecutive rays form a warp.

Any-hit termination is expressed by the IS shader returning ray ids to
terminate (the ``optixTerminateRay`` path used when K neighbors are
found).
"""

from repro.optix.gas import GeometryAS, build_gas
from repro.optix.pipeline import Pipeline, LaunchResult
from repro.optix.shaders import IntersectionShader, CountingShader
from repro.optix.timeline import record_timelines, render_timelines, RayTimeline

__all__ = [
    "GeometryAS",
    "build_gas",
    "Pipeline",
    "LaunchResult",
    "IntersectionShader",
    "CountingShader",
    "record_timelines",
    "render_timelines",
    "RayTimeline",
]
