"""repro — a full reproduction of *RTNN: Accelerating Neighbor Search
Using Hardware Ray Tracing* (Yuhao Zhu, PPoPP 2022) on a simulated
RT-core GPU.

Quick start::

    import numpy as np
    from repro import RTNNEngine

    points = np.random.default_rng(0).random((10_000, 3))
    engine = RTNNEngine(points)
    res = engine.knn_search(points[:100], k=8, radius=0.1)
    res.indices      # (100, 8) neighbor ids, -1 padded
    res.report.breakdown.total   # modeled GPU seconds

Packages: :mod:`repro.core` (the paper's contribution),
:mod:`repro.optix` / :mod:`repro.bvh` / :mod:`repro.gpu` (the simulated
hardware substrate), :mod:`repro.serve` (the async micro-batching
service tier), :mod:`repro.baselines` (cuNSearch / FRNN /
PCL-Octree / FastRNN analogues), :mod:`repro.datasets` (synthetic
KITTI / 3-D-scan / N-body workloads), :mod:`repro.experiments` (one
runner per figure of the paper).
"""

from repro.api import SearchSession
from repro.core import (
    RTNNEngine,
    RTNNConfig,
    SearchResults,
    RunReport,
    VARIANTS,
    PlanarRTNN,
    DynamicRTNN,
)
from repro.gpu import RTX_2080, RTX_2080TI, DeviceSpec

__version__ = "1.0.0"

__all__ = [
    "RTNNEngine",
    "SearchSession",
    "PlanarRTNN",
    "DynamicRTNN",
    "RTNNConfig",
    "SearchResults",
    "RunReport",
    "VARIANTS",
    "RTX_2080",
    "RTX_2080TI",
    "DeviceSpec",
    "__version__",
]
