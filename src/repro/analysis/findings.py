"""Findings model for the static-analysis subsystem.

A :class:`Finding` is one rule violation at one source location. Its
:attr:`~Finding.fingerprint` deliberately excludes the line number so
baselined findings survive unrelated edits above them in the file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; only errors affect the exit code."""

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    severity: Severity
    path: str          # repo-relative posix path
    line: int          # 1-based
    col: int           # 0-based, as reported by ``ast``
    message: str

    @property
    def fingerprint(self) -> tuple[str, str, str]:
        """Line-insensitive identity used for baseline matching."""
        return (self.rule_id, self.path, self.message)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule_id,
            "severity": self.severity.value,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col + 1}: "
            f"{self.rule_id} [{self.severity.value}] {self.message}"
        )
