"""The analysis engine: parse modules, run rules, apply suppressions.

Suppression forms, narrowest wins:

* inline ``# noqa: RULE1, RULE2`` (or bare ``# noqa``) on the offending
  line;
* a baseline file recording accepted findings (see
  :mod:`repro.analysis.baseline`);
* ``select`` / ``ignore`` rule-id prefixes in the config.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import ProjectRule, Rule, all_rules

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<ids>[A-Z0-9, \t]+))?", re.I)

#: statement types whose span participates in multi-line noqa matching
#: (compound statements span their whole body, which would let one
#: trailing comment silence a function — only simple statements count)
_SIMPLE_STMTS = (
    ast.Assign, ast.AugAssign, ast.AnnAssign, ast.Expr, ast.Return,
    ast.Raise, ast.Assert, ast.Delete, ast.Import, ast.ImportFrom,
    ast.Global, ast.Nonlocal,
)


@dataclass
class ModuleContext:
    """One parsed module plus everything rules may want to know."""

    rel_path: str                  # posix, repo-relative (or virtual name)
    tree: ast.Module
    source_lines: list[str]
    config: AnalysisConfig
    #: line -> suppressed rule ids; empty set means "all rules"
    noqa: dict[int, set[str]] = field(default_factory=dict)
    #: line -> (first, last) line of the smallest simple statement
    #: covering it, for multi-line statements only
    stmt_spans: dict[int, tuple[int, int]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        rel_path: str,
        config: AnalysisConfig | None = None,
    ) -> "ModuleContext":
        tree = ast.parse(source, filename=rel_path)
        lines = source.splitlines()
        noqa: dict[int, set[str]] = {}
        for i, line in enumerate(lines, start=1):
            m = _NOQA_RE.search(line)
            if m:
                ids = m.group("ids")
                noqa[i] = (
                    {s.strip().upper() for s in ids.split(",") if s.strip()}
                    if ids
                    else set()
                )
        spans: dict[int, tuple[int, int]] = {}
        for node in ast.walk(tree):
            if not isinstance(node, _SIMPLE_STMTS):
                continue
            end = getattr(node, "end_lineno", None)
            if end is None or end <= node.lineno:
                continue
            for ln in range(node.lineno, end + 1):
                prev = spans.get(ln)
                if prev is None or (end - node.lineno) < (prev[1] - prev[0]):
                    spans[ln] = (node.lineno, end)
        return cls(
            rel_path=rel_path,
            tree=tree,
            source_lines=lines,
            config=config or AnalysisConfig(),
            noqa=noqa,
            stmt_spans=spans,
        )

    def suppressed(self, finding: Finding) -> bool:
        # A noqa comment suppresses on its own line; for a multi-line
        # simple statement, a comment on the statement's first or last
        # physical line covers findings anywhere inside it.
        candidates = {finding.line}
        span = self.stmt_spans.get(finding.line)
        if span is not None:
            candidates.update(span)
        for line in candidates:
            ids = self.noqa.get(line)
            if ids is not None and (not ids or finding.rule_id.upper() in ids):
                return True
        return False


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_source(
    source: str,
    rel_path: str = "<memory>",
    config: AnalysisConfig | None = None,
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Run the rules over one in-memory module (the test entry point)."""
    config = config or AnalysisConfig()
    ctx = ModuleContext.from_source(source, rel_path, config)
    out: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        if not config.rule_enabled(rule.rule_id):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                out.append(finding)
    out.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return out


def analyze_paths(
    paths: list[Path | str],
    config: AnalysisConfig | None = None,
    root: Path | str | None = None,
) -> tuple[list[Finding], int]:
    """Analyze files / directory trees.

    Returns ``(findings, n_modules)``. Unparseable files produce a
    synthetic ``PARSE`` finding rather than crashing the run.
    """
    config = config or AnalysisConfig()
    root = Path(root or Path.cwd())
    rules = all_rules()
    module_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [
        r for r in rules
        if isinstance(r, ProjectRule) and config.rule_enabled(r.rule_id)
    ]
    files: list[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        else:
            files.append(p)

    findings: list[Finding] = []
    contexts: list[ModuleContext] = []
    n_modules = 0
    for f in files:
        rel = _rel_path(f, root)
        if config.is_excluded(rel):
            continue
        n_modules += 1
        try:
            source = f.read_text()
            ctx = ModuleContext.from_source(source, rel, config)
        except SyntaxError as exc:
            findings.append(
                Finding(
                    rule_id="PARSE",
                    severity=Severity.ERROR,
                    path=rel,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        contexts.append(ctx)
        findings.extend(analyze_source(source, rel, config, module_rules))

    # Project rules see every module at once: call graphs and lock
    # tables cross file boundaries, so they cannot run per-module.
    if contexts and project_rules:
        from repro.analysis.project import ProjectContext

        project = ProjectContext.build(contexts)
        by_path = {ctx.rel_path: ctx for ctx in contexts}
        for rule in project_rules:
            for finding in rule.check_project(project):
                owner = by_path.get(finding.path)
                if owner is None or not owner.suppressed(finding):
                    findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings, n_modules
