"""Whole-project pass infrastructure for the CON/DET rule families.

The per-module rules (SHD/VEC/COST/API) see one file at a time, which
is structurally blind to the two bug classes that sink concurrent
serving: unguarded cross-thread mutation and hidden nondeterminism —
both are properties of how *functions across modules* reach each
other. :class:`ProjectContext` is the shared substrate those rules run
on:

* a **symbol table** of every module-level binding (with mutability),
  every class (with its attributes), and every lock object
  (``threading.Lock/RLock/Condition/Semaphore`` and ``asyncio.Lock``),
  whether class-owned (``self._lock = threading.Lock()``) or
  module-level;
* an **execution-context classification** of every function. Roots
  are structural, not nominal: a callable handed to
  ``ThreadPoolExecutor.submit``/``.map``, ``threading.Thread(target=)``
  or ``loop.run_in_executor`` runs on a *worker thread*; every
  ``async def`` runs on the *event loop*; a configured engine entry
  point (``knn_search``, ``search_fused``, …) in a hot module is the
  *engine hot path*. Contexts propagate down a name-resolved call
  graph: whatever a threaded function calls is itself threaded. The
  propagation over-approximates (a name may resolve to several
  functions), which is the right direction for a linter;
* **lock-guard regions**: :func:`walk_held` yields every AST node of a
  function together with the tuple of locks held around it, inferred
  from ``with self._lock:`` / ``with MODULE_LOCK:`` blocks, so rules
  can ask "is this write guarded?" and "in what order are locks
  acquired?".

Determinism of the analyzer itself is part of the contract: modules
are indexed in the caller's (sorted) order, the worklist is seeded in
sorted order, and every collection a rule may iterate is either
insertion-ordered from a deterministic walk or explicitly sorted — two
runs over the same tree produce byte-identical findings.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import ModuleContext

#: execution-context labels (values are stable — they appear in messages)
CTX_THREADED = "worker-thread"
CTX_EVENT_LOOP = "event-loop"
CTX_HOT_PATH = "engine-hot-path"

#: constructors recognized as thread-synchronization locks
_THREAD_LOCKS = {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore"}

#: mutable-container constructors for module-global / attribute tracking
_MUTABLE_CALLS = {
    "list", "dict", "set", "bytearray", "deque",
    "OrderedDict", "defaultdict", "Counter",
}

_FuncNode = (ast.FunctionDef, ast.AsyncFunctionDef)


def _lock_kind(value: ast.expr) -> str | None:
    """``"thread"`` / ``"async"`` if ``value`` constructs a lock, else None."""
    if not isinstance(value, ast.Call):
        return None
    fn = value.func
    if isinstance(fn, ast.Attribute):
        base = fn.value
        if isinstance(base, ast.Name):
            if base.id == "threading" and fn.attr in _THREAD_LOCKS:
                return "thread"
            if base.id == "asyncio" and fn.attr in ("Lock", "Condition", "Semaphore"):
                return "async"
        return None
    if isinstance(fn, ast.Name) and fn.id in _THREAD_LOCKS:
        return "thread"
    return None


def _is_mutable_value(value: ast.expr) -> bool:
    """Does ``value`` construct a mutable container?"""
    if isinstance(value, (ast.List, ast.Dict, ast.Set,
                          ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.attr if isinstance(fn, ast.Attribute) else getattr(fn, "id", None)
        return name in _MUTABLE_CALLS
    return False


@dataclass
class LockInfo:
    """One lock object: where it lives and what kind of code it blocks."""

    qualname: str          # "ClassName._lock" or "module:<rel_path>:NAME"
    attr: str              # bare attribute / variable name
    kind: str              # "thread" | "async"
    rel_path: str
    line: int


@dataclass
class FunctionInfo:
    """One function/method plus its call edges and inferred contexts."""

    qualname: str          # "<rel_path>::Class.method" or "<rel_path>::func"
    name: str
    rel_path: str
    node: ast.AST          # FunctionDef | AsyncFunctionDef
    module: "ModuleContext"
    class_name: str | None = None
    is_async: bool = False
    #: simple callee names: (name, via_self) in source order
    callees: list[tuple[str, bool]] = field(default_factory=list)
    #: execution contexts this function can run in (CTX_* labels)
    contexts: set[str] = field(default_factory=set)

    def in_context(self) -> bool:
        """Reachable from a thread pool, the event loop, or the engine."""
        return bool(self.contexts)

    def context_label(self) -> str:
        """Deterministic human label for messages."""
        return "/".join(sorted(self.contexts)) or "unclassified"


@dataclass
class ClassInfo:
    """One class: its locks, methods, and instance attributes."""

    name: str
    rel_path: str
    node: ast.ClassDef
    locks: dict[str, LockInfo] = field(default_factory=dict)
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: instance attrs assigned anywhere in the class (attr -> first line)
    attrs: dict[str, int] = field(default_factory=dict)


#: call-attribute names that hand their callable off to a worker thread;
#: maps the spawning attribute to how the target argument is found
_SPAWN_SUBMIT = ("submit",)                      # pool.submit(fn, *a)
_SPAWN_MAP = ("map",)                            # pool.map(fn, it)
_EXECUTOR_HINTS = ("pool", "executor", "exec")   # receiver-name fragments for .map


def _callable_name(node: ast.expr) -> str | None:
    """The simple name of a callable reference (Name / self.attr / obj.attr)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ProjectContext:
    """The whole-project symbol table and call-graph classification."""

    def __init__(self, modules: list["ModuleContext"]):
        self.modules = list(modules)
        self.by_path: dict[str, "ModuleContext"] = {
            m.rel_path: m for m in self.modules
        }
        #: qualname -> FunctionInfo, insertion-ordered (module order)
        self.functions: dict[str, FunctionInfo] = {}
        #: simple name -> [FunctionInfo], insertion-ordered
        self.functions_by_name: dict[str, list[FunctionInfo]] = {}
        #: class name -> [ClassInfo] (same name may exist in two modules)
        self.classes: dict[str, list[ClassInfo]] = {}
        #: rel_path -> {name: (line, is_mutable)} module-level bindings
        self.module_globals: dict[str, dict[str, tuple[int, bool]]] = {}
        #: lock attr/var name -> [LockInfo] for with-statement resolution
        self.locks_by_attr: dict[str, list[LockInfo]] = {}
        self._index()
        self._classify()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, modules: list["ModuleContext"]) -> "ProjectContext":
        return cls(modules)

    def _add_lock(self, info: LockInfo) -> None:
        self.locks_by_attr.setdefault(info.attr, []).append(info)

    def _add_function(self, info: FunctionInfo) -> None:
        self.functions[info.qualname] = info
        self.functions_by_name.setdefault(info.name, []).append(info)

    def _index(self) -> None:
        for mod in self.modules:
            globals_here: dict[str, tuple[int, bool]] = {}
            self.module_globals[mod.rel_path] = globals_here
            for node in mod.tree.body:
                if isinstance(node, (ast.Assign, ast.AnnAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    value = node.value
                    if value is None:
                        continue
                    kind = _lock_kind(value)
                    for t in targets:
                        if not isinstance(t, ast.Name):
                            continue
                        globals_here[t.id] = (node.lineno, _is_mutable_value(value))
                        if kind:
                            self._add_lock(LockInfo(
                                qualname=f"module:{mod.rel_path}:{t.id}",
                                attr=t.id, kind=kind,
                                rel_path=mod.rel_path, line=node.lineno,
                            ))
                elif isinstance(node, _FuncNode):
                    self._index_function(mod, node, class_name=None)
                elif isinstance(node, ast.ClassDef):
                    self._index_class(mod, node)

    def _index_class(self, mod: "ModuleContext", node: ast.ClassDef) -> None:
        cls_info = ClassInfo(name=node.name, rel_path=mod.rel_path, node=node)
        self.classes.setdefault(node.name, []).append(cls_info)
        for item in node.body:
            if isinstance(item, _FuncNode):
                fn = self._index_function(mod, item, class_name=node.name)
                cls_info.methods[item.name] = fn
                # Instance attributes and class-owned locks.
                for sub in ast.walk(item):
                    if isinstance(sub, ast.Assign):
                        for t in sub.targets:
                            if (
                                isinstance(t, ast.Attribute)
                                and isinstance(t.value, ast.Name)
                                and t.value.id == "self"
                            ):
                                cls_info.attrs.setdefault(t.attr, sub.lineno)
                                kind = _lock_kind(sub.value)
                                if kind and t.attr not in cls_info.locks:
                                    info = LockInfo(
                                        qualname=f"{node.name}.{t.attr}",
                                        attr=t.attr, kind=kind,
                                        rel_path=mod.rel_path,
                                        line=sub.lineno,
                                    )
                                    cls_info.locks[t.attr] = info
                                    self._add_lock(info)
            elif isinstance(item, (ast.Assign, ast.AnnAssign)):
                targets = (
                    item.targets if isinstance(item, ast.Assign)
                    else [item.target]
                )
                for t in targets:
                    if isinstance(t, ast.Name):
                        cls_info.attrs.setdefault(t.id, item.lineno)

    def _index_function(
        self, mod: "ModuleContext", node: ast.AST, class_name: str | None
    ) -> FunctionInfo:
        prefix = f"{mod.rel_path}::"
        qual = (
            f"{prefix}{class_name}.{node.name}" if class_name
            else f"{prefix}{node.name}"
        )
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            rel_path=mod.rel_path,
            node=node,
            module=mod,
            class_name=class_name,
            is_async=isinstance(node, ast.AsyncFunctionDef),
        )
        spawn_targets = self._spawn_targets(node)
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            if sub in spawn_targets:
                continue
            fn = sub.func
            if isinstance(fn, ast.Name):
                info.callees.append((fn.id, False))
            elif isinstance(fn, ast.Attribute):
                via_self = (
                    isinstance(fn.value, ast.Name) and fn.value.id == "self"
                )
                info.callees.append((fn.attr, via_self))
        self._add_function(info)
        return info

    # ------------------------------------------------------------------
    # execution-context classification
    # ------------------------------------------------------------------
    def _spawn_targets(self, fn_node: ast.AST) -> dict:
        """Calls inside ``fn_node`` whose result crosses a thread boundary.

        Returns a mapping whose keys are the spawn Call nodes (so callee
        collection skips them) — the *names* of the spawned callables
        are recorded on the side in ``self._pending_thread_roots``.
        """
        targets: dict[ast.Call, None] = {}
        pending = getattr(self, "_pending_thread_roots", None)
        if pending is None:
            pending = self._pending_thread_roots = []
        for sub in ast.walk(fn_node):
            if not isinstance(sub, ast.Call):
                continue
            fn = sub.func
            attr = fn.attr if isinstance(fn, ast.Attribute) else None
            name = fn.id if isinstance(fn, ast.Name) else None
            spawned: ast.expr | None = None
            if attr in _SPAWN_SUBMIT and sub.args:
                spawned = sub.args[0]
            elif attr in _SPAWN_MAP and sub.args:
                # plain builtins `map(f, xs)` is not a thread boundary;
                # require an executor-ish receiver name.
                recv = fn.value
                recv_name = (
                    recv.id if isinstance(recv, ast.Name)
                    else recv.attr if isinstance(recv, ast.Attribute)
                    else ""
                )
                if any(h in recv_name.lower() for h in _EXECUTOR_HINTS):
                    spawned = sub.args[0]
            elif attr == "run_in_executor" and len(sub.args) >= 2:
                spawned = sub.args[1]
            elif (attr == "Thread" or name == "Thread"):
                for kw in sub.keywords:
                    if kw.arg == "target":
                        spawned = kw.value
            if spawned is not None:
                tname = _callable_name(spawned)
                if tname:
                    pending.append(tname)
                    targets[sub] = None
        return targets

    def _resolve(self, caller: FunctionInfo, name: str, via_self: bool
                 ) -> list[FunctionInfo]:
        """Resolve a simple callee name to candidate functions."""
        if via_self and caller.class_name:
            for cls in self.classes.get(caller.class_name, []):
                if cls.rel_path == caller.rel_path and name in cls.methods:
                    return [cls.methods[name]]
        return self.functions_by_name.get(name, [])

    def _classify(self) -> None:
        worklist: list[FunctionInfo] = []

        def mark(fn: FunctionInfo, ctx: str) -> None:
            if ctx not in fn.contexts:
                fn.contexts.add(ctx)
                worklist.append(fn)

        # Roots, in deterministic (indexing) order.
        thread_roots = list(getattr(self, "_pending_thread_roots", []))
        for tname in thread_roots:
            for fn in self.functions_by_name.get(tname, []):
                mark(fn, CTX_THREADED)
        for fn in self.functions.values():
            if fn.is_async:
                mark(fn, CTX_EVENT_LOOP)
            config = fn.module.config
            if (
                fn.name in config.engine_entry_points
                and config.is_hot(fn.rel_path)
            ):
                mark(fn, CTX_HOT_PATH)

        # Propagate down the call graph to a fixed point.
        while worklist:
            fn = worklist.pop(0)
            ctxs = tuple(sorted(fn.contexts))
            for name, via_self in fn.callees:
                for callee in self._resolve(fn, name, via_self):
                    for ctx in ctxs:
                        mark(callee, ctx)

    # ------------------------------------------------------------------
    # lock-guard regions
    # ------------------------------------------------------------------
    def resolve_lock(
        self, expr: ast.expr, owner: FunctionInfo
    ) -> LockInfo | None:
        """The lock a ``with`` context expression acquires, if any.

        ``self.X`` resolves through the owning class; a bare name
        resolves through module-level locks; ``obj.X`` resolves by
        attribute name when exactly one class owns a lock called ``X``
        (cross-object acquisition, e.g. ``cache._lock``).
        """
        if isinstance(expr, ast.Call):
            # `with lock.acquire():` style — resolve the receiver.
            if isinstance(expr.func, ast.Attribute) and expr.func.attr in (
                "acquire", "acquire_lock"
            ):
                expr = expr.func.value
            else:
                return None
        if isinstance(expr, ast.Attribute):
            attr = expr.attr
            if (
                isinstance(expr.value, ast.Name)
                and expr.value.id == "self"
                and owner.class_name
            ):
                for cls in self.classes.get(owner.class_name, []):
                    if cls.rel_path == owner.rel_path and attr in cls.locks:
                        return cls.locks[attr]
            candidates = self.locks_by_attr.get(attr, [])
            if len(candidates) == 1:
                return candidates[0]
            return None
        if isinstance(expr, ast.Name):
            for info in self.locks_by_attr.get(expr.id, []):
                if info.qualname.startswith("module:") and (
                    info.rel_path == owner.rel_path
                ):
                    return info
        return None

    def walk_held(self, fn: FunctionInfo) -> Iterator[tuple[ast.AST, tuple]]:
        """Yield ``(node, held)`` for every node in ``fn``'s body.

        ``held`` is the tuple of :class:`LockInfo` acquired around the
        node via ``with`` statements, outermost first. Nested function
        definitions keep the enclosing held set (closures like the
        engine's ``gas_for`` run where they are defined; assuming the
        guard holds errs toward fewer false positives).
        """

        def walk(node: ast.AST, held: tuple) -> Iterator[tuple[ast.AST, tuple]]:
            yield node, held
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = []
                for item in node.items:
                    for sub in ast.walk(item):
                        yield sub, held
                    lock = self.resolve_lock(item.context_expr, fn)
                    if lock is not None:
                        acquired.append(lock)
                inner = held + tuple(acquired)
                for stmt in node.body:
                    yield from walk(stmt, inner)
                return
            for child in ast.iter_child_nodes(node):
                yield from walk(child, held)

        for stmt in fn.node.body:
            yield from walk(stmt, ())

    # ------------------------------------------------------------------
    # shared helpers for rules
    # ------------------------------------------------------------------
    def lock_owning_classes(self) -> list[ClassInfo]:
        """Classes holding at least one thread lock, in index order."""
        out = []
        for infos in self.classes.values():
            for cls in infos:
                if any(lk.kind == "thread" for lk in cls.locks.values()):
                    out.append(cls)
        return out


def parent_map(node: ast.AST) -> dict[ast.AST, ast.AST]:
    """child -> parent for every node under ``node`` (rules' local use)."""
    parents: dict[ast.AST, ast.AST] = {}
    for sub in ast.walk(node):
        for child in ast.iter_child_nodes(sub):
            parents[child] = sub
    return parents
