"""``repro-lint``: generic linting (ruff) + domain analysis, one shot.

Ruff covers the commodity layer (pyflakes/pycodestyle/isort per the
``[tool.ruff]`` config); :mod:`repro.analysis` covers the execution-
model invariants no generic linter knows about. Ruff is optional at
runtime — containers without it skip that half with a notice instead
of failing, so the domain checks always run.
"""

from __future__ import annotations

import shutil
import subprocess
import sys

from repro.analysis.cli import build_parser, main as analysis_main


def run_ruff(paths: list[str]) -> int | None:
    """Run ruff if installed; None means unavailable (skipped)."""
    exe = shutil.which("ruff")
    if exe is None:
        return None
    proc = subprocess.run([exe, "check", *paths])
    return proc.returncode


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    args, _ = build_parser().parse_known_args(argv)
    paths = args.paths

    ruff_rc = run_ruff(paths)
    if ruff_rc is None:
        print("repro-lint: ruff not installed, skipping generic lint pass")
        ruff_rc = 0
    elif ruff_rc == 0:
        print("repro-lint: ruff clean")

    analysis_rc = analysis_main(argv)
    return max(ruff_rc, analysis_rc)


if __name__ == "__main__":
    sys.exit(main())
