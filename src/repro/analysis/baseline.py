"""Baseline files: accepted findings that don't fail the build.

A baseline is a JSON list of finding fingerprints. ``--write-baseline``
records the current findings; subsequent runs subtract them. Matching
is line-insensitive (rule, path, message), so baselined debt survives
unrelated edits but resurfaces the moment its message changes.

Each entry may carry a ``why`` field — a one-line justification for
accepting the finding. ``--write-baseline`` preserves justifications
for entries that survive the rewrite. Entries that no longer match any
finding are *stale*: the debt was paid (or the code deleted) and the
entry should be dropped, so :func:`apply_baseline` reports them.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

_VERSION = 1

#: a baseline fingerprint: (rule, path, message)
Fingerprint = tuple[str, str, str]


def load_baseline(path: Path | str) -> set[Fingerprint]:
    """Fingerprints recorded in ``path``; empty set if absent."""
    path = Path(path)
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    if data.get("version") != _VERSION:
        raise SystemExit(f"unsupported baseline version in {path}")
    return {
        (e["rule"], e["path"], e["message"]) for e in data.get("findings", [])
    }


def load_justifications(path: Path | str) -> dict[Fingerprint, str]:
    """``why`` annotations keyed by fingerprint; empty dict if absent."""
    path = Path(path)
    if not path.is_file():
        return {}
    data = json.loads(path.read_text())
    return {
        (e["rule"], e["path"], e["message"]): e["why"]
        for e in data.get("findings", [])
        if "why" in e
    }


def write_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Record ``findings`` (sorted, deduplicated) as the new baseline.

    ``why`` justifications already present in the file are kept for
    fingerprints that are still live.
    """
    path = Path(path)
    why = load_justifications(path) if path.is_file() else {}
    entries = sorted(
        {f.fingerprint for f in findings},
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": r, "path": p, "message": m}
            | ({"why": why[(r, p, m)]} if (r, p, m) in why else {})
            for r, p, m in entries
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: list[Finding], accepted: set[Fingerprint]
) -> tuple[list[Finding], int, list[Fingerprint]]:
    """Split findings into (new, n_baselined, stale_entries).

    ``stale_entries`` are accepted fingerprints that matched nothing in
    this run — debt that was paid off but never removed from the file.
    """
    fresh = [f for f in findings if f.fingerprint not in accepted]
    live = {f.fingerprint for f in findings}
    stale = sorted(accepted - live)
    return fresh, len(findings) - len(fresh), stale
