"""Baseline files: accepted findings that don't fail the build.

A baseline is a JSON list of finding fingerprints. ``--write-baseline``
records the current findings; subsequent runs subtract them. Matching
is line-insensitive (rule, path, message), so baselined debt survives
unrelated edits but resurfaces the moment its message changes.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.findings import Finding

_VERSION = 1


def load_baseline(path: Path | str) -> set[tuple[str, str, str]]:
    """Fingerprints recorded in ``path``; empty set if absent."""
    path = Path(path)
    if not path.is_file():
        return set()
    data = json.loads(path.read_text())
    if data.get("version") != _VERSION:
        raise SystemExit(f"unsupported baseline version in {path}")
    return {
        (e["rule"], e["path"], e["message"]) for e in data.get("findings", [])
    }


def write_baseline(path: Path | str, findings: list[Finding]) -> None:
    """Record ``findings`` (sorted, deduplicated) as the new baseline."""
    entries = sorted(
        {f.fingerprint for f in findings},
    )
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": r, "path": p, "message": m} for r, p, m in entries
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: list[Finding], accepted: set[tuple[str, str, str]]
) -> tuple[list[Finding], int]:
    """Split findings into (new, n_baselined)."""
    fresh = [f for f in findings if f.fingerprint not in accepted]
    return fresh, len(findings) - len(fresh)
