"""repro.analysis — SIMT/shader static analysis for the reproduction.

A device compiler and validation layer would enforce the execution
model on real RT-core hardware; this package is their stand-in for the
pure-Python simulator. Four rule families guard the invariants the
paper's results rest on:

* **SHD** — OptiX per-stage shader contracts (batch signature,
  read-only geometry, ray→query id translation);
* **VEC** — warp-lockstep discipline in hot modules (no scalar ray
  loops, no quadratic ``np.append``, no silent dtype upcasts);
* **COST** — no free work: traversal and distance math must flow
  through the :class:`~repro.gpu.costmodel.CostModel`;
* **API** — layer hygiene (seeded RNG plumbing, no wall-clock in
  modeled-time code, no dead imports).

Run ``python -m repro.analysis`` (or ``repro analyze`` /
``repro-lint``); see ``docs/static_analysis.md``.
"""

from repro.analysis.config import AnalysisConfig, load_config
from repro.analysis.engine import analyze_paths, analyze_source
from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule, all_rules

__all__ = [
    "AnalysisConfig",
    "Finding",
    "Rule",
    "Severity",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "load_config",
]
