"""Analysis configuration, read from ``[tool.repro-analysis]``.

Module scoping is path-fragment based: a module is "hot" (lockstep
rules apply) or "modeled" (wall-clock/cost rules apply) when any
configured fragment occurs in its repo-relative posix path. Fragments
ending in ``/`` match packages, full paths match single modules.
"""

from __future__ import annotations

import tomllib
from dataclasses import dataclass, field
from pathlib import Path

#: array names whose element-wise iteration breaks warp lockstep
DEFAULT_ARRAY_NAMES = (
    "rays",
    "ray_ids",
    "prims",
    "prim_ids",
    "points",
    "queries",
    "query_ids",
    "origins",
    "directions",
    "hit_rays",
    "leaf_rays",
)

DEFAULT_HOT_MODULES = (
    "repro/bvh/",
    "repro/core/",
    "repro/optix/",
    "repro/gpu/",
    "repro/baselines/",
)

DEFAULT_MODELED_MODULES = (
    "repro/bvh/",
    "repro/core/",
    "repro/optix/",
    "repro/gpu/",
)

DEFAULT_TRACE_ENTRY_MODULES = ("repro/optix/pipeline.py",)

DEFAULT_SHADER_MODULES = (
    "repro/core/shaders.py",
    "repro/optix/shaders.py",
)

#: observability/diagnostic code: runs on the host beside the simulator,
#: consumes the hot loop's access stream but is not part of it, so the
#: lockstep (VEC*) and shader-contract (SHD*) rules do not apply.
DEFAULT_EXEMPT_MODULES = ("repro/obs/",)

#: engine methods whose bodies (and transitive callees) count as the
#: engine-hot-path execution context for the CON/DET project rules
DEFAULT_ENGINE_ENTRY_POINTS = (
    "knn_search",
    "range_search",
    "search_fused",
    "update_points",
)


@dataclass
class AnalysisConfig:
    """Everything the rule engine needs besides the source itself."""

    hot_modules: tuple[str, ...] = DEFAULT_HOT_MODULES
    modeled_modules: tuple[str, ...] = DEFAULT_MODELED_MODULES
    trace_entry_modules: tuple[str, ...] = DEFAULT_TRACE_ENTRY_MODULES
    shader_modules: tuple[str, ...] = DEFAULT_SHADER_MODULES
    exempt_modules: tuple[str, ...] = DEFAULT_EXEMPT_MODULES
    array_names: tuple[str, ...] = DEFAULT_ARRAY_NAMES
    engine_entry_points: tuple[str, ...] = DEFAULT_ENGINE_ENTRY_POINTS
    rng_module: str = "repro/utils/rng.py"
    select: tuple[str, ...] = ()     # empty = all rules
    ignore: tuple[str, ...] = ()
    exclude: tuple[str, ...] = ()    # path fragments skipped entirely
    baseline: str = "tools/analysis_baseline.json"

    # ------------------------------------------------------------------
    def _matches(self, rel_path: str, fragments: tuple[str, ...]) -> bool:
        return any(f in rel_path for f in fragments)

    def is_hot(self, rel_path: str) -> bool:
        return (
            self._matches(rel_path, self.hot_modules)
            and not self.is_exempt(rel_path)
        )

    def is_modeled(self, rel_path: str) -> bool:
        return self._matches(rel_path, self.modeled_modules)

    def is_trace_entry(self, rel_path: str) -> bool:
        return self._matches(rel_path, self.trace_entry_modules)

    def is_shader_module(self, rel_path: str) -> bool:
        return self._matches(rel_path, self.shader_modules)

    def is_rng_module(self, rel_path: str) -> bool:
        return self.rng_module in rel_path

    def is_exempt(self, rel_path: str) -> bool:
        """Observability/diagnostic modules exempt from VEC*/SHD* rules."""
        return self._matches(rel_path, self.exempt_modules)

    def is_excluded(self, rel_path: str) -> bool:
        return self._matches(rel_path, self.exclude)

    def rule_enabled(self, rule_id: str) -> bool:
        if any(rule_id.startswith(i) for i in self.ignore):
            return False
        if self.select:
            return any(rule_id.startswith(s) for s in self.select)
        return True


@dataclass
class _Raw:
    table: dict = field(default_factory=dict)


_KEY_MAP = {
    "hot-modules": "hot_modules",
    "modeled-modules": "modeled_modules",
    "trace-entry-modules": "trace_entry_modules",
    "shader-modules": "shader_modules",
    "exempt-modules": "exempt_modules",
    "array-names": "array_names",
    "engine-entry-points": "engine_entry_points",
    "rng-module": "rng_module",
    "select": "select",
    "ignore": "ignore",
    "exclude": "exclude",
    "baseline": "baseline",
}


def load_config(start: Path | str | None = None) -> AnalysisConfig:
    """Load ``[tool.repro-analysis]`` from the nearest ``pyproject.toml``.

    Walks up from ``start`` (default: cwd). Missing file or missing
    table yields the documented defaults.
    """
    here = Path(start or Path.cwd()).resolve()
    if here.is_file():
        here = here.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            with open(pyproject, "rb") as fh:
                data = tomllib.load(fh)
            table = data.get("tool", {}).get("repro-analysis", {})
            kwargs = {}
            for key, value in table.items():
                attr = _KEY_MAP.get(key)
                if attr is None:
                    raise SystemExit(
                        f"unknown [tool.repro-analysis] key: {key!r}"
                    )
                kwargs[attr] = (
                    tuple(value) if isinstance(value, list) else value
                )
            return AnalysisConfig(**kwargs)
    return AnalysisConfig()
