"""Static-analysis command line.

::

    python -m repro.analysis [paths...] [options]
    repro analyze [paths...] [options]

Exit codes: 0 clean (after baseline + suppressions), 1 findings,
2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.config import load_config
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import all_rules
from repro.analysis.sarif import render_sarif


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro.analysis",
        description="SIMT/shader static analysis for the RTNN reproduction",
    )
    p.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    p.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (sarif: GitHub code-scanning annotations)",
    )
    p.add_argument(
        "--explain",
        metavar="RULEID",
        help="print a rule's rationale and bad/good example, then exit",
    )
    p.add_argument(
        "--baseline",
        help="baseline file (default: [tool.repro-analysis].baseline)",
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, ignoring the baseline",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline and exit 0",
    )
    p.add_argument(
        "--select",
        action="append",
        default=[],
        metavar="PREFIX",
        help="only run rules whose id starts with PREFIX (repeatable)",
    )
    p.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="PREFIX",
        help="skip rules whose id starts with PREFIX (repeatable)",
    )
    p.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    p.add_argument(
        "--root",
        default=".",
        help="repo root for relative paths and pyproject discovery",
    )
    return p


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    root = Path(args.root)

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  [{rule.severity.value:7s}] {rule.summary}")
        return 0

    if args.explain:
        return _explain(args.explain)

    config = load_config(root)
    if args.select:
        config.select = tuple(args.select)
    if args.ignore:
        config.ignore = tuple(config.ignore) + tuple(args.ignore)

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2

    findings, n_modules = analyze_paths(paths, config, root=root)

    baseline_path = Path(args.baseline) if args.baseline else root / config.baseline
    if args.write_baseline:
        write_baseline(baseline_path, findings)
        print(
            f"baseline: recorded {len(findings)} finding(s) in {baseline_path}"
        )
        return 0

    n_baselined = 0
    stale: list = []
    if not args.no_baseline:
        findings, n_baselined, stale = apply_baseline(
            findings, load_baseline(baseline_path)
        )
    for rule, path, message in stale:
        print(
            f"warning: stale baseline entry {rule} @ {path}: {message!r} "
            "matches no current finding; remove it (or rerun "
            "--write-baseline)",
            file=sys.stderr,
        )

    if args.format == "json":
        print(
            json.dumps(
                {
                    "modules": n_modules,
                    "findings": [f.to_dict() for f in findings],
                    "baselined": n_baselined,
                    "stale_baseline": [
                        {"rule": r, "path": p, "message": m}
                        for r, p, m in stale
                    ],
                    "counts": _counts(findings),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(render_sarif(findings, all_rules()))
    else:
        for f in findings:
            print(f.render())
        tail = f"{len(findings)} finding(s) in {n_modules} module(s)"
        if n_baselined:
            tail += f" ({n_baselined} baselined)"
        print(tail)
    return 1 if findings else 0


def _explain(rule_id: str) -> int:
    """Print one rule's docstring — rationale plus bad/good example."""
    import inspect

    rule_id = rule_id.upper()
    for rule in all_rules():
        if rule.rule_id == rule_id:
            doc = inspect.cleandoc(type(rule).__doc__ or "")
            print(f"{rule.rule_id} [{rule.severity.value}]: {rule.summary}")
            print()
            print(doc.replace("::", ":"))
            return 0
    print(f"unknown rule id: {rule_id}", file=sys.stderr)
    return 2


def _counts(findings) -> dict[str, int]:
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule_id] = counts.get(f.rule_id, 0) + 1
    return dict(sorted(counts.items()))
