"""SARIF 2.1.0 output so findings render as code-scanning annotations.

Only the subset GitHub consumes is emitted: one run, one driver, a
rule catalog with short descriptions, and one result per finding with
a physical location. Output is deterministic: rules and results are
already sorted by the engine, and no timestamps or absolute paths are
embedded.
"""

from __future__ import annotations

import json

from repro.analysis.findings import Finding, Severity
from repro.analysis.rules import Rule

_SARIF_VERSION = "2.1.0"
_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVEL = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def to_sarif(findings: list[Finding], rules: list[Rule]) -> dict:
    """Build the SARIF log object (JSON-serializable dict)."""
    used = {f.rule_id for f in findings}
    catalog = sorted(
        (r for r in rules if r.rule_id in used or not used),
        key=lambda r: r.rule_id,
    )
    rule_index = {r.rule_id: i for i, r in enumerate(catalog)}
    return {
        "$schema": _SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-analysis",
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static_analysis.md"
                        ),
                        "rules": [
                            {
                                "id": r.rule_id,
                                "shortDescription": {"text": r.summary},
                                "defaultConfiguration": {
                                    "level": _LEVEL[r.severity],
                                },
                            }
                            for r in catalog
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule_id,
                        **(
                            {"ruleIndex": rule_index[f.rule_id]}
                            if f.rule_id in rule_index
                            else {}
                        ),
                        "level": _LEVEL[f.severity],
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": f.path,
                                        "uriBaseId": "SRCROOT",
                                    },
                                    "region": {
                                        "startLine": f.line,
                                        "startColumn": f.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }


def render_sarif(findings: list[Finding], rules: list[Rule]) -> str:
    return json.dumps(to_sarif(findings, rules), indent=2)
