"""CON — cross-thread mutation discipline for the concurrent hot paths.

The serving tier fans work out over a thread pool while the event loop
keeps accepting requests; ROADMAP item 1 (sharded multi-worker
serving) multiplies that shared-state surface. These rules run on the
whole-project pass (:mod:`repro.analysis.project`): they know which
functions execute on worker threads, which locks exist, and which
``with`` blocks guard what.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.project import CTX_THREADED, ProjectContext
from repro.analysis.rules import ProjectRule, register

#: method names that mutate their receiver in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "clear", "update",
    "add", "discard", "popitem", "setdefault", "move_to_end",
    "appendleft", "popleft", "sort", "reverse",
}

#: constructor-time methods: single-threaded by definition
_CTOR_METHODS = ("__init__", "__post_init__", "__new__")


def _self_attr_target(node: ast.expr) -> str | None:
    """``self.X`` / ``self.X[...]`` store target -> ``X``; else None."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _held_thread_locks(held: tuple) -> list:
    return [lk for lk in held if lk.kind == "thread"]


@register
class UnguardedSharedWriteRule(ProjectRule):
    """Shared mutable state written on a worker-thread path, unguarded.

    Rationale: a class that owns a lock has declared its state shared;
    every mutation reachable from a thread pool must then hold that
    lock, or two workers interleave half-applied updates (the classic
    lost-update race the sharded serving tier cannot afford).
    Module-level mutable containers mutated from a threaded context are
    the same bug without the class. Lockless classes reached from
    threads are assumed externally serialized (the engine behind the
    single service worker); adding a lock to a class opts it into this
    rule — which is exactly the discipline new shared structures must
    follow.

    Bad::

        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self._entries = {}

            def insert(self, key, gas):      # reached via pool.submit
                self._entries[key] = gas     # CON001: lock not held

    Good::

        def insert(self, key, gas):
            with self._lock:
                self._entries[key] = gas
    """

    rule_id = "CON001"
    summary = "unguarded write to shared state on a worker-thread path"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for cls in project.lock_owning_classes():
            lock_names = set(cls.locks)
            for mname, fn in cls.methods.items():
                if mname in _CTOR_METHODS or CTX_THREADED not in fn.contexts:
                    continue
                for node, held in project.walk_held(fn):
                    attr = self._written_attr(node)
                    if attr is None or attr in lock_names:
                        continue
                    if not _held_thread_locks(held):
                        out.append(self._finding_at(
                            fn.module, node,
                            f"self.{attr} is written in {cls.name}.{mname} "
                            f"on a {fn.context_label()} path without "
                            f"holding {cls.name}.{sorted(lock_names)[0]}; "
                            "wrap the mutation in the lock guard",
                        ))
        out.extend(self._global_mutations(project))
        return out

    @staticmethod
    def _written_attr(node: ast.AST) -> str | None:
        if isinstance(node, ast.Assign):
            for t in node.targets:
                attr = _self_attr_target(t)
                if attr:
                    return attr
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            return _self_attr_target(node.target)
        elif isinstance(node, ast.Delete):
            for t in node.targets:
                attr = _self_attr_target(t)
                if attr:
                    return attr
        elif isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS:
                return _self_attr_target(fn.value)
        return None

    def _global_mutations(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            if CTX_THREADED not in fn.contexts:
                continue
            mutables = {
                name
                for name, (_, is_mutable)
                in project.module_globals.get(fn.rel_path, {}).items()
                if is_mutable
            }
            if not mutables:
                continue
            for node, held in project.walk_held(fn):
                name = self._global_write(node, mutables)
                if name and not _held_thread_locks(held):
                    out.append(self._finding_at(
                        fn.module, node,
                        f"module-level mutable {name!r} is mutated in "
                        f"{fn.name} on a {fn.context_label()} path "
                        "without a lock; guard it or make it per-worker",
                    ))
        return out

    @staticmethod
    def _global_write(node: ast.AST, names: set[str]) -> str | None:
        target: ast.expr | None = None
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Attribute) and fn.attr in _MUTATING_METHODS:
                target = fn.value
        elif isinstance(node, (ast.AugAssign,)):
            target = node.target
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Subscript):
                    target = t.value
        if isinstance(target, ast.Subscript):
            target = target.value
        if isinstance(target, ast.Name) and target.id in names:
            return target.id
        return None


@register
class AwaitUnderLockRule(ProjectRule):
    """``await`` while holding a *threading* lock.

    Rationale: a threading lock held across an ``await`` pins the lock
    for the whole suspension — every worker thread that wants it blocks
    on the event loop's scheduling whims, and a re-entrant path on the
    same loop deadlocks outright. Release before suspending, or use an
    ``asyncio.Lock`` with ``async with``.

    Bad::

        async def push(self, item):
            with self._lock:
                await self._notify()     # CON002: lock held across await

    Good::

        async def push(self, item):
            with self._lock:
                self._queue.append(item)
            await self._notify()
    """

    rule_id = "CON002"
    summary = "await while holding a threading lock"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            for node, held in project.walk_held(fn):
                if isinstance(node, ast.Await):
                    locks = _held_thread_locks(held)
                    if locks:
                        out.append(self._finding_at(
                            fn.module, node,
                            f"await in {fn.name} while holding "
                            f"{locks[0].qualname}: the lock stays taken "
                            "across the suspension; release it first or "
                            "use asyncio.Lock with `async with`",
                        ))
        return out


@register
class LockOrderRule(ProjectRule):
    """Locks acquired in inconsistent order across the project.

    Rationale: if one code path takes lock A then lock B while another
    takes B then A, two threads running those paths can each hold one
    lock and wait forever on the other. A single global acquisition
    order (document it, sort by name) makes that deadlock impossible.

    Bad::

        def flush(self):
            with self._lock_a:
                with self._lock_b: ...

        def rekey(self):
            with self._lock_b:
                with self._lock_a: ...   # CON003: reverse order

    Good::

        def rekey(self):
            with self._lock_a:
                with self._lock_b: ...   # same order everywhere
    """

    rule_id = "CON003"
    summary = "inconsistent lock acquisition order (deadlock risk)"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        # (outer, inner) -> [(fn, node)] acquisition sites, index order.
        pairs: dict[tuple[str, str], list] = {}
        for fn in project.functions.values():
            for node, held in project.walk_held(fn):
                if not isinstance(node, (ast.With, ast.AsyncWith)):
                    continue
                for item in node.items:
                    lock = project.resolve_lock(item.context_expr, fn)
                    if lock is None:
                        continue
                    for outer in held:
                        if outer.qualname != lock.qualname:
                            pairs.setdefault(
                                (outer.qualname, lock.qualname), []
                            ).append((fn, node))
        out: list[Finding] = []
        for (a, b), sites in sorted(pairs.items()):
            reverse = pairs.get((b, a))
            if not reverse:
                continue
            other_fn, _ = reverse[0]
            for fn, node in sites:
                out.append(self._finding_at(
                    fn.module, node,
                    f"{b} acquired while holding {a} in {fn.name}, but "
                    f"{other_fn.name} ({other_fn.rel_path}) acquires "
                    "them in the reverse order; pick one global order",
                ))
        return out


@register
class GlobalReboundRule(ProjectRule):
    """Module-level state rebound after import time.

    Rationale: a module-level name rebound at runtime (``global X``)
    is an unsynchronized broadcast: threads mid-read see either value,
    and two racing writers silently drop one update. Runtime
    reconfiguration belongs in an explicit object handed to the code
    that needs it, not in interpreter-wide module state.

    Bad::

        _CONFIG = {"shards": 1}

        def reload(path):
            global _CONFIG
            _CONFIG = json.load(open(path))   # CON004

    Good::

        def load_config(path) -> dict:
            return json.load(open(path))      # caller owns the object
    """

    rule_id = "CON004"
    summary = "module-level state rebound after import time"

    def check_project(self, project: ProjectContext) -> list[Finding]:
        out: list[Finding] = []
        for fn in project.functions.values():
            declared: set[str] = set()
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Global):
                    declared.update(node.names)
            if not declared:
                continue
            module_names = project.module_globals.get(fn.rel_path, {})
            for node in ast.walk(fn.node):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for t in targets:
                    if (
                        isinstance(t, ast.Name)
                        and t.id in declared
                        and t.id in module_names
                    ):
                        out.append(self._finding_at(
                            fn.module, node,
                            f"{t.id!r} is rebound at runtime via `global` "
                            f"in {fn.name}; import-time module state must "
                            "stay frozen — pass an explicit object instead",
                        ))
        return out
