"""Rule registry and the shared AST vocabulary rules are written in.

A rule is a subclass of :class:`Rule` decorated with
:func:`register`. The engine instantiates every registered rule once
and calls :meth:`Rule.check` per module; helpers here keep the
individual rule files small.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover
    from repro.analysis.engine import ModuleContext

RULE_CLASSES: dict[str, type["Rule"]] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if cls.rule_id in RULE_CLASSES:
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    RULE_CLASSES[cls.rule_id] = cls
    return cls


class Rule:
    """One invariant check. Subclasses set the class attributes."""

    rule_id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, ctx: "ModuleContext") -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            severity=self.severity,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole-project pass.

    Subclasses implement :meth:`check_project` against a
    :class:`~repro.analysis.project.ProjectContext`. The engine runs
    project rules once over all modules; :meth:`check` keeps the
    single-module entry point working (tests, ``analyze_source``) by
    building a one-module project on the fly.
    """

    def check(self, ctx: "ModuleContext") -> list[Finding]:
        from repro.analysis.project import ProjectContext

        return self.check_project(ProjectContext.build([ctx]))

    def check_project(self, project) -> list[Finding]:
        raise NotImplementedError

    def _finding_at(
        self, module: "ModuleContext", node: ast.AST, message: str
    ) -> Finding:
        """A finding anchored in ``module`` (project rules span files)."""
        return self.finding(module, node, message)


def all_rules() -> list[Rule]:
    """Instantiate every registered rule (importing the rule modules)."""
    # Imported here, not at module top, to avoid a registry/import cycle;
    # the import itself is what registers the rules.
    from repro.analysis.rules import (  # noqa: API003, F401
        concurrency,
        costmodel,
        determinism,
        hygiene,
        lockstep,
        shader_contract,
    )

    return [cls() for _, cls in sorted(RULE_CLASSES.items())]


# ----------------------------------------------------------------------
# shared AST helpers
# ----------------------------------------------------------------------
def root_name(node: ast.AST) -> str | None:
    """Leftmost identifier of a Name/Attribute/Subscript/Call chain.

    ``ray_ids`` -> ``ray_ids``; ``ray_ids.tolist()`` -> ``ray_ids``;
    ``self.points[i]`` -> ``points`` (the attribute past ``self``).
    """
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return node.attr
            node = node.value
        elif isinstance(node, (ast.Subscript, ast.Starred)):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


def dotted_name(node: ast.AST) -> str | None:
    """``np.random.default_rng`` -> that string; None if not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def iter_names(expr: ast.AST):
    """Every bare identifier appearing anywhere inside ``expr``."""
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name):
            yield sub.id


def call_params(fn: ast.FunctionDef) -> list[str]:
    """Positional parameter names of ``fn`` excluding ``self``."""
    names = [a.arg for a in fn.args.posonlyargs + fn.args.args]
    if names and names[0] in ("self", "cls"):
        names = names[1:]
    return names


#: parameter names of the IS shader protocol, in order
SHADER_PARAMS = ("ray_ids", "prim_ids")


def find_call_method(cls: ast.ClassDef) -> ast.FunctionDef | None:
    for item in cls.body:
        if isinstance(item, ast.FunctionDef) and item.name == "__call__":
            return item
    return None


def is_shader_class(cls: ast.ClassDef) -> bool:
    """A class participates in the IS shader protocol.

    Detected structurally (``__call__(self, ray_ids, prim_ids)``) or
    nominally (name ends in ``Shader``) — nominal detection lets the
    contract rules flag classes that *intend* to be shaders but get the
    signature wrong.
    """
    if cls.name.endswith("Shader"):
        return True
    call = find_call_method(cls)
    return call is not None and call_params(call) == list(SHADER_PARAMS)
