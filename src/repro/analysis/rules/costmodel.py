"""COST — no free work: everything the GPU would do must be charged.

Modeled time is the repository's ground truth; any code path that
traverses, intersects, or computes distances without flowing through
the :class:`~repro.gpu.costmodel.CostModel` silently deflates it.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register


def _is_call_to(node: ast.Call, names: tuple[str, ...]) -> bool:
    fn = node.func
    if isinstance(fn, ast.Name):
        return fn.id in names
    if isinstance(fn, ast.Attribute):
        return fn.attr in names
    return False


@register
class RawTraceRule(Rule):
    """``trace_batch`` may only be called from the pipeline layer."""

    rule_id = "COST001"
    summary = "trace_batch outside the pipeline bypasses cost accounting"

    def check(self, ctx) -> list[Finding]:
        if ctx.config.is_trace_entry(ctx.rel_path):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and _is_call_to(
                node, ("trace_batch",)
            ):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        "direct trace_batch call: launches must go through "
                        "Pipeline.launch so CostModel.launch_cost charges "
                        "the traversal; raw traces are free work",
                    )
                )
        return out


@register
class DiscardedLaunchRule(Rule):
    """A launch whose result is dropped leaves its cost unaccounted."""

    rule_id = "COST002"
    summary = "launch/trace result discarded (cost never charged)"

    def check(self, ctx) -> list[Finding]:
        out = []
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)
                and _is_call_to(node.value, ("launch", "trace_batch"))
            ):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        "launch result discarded: LaunchResult carries the "
                        "LaunchCost; dropping it means the launch ran for "
                        "free in the modeled timeline",
                    )
                )
        return out


#: distance computations the IS shaders own; elsewhere in modeled code
#: they are un-charged Step-2 work
_DISTANCE_CALLS = (
    "np.einsum",
    "numpy.einsum",
    "np.linalg.norm",
    "numpy.linalg.norm",
    "scipy.spatial.distance.cdist",
    "distance.cdist",
    "cdist",
)


@register
class UnchargedDistanceRule(Rule):
    """Pair-distance math outside shader modules, in modeled code."""

    rule_id = "COST003"
    summary = "pair-distance computation outside the IS shaders"

    def check(self, ctx) -> list[Finding]:
        cfg = ctx.config
        if not cfg.is_modeled(ctx.rel_path) or cfg.is_shader_module(
            ctx.rel_path
        ):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in _DISTANCE_CALLS or (
                name is None
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "cdist"
            ):
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"distance computation ({name or 'cdist'}) in "
                        "modeled code outside the shader modules: sphere "
                        "tests are Step-2 IS work and must run inside a "
                        "shader so the launch's IsKind prices them",
                    )
                )
        return out
