"""VEC — warp-lockstep / vectorization discipline in hot modules.

The simulator charges SIMT work at warp granularity, which is honest
only if the Python that models it is itself batched: a scalar loop
over rays or points is both a simulator slowdown and a sign the code
no longer mirrors the lockstep hardware it stands for.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register, root_name

_LOOPS = (ast.For, ast.comprehension)


def _iter_loop_iters(tree: ast.Module):
    """(node, iter-expression) for every for-loop and comprehension."""
    for node in ast.walk(tree):
        if isinstance(node, ast.For):
            yield node, node.iter
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                               ast.GeneratorExp)):
            for gen in node.generators:
                yield node, gen.iter


def _array_roots(expr: ast.AST, array_names: frozenset[str]) -> str | None:
    """The matched array name iterated by ``expr``, if any.

    Handles ``xs``, ``xs.tolist()``, ``enumerate(xs)``,
    ``range(len(xs))``, ``zip(xs, ys)``.
    """
    if isinstance(expr, ast.Call):
        fn = expr.func
        if isinstance(fn, ast.Name) and fn.id in ("enumerate", "zip",
                                                  "range", "len", "reversed",
                                                  "sorted"):
            for arg in expr.args:
                hit = _array_roots(arg, array_names)
                if hit:
                    return hit
            return None
    root = root_name(expr)
    return root if root in array_names else None


@register
class ScalarLoopRule(Rule):
    """No scalar iteration over ray/point/primitive arrays."""

    rule_id = "VEC001"
    summary = "hot modules must not loop Python-scalar over ray/point arrays"

    def check(self, ctx) -> list[Finding]:
        if not ctx.config.is_hot(ctx.rel_path):
            return []
        names = frozenset(ctx.config.array_names)
        out = []
        for node, it in _iter_loop_iters(ctx.tree):
            hit = _array_roots(it, names)
            if hit:
                out.append(
                    self.finding(
                        ctx,
                        node,
                        f"scalar loop over {hit!r}: hot paths must stay "
                        "warp-lockstep (batched NumPy); iterate in bulk or "
                        "mask, never per element",
                    )
                )
        return out


@register
class QuadraticAppendRule(Rule):
    """``np.append`` reallocates the whole array per call."""

    rule_id = "VEC002"
    summary = "np.append in hot modules (quadratic accumulation)"

    def check(self, ctx) -> list[Finding]:
        if not ctx.config.is_hot(ctx.rel_path):
            return []
        out = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in ("np.append", "numpy.append"):
                    out.append(
                        self.finding(
                            ctx,
                            node,
                            "np.append copies the whole array every call; "
                            "use np.concatenate on collected parts, "
                            "np.diff(..., append=...), or preallocation",
                        )
                    )
        return out


_F32 = ("np.float32", "numpy.float32")
_F64 = ("np.float64", "numpy.float64")
_ARRAY_CTORS = frozenset(
    {"zeros", "ones", "empty", "full", "array", "asarray",
     "ascontiguousarray", "arange", "astype"}
)


def _dtype_of_call(node: ast.Call) -> str | None:
    fn = dotted_name(node.func)
    attr = fn.rsplit(".", 1)[-1] if fn else (
        node.func.attr if isinstance(node.func, ast.Attribute) else None
    )
    if attr not in _ARRAY_CTORS:
        return None
    for kw in node.keywords:
        if kw.arg == "dtype":
            d = dotted_name(kw.value)
            if d in _F32:
                return "float32"
            if d in _F64:
                return "float64"
    if attr == "astype" and node.args:
        d = dotted_name(node.args[0])
        if d in _F32:
            return "float32"
        if d in _F64:
            return "float64"
    return None


@register
class DtypeMixRule(Rule):
    """float32/float64 mixing silently upcasts whole pipelines."""

    rule_id = "VEC003"
    summary = "one function must not create both float32 and float64 arrays"

    def check(self, ctx) -> list[Finding]:
        if not ctx.config.is_hot(ctx.rel_path):
            return []
        out = []
        for fn in ast.walk(ctx.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            sites: dict[str, list[ast.Call]] = {"float32": [], "float64": []}
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    d = _dtype_of_call(node)
                    if d:
                        sites[d].append(node)
            if sites["float32"] and sites["float64"]:
                for node in sites["float32"]:
                    out.append(
                        self.finding(
                            ctx,
                            node,
                            f"{fn.name} creates both float32 and float64 "
                            "arrays; mixed-dtype arithmetic upcasts "
                            "silently — pick one precision per kernel",
                        )
                    )
        return out
